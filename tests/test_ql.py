"""Tests for the mini query language over ct-graphs."""

import pytest

from repro.core.algorithm import build_ct_graph
from repro.core.constraints import ConstraintSet, Unreachable
from repro.core.lsequence import LSequence
from repro.errors import PatternSyntaxError, QueryError
from repro.queries.analytics import most_likely_trajectory
from repro.queries.ql import execute
from repro.queries.stay import stay_query


@pytest.fixture
def graph():
    ls = LSequence([{"A": 0.6, "B": 0.4},
                    {"B": 0.5, "C": 0.5},
                    {"C": 0.7, "D": 0.3}])
    cs = ConstraintSet([Unreachable("A", "C")])
    return build_ct_graph(ls, cs)


class TestStatements:
    def test_stay(self, graph):
        result = execute(graph, "STAY 1")
        assert result.kind == "stay"
        assert result.value == stay_query(graph, 1)
        assert "B" in result.format()

    def test_match(self, graph):
        result = execute(graph, "MATCH ? C ?")
        assert result.kind == "match"
        assert 0.0 <= result.value <= 1.0
        assert result.format() == f"{result.value:.4f}"

    def test_visit(self, graph):
        result = execute(graph, "VISIT C")
        assert result.kind == "visit"
        assert 0.0 < result.value <= 1.0

    def test_span(self, graph):
        result = execute(graph, "SPAN B 1 1")
        assert result.kind == "visit"
        from repro.queries.stay import stay_query
        assert result.value == pytest.approx(stay_query(graph, 1).get("B", 0))

    def test_span_argument_errors(self, graph):
        with pytest.raises(QueryError):
            execute(graph, "SPAN B 1")
        with pytest.raises(QueryError):
            execute(graph, "SPAN B one two")

    def test_first(self, graph):
        result = execute(graph, "FIRST C")
        assert result.kind == "first"
        assert all(isinstance(tau, int) for tau in result.value)
        assert "never" in result.format()

    def test_dwell(self, graph):
        import math
        result = execute(graph, "DWELL B")
        assert result.kind == "dwell"
        assert math.fsum(result.value.values()) == pytest.approx(1.0)
        assert "steps" in result.format()
        with pytest.raises(QueryError):
            execute(graph, "DWELL")

    def test_expected(self, graph):
        result = execute(graph, "EXPECTED")
        assert result.kind == "expected"
        assert sum(result.value.values()) == pytest.approx(graph.duration)

    def test_best(self, graph):
        result = execute(graph, "BEST")
        assert result.value == most_likely_trajectory(graph)
        assert "p=" in result.format()

    def test_top(self, graph):
        result = execute(graph, "TOP 3")
        assert result.kind == "top"
        assert len(result.value) == 3
        assert "#1" in result.format()

    def test_entropy(self, graph):
        result = execute(graph, "ENTROPY")
        assert result.kind == "entropy"
        assert len(result.value) == graph.duration
        assert "peak=" in result.format()

    def test_keywords_case_insensitive(self, graph):
        assert execute(graph, "stay 0").kind == "stay"
        assert execute(graph, "Top 2").kind == "top"


class TestErrors:
    def test_empty_query(self, graph):
        with pytest.raises(QueryError):
            execute(graph, "   ")

    def test_unknown_statement(self, graph):
        with pytest.raises(QueryError):
            execute(graph, "DELETE everything")

    def test_stay_needs_integer(self, graph):
        with pytest.raises(QueryError):
            execute(graph, "STAY soon")

    def test_stay_out_of_range(self, graph):
        with pytest.raises(QueryError):
            execute(graph, "STAY 99")

    def test_match_needs_pattern(self, graph):
        with pytest.raises(QueryError):
            execute(graph, "MATCH")

    def test_match_bad_pattern(self, graph):
        with pytest.raises(PatternSyntaxError):
            execute(graph, "MATCH A[")

    def test_visit_needs_location(self, graph):
        with pytest.raises(QueryError):
            execute(graph, "VISIT")

    def test_no_argument_statements_reject_arguments(self, graph):
        with pytest.raises(QueryError):
            execute(graph, "BEST guess")
        with pytest.raises(QueryError):
            execute(graph, "ENTROPY now")

    def test_top_needs_count(self, graph):
        with pytest.raises(QueryError):
            execute(graph, "TOP many")
