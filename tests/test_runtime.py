"""Tests for the batch runtime (repro.runtime): equality with sequential
cleaning across worker counts, failure isolation, ordering, shared plans."""

import pytest

from repro.core.algorithm import CleaningOptions, build_ct_graph
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.lsequence import LSequence, ReadingSequence
from repro.errors import ReadingSequenceError, ZeroMassError
from repro.runtime import BatchCleaner, SharedCleaningPlan, clean_many

CONSTRAINTS = ConstraintSet([
    Unreachable("A", "C"), Unreachable("C", "A"),
    Latency("B", 3),
    TravelingTime("A", "D", 4), TravelingTime("D", "A", 4),
])

_PHASES = (
    {"A": 0.4, "B": 0.4, "C": 0.2},
    {"B": 0.6, "D": 0.4},
    {"B": 0.5, "C": 0.3, "D": 0.2},
    {"A": 0.5, "B": 0.5},
)


def make_lsequence(duration, offset=0):
    return LSequence([_PHASES[(tau + offset) % len(_PHASES)]
                      for tau in range(duration)])


@pytest.fixture(scope="module")
def workload():
    """Eight small, diverse objects (every phase offset, two durations)."""
    return [make_lsequence(duration, offset)
            for duration in (6, 9) for offset in range(4)]


class TestParallelEqualsSequential:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_paths_probability_identical(self, workload, workers):
        sequential = [build_ct_graph(ls, CONSTRAINTS) for ls in workload]
        result = clean_many(workload, CONSTRAINTS, workers=workers)
        assert len(result) == len(workload)
        for expected, outcome in zip(sequential, result):
            assert outcome.ok
            # Bit-exact, path for path: same trajectories, same conditioned
            # probabilities, same enumeration order.
            assert list(outcome.graph.paths()) == list(expected.paths())
            outcome.graph.validate()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_stats_match_sequential(self, workload, workers):
        sequential = [build_ct_graph(ls, CONSTRAINTS) for ls in workload]
        result = clean_many(workload, CONSTRAINTS, workers=workers)
        for expected, outcome in zip(sequential, result):
            assert outcome.stats == expected.stats
        aggregate = result.aggregate_stats()
        assert aggregate.nodes_created == sum(
            g.stats.nodes_created for g in sequential)
        assert aggregate.edges_kept == sum(
            g.stats.edges_kept for g in sequential)

    def test_chunk_size_does_not_change_results(self, workload):
        baseline = clean_many(workload, CONSTRAINTS, workers=1)
        chunked = clean_many(workload, CONSTRAINTS, workers=2, chunk_size=3)
        assert chunked.chunk_size == 3
        for left, right in zip(baseline, chunked):
            assert list(left.graph.paths()) == list(right.graph.paths())


class TestFailureIsolation:
    def test_zero_mass_object_does_not_poison_batch(self, workload):
        # A -> C is unreachable, so this object has zero valid mass.
        poison = LSequence([{"A": 1.0}, {"C": 1.0}])
        sequences = [workload[0], poison, workload[1]]
        for workers in (1, 2):
            result = clean_many(sequences, CONSTRAINTS, workers=workers)
            assert [o.ok for o in result] == [True, False, True]
            failed = result[1]
            assert failed.graph is None and failed.stats is None
            assert failed.error_type == "ZeroMassError"
            assert "valid prior mass" in failed.error
            assert result.cleaned == 2
            assert [o.index for o in result.failures] == [1]

    def test_precheck_error_mode_fails_per_object(self, workload):
        poison = LSequence([{"A": 1.0}, {"C": 1.0}])
        result = clean_many([poison, workload[0]], CONSTRAINTS,
                            options=CleaningOptions(precheck="error"),
                            workers=1)
        assert not result[0].ok
        assert result[0].error_type == "ZeroMassError"
        assert result[1].ok

    def test_programming_errors_still_propagate(self, workload):
        class Exploding:
            duration = 3

            def candidates(self, tau):
                raise RuntimeError("boom")

            def support(self, tau):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            clean_many([Exploding()], CONSTRAINTS, workers=1)


class TestOrdering:
    def test_results_follow_input_order(self):
        durations = [5, 11, 3, 8, 6, 4, 9, 7]
        sequences = [make_lsequence(d, i) for i, d in enumerate(durations)]
        result = clean_many(sequences, CONSTRAINTS, workers=2, chunk_size=1)
        assert [o.index for o in result] == list(range(len(durations)))
        assert [o.graph.duration for o in result] == durations


class TestConstraintGrouping:
    def test_per_object_constraint_sets(self, workload):
        loose = ConstraintSet([Unreachable("A", "C")])
        per_object = [CONSTRAINTS, loose, CONSTRAINTS, loose]
        sequences = workload[:4]
        result = clean_many(sequences, per_object, workers=2)
        for sequence, constraints, outcome in zip(sequences, per_object,
                                                  result):
            expected = build_ct_graph(sequence, constraints)
            assert list(outcome.graph.paths()) == list(expected.paths())

    def test_mismatched_lengths_rejected(self, workload):
        with pytest.raises(ValueError):
            clean_many(workload[:3], [CONSTRAINTS, CONSTRAINTS], workers=1)


class TestReadingsPath:
    def test_raw_readings_are_interpreted_in_workers(self):
        prior = TablePrior()
        readings = [ReadingSequence.from_reader_sets(sets) for sets in (
            [{"rA"}, {"rB"}, {"rB"}, {"rB"}],
            [{"rB"}, {"rB"}, {"rB"}, {"rD"}],
        )]
        constraints = ConstraintSet([Latency("B", 2)])
        result = clean_many(readings, constraints, workers=2, prior=prior)
        for raw, outcome in zip(readings, result):
            expected = build_ct_graph(
                LSequence.from_readings(raw, prior), constraints)
            assert list(outcome.graph.paths()) == list(expected.paths())

    def test_readings_without_prior_rejected(self):
        readings = ReadingSequence.from_reader_sets([{"rA"}, {"rB"}])
        with pytest.raises(ReadingSequenceError):
            clean_many([readings], CONSTRAINTS, workers=1)


class TestSharedPlan:
    def test_du_rows_are_cached_and_correct(self):
        plan = SharedCleaningPlan(CONSTRAINTS)
        support = ("A", "B", "C", "D")
        assert plan.du_row("A", support) == frozenset({"A", "B", "D"})
        assert plan.du_row("B", support) == frozenset(support)
        assert plan.cached_rows == 2
        # Second query hits the cache (same object back).
        assert plan.du_row("A", support) is plan.du_row("A", support)

    def test_du_rows_deduplicate_permuted_supports(self):
        # Callers canonicalise (sort) the support before asking the plan;
        # the same location set must map to ONE cached row no matter what
        # candidate order the levels enumerate.  (Regression: the key was
        # once built from dict insertion order, so permutations of one
        # support piled up as distinct rows.)
        plan = SharedCleaningPlan(CONSTRAINTS)
        for permuted in (("B", "A", "D"), ("D", "B", "A"), ("A", "D", "B")):
            support = tuple(sorted(permuted))
            assert plan.du_row("A", support) == frozenset({"A", "B", "D"})
        assert plan.cached_rows == 1

    def test_build_ct_graph_canonicalises_plan_support(self):
        # Two l-sequences whose levels list the same support in different
        # candidate orders share the plan rows — and stay bit-identical
        # to the plan-less build.
        plan = SharedCleaningPlan(CONSTRAINTS)
        forward = LSequence([{"A": 1.0}, {"A": 0.5, "B": 0.3, "D": 0.2}])
        reversed_ = LSequence([{"A": 1.0}, {"D": 0.2, "B": 0.3, "A": 0.5}])
        options = CleaningOptions(engine="reference")
        for lsequence in (forward, reversed_):
            with_plan = build_ct_graph(lsequence, CONSTRAINTS,
                                       options, plan=plan)
            without = build_ct_graph(lsequence, CONSTRAINTS, options)
            assert with_plan.__getstate__()["edges"] == \
                without.__getstate__()["edges"]
        assert plan.cached_rows == 1

    def test_plan_gives_identical_graphs(self, workload):
        plan = SharedCleaningPlan(CONSTRAINTS)
        for lsequence in workload:
            with_plan = build_ct_graph(lsequence, CONSTRAINTS, plan=plan)
            without = build_ct_graph(lsequence, CONSTRAINTS)
            assert list(with_plan.paths()) == list(without.paths())
        assert plan.cached_rows > 0

    def test_foreign_plan_rejected(self, workload):
        plan = SharedCleaningPlan(ConstraintSet([Unreachable("X", "Y")]))
        with pytest.raises(ReadingSequenceError):
            build_ct_graph(workload[0], CONSTRAINTS, plan=plan)

    def test_plan_precheck_error_raises_zero_mass(self):
        plan = SharedCleaningPlan(CONSTRAINTS)
        poison = LSequence([{"A": 1.0}, {"C": 1.0}])
        with pytest.raises(ZeroMassError):
            plan.precheck(poison, CleaningOptions(precheck="error"))
        # "off" and "warn" never raise.
        plan.precheck(poison, CleaningOptions(precheck="off"))
        plan.precheck(poison, CleaningOptions(precheck="warn"))


class TestAggregateStats:
    def test_every_stats_field_is_summed(self):
        # Build outcomes whose stats carry a distinct prime in EVERY field
        # (timing floats included): if aggregate_stats ever regresses to a
        # hand-maintained field list, a newly-added or forgotten counter
        # shows up here as a wrong sum.
        import dataclasses

        from repro.core.algorithm import CleaningStats
        from repro.runtime.batch import BatchOutcome, BatchResult

        field_names = [f.name for f in dataclasses.fields(CleaningStats)]
        assert field_names  # the contract below is vacuous otherwise

        class FakeGraph:
            def __init__(self, stats):
                self.stats = stats

        outcomes = []
        for index, base in enumerate((2, 3)):
            stats = CleaningStats(**{
                name: base ** position
                for position, name in enumerate(field_names, start=1)})
            outcomes.append(BatchOutcome(index=index, graph=FakeGraph(stats)))
        # A failed outcome must contribute nothing.
        outcomes.append(BatchOutcome(index=2, error_type="ZeroMassError",
                                     error="boom"))
        result = BatchResult(outcomes=tuple(outcomes), wall_seconds=0.1,
                             workers=1, chunk_size=1)

        total = result.aggregate_stats()
        for position, name in enumerate(field_names, start=1):
            assert getattr(total, name) == 2 ** position + 3 ** position, name


class TestValidation:
    def test_bad_worker_counts_rejected(self):
        with pytest.raises(ValueError):
            BatchCleaner(CONSTRAINTS, workers=0)
        with pytest.raises(ValueError):
            BatchCleaner(CONSTRAINTS, chunk_size=0)

    def test_validation_errors_join_the_repro_taxonomy(self):
        # BatchConfigurationError subclasses both ReproError and ValueError,
        # so the pytest.raises(ValueError) assertions above keep passing
        # while library-level handlers can catch ReproError uniformly.
        from repro.errors import BatchConfigurationError, ReproError

        for build in (lambda: BatchCleaner(CONSTRAINTS, workers=0),
                      lambda: BatchCleaner(CONSTRAINTS, chunk_size=-1),
                      lambda: BatchCleaner(CONSTRAINTS, timeout_seconds=0.0),
                      lambda: BatchCleaner(CONSTRAINTS, max_retries=-1)):
            with pytest.raises(BatchConfigurationError) as excinfo:
                build()
            assert isinstance(excinfo.value, ReproError)
            assert isinstance(excinfo.value, ValueError)

    def test_empty_batch(self):
        result = clean_many([], CONSTRAINTS, workers=4)
        assert len(result) == 0
        assert result.aggregate_stats().nodes_created == 0

    def test_workers_capped_by_batch_size(self, workload):
        result = clean_many(workload[:2], CONSTRAINTS, workers=16)
        assert result.workers == 2


class TestQueryPlan:
    STATEMENTS = ("STAY 3", "BEST", "VISIT C", "ENTROPY")

    def test_bad_statements_rejected_up_front(self):
        from repro.errors import BatchConfigurationError
        from repro.runtime import QueryPlan

        for statements in ((), ("STAYY 3",), ("",), ("STAY 3", 7)):
            with pytest.raises(BatchConfigurationError):
                QueryPlan(statements)

    def test_single_string_normalises_to_tuple(self):
        from repro.runtime import QueryPlan

        assert QueryPlan("BEST").statements == ("BEST",)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_queries_match_per_object_sessions(self, workload, workers):
        from repro.queries import ql
        from repro.queries.session import QuerySession
        from repro.runtime import QueryPlan

        result = clean_many(workload, CONSTRAINTS, workers=workers,
                            chunk_size=1,
                            query_plan=QueryPlan(self.STATEMENTS))
        for lsequence, outcome in zip(workload, result):
            assert outcome.ok
            assert outcome.graph is None  # dropped: only answers travel
            session = QuerySession(build_ct_graph(
                lsequence, CONSTRAINTS,
                CleaningOptions(materialize="flat")))
            expected = [ql.execute(session, statement)
                        for statement in self.STATEMENTS]
            assert [q.value for q in outcome.queries] \
                == [q.value for q in expected]

    def test_keep_graphs_returns_both(self, workload):
        from repro.runtime import QueryPlan

        result = clean_many(workload[:2], CONSTRAINTS,
                            query_plan=QueryPlan("BEST", keep_graphs=True))
        for outcome in result:
            assert outcome.graph is not None
            assert len(outcome.queries) == 1

    def test_statement_argument_errors_fail_per_object(self, workload):
        from repro.runtime import QueryPlan

        # STAY 7 is out of range for the 6-step objects only.
        result = clean_many(workload[:8], CONSTRAINTS,
                            query_plan=QueryPlan("STAY 7"))
        by_duration = {ls.duration: outcome
                       for ls, outcome in zip(workload[:8], result)}
        assert not by_duration[6].ok
        assert by_duration[6].error_type == "QueryError"
        assert by_duration[9].ok


class TablePrior:
    """A tiny picklable prior: reader r<X> means location X or B."""

    def distribution(self, readers):
        (reader,) = readers
        location = reader[1:]
        if location == "B":
            return {"B": 1.0}
        return {location: 0.75, "B": 0.25}
