"""Tests for the repo-invariant AST lint (tools/check_invariants.py)."""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

from check_invariants import check_source, main  # noqa: E402


def findings_for(source: str) -> list:
    return check_source(textwrap.dedent(source))


class TestExactFloatEquality:
    def test_fractional_literal_flagged(self):
        (finding,) = findings_for("if p == 0.5:\n    pass\n")
        assert finding.code == "INV001"

    def test_not_equal_flagged(self):
        (finding,) = findings_for("ok = value != 1e-6\n")
        assert finding.code == "INV001"

    def test_negative_fraction_flagged(self):
        (finding,) = findings_for("ok = value == -0.25\n")
        assert finding.code == "INV001"

    def test_sentinels_allowed(self):
        assert findings_for("if p == 0.0 or p == 1.0 or p == -1.0:\n"
                            "    pass\n") == []

    def test_ordering_comparisons_allowed(self):
        assert findings_for("if p < 0.5 or p >= 0.125:\n    pass\n") == []

    def test_integer_equality_allowed(self):
        assert findings_for("if n == 3:\n    pass\n") == []

    def test_chained_comparison_flagged(self):
        (finding,) = findings_for("ok = 0.0 <= x == 0.3\n")
        assert finding.code == "INV001"


class TestBareExcept:
    def test_bare_except_flagged(self):
        (finding,) = findings_for(
            "try:\n    pass\nexcept:\n    pass\n")
        assert finding.code == "INV002"

    def test_typed_except_allowed(self):
        assert findings_for(
            "try:\n    pass\nexcept Exception:\n    pass\n") == []


class TestFrozenMutation:
    def test_setattr_outside_post_init_flagged(self):
        (finding,) = findings_for(
            "def poke(obj):\n"
            "    object.__setattr__(obj, 'x', 1)\n")
        assert finding.code == "INV003"

    def test_setattr_inside_post_init_allowed(self):
        assert findings_for(
            "class C:\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, 'x', 1)\n") == []

    def test_module_level_setattr_flagged(self):
        (finding,) = findings_for("object.__setattr__(thing, 'x', 1)\n")
        assert finding.code == "INV003"

    def test_nested_helper_inside_post_init_is_still_sanctioned(self):
        # The enclosing-function stack includes __post_init__, which is the
        # construction-time window the invariant protects.
        assert findings_for(
            "class C:\n"
            "    def __post_init__(self):\n"
            "        def fix(o):\n"
            "            object.__setattr__(o, 'x', 1)\n"
            "        fix(self)\n") == []


class TestSuppression:
    def test_invariant_ok_comment_suppresses(self):
        source = "ok = p == 0.5  # invariant-ok: INV001\n"
        assert check_source(source) == []

    def test_suppression_is_code_specific(self):
        source = "ok = p == 0.5  # invariant-ok: INV002\n"
        (finding,) = check_source(source)
        assert finding.code == "INV001"


class TestMain:
    def test_clean_tree_exits_0(self, tmp_path, capsys):
        target = tmp_path / "ok.py"
        target.write_text("x = 1\n")
        assert main([str(tmp_path)]) == 0
        assert "1 file(s) clean" in capsys.readouterr().out

    def test_findings_exit_1_with_locations(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("flag = p == 0.5\n")
        assert main([str(target)]) == 1
        captured = capsys.readouterr()
        assert "bad.py:1: INV001" in captured.out

    def test_unparsable_file_exits_2(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def (:\n")
        assert main([str(target)]) == 2

    def test_no_arguments_exits_2(self, capsys):
        assert main([]) == 2

    def test_repo_sources_are_clean(self):
        repo = Path(__file__).resolve().parent.parent
        assert main([str(repo / "src"), str(repo / "tools")]) == 0
