"""Tests for the streaming cleaner (online frontier + exact finalize)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.algorithm import CleaningOptions, build_ct_graph
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.incremental import IncrementalCleaner, advance_frontier
from repro.core.lsequence import LSequence
from repro.errors import InconsistentReadingsError, ReadingSequenceError


@pytest.fixture
def constraints():
    return ConstraintSet([Unreachable("A", "C"), Unreachable("C", "A"),
                          Latency("B", 2)])


class TestExtend:
    def test_empty_distribution_rejected(self, constraints):
        cleaner = IncrementalCleaner(constraints)
        with pytest.raises(ReadingSequenceError):
            cleaner.extend({})

    def test_duration_tracks_ingestion(self, constraints):
        cleaner = IncrementalCleaner(constraints)
        assert cleaner.duration == 0
        cleaner.extend({"A": 1.0})
        cleaner.extend({"A": 0.5, "B": 0.5})
        assert cleaner.duration == 2

    def test_inconsistent_stream_raises_and_preserves_state(self, constraints):
        cleaner = IncrementalCleaner(constraints)
        cleaner.extend({"A": 1.0})
        with pytest.raises(InconsistentReadingsError):
            cleaner.extend({"C": 1.0})     # A -> C is forbidden
        # State unchanged: the cleaner can continue with a sane reading.
        assert cleaner.duration == 1
        cleaner.extend({"B": 1.0})
        assert cleaner.duration == 2

    def test_failed_first_extension_leaves_cleaner_pristine(self, constraints):
        # At tau=0 the frontier cannot be empty (source_states yields one
        # node state per positive-mass location), so the first extension
        # can only fail as a ReadingSequenceError — zero/empty rows — and
        # must leave the cleaner exactly as constructed.
        cleaner = IncrementalCleaner(constraints)
        with pytest.raises(ReadingSequenceError):
            cleaner.extend({"A": 0.0})
        assert cleaner.duration == 0
        assert cleaner.frontier_size() == 0
        with pytest.raises(ReadingSequenceError):
            cleaner.filtered_distribution()
        with pytest.raises(ReadingSequenceError):
            cleaner.finalize()
        # ...and still fully usable afterwards.
        cleaner.extend({"A": 1.0})
        assert cleaner.duration == 1

    def test_failed_extension_preserves_every_observable(self, constraints):
        # The docstring's "state is unchanged" promise, pinned across all
        # four observables — duration, frontier, filtered distribution,
        # finalize — for a failure deep in the stream.
        cleaner = IncrementalCleaner(constraints)
        for row in ({"A": 1.0}, {"A": 0.5, "B": 0.5}, {"A": 1.0}):
            cleaner.extend(row)
        duration = cleaner.duration
        frontier_size = cleaner.frontier_size()
        filtered = cleaner.filtered_distribution()
        baseline = cleaner.finalize()

        with pytest.raises(InconsistentReadingsError):
            cleaner.extend({"C": 1.0})     # the frontier sits at A; A -> C

        assert cleaner.duration == duration
        assert cleaner.frontier_size() == frontier_size
        assert cleaner.filtered_distribution() == filtered
        after = cleaner.finalize()
        assert list(after.paths()) == list(baseline.paths())
        # The stream continues as if the bad reading never arrived.
        cleaner.extend({"B": 0.5, "D": 0.5})
        assert cleaner.duration == duration + 1

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf"), -0.5])
    def test_malformed_probability_rejected(self, constraints, bad):
        cleaner = IncrementalCleaner(constraints)
        cleaner.extend({"A": 1.0})
        with pytest.raises(ReadingSequenceError, match="finite and "
                                                       "non-negative"):
            cleaner.extend({"A": 0.5, "B": bad})
        # The failed row leaves the stream untouched.
        assert cleaner.duration == 1
        cleaner.extend({"A": 0.5, "B": 0.5})
        assert cleaner.duration == 2

    def test_numeric_string_probability_is_coerced(self, constraints):
        # Regression: the old extend() validated float(p) but filtered on
        # the raw value, so a numeric string passed validation and then
        # crashed with a bare TypeError in the `>` comparison.
        cleaner = IncrementalCleaner(constraints)
        cleaner.extend({"A": "0.5", "B": 0.5})
        assert cleaner.filtered_distribution() == \
            {"A": pytest.approx(0.5), "B": pytest.approx(0.5)}

    def test_non_numeric_probability_is_a_typed_error(self, constraints):
        cleaner = IncrementalCleaner(constraints)
        with pytest.raises(ReadingSequenceError,
                           match="does not coerce to a float"):
            cleaner.extend({"A": "half"})
        with pytest.raises(ReadingSequenceError,
                           match="does not coerce to a float"):
            cleaner.extend({"A": None})
        assert cleaner.duration == 0

    def test_extend_reading_needs_prior(self, constraints):
        cleaner = IncrementalCleaner(constraints)
        with pytest.raises(ReadingSequenceError):
            cleaner.extend_reading({"r1"})

    def test_extend_reading_via_prior(self, constraints):
        class FakePrior:
            def distribution(self, readers):
                return {"A": 1.0} if readers else {"A": 0.5, "B": 0.5}

        cleaner = IncrementalCleaner(constraints, prior=FakePrior())
        cleaner.extend_reading({"r"})
        cleaner.extend_reading(set())
        assert cleaner.duration == 2
        assert set(cleaner.filtered_distribution()) == {"A", "B"}


class TestFilteredDistribution:
    def test_requires_data(self, constraints):
        with pytest.raises(ReadingSequenceError):
            IncrementalCleaner(constraints).filtered_distribution()

    def test_sums_to_one(self, constraints):
        cleaner = IncrementalCleaner(constraints)
        for row in ({"A": 0.5, "B": 0.5}, {"B": 0.7, "C": 0.3},
                    {"B": 0.5, "C": 0.5}):
            cleaner.extend(row)
            assert math.fsum(cleaner.filtered_distribution().values()) \
                == pytest.approx(1.0)

    def test_filtering_respects_constraints(self, constraints):
        cleaner = IncrementalCleaner(constraints)
        cleaner.extend({"A": 1.0})
        cleaner.extend({"B": 0.5, "C": 0.5})
        # A -> C is forbidden, so the filtered mass is all on B.
        assert cleaner.filtered_distribution() == {"B": pytest.approx(1.0)}

    def test_filtered_equals_prefix_conditioning(self, constraints):
        """Filtering == batch-conditioning the prefix, marginal at the end."""
        rows = [{"A": 0.5, "B": 0.5}, {"B": 0.6, "C": 0.4},
                {"B": 0.5, "C": 0.5}, {"A": 0.3, "B": 0.7}]
        cleaner = IncrementalCleaner(constraints)
        for tau, row in enumerate(rows):
            cleaner.extend(row)
            prefix_graph = build_ct_graph(LSequence(rows[:tau + 1]),
                                          constraints)
            expected = prefix_graph.location_marginal(tau)
            got = cleaner.filtered_distribution()
            assert set(got) == set(expected)
            for location, probability in expected.items():
                assert got[location] == pytest.approx(probability)

    def test_long_stream_does_not_underflow(self, constraints):
        cleaner = IncrementalCleaner(constraints)
        for _ in range(800):
            cleaner.extend({"A": 0.4, "B": 0.4, "C": 0.2})
        distribution = cleaner.filtered_distribution()
        assert math.fsum(distribution.values()) == pytest.approx(1.0)
        assert cleaner.frontier_size() >= 1


class TestFinalize:
    def test_requires_data(self, constraints):
        with pytest.raises(ReadingSequenceError):
            IncrementalCleaner(constraints).finalize()

    def test_finalize_equals_batch(self, constraints):
        rows = [{"A": 0.5, "B": 0.5}, {"B": 0.6, "C": 0.4},
                {"B": 0.5, "C": 0.5}]
        cleaner = IncrementalCleaner(constraints)
        for row in rows:
            cleaner.extend(row)
        streamed = cleaner.finalize()
        batch = build_ct_graph(LSequence(rows), constraints)
        assert dict(streamed.paths()) == pytest.approx(dict(batch.paths()))

    def test_finalize_then_continue(self, constraints):
        cleaner = IncrementalCleaner(constraints)
        cleaner.extend({"A": 1.0})
        first = cleaner.finalize()
        assert first.duration == 1
        cleaner.extend({"A": 0.5, "B": 0.5})
        second = cleaner.finalize()
        assert second.duration == 2
        assert first.duration == 1    # earlier result untouched


class TestFinalizeMaterialize:
    """The corrected finalize() contract: all three materialize modes."""

    rows = ({"A": 0.5, "B": 0.5}, {"B": 0.6, "C": 0.4}, {"B": 1.0})

    def _fed(self, constraints, options):
        cleaner = IncrementalCleaner(constraints, options)
        for row in self.rows:
            cleaner.extend(row)
        return cleaner

    def test_nodes_mode_returns_ctgraph(self, constraints):
        from repro.core.ctgraph import CTGraph

        cleaner = self._fed(constraints, CleaningOptions(materialize="nodes"))
        assert isinstance(cleaner.finalize(), CTGraph)

    def test_flat_mode_returns_flatgraph(self, constraints):
        from repro.core.flatgraph import FlatCTGraph
        from repro.queries.session import QuerySession

        cleaner = self._fed(constraints, CleaningOptions(materialize="flat"))
        graph = cleaner.finalize()
        assert isinstance(graph, FlatCTGraph)
        batch = build_ct_graph(LSequence(list(self.rows)), constraints)
        assert QuerySession(graph).location_marginal(2) == \
            pytest.approx(batch.location_marginal(2))

    def test_store_mode_returns_mapped_view(self, constraints, tmp_path):
        from repro.store.format import MappedCTGraph

        out = tmp_path / "g.ctg"
        cleaner = self._fed(constraints, CleaningOptions(output=str(out)))
        graph = cleaner.finalize()
        assert isinstance(graph, MappedCTGraph)
        assert out.exists()
        graph.close()

    def test_store_mode_refuses_silent_rewrite(self, constraints, tmp_path):
        out = tmp_path / "g.ctg"
        cleaner = self._fed(constraints, CleaningOptions(output=str(out)))
        cleaner.finalize().close()
        stamp = out.read_bytes()
        with pytest.raises(ReadingSequenceError, match="already wrote"):
            cleaner.finalize()
        assert out.read_bytes() == stamp    # the first result is intact

    def test_explicit_output_gives_fresh_file(self, constraints, tmp_path):
        from repro.store.format import MappedCTGraph

        out = tmp_path / "g.ctg"
        cleaner = self._fed(constraints, CleaningOptions(output=str(out)))
        cleaner.finalize().close()
        second = tmp_path / "g2.ctg"
        graph = cleaner.finalize(output=str(second))
        assert isinstance(graph, MappedCTGraph)
        assert second.exists()
        graph.close()
        # The explicit path never consumes the configured one again.
        third = tmp_path / "g3.ctg"
        cleaner.finalize(output=str(third)).close()
        assert third.exists()

    def test_explicit_output_works_with_auto_options(self, constraints,
                                                     tmp_path):
        from repro.store.format import MappedCTGraph

        cleaner = self._fed(constraints, CleaningOptions())
        out = tmp_path / "g.ctg"
        graph = cleaner.finalize(output=str(out))
        assert isinstance(graph, MappedCTGraph)
        graph.close()
        # ...and the cleaner still finalizes in-memory afterwards.
        from repro.core.ctgraph import CTGraph
        assert isinstance(cleaner.finalize(), CTGraph)

    def test_explicit_output_rejects_non_store_materialize(self, constraints):
        cleaner = self._fed(constraints, CleaningOptions(materialize="flat"))
        with pytest.raises(ReadingSequenceError, match="materialize"):
            cleaner.finalize(output="anywhere.ctg")


class TestAdvanceFrontierStep:
    """Pins the recursion step's micro-optimisations bit-for-bit.

    ``advance_frontier`` interns successor tuples against the *input*
    frontier (so long streams share state tuples across levels instead of
    holding equal copies) and skips the rescale rebuild when the peak is
    exactly 1.0 (division by 1.0 is the float identity).  Both are pure
    optimisations: these tests pin the observable contract — identity of
    carried-over keys, and exact equality of the returned masses."""

    def test_carried_states_reuse_input_frontier_tuples(self):
        constraints = ConstraintSet([Unreachable("A", "C")])
        row = {"A": 0.5, "B": 0.5}
        frontier = advance_frontier({}, row, 0, constraints)
        for tau in (1, 2, 3):
            advanced = advance_frontier(frontier, row, tau, constraints)
            previous = {state: state for state in frontier}
            carried = [state for state in advanced if state in previous]
            # Without latency/TT state, staying put maps a state to an
            # equal tuple — and the interning must return the input
            # frontier's exact object, not a fresh equal one.
            assert carried
            for state in carried:
                assert state is previous[state]
            frontier = advanced

    def test_peak_of_exactly_one_keeps_masses_bit_identical(self):
        walls = ConstraintSet([Unreachable("A", "B"), Unreachable("B", "A")])
        state_a = ("A", None, ())
        state_b = ("B", None, ())
        # The walls keep the two successor sets disjoint; 2.0 * 0.5 puts
        # the peak at exactly 1.0, so the rescale is skipped — and the
        # off-peak 0.125 must keep its exact bits, indistinguishable
        # from dividing by 1.0.
        advanced = advance_frontier({state_a: 2.0, state_b: 0.25},
                                    {"A": 0.5, "B": 0.5}, 1, walls)
        assert advanced == {state_a: 1.0, state_b: 0.125}

    def test_rescale_still_engages_off_peak(self):
        constraints = ConstraintSet([])
        state_a = ("A", None, ())
        advanced = advance_frontier({state_a: 1.0},
                                    {"A": 0.25, "B": 0.75}, 1, constraints)
        assert max(advanced.values()) == 1.0
        assert advanced[state_a] == 0.25 / 0.75


class TestLSequenceCopy:
    def test_lsequence_is_an_independent_copy(self, constraints):
        cleaner = IncrementalCleaner(constraints)
        cleaner.extend({"A": 0.5, "B": 0.5})
        cleaner.extend({"B": 1.0})
        before = cleaner.filtered_distribution()
        copy = cleaner.lsequence()
        copy.candidates(0)["A"] = 123.0    # vandalise the copy
        copy.candidates(1).clear()
        assert cleaner.filtered_distribution() == before
        fresh = cleaner.lsequence()
        assert fresh.candidates(0)["A"] == pytest.approx(0.5)
        assert fresh.candidates(1) == {"B": pytest.approx(1.0)}


# ----------------------------------------------------------------------
# property test: streaming == batch on random instances
# ----------------------------------------------------------------------

locations = st.sampled_from("ABC")


@st.composite
def streams(draw):
    duration = draw(st.integers(min_value=1, max_value=5))
    rows = []
    for _ in range(duration):
        support = draw(st.lists(locations, min_size=1, max_size=3, unique=True))
        weights = [draw(st.floats(min_value=0.1, max_value=1.0))
                   for _ in support]
        total = sum(weights)
        rows.append({l: w / total for l, w in zip(support, weights)})
    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        kind = draw(st.sampled_from(["du", "lt", "tt"]))
        if kind == "du":
            constraints.append(Unreachable(draw(locations), draw(locations)))
        elif kind == "lt":
            constraints.append(Latency(draw(locations), draw(st.integers(2, 3))))
        else:
            a = draw(locations)
            b = draw(locations.filter(lambda x: x != a))
            constraints.append(TravelingTime(a, b, draw(st.integers(2, 3))))
    return rows, ConstraintSet(constraints)


@settings(max_examples=200, deadline=None)
@given(streams())
def test_streaming_matches_batch(stream):
    rows, constraints = stream
    cleaner = IncrementalCleaner(constraints)
    failed_online = False
    try:
        for row in rows:
            cleaner.extend(row)
    except InconsistentReadingsError:
        failed_online = True
    try:
        batch = build_ct_graph(LSequence(rows), constraints)
    except InconsistentReadingsError:
        batch = None
    if failed_online:
        # The online cleaner fails as soon as *some prefix* has no valid
        # continuation; the batch run on the full sequence must fail too.
        assert batch is None
        return
    if batch is None:
        return  # prefix stayed alive but the whole sequence is inconsistent
    streamed = cleaner.finalize()
    expected = dict(batch.paths())
    got = dict(streamed.paths())
    assert set(got) == set(expected)
    for trajectory, probability in expected.items():
        assert got[trajectory] == pytest.approx(probability, abs=1e-9)
