"""Smoke test for benchmarks/bench_queries.py: the bench must run on a
tiny workload, assert node-path/flat-path answer parity, and emit a
well-formed BENCH_queries.json (schema only — no performance assertion;
speedup is hardware)."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH = REPO_ROOT / "benchmarks" / "bench_queries.py"


def _bench_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    return env


def test_smoke_emits_well_formed_json(tmp_path):
    out = tmp_path / "BENCH_queries.json"
    run = subprocess.run(
        [sys.executable, str(BENCH), "--durations", "40", "80",
         "--repeats", "2", "--kernel-duration", "40",
         "--kernel-repeats", "1", "--out", str(out)],
        capture_output=True, text=True, env=_bench_env(), timeout=300)
    assert run.returncode == 0, run.stderr

    payload = json.loads(out.read_text())
    assert payload["benchmark"] == "bench_queries"
    assert payload["workload"]["durations"] == [40, 80]
    assert len(payload["workload"]["statements"]) >= 8
    assert payload["parity"] is True
    assert payload["speedup"] > 0.0
    assert payload["backend"] == "python"
    assert len(payload["results"]) == 2
    for entry in payload["results"]:
        assert entry["statements"] >= 8
        assert entry["node_seconds"] > 0.0
        assert entry["flat_seconds"] > 0.0
        assert entry["flat_size_bytes"] < entry["node_size_bytes"]
    kernel = payload["kernel"]
    assert kernel["duration"] == 40
    assert kernel["python_seconds"] > 0.0
    if kernel["measured"]:
        assert kernel["parity"] is True
        assert kernel["kernel_speedup"] > 0.0
        assert payload["kernel_speedup"] == kernel["kernel_speedup"]
    else:
        assert payload["kernel_speedup"] is None

    # The bench's own --check mode agrees.
    check = subprocess.run(
        [sys.executable, str(BENCH), "--check", str(out)],
        capture_output=True, text=True, env=_bench_env(), timeout=60)
    assert check.returncode == 0, check.stderr


def test_numpy_backend_smoke(tmp_path):
    # The CI kernel-parity step: the numpy-backed flat pipeline must
    # agree with the node path under the tolerance gate.
    out = tmp_path / "BENCH_queries.json"
    run = subprocess.run(
        [sys.executable, str(BENCH), "--durations", "40", "--repeats", "1",
         "--backend", "numpy", "--kernel-duration", "40",
         "--kernel-repeats", "1", "--out", str(out)],
        capture_output=True, text=True, env=_bench_env(), timeout=300)
    assert run.returncode == 0, run.stderr
    payload = json.loads(out.read_text())
    assert payload["backend"] == "numpy"
    assert payload["parity"] is True


def test_smoke_flag_runs_ci_sized_workload(tmp_path):
    out = tmp_path / "BENCH_queries.json"
    run = subprocess.run(
        [sys.executable, str(BENCH), "--smoke", "--out", str(out)],
        capture_output=True, text=True, env=_bench_env(), timeout=300)
    assert run.returncode == 0, run.stderr
    payload = json.loads(out.read_text())
    assert payload["workload"]["durations"] == [60]
    assert payload["repeats"] == 2


def test_check_rejects_malformed_payload(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"benchmark": "bench_queries"}))
    check = subprocess.run(
        [sys.executable, str(BENCH), "--check", str(bad)],
        capture_output=True, text=True, env=_bench_env(), timeout=60)
    assert check.returncode == 1
    assert "SCHEMA:" in check.stderr


def test_check_rejects_parity_failure(tmp_path):
    good = tmp_path / "ok.json"
    run = subprocess.run(
        [sys.executable, str(BENCH), "--durations", "40", "--repeats", "1",
         "--kernel-duration", "40", "--kernel-repeats", "1",
         "--out", str(good)],
        capture_output=True, text=True, env=_bench_env(), timeout=300)
    assert run.returncode == 0, run.stderr
    payload = json.loads(good.read_text())
    payload["parity"] = False
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(payload))
    check = subprocess.run(
        [sys.executable, str(BENCH), "--check", str(bad)],
        capture_output=True, text=True, env=_bench_env(), timeout=60)
    assert check.returncode == 1
    assert "parity" in check.stderr
