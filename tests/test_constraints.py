"""Tests for integrity-constraint classes and the indexed ConstraintSet."""

import pytest

from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.errors import ConstraintError


class TestConstraintValidation:
    def test_self_tt_rejected(self):
        with pytest.raises(ConstraintError):
            TravelingTime("A", "A", 3)

    def test_vacuous_tt_rejected(self):
        with pytest.raises(ConstraintError):
            TravelingTime("A", "B", 1)
        with pytest.raises(ConstraintError):
            TravelingTime("A", "B", 0)

    def test_vacuous_latency_rejected(self):
        with pytest.raises(ConstraintError):
            Latency("A", 1)
        with pytest.raises(ConstraintError):
            Latency("A", 0)

    def test_self_du_allowed(self):
        # unreachable(l, l) legitimately forbids two consecutive steps at l.
        c = Unreachable("A", "A")
        assert c.loc_a == c.loc_b == "A"

    def test_str_forms(self):
        assert str(Unreachable("A", "B")) == "unreachable(A, B)"
        assert str(TravelingTime("A", "B", 3)) == "travelingTime(A, B, 3)"
        assert str(Latency("A", 2)) == "latency(A, 2)"


class TestConstraintSet:
    def test_rejects_non_constraints(self):
        with pytest.raises(ConstraintError):
            ConstraintSet(["not a constraint"])

    def test_container_protocol(self):
        items = [Unreachable("A", "B"), Latency("C", 2)]
        cs = ConstraintSet(items)
        assert len(cs) == 2
        assert list(cs) == items

    def test_forbids_step_is_directed(self):
        cs = ConstraintSet([Unreachable("A", "B")])
        assert cs.forbids_step("A", "B")
        assert not cs.forbids_step("B", "A")

    def test_latency_lookup(self):
        cs = ConstraintSet([Latency("A", 3)])
        assert cs.latency_of("A") == 3
        assert cs.latency_of("B") is None

    def test_duplicate_latency_keeps_max(self):
        cs = ConstraintSet([Latency("A", 3), Latency("A", 5), Latency("A", 2)])
        assert cs.latency_of("A") == 5

    def test_traveling_time_lookup(self):
        cs = ConstraintSet([TravelingTime("A", "B", 4)])
        assert cs.traveling_time("A", "B") == 4
        assert cs.traveling_time("B", "A") is None

    def test_duplicate_tt_keeps_max(self):
        cs = ConstraintSet([TravelingTime("A", "B", 4),
                            TravelingTime("A", "B", 7)])
        assert cs.traveling_time("A", "B") == 7

    def test_traveling_times_into(self):
        cs = ConstraintSet([TravelingTime("A", "C", 4),
                            TravelingTime("B", "C", 2),
                            TravelingTime("A", "B", 3)])
        into_c = dict(cs.traveling_times_into("C"))
        assert into_c == {"A": 4, "B": 2}
        assert cs.traveling_times_into("Z") == ()

    def test_max_traveling_time(self):
        cs = ConstraintSet([TravelingTime("A", "B", 3),
                            TravelingTime("A", "C", 7),
                            TravelingTime("B", "C", 2)])
        assert cs.max_traveling_time("A") == 7
        assert cs.max_traveling_time("B") == 2
        assert cs.max_traveling_time("C") == 0

    def test_tt_sources(self):
        cs = ConstraintSet([TravelingTime("A", "B", 3)])
        assert cs.tt_sources == frozenset({"A"})

    def test_union(self):
        a = ConstraintSet([Unreachable("A", "B")])
        b = ConstraintSet([Latency("C", 2)])
        merged = a | b
        assert len(merged) == 2
        assert merged.forbids_step("A", "B")
        assert merged.latency_of("C") == 2

    def test_union_deduplicates_shared_members(self):
        shared = Unreachable("A", "B")
        a = ConstraintSet([shared, Latency("C", 2)])
        b = ConstraintSet([shared, TravelingTime("A", "C", 3)])
        merged = a | b
        assert len(merged) == 3
        assert len(a | a) == len(a)

    def test_union_preserves_first_seen_order(self):
        a = ConstraintSet([Unreachable("A", "B"), Latency("C", 2)])
        b = ConstraintSet([Latency("C", 2), Unreachable("B", "A")])
        assert list(a | b) == [Unreachable("A", "B"), Latency("C", 2),
                               Unreachable("B", "A")]

    def test_contains(self):
        cs = ConstraintSet([Unreachable("A", "B"), Latency("C", 2)])
        assert Unreachable("A", "B") in cs
        assert Latency("C", 2) in cs
        assert Unreachable("B", "A") not in cs
        assert "not a constraint" not in cs

    def test_equality_ignores_statement_order(self):
        a = ConstraintSet([Unreachable("A", "B"), Latency("C", 2)])
        b = ConstraintSet([Latency("C", 2), Unreachable("A", "B")])
        assert a == b
        assert hash(a) == hash(b)
        assert a != ConstraintSet([Unreachable("A", "B")])

    def test_equality_against_foreign_types(self):
        cs = ConstraintSet([Unreachable("A", "B")])
        assert cs != {Unreachable("A", "B")}
        assert cs != "unreachable(A, B)"

    def test_only_filters_by_kind(self, simple_constraints):
        du_only = simple_constraints.only(Unreachable)
        assert len(du_only) == 2
        assert du_only.latency_of("B") is None
        assert du_only.traveling_time("A", "D") is None
        du_lt = simple_constraints.only(Unreachable, Latency)
        assert du_lt.latency_of("B") == 2
        assert du_lt.traveling_time("A", "D") is None

    def test_bounds_copies_are_detached(self):
        cs = ConstraintSet([Latency("A", 2), TravelingTime("A", "B", 3)])
        lt = cs.latency_bounds
        lt["A"] = 99
        assert cs.latency_of("A") == 2
        tt = cs.traveling_time_bounds
        tt[("A", "B")] = 99
        assert cs.traveling_time("A", "B") == 3

    def test_empty_set(self):
        cs = ConstraintSet()
        assert len(cs) == 0
        assert not cs.forbids_step("A", "B")
        assert cs.latency_of("A") is None
        assert cs.max_traveling_time("A") == 0
