"""Tests for trajectory sampling (ancestral over ct-graphs and rejection)."""

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.core.algorithm import build_ct_graph
from repro.core.constraints import ConstraintSet, Latency, Unreachable
from repro.core.lsequence import LSequence
from repro.core.naive import NaiveConditioner
from repro.core.sampling import TrajectorySampler, rejection_sample
from repro.core.validity import is_valid_trajectory


@pytest.fixture
def constrained_case():
    ls = LSequence([{"A": 0.5, "B": 0.5},
                    {"B": 0.5, "C": 0.5},
                    {"C": 0.5, "D": 0.5}])
    cs = ConstraintSet([Unreachable("A", "C"), Unreachable("B", "D")])
    return ls, cs


class TestTrajectorySampler:
    def test_samples_have_graph_length(self, constrained_case, rng):
        ls, cs = constrained_case
        graph = build_ct_graph(ls, cs)
        sampler = TrajectorySampler(graph, rng)
        assert all(len(t) == ls.duration for t in sampler.sample_many(20))

    def test_samples_are_always_valid(self, constrained_case, rng):
        ls, cs = constrained_case
        graph = build_ct_graph(ls, cs)
        sampler = TrajectorySampler(graph, rng)
        for trajectory in sampler.sample_many(100):
            assert is_valid_trajectory(trajectory, cs)
            assert ls.trajectory_prior(trajectory) > 0

    def test_empirical_frequencies_match_conditioned(self, constrained_case):
        ls, cs = constrained_case
        graph = build_ct_graph(ls, cs)
        expected = NaiveConditioner(ls, cs).conditioned_distribution()
        sampler = TrajectorySampler(graph, np.random.default_rng(7))
        counts = {}
        n = 4000
        for trajectory in sampler.sample_many(n):
            counts[trajectory] = counts.get(trajectory, 0) + 1
        for trajectory, probability in expected.items():
            frequency = counts.get(trajectory, 0) / n
            assert frequency == pytest.approx(probability, abs=0.03)

    def test_deterministic_given_rng(self, constrained_case):
        ls, cs = constrained_case
        graph = build_ct_graph(ls, cs)
        a = list(TrajectorySampler(graph, np.random.default_rng(1)).sample_many(10))
        b = list(TrajectorySampler(graph, np.random.default_rng(1)).sample_many(10))
        assert a == b


class TestRejectionSampling:
    def test_accepted_samples_are_valid(self, constrained_case, rng):
        ls, cs = constrained_case
        accepted, attempts = rejection_sample(ls, cs, 50, rng)
        assert len(accepted) == 50
        assert attempts >= 50
        assert all(is_valid_trajectory(t, cs) for t in accepted)

    def test_max_attempts_bounds_work(self, rng):
        ls = LSequence([{"A": 0.99, "B": 0.01}, {"C": 1.0}])
        cs = ConstraintSet([Unreachable("A", "C")])
        accepted, attempts = rejection_sample(ls, cs, 100, rng,
                                              max_attempts=200)
        assert attempts == 200 or len(accepted) == 100
        assert attempts <= 200

    def test_unconstrained_acceptance_is_total(self, rng):
        ls = LSequence([{"A": 0.5, "B": 0.5}] * 3)
        accepted, attempts = rejection_sample(ls, ConstraintSet(), 20, rng)
        assert len(accepted) == 20
        assert attempts == 20

    def test_ct_graph_sampling_beats_rejection_on_tight_constraints(self):
        # A needle-in-a-haystack prior: rejection wastes many draws, the
        # ct-graph sampler never rejects (the paper's Section 7 argument).
        ls = LSequence([{"A": 0.05, "B": 0.95}, {"C": 1.0}])
        cs = ConstraintSet([Unreachable("B", "C")])
        graph = build_ct_graph(ls, cs)
        sampler = TrajectorySampler(graph, np.random.default_rng(3))
        assert all(t == ("A", "C") for t in sampler.sample_many(10))
        _, attempts = rejection_sample(ls, cs, 10,
                                       np.random.default_rng(3))
        assert attempts > 10  # rejection needed extra draws
