"""The binary graph store: ``.ctg`` round-trips, mmap parity, the cache.

Four layers are pinned here:

* the codec — build → ``save_ctg`` → ``load_ctg`` reproduces the exact
  :class:`FlatCTGraph` (hypothesis, both engines x both backends, mmap
  and bytes backings), and every structural corruption raises a typed
  :class:`StoreError` rather than an ``AttributeError``/``struct.error``;
* the engine sink — ``CleaningOptions(output=...)`` writes the arrays
  straight to disk and the served view answers every ``QuerySession``
  bundle identically to the in-memory graph;
* the cache — :class:`GraphStore` keys by problem content (sensitive to
  candidates, constraints, policy and backend; stable across runs), and
  ``clean_many(..., store=...)`` ships only paths over the worker pipe;
* the advisor's ``.ctg`` size prediction, pinned within 2x of measured.
"""

import dataclasses
import json
import multiprocessing
import os
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.algorithm import CleaningOptions, build_ct_graph
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.flatgraph import FlatCTGraph
from repro.core.lsequence import LSequence
from repro.errors import (
    GraphExportError,
    InconsistentReadingsError,
    ReadingSequenceError,
    StoreChecksumError,
    StoreError,
    StoreFormatError,
)
from repro.queries.session import QuerySession
from repro.store import (
    CTG_MAGIC,
    GraphStore,
    MappedCTGraph,
    content_key,
    load_ctg,
    save_ctg,
    write_ctg,
)

try:
    import numpy  # noqa: F401 - availability probe
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the no-numpy CI leg
    HAVE_NUMPY = False

LOCATIONS = ("A", "B", "C", "D")
locations = st.sampled_from(LOCATIONS)

ENGINES = ("reference", "compact")
BACKENDS = ("python", "numpy") if HAVE_NUMPY else ("python",)


@st.composite
def lsequences(draw, max_duration=8):
    duration = draw(st.integers(min_value=1, max_value=max_duration))
    rows = []
    for _ in range(duration):
        support = draw(st.lists(locations, min_size=1, max_size=3,
                                unique=True))
        weights = [draw(st.floats(min_value=0.05, max_value=1.0))
                   for _ in support]
        total = sum(weights)
        rows.append({loc: w / total for loc, w in zip(support, weights)})
    return LSequence(rows)


@st.composite
def constraint_sets(draw):
    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        kind = draw(st.sampled_from(["du", "tt", "lt"]))
        if kind == "du":
            constraints.append(Unreachable(draw(locations), draw(locations)))
        elif kind == "tt":
            a = draw(locations)
            b = draw(locations.filter(lambda x: x != a))
            constraints.append(TravelingTime(
                a, b, draw(st.integers(min_value=2, max_value=4))))
        else:
            constraints.append(Latency(
                draw(locations), draw(st.integers(min_value=2, max_value=4))))
    return ConstraintSet(constraints)


def small_instance():
    lsequence = LSequence([{"A": 0.6, "B": 0.4}, {"A": 0.5, "C": 0.5},
                           {"B": 0.7, "C": 0.3}])
    constraints = ConstraintSet([Unreachable("A", "C")])
    return lsequence, constraints


def query_bundle(graph, backend="python"):
    """Every QuerySession answer family, as one comparable structure."""
    session = QuerySession(graph, backend=backend)
    return {
        "marginals": [session.location_marginal(tau)
                      for tau in range(graph.duration)],
        "entropy": session.entropy_profile(),
        "visits": session.expected_visit_counts(),
        "visit_p": {loc: session.visit_probability(loc)
                    for loc in LOCATIONS},
        "span": session.span_probability("A", 0, graph.duration - 1),
        "dwell": session.time_at_location_distribution("B"),
        "first": session.first_visit_distribution("B"),
        "best": session.most_likely_trajectory(),
        "top2": session.top_k_trajectories(2),
        "match": session.match_probability("? B ?")
        if graph.duration >= 2 else None,
    }


# ----------------------------------------------------------------------
# codec round-trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(lsequences(), constraint_sets(),
           st.sampled_from(ENGINES), st.sampled_from(BACKENDS))
    def test_save_load_reproduces_flat_graph(self, tmp_path_factory,
                                             lsequence, constraints,
                                             engine, backend):
        options = CleaningOptions(engine=engine, backend=backend,
                                  materialize="flat")
        try:
            flat = build_ct_graph(lsequence, constraints, options)
        except InconsistentReadingsError:
            return
        path = tmp_path_factory.mktemp("ctg") / "graph.ctg"
        save_ctg(flat, path)
        for mmap in (True, False):
            with load_ctg(path, mmap=mmap, verify=True) as view:
                assert view.materialize() == flat
                assert view.num_nodes == flat.num_nodes
                assert view.num_edges == flat.num_edges
                assert view.stats == flat.stats

    @settings(max_examples=40, deadline=None)
    @given(lsequences(), constraint_sets(),
           st.sampled_from(ENGINES), st.sampled_from(BACKENDS))
    def test_mmap_sessions_answer_identically(self, tmp_path_factory,
                                              lsequence, constraints,
                                              engine, backend):
        options = CleaningOptions(engine=engine, backend=backend,
                                  materialize="flat")
        try:
            flat = build_ct_graph(lsequence, constraints, options)
        except InconsistentReadingsError:
            return
        path = tmp_path_factory.mktemp("ctg") / "graph.ctg"
        save_ctg(flat, path)
        with load_ctg(path) as view:
            assert query_bundle(view, backend) == query_bundle(flat, backend)

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_engine_writes_ctg_directly(self, tmp_path, engine, backend):
        lsequence, constraints = small_instance()
        flat = build_ct_graph(lsequence, constraints,
                              CleaningOptions(engine=engine, backend=backend,
                                              materialize="flat"))
        path = tmp_path / "direct.ctg"
        view = build_ct_graph(lsequence, constraints,
                              CleaningOptions(engine=engine, backend=backend,
                                              output=str(path)))
        assert isinstance(view, MappedCTGraph)
        assert view.materialize() == flat
        assert view.trajectory_probability(("B", "A", "B")) == \
            pytest.approx(flat_probability_of(flat, ("B", "A", "B")))
        view.close()
        # The direct write and the save_ctg path produce identical bytes
        # (modulo the stats timings, which is why stats travel too).
        other = tmp_path / "saved.ctg"
        save_ctg(flat, other)
        assert abs(path.stat().st_size - other.stat().st_size) <= 256

    def test_ctgraph_save_ctg_converts(self, tmp_path):
        lsequence, constraints = small_instance()
        node = build_ct_graph(lsequence, constraints,
                              CleaningOptions(materialize="nodes"))
        path = tmp_path / "node.ctg"
        save_ctg(node, path)
        with load_ctg(path) as view:
            assert view.materialize() == node.to_flat()

    def test_estimate_size_is_the_file_size(self, tmp_path):
        lsequence, constraints = small_instance()
        path = tmp_path / "g.ctg"
        view = build_ct_graph(lsequence, constraints,
                              CleaningOptions(output=str(path)))
        assert view.estimate_size_bytes() == os.path.getsize(path)
        view.close()


def flat_probability_of(flat, trajectory):
    """Oracle: trajectory probability through the node graph."""
    from repro.queries.trajectory import TrajectoryQuery

    pattern = " ".join(trajectory)
    return TrajectoryQuery(pattern).probability(flat)


# ----------------------------------------------------------------------
# corruption and option validation
# ----------------------------------------------------------------------
class TestCorruption:
    @pytest.fixture
    def good(self, tmp_path):
        lsequence, constraints = small_instance()
        flat = build_ct_graph(lsequence, constraints,
                              CleaningOptions(materialize="flat"))
        path = tmp_path / "good.ctg"
        save_ctg(flat, path)
        return path

    def test_truncated_header(self, good):
        data = good.read_bytes()
        good.write_bytes(data[:32])
        with pytest.raises(StoreFormatError, match="truncat|short"):
            load_ctg(good)

    def test_truncated_payload(self, good):
        data = good.read_bytes()
        good.write_bytes(data[:-16])
        with pytest.raises(StoreFormatError):
            load_ctg(good)

    def test_bad_magic(self, good):
        data = bytearray(good.read_bytes())
        data[:8] = b"NOTACTG\x00"
        good.write_bytes(bytes(data))
        with pytest.raises(StoreFormatError, match="magic"):
            load_ctg(good)

    def test_unsupported_version(self, good):
        data = bytearray(good.read_bytes())
        data[8:12] = (99).to_bytes(4, "little")
        good.write_bytes(bytes(data))
        with pytest.raises(StoreFormatError, match="version"):
            load_ctg(good)

    def test_checksum_mismatch_only_on_verify(self, good):
        data = bytearray(good.read_bytes())
        # Flip one character of an interned location name: the file stays
        # structurally intact, so the default (unverified) load still
        # serves it, but the payload CRC no longer matches.
        data[data.index(ord("A"), 64)] ^= 0x01
        good.write_bytes(bytes(data))
        load_ctg(good).close()
        with pytest.raises(StoreChecksumError):
            load_ctg(good, verify=True)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.ctg"
        path.write_bytes(b"")
        with pytest.raises(StoreFormatError):
            load_ctg(path)

    def test_magic_constant_spelled(self, good):
        assert good.read_bytes()[:8] == CTG_MAGIC

    def test_store_materialize_requires_output(self):
        with pytest.raises(ReadingSequenceError, match="output"):
            CleaningOptions(materialize="store")

    def test_output_rejects_node_materialize(self):
        with pytest.raises(ReadingSequenceError, match="store"):
            CleaningOptions(materialize="nodes", output="x.ctg")


# ----------------------------------------------------------------------
# the content-addressed store
# ----------------------------------------------------------------------
class TestGraphStore:
    def test_put_load_contains(self, tmp_path):
        lsequence, constraints = small_instance()
        flat = build_ct_graph(lsequence, constraints,
                              CleaningOptions(materialize="flat"))
        store = GraphStore(tmp_path / "store")
        key = store.key_for(lsequence, constraints)
        store.put(flat, key)
        assert key in store
        assert len(store) == 1 and store.keys() == [key]
        with store.load(key) as view:
            assert view.materialize() == flat
        with pytest.raises(StoreError, match="no graph stored"):
            store.load("0" * 64)

    def test_clean_caches(self, tmp_path):
        lsequence, constraints = small_instance()
        store = GraphStore(tmp_path / "store")
        first = store.clean(lsequence, constraints)
        second = store.clean(lsequence, constraints)
        assert (store.hits, store.misses) == (1, 1)
        assert first.materialize() == second.materialize()
        first.close()
        second.close()
        assert not list((tmp_path / "store").glob(".*")), \
            "staging temp files must not survive a commit"

    def test_key_sensitivity(self):
        lsequence, constraints = small_instance()
        base = content_key(lsequence, constraints)
        assert base == content_key(lsequence, constraints), "not stable"
        assert base != content_key(lsequence, ConstraintSet())
        assert base != content_key(
            lsequence, constraints, CleaningOptions(backend="numpy")) \
            or not HAVE_NUMPY
        assert base != content_key(
            lsequence, constraints,
            CleaningOptions(truncated_stay_policy="strict"))
        assert base != content_key(lsequence, constraints, extra="v2")
        other = LSequence([{"A": 0.6, "B": 0.4}])
        assert base != content_key(other, constraints)
        # Engine choice is excluded: both engines are bit-exact.
        assert base == content_key(
            lsequence, constraints, CleaningOptions(engine="compact"))


# ----------------------------------------------------------------------
# batch store mode: nothing big crosses the pipe
# ----------------------------------------------------------------------
def _poison(self):
    raise AssertionError("a graph crossed the worker pipe")


class TestBatchStoreMode:
    def _sequences(self):
        rows = [{"A": 0.6, "B": 0.4}, {"A": 0.5, "C": 0.5},
                {"B": 0.7, "C": 0.3}, {"A": 0.5, "B": 0.5}]
        return [LSequence(rows[i:] + rows[:i]) for i in range(3)]

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="needs the fork start method for the reduce monkeypatch")
    def test_no_graph_is_pickled(self, tmp_path, monkeypatch):
        from repro.core.ctgraph import CTGraph
        from repro.runtime.batch import clean_many

        monkeypatch.setattr(FlatCTGraph, "__reduce__", _poison,
                            raising=False)
        monkeypatch.setattr(MappedCTGraph, "__reduce__", _poison,
                            raising=False)
        monkeypatch.setattr(CTGraph, "__reduce__", _poison, raising=False)
        store = GraphStore(tmp_path / "store")
        constraints = ConstraintSet([Unreachable("A", "C")])
        result = clean_many(self._sequences(), constraints, workers=2,
                            store=store, start_method="fork")
        assert all(o.ok for o in result)
        assert all(o.ctg_path is not None for o in result)
        assert all(isinstance(o.graph, MappedCTGraph) for o in result)
        again = clean_many(self._sequences(), constraints, workers=2,
                           store=store, start_method="fork")
        assert all(o.cache_hit for o in again)
        for a, b in zip(result, again):
            assert a.graph.materialize() == b.graph.materialize()

    def test_in_process_store_mode(self, tmp_path):
        from repro.runtime.batch import clean_many

        store = GraphStore(tmp_path / "store")
        constraints = ConstraintSet([Unreachable("A", "C")])
        result = clean_many(self._sequences(), constraints, workers=1,
                            store=store)
        assert all(o.ok and not o.cache_hit for o in result)
        assert store.misses == len(result)
        plain = clean_many(self._sequences(), constraints, workers=1,
                           options=CleaningOptions(materialize="flat"))
        for stored, direct in zip(result, plain):
            assert stored.graph.materialize() == direct.graph

    def test_query_plan_rides_the_store(self, tmp_path):
        from repro.runtime.batch import clean_many
        from repro.runtime.plan import QueryPlan

        store = GraphStore(tmp_path / "store")
        constraints = ConstraintSet([Unreachable("A", "C")])
        plan = QueryPlan("STAY 1")
        stored = clean_many(self._sequences(), constraints, workers=1,
                            store=store, query_plan=plan)
        direct = clean_many(self._sequences(), constraints, workers=1,
                            query_plan=plan)
        for a, b in zip(stored, direct):
            assert a.graph is None and a.queries == b.queries

    def test_store_configuration_errors(self, tmp_path):
        from repro.errors import BatchConfigurationError
        from repro.runtime.batch import clean_many

        store = GraphStore(tmp_path / "store")
        constraints = ConstraintSet([])
        sequences = self._sequences()
        with pytest.raises(BatchConfigurationError, match="GraphStore"):
            clean_many(sequences, constraints, store="nope")
        with pytest.raises(BatchConfigurationError, match="nodes"):
            clean_many(sequences, constraints, store=store,
                       options=CleaningOptions(materialize="nodes"))
        with pytest.raises(BatchConfigurationError, match="output"):
            clean_many(sequences, constraints, store=store,
                       options=CleaningOptions(output="x.ctg"))

    def test_store_is_small_to_pickle(self, tmp_path):
        store = GraphStore(tmp_path / "store")
        assert len(pickle.dumps(store)) < 1024


# ----------------------------------------------------------------------
# the no-numpy leg
# ----------------------------------------------------------------------
class TestPurePythonLeg:
    def test_round_trip_without_numpy(self, tmp_path, monkeypatch):
        lsequence, constraints = small_instance()
        flat = build_ct_graph(lsequence, constraints,
                              CleaningOptions(materialize="flat"))
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        path = tmp_path / "g.ctg"
        save_ctg(flat, path)
        for mmap in (True, False):
            with load_ctg(path, mmap=mmap, verify=True) as view:
                assert view.backing == ("mmap" if mmap else "bytes")
                assert view.materialize() == flat
                assert query_bundle(view) == query_bundle(flat)

    def test_direct_write_without_numpy(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        lsequence, constraints = small_instance()
        flat = build_ct_graph(lsequence, constraints,
                              CleaningOptions(materialize="flat"))
        path = tmp_path / "g.ctg"
        view = build_ct_graph(lsequence, constraints,
                              CleaningOptions(output=str(path)))
        assert view.materialize() == flat
        view.close()


# ----------------------------------------------------------------------
# size predictions (C006 companion)
# ----------------------------------------------------------------------
class TestSizeEstimates:
    def _measured_flat_bytes(self, flat):
        """Deep measurement: the pickled size is a stable lower-ish proxy
        for the resident tuple structure."""
        import sys

        total = sys.getsizeof(flat)
        for row in (flat.locations + flat.stays + flat.edge_offsets
                    + flat.edge_children + flat.edge_probabilities
                    + (flat.source_probabilities,)):
            total += sys.getsizeof(row)
            total += sum(sys.getsizeof(x) for x in row)
        return total

    def test_flat_estimate_within_2x_of_measured(self):
        rows = [{"A": 0.4, "B": 0.3, "C": 0.3} for _ in range(24)]
        flat = build_ct_graph(LSequence(rows), ConstraintSet(),
                              CleaningOptions(materialize="flat"))
        estimate = flat.estimate_size_bytes()
        measured = self._measured_flat_bytes(flat)
        assert measured / 2 <= estimate <= measured * 2, \
            (estimate, measured)

    def test_ctg_estimate_within_2x_of_file(self, tmp_path):
        from repro.analysis.envelope import estimate_ctg_bytes

        rows = [{"A": 0.4, "B": 0.3, "C": 0.3} for _ in range(24)]
        flat = build_ct_graph(LSequence(rows), ConstraintSet(),
                              CleaningOptions(materialize="flat"))
        path = tmp_path / "g.ctg"
        save_ctg(flat, path)
        node_counts = [flat.level_size(tau) for tau in range(flat.duration)]
        edge_counts = [len(flat.edge_children[tau])
                       for tau in range(flat.duration - 1)]
        estimate = estimate_ctg_bytes(node_counts, edge_counts)
        measured = os.path.getsize(path)
        assert measured / 2 <= estimate <= measured * 2, \
            (estimate, measured)

    def test_analyze_reports_ctg_bytes(self):
        from repro.analysis import analyze

        lsequence, constraints = small_instance()
        report = analyze(constraints, readings=lsequence)
        c006 = [d for d in report if d.code == "C006"]
        assert c006 and c006[0].data["ctg_bytes"] > 0
        assert ".ctg" in c006[0].message


# ----------------------------------------------------------------------
# the JSON exporter satellite
# ----------------------------------------------------------------------
class TestFlatExport:
    def test_flat_and_mapped_dicts_agree(self, tmp_path):
        from repro.io import flatgraph_to_dict, save_ctgraph

        lsequence, constraints = small_instance()
        flat = build_ct_graph(lsequence, constraints,
                              CleaningOptions(materialize="flat"))
        path = tmp_path / "g.ctg"
        view = build_ct_graph(lsequence, constraints,
                              CleaningOptions(output=str(path)))
        payload = flatgraph_to_dict(flat)
        assert payload["format"] == "rfid-ctg/flatgraph@1"
        assert flatgraph_to_dict(view) == payload
        out = tmp_path / "g.json"
        save_ctgraph(view, out)
        assert json.loads(out.read_text()) == payload
        view.close()

    def test_wrong_form_raises_typed_error(self):
        from repro.io import ctgraph_to_dict, flatgraph_to_dict, save_ctgraph

        lsequence, constraints = small_instance()
        node = build_ct_graph(lsequence, constraints,
                              CleaningOptions(materialize="nodes"))
        flat = node.to_flat()
        with pytest.raises(GraphExportError):
            ctgraph_to_dict(flat)
        with pytest.raises(GraphExportError):
            flatgraph_to_dict(node)
        with pytest.raises(GraphExportError):
            save_ctgraph(object(), "nowhere.json")
