"""Tests for the full-evaluation suite runner and its report."""

import pytest

from repro.experiments.suite import (
    SuiteResult,
    render_report,
    run_full_suite,
    write_report,
)


@pytest.fixture(scope="module")
def suite_result(tiny_dataset):
    return run_full_suite([tiny_dataset], scale="test",
                          stay_queries=5, trajectory_queries=4)


class TestRunFullSuite:
    def test_covers_every_stage(self, suite_result):
        assert suite_result.cleaning
        assert suite_result.query_times
        assert suite_result.stay_accuracy
        assert suite_result.trajectory_accuracy
        assert suite_result.accuracy_by_length

    def test_progress_callback(self, tiny_dataset):
        messages = []
        run_full_suite([tiny_dataset], stay_queries=2, trajectory_queries=2,
                       progress=messages.append)
        assert any("Fig. 8a" in m for m in messages)
        assert any("Fig. 9c" in m for m in messages)

    def test_empty_dataset_list(self):
        result = run_full_suite([])
        assert result.cleaning == []
        assert result.accuracy_by_length == []


class TestRenderReport:
    def test_report_contains_all_sections(self, suite_result):
        report = render_report(suite_result)
        for heading in ("Cleaning cost", "Query time", "Stay-query accuracy",
                        "Trajectory-query accuracy", "query length",
                        "Shape checklist"):
            assert heading in report

    def test_checklist_passes_on_tiny_dataset(self, suite_result):
        report = render_report(suite_result)
        checklist = report[report.index("Shape checklist"):]
        assert "FAIL" not in checklist
        assert checklist.count("PASS") >= 3

    def test_empty_result_renders(self):
        report = render_report(SuiteResult(scale="empty"))
        assert "Shape checklist" in report
        assert "n/a" in report

    def test_write_report(self, suite_result, tmp_path):
        path = tmp_path / "report.md"
        write_report(suite_result, path)
        assert path.read_text().startswith("# rfid-ctg evaluation report")
