"""Tests for the SVG renderers (structure, not pixels)."""

import xml.etree.ElementTree as ET

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.rfid.readers import place_default_readers
from repro.simulation.trajectories import TrajectoryGenerator
from repro.svg import floor_to_svg, marginal_to_svg, trajectory_to_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestFloorToSvg:
    def test_is_well_formed_xml(self, corridor4):
        root = parse(floor_to_svg(corridor4, 0))
        assert root.tag == f"{SVG_NS}svg"

    def test_one_rect_per_location(self, corridor4):
        root = parse(floor_to_svg(corridor4, 0))
        rects = root.findall(f"{SVG_NS}rect")
        # background + one per location
        assert len(rects) == 1 + len(corridor4.locations_on_floor(0))

    def test_labels_present(self, corridor4):
        svg = floor_to_svg(corridor4, 0)
        for location in corridor4.location_names:
            assert location in svg

    def test_readers_drawn_with_range_rings(self, corridor4):
        readers = place_default_readers(corridor4)
        root = parse(floor_to_svg(corridor4, 0, readers=readers))
        circles = root.findall(f"{SVG_NS}circle")
        n_doors = len(corridor4.doors)
        n_readers = len(readers)
        # door dots + reader dots + reader range rings
        assert len(circles) == n_doors + 2 * n_readers

    def test_multi_floor_filters(self, two_floors):
        svg = floor_to_svg(two_floors, 1)
        assert "F1_R1" in svg
        assert "F0_R1" not in svg


class TestMarginalToSvg:
    def test_heatmap_opacity_scales_with_probability(self, corridor4):
        svg = marginal_to_svg(corridor4, 0,
                              {"room1": 0.9, "room2": 0.1})
        root = parse(svg)
        opacities = sorted(
            float(r.get("fill-opacity")) for r in root.findall(f"{SVG_NS}rect")
            if r.get("fill") == "#2e6f9e")
        assert len(opacities) == 2
        assert opacities[0] < opacities[1]

    def test_off_floor_mass_annotation(self, two_floors):
        svg = marginal_to_svg(two_floors, 0, {"F1_R1": 1.0})
        assert "off-floor mass: 1.000" in svg

    def test_empty_marginal_renders(self, corridor4):
        root = parse(marginal_to_svg(corridor4, 0, {}))
        assert root.tag == f"{SVG_NS}svg"


class TestTrajectoryToSvg:
    def test_path_drawn_for_on_floor_samples(self, corridor4, rng):
        truth = TrajectoryGenerator(corridor4, rng=rng).generate(120)
        svg = trajectory_to_svg(corridor4, 0, truth.floors, truth.points)
        root = parse(svg)
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) >= 1
        points = polylines[0].get("points").split()
        assert len(points) >= 2

    def test_floor_changes_break_the_polyline(self, two_floors, rng):
        truth = TrajectoryGenerator(two_floors, rng=rng).generate(2000)
        floors_used = set(truth.floors)
        if len(floors_used) < 2:
            pytest.skip("trajectory stayed on one floor")
        svg0 = trajectory_to_svg(two_floors, 0, truth.floors, truth.points)
        root = parse(svg0)
        # Markers for start/end exist and all polylines parse.
        assert root.findall(f"{SVG_NS}polyline")

    def test_no_on_floor_samples(self, two_floors):
        from repro.geometry import Point
        svg = trajectory_to_svg(two_floors, 1, [0, 0], [Point(1, 1),
                                                        Point(2, 2)])
        root = parse(svg)
        assert not root.findall(f"{SVG_NS}polyline")
