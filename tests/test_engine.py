"""Unit tests for the compact engine's building blocks: relative-age
departure interning, the keep mask, engine selection, and the transition
cache shared through :class:`SharedCleaningPlan`."""

import pytest

from repro.core.algorithm import (
    AUTO_COMPACT_MIN_DURATION,
    CleaningOptions,
    _resolve_engine,
    build_ct_graph,
)
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.engine import EngineCache, build_ct_graph_compact
from repro.core.lsequence import LSequence
from repro.core.nodes import (
    DepartureFilter,
    absolute_departures,
    departure_keep_mask,
    relative_departures,
)
from repro.errors import ReadingSequenceError, ZeroMassError
from repro.runtime.plan import SharedCleaningPlan

CONSTRAINTS = ConstraintSet([
    Unreachable("A", "C"), Unreachable("C", "A"),
    Latency("B", 3),
    TravelingTime("A", "D", 4), TravelingTime("D", "A", 4),
])

_PHASES = (
    {"A": 0.4, "B": 0.4, "C": 0.2},
    {"B": 0.6, "D": 0.4},
    {"B": 0.5, "C": 0.3, "D": 0.2},
    {"A": 0.5, "B": 0.5},
)


def _instance(duration):
    return LSequence([dict(_PHASES[tau % 4]) for tau in range(duration)])


class TestRelativeDepartures:
    def test_round_trip(self):
        departures = ((3, "A"), (5, "D"))
        relative = relative_departures(departures, 7)
        assert relative == ((4, "A"), (2, "D"))
        assert absolute_departures(relative, 7) == departures

    def test_sort_order_is_preserved_by_the_relative_form(self):
        # Absolute (t, l) ascending == relative (-age, name) ascending:
        # the interned form never has to re-sort what rule 6 sorted.
        departures = ((2, "B"), (2, "D"), (4, "A"))
        relative = relative_departures(departures, 6)
        assert sorted(relative, key=lambda e: (-e[0], e[1])) == list(relative)

    def test_empty(self):
        assert relative_departures((), 9) == ()
        assert absolute_departures((), 9) == ()


class TestDepartureKeepMask:
    def test_no_filter_is_mask_zero(self):
        assert departure_keep_mask(((1, "A"),), "B", 5, CONSTRAINTS,
                                   None) == 0

    def test_mask_matches_the_filter_keep_decision(self):
        lsequence = _instance(12)
        departure_filter = DepartureFilter(lsequence, CONSTRAINTS)
        for tau in range(1, 11):
            for age in (1, 2, 3):
                if age > tau:
                    continue
                relative = ((age, "A"),)
                mask = departure_keep_mask(relative, "B", tau, CONSTRAINTS,
                                           departure_filter)
                expected = departure_filter.keep(tau + 1, tau - age, "A")
                assert bool(mask & 1) == expected, (tau, age)

    def test_new_departure_bit(self):
        lsequence = _instance(12)
        departure_filter = DepartureFilter(lsequence, CONSTRAINTS)
        tau = 4
        # "A" is a TT source; leaving it at tau records (tau, "A") iff the
        # entry would survive to the arrival timestep.
        mask = departure_keep_mask((), "A", tau, CONSTRAINTS,
                                   departure_filter)
        expected = departure_filter.keep(tau + 1, tau, "A")
        assert bool(mask & 1) == expected
        # "B" is not a TT source: no departure is ever recorded for it.
        assert departure_keep_mask((), "B", tau, CONSTRAINTS,
                                   departure_filter) == 0


class TestEngineSelection:
    def test_resolve_explicit(self):
        assert _resolve_engine("reference", 10_000) == "reference"
        assert _resolve_engine("compact", 1) == "compact"

    def test_resolve_auto_by_duration(self):
        assert _resolve_engine(
            "auto", AUTO_COMPACT_MIN_DURATION - 1) == "reference"
        assert _resolve_engine(
            "auto", AUTO_COMPACT_MIN_DURATION) == "compact"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ReadingSequenceError):
            CleaningOptions(engine="turbo")

    def test_auto_gives_the_reference_answer(self):
        # Whatever auto picks, the distribution is the reference one
        # (flat-form equality; enumerating paths would be exponential at
        # the compact-engine durations).
        for duration in (6, AUTO_COMPACT_MIN_DURATION + 5):
            lsequence = _instance(duration)
            auto = build_ct_graph(lsequence, CONSTRAINTS,
                                  CleaningOptions(engine="auto"))
            reference = build_ct_graph(lsequence, CONSTRAINTS,
                                       CleaningOptions(engine="reference"))
            auto_state = auto.__getstate__()
            reference_state = reference.__getstate__()
            for key in ("levels", "edges", "sources"):
                assert auto_state[key] == reference_state[key], key


class TestEngineCache:
    def test_interning_is_stable(self):
        cache = EngineCache(CONSTRAINTS)
        a = cache.location_id("A")
        assert cache.location_id("A") == a
        sid = cache.state_id((a, None, ()))
        assert cache.state_id((a, None, ())) == sid
        assert cache.support_id((a,)) == cache.support_id((a,))
        # Support ids are order-sensitive on purpose: candidate order is
        # edge insertion order is float-summation order.
        b = cache.location_id("B")
        assert cache.support_id((a, b)) != cache.support_id((b, a))

    def test_transition_rows_accumulate(self):
        cache = EngineCache(CONSTRAINTS)
        assert cache.cached_transitions == 0
        build_ct_graph_compact(_instance(20), CONSTRAINTS,
                               CleaningOptions(engine="compact"),
                               plan=None)
        fresh = EngineCache(CONSTRAINTS)
        assert fresh.cached_transitions == 0

    def test_plan_shares_the_cache_across_objects(self):
        plan = SharedCleaningPlan(CONSTRAINTS)
        cache = plan.engine_cache()
        assert cache is plan.engine_cache(), "cache must be created once"
        assert cache.cached_transitions == 0
        build_ct_graph(_instance(60), CONSTRAINTS,
                       CleaningOptions(engine="compact"), plan=plan)
        warmed = cache.cached_transitions
        assert warmed > 0
        assert cache.interned_states > 0
        # A second object of a different duration reuses the rows.
        build_ct_graph(_instance(61), CONSTRAINTS,
                       CleaningOptions(engine="compact"), plan=plan)
        assert cache.cached_transitions >= warmed

    def test_foreign_plan_rejected(self):
        plan = SharedCleaningPlan(ConstraintSet([Unreachable("X", "Y")]))
        with pytest.raises(ReadingSequenceError):
            build_ct_graph_compact(_instance(8), CONSTRAINTS,
                                   CleaningOptions(engine="compact"),
                                   plan=plan)


class TestCompactEngineErrors:
    def test_zero_mass_at_source(self):
        constraints = ConstraintSet([Latency("A", 3)])
        poison = LSequence([{"A": 1.0}])
        options = CleaningOptions("strict", engine="compact")
        with pytest.raises(ZeroMassError):
            build_ct_graph_compact(poison, constraints, options)

    def test_zero_mass_mid_sequence(self):
        constraints = ConstraintSet([Unreachable("A", "C")])
        poison = LSequence([{"A": 1.0}, {"C": 1.0}])
        with pytest.raises(ZeroMassError):
            build_ct_graph_compact(poison, constraints,
                                   CleaningOptions(engine="compact"))


class TestTimingStats:
    def test_both_engines_fill_phase_timings(self):
        lsequence = _instance(30)
        for engine in ("reference", "compact"):
            graph = build_ct_graph(lsequence, CONSTRAINTS,
                                   CleaningOptions(engine=engine))
            assert graph.stats.forward_seconds > 0.0, engine
            assert graph.stats.backward_seconds > 0.0, engine

    def test_timings_do_not_break_stats_equality(self):
        lsequence = _instance(30)
        options = CleaningOptions(engine="compact")
        first = build_ct_graph(lsequence, CONSTRAINTS, options)
        second = build_ct_graph(lsequence, CONSTRAINTS, options)
        assert first.stats == second.stats
        assert first.stats.forward_seconds != 0.0
