"""Smoke test for benchmarks/bench_engine.py: the bench must run on a
tiny workload, assert engine bit-identity, and emit a well-formed
BENCH_engine.json (schema only — no performance assertion; speedup is
hardware)."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH = REPO_ROOT / "benchmarks" / "bench_engine.py"


def _bench_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    return env


def test_smoke_emits_well_formed_json(tmp_path):
    out = tmp_path / "BENCH_engine.json"
    run = subprocess.run(
        [sys.executable, str(BENCH), "--durations", "40", "80",
         "--repeats", "2", "--kernel-duration", "40",
         "--kernel-repeats", "1", "--out", str(out)],
        capture_output=True, text=True, env=_bench_env(), timeout=300)
    assert run.returncode == 0, run.stderr

    payload = json.loads(out.read_text())
    assert payload["benchmark"] == "bench_engine"
    assert payload["workload"]["durations"] == [40, 80]
    assert payload["identical_output"] is True
    assert payload["speedup"] > 0.0
    assert payload["warm_speedup"] > 0.0
    assert payload["backend"] == "auto"
    assert len(payload["results"]) == 2
    for entry in payload["results"]:
        assert entry["identical_output"] is True
        assert entry["reference_seconds"] > 0.0
        assert entry["compact_seconds"] > 0.0
        assert entry["compact_warm_seconds"] > 0.0
        assert entry["flat_seconds"] > 0.0
        assert entry["backend"] in ("python", "numpy")
        assert entry["forward_seconds"] > 0.0
        assert entry["backward_seconds"] > 0.0
    kernel = payload["kernel"]
    assert kernel["duration"] == 40
    assert kernel["python_sweep_seconds"] > 0.0
    assert kernel["python_build_seconds"] > 0.0
    if kernel["measured"]:
        # The hard gate: the numpy flat build is bit-identical.
        assert kernel["parity"] is True
        assert kernel["kernel_speedup"] > 0.0
        assert payload["kernel_speedup"] == kernel["kernel_speedup"]
    else:
        assert payload["kernel_speedup"] is None

    # The bench's own --check mode agrees.
    check = subprocess.run(
        [sys.executable, str(BENCH), "--check", str(out)],
        capture_output=True, text=True, env=_bench_env(), timeout=60)
    assert check.returncode == 0, check.stderr


def test_numpy_backend_smoke(tmp_path):
    # The CI kernel-parity step: a numpy-backed flat axis must still
    # report identical_output (flat == node-form .to_flat()).
    out = tmp_path / "BENCH_engine.json"
    run = subprocess.run(
        [sys.executable, str(BENCH), "--durations", "40", "--repeats", "1",
         "--backend", "numpy", "--kernel-duration", "40",
         "--kernel-repeats", "1", "--out", str(out)],
        capture_output=True, text=True, env=_bench_env(), timeout=300)
    assert run.returncode == 0, run.stderr
    payload = json.loads(out.read_text())
    assert payload["backend"] == "numpy"
    assert payload["identical_output"] is True


def test_smoke_flag_runs_ci_sized_workload(tmp_path):
    out = tmp_path / "BENCH_engine.json"
    run = subprocess.run(
        [sys.executable, str(BENCH), "--smoke", "--out", str(out)],
        capture_output=True, text=True, env=_bench_env(), timeout=300)
    assert run.returncode == 0, run.stderr
    payload = json.loads(out.read_text())
    assert payload["workload"]["durations"] == [60]
    assert payload["repeats"] == 2


def test_check_rejects_malformed_payload(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"benchmark": "bench_engine"}))
    check = subprocess.run(
        [sys.executable, str(BENCH), "--check", str(bad)],
        capture_output=True, text=True, env=_bench_env(), timeout=60)
    assert check.returncode == 1
    assert "SCHEMA:" in check.stderr
