"""Tests for the reading generator (Section 6.4, second module)."""

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.mapmodel.grid import Grid
from repro.rfid.calibration import exact_matrix
from repro.rfid.readers import place_default_readers
from repro.simulation.readings import ReadingGenerator
from repro.simulation.trajectories import TrajectoryGenerator


@pytest.fixture
def setup(one_floor):
    grid = Grid(one_floor, 0.5)
    readers = place_default_readers(one_floor)
    matrix = exact_matrix(readers, grid)
    return one_floor, grid, readers, matrix


class TestReadingGeneration:
    def test_one_reading_per_timestep(self, setup, rng):
        building, grid, readers, matrix = setup
        trajectory = TrajectoryGenerator(building, rng=rng).generate(120)
        readings = ReadingGenerator(matrix, rng).generate(trajectory)
        assert readings.duration == trajectory.duration
        assert [r.time for r in readings] == list(range(120))

    def test_only_known_readers_appear(self, setup, rng):
        building, grid, readers, matrix = setup
        trajectory = TrajectoryGenerator(building, rng=rng).generate(60)
        readings = ReadingGenerator(matrix, rng).generate(trajectory)
        names = set(readers.reader_names)
        for reading in readings:
            assert reading.readers <= names

    def test_detections_concentrate_near_the_object(self, setup):
        building, grid, readers, matrix = setup
        rng = np.random.default_rng(31)
        trajectory = TrajectoryGenerator(building, rng=rng).generate(400)
        readings = ReadingGenerator(matrix, rng).generate(trajectory)
        # Most readings should contain at least one reader of the object's
        # current (or an adjacent) location.
        neighbourly = 0
        nonempty = 0
        for tau, reading in enumerate(readings):
            if not reading.readers:
                continue
            nonempty += 1
            here = trajectory.locations[tau]
            nearby = {here, *building.neighbors(here)}
            if any(any(loc in reader for loc in nearby)
                   for reader in reading.readers):
                neighbourly += 1
        assert nonempty > 0
        assert neighbourly / nonempty > 0.95

    def test_deterministic_given_rng(self, setup):
        building, grid, readers, matrix = setup
        trajectory = TrajectoryGenerator(
            building, rng=np.random.default_rng(8)).generate(60)
        a = ReadingGenerator(matrix, np.random.default_rng(4)).generate(trajectory)
        b = ReadingGenerator(matrix, np.random.default_rng(4)).generate(trajectory)
        assert [r.readers for r in a] == [r.readers for r in b]

    def test_zero_coverage_matrix_gives_empty_readings(self, setup, rng):
        building, grid, readers, matrix = setup
        from repro.rfid.calibration import DetectionMatrix
        silent = DetectionMatrix(np.zeros_like(matrix.values), grid,
                                 matrix.reader_names)
        trajectory = TrajectoryGenerator(building, rng=rng).generate(30)
        readings = ReadingGenerator(silent, rng).generate(trajectory)
        assert all(reading.readers == frozenset() for reading in readings)

    def test_ghost_rate_validation(self, setup):
        _, _, _, matrix = setup
        from repro.errors import MapModelError
        with pytest.raises(MapModelError):
            ReadingGenerator(matrix, ghost_read_rate=1.0)
        with pytest.raises(MapModelError):
            ReadingGenerator(matrix, ghost_read_rate=-0.1)

    def test_ghost_reads_add_false_positives(self, setup):
        building, grid, readers, matrix = setup
        truth = TrajectoryGenerator(
            building, rng=np.random.default_rng(3)).generate(150)
        clean = ReadingGenerator(
            matrix, np.random.default_rng(9)).generate(truth)
        noisy = ReadingGenerator(
            matrix, np.random.default_rng(9),
            ghost_read_rate=0.05).generate(truth)
        clean_total = sum(len(r.readers) for r in clean)
        noisy_total = sum(len(r.readers) for r in noisy)
        assert noisy_total > clean_total
        # Ghosts include readers far from the object (zero true probability).
        far_fires = 0
        for tau, reading in enumerate(noisy):
            cell = grid.cell_at(truth.floors[tau], truth.points[tau])
            if cell is None:
                continue
            column = matrix.cell_column(cell.index)
            for name in reading.readers:
                index = matrix.reader_names.index(name)
                if column[index] == 0.0:
                    far_fires += 1
        assert far_fires > 0

    def test_false_negatives_occur(self, setup):
        # With per-second detection probabilities < 1, some timesteps lose
        # readers that would be in range — the ambiguity the paper models.
        building, grid, readers, matrix = setup
        rng = np.random.default_rng(77)
        trajectory = TrajectoryGenerator(building, rng=rng).generate(300)
        readings = ReadingGenerator(matrix, rng).generate(trajectory)
        sizes = {len(reading.readers) for reading in readings}
        assert len(sizes) > 1
