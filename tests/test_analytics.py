"""Tests for the analytics queries (MAP, top-k, entropy, visit stats)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.algorithm import build_ct_graph
from repro.core.constraints import ConstraintSet, Latency, Unreachable
from repro.core.lsequence import LSequence
from repro.core.naive import NaiveConditioner
from repro.errors import InconsistentReadingsError, QueryError
from repro.queries.analytics import (
    entropy_profile,
    entropy_profile_prior,
    expected_visit_counts,
    first_visit_distribution,
    most_likely_trajectory,
    top_k_trajectories,
    uncertainty_reduction,
    visit_probability,
)


@pytest.fixture
def case():
    ls = LSequence([{"A": 0.6, "B": 0.4},
                    {"B": 0.5, "C": 0.5},
                    {"C": 0.7, "D": 0.3}])
    cs = ConstraintSet([Unreachable("A", "C"), Unreachable("B", "D")])
    graph = build_ct_graph(ls, cs)
    naive = NaiveConditioner(ls, cs).conditioned_distribution()
    return ls, cs, graph, naive


class TestMostLikely:
    def test_matches_enumeration_argmax(self, case):
        _, _, graph, naive = case
        trajectory, probability = most_likely_trajectory(graph)
        best = max(naive, key=naive.get)
        assert trajectory == best
        assert probability == pytest.approx(naive[best])

    def test_deterministic_graph(self):
        ls = LSequence([{"A": 1.0}, {"B": 1.0}])
        graph = build_ct_graph(ls, ConstraintSet())
        assert most_likely_trajectory(graph) == (("A", "B"), pytest.approx(1.0))


class TestTopK:
    def test_bad_k_rejected(self, case):
        _, _, graph, _ = case
        with pytest.raises(QueryError):
            top_k_trajectories(graph, 0)

    def test_top_k_matches_sorted_enumeration(self, case):
        _, _, graph, naive = case
        expected = sorted(naive.items(), key=lambda kv: -kv[1])
        for k in (1, 2, 3, len(expected), len(expected) + 5):
            got = top_k_trajectories(graph, k)
            assert len(got) == min(k, len(expected))
            for (t_got, p_got), (t_exp, p_exp) in zip(got, expected):
                assert p_got == pytest.approx(p_exp)
            # Probabilities must be non-increasing.
            probabilities = [p for _, p in got]
            assert probabilities == sorted(probabilities, reverse=True)

    def test_top_1_equals_most_likely(self, case):
        _, _, graph, _ = case
        ((trajectory, probability),) = top_k_trajectories(graph, 1)
        assert (trajectory, probability) == most_likely_trajectory(graph)


class TestEntropy:
    def test_certainty_has_zero_entropy(self):
        ls = LSequence([{"A": 1.0}, {"B": 1.0}])
        graph = build_ct_graph(ls, ConstraintSet())
        assert entropy_profile(graph) == [0.0, 0.0]

    def test_uniform_has_one_bit(self):
        ls = LSequence([{"A": 0.5, "B": 0.5}])
        assert entropy_profile_prior(ls) == [pytest.approx(1.0)]

    def test_conditioning_reduces_entropy_here(self, case):
        ls, _, graph, _ = case
        reduction = uncertainty_reduction(ls, graph)
        assert reduction > 0.0

    def test_no_constraints_no_reduction(self):
        ls = LSequence([{"A": 0.5, "B": 0.5}] * 3)
        graph = build_ct_graph(ls, ConstraintSet())
        assert uncertainty_reduction(ls, graph) == pytest.approx(0.0)

    def test_duration_mismatch_rejected(self, case):
        ls, _, graph, _ = case
        other = LSequence([{"A": 1.0}])
        with pytest.raises(QueryError):
            uncertainty_reduction(other, graph)


class TestVisitStatistics:
    def test_expected_counts_sum_to_duration(self, case):
        _, _, graph, _ = case
        totals = expected_visit_counts(graph)
        assert math.fsum(totals.values()) == pytest.approx(graph.duration)

    def test_expected_counts_match_enumeration(self, case):
        _, _, graph, naive = case
        totals = expected_visit_counts(graph)
        expected = {}
        for trajectory, probability in naive.items():
            for location in trajectory:
                expected[location] = expected.get(location, 0.0) + probability
        assert set(totals) == set(expected)
        for location, value in expected.items():
            assert totals[location] == pytest.approx(value)

    def test_visit_probability_matches_enumeration(self, case):
        _, _, graph, naive = case
        for location in ("A", "B", "C", "D", "Z"):
            expected = sum(p for t, p in naive.items() if location in t)
            assert visit_probability(graph, location) == pytest.approx(expected)

    def test_first_visit_matches_enumeration(self, case):
        _, _, graph, naive = case
        for location in ("A", "B", "C", "D"):
            expected = {}
            for trajectory, probability in naive.items():
                if location in trajectory:
                    tau = trajectory.index(location)
                    expected[tau] = expected.get(tau, 0.0) + probability
            got = first_visit_distribution(graph, location)
            assert set(got) == set(expected)
            for tau, value in expected.items():
                assert got[tau] == pytest.approx(value)

    def test_span_probability_matches_enumeration(self, case):
        from repro.queries.analytics import span_probability
        _, _, graph, naive = case
        for location in ("A", "B", "C", "D"):
            for start in range(3):
                for end in range(start, 3):
                    expected = sum(
                        p for t, p in naive.items()
                        if all(t[tau] == location
                               for tau in range(start, end + 1)))
                    got = span_probability(graph, location, start, end)
                    assert got == pytest.approx(expected), \
                        (location, start, end)

    def test_span_probability_bad_window(self, case):
        from repro.queries.analytics import span_probability
        _, _, graph, _ = case
        with pytest.raises(QueryError):
            span_probability(graph, "A", 2, 1)
        with pytest.raises(QueryError):
            span_probability(graph, "A", 0, 99)

    def test_span_of_single_step_is_marginal(self, case):
        from repro.queries.analytics import span_probability
        _, _, graph, _ = case
        for location, probability in graph.location_marginal(1).items():
            assert span_probability(graph, location, 1, 1) \
                == pytest.approx(probability)

    def test_first_visit_mass_equals_visit_probability(self, case):
        _, _, graph, _ = case
        for location in ("A", "B", "C", "D"):
            mass = math.fsum(first_visit_distribution(graph, location).values())
            assert mass == pytest.approx(visit_probability(graph, location))

    def test_time_at_location_matches_enumeration(self, case):
        from repro.queries.analytics import time_at_location_distribution
        _, _, graph, naive = case
        for location in ("A", "B", "C", "D", "Z"):
            expected: dict = {}
            for trajectory, probability in naive.items():
                count = sum(1 for step in trajectory if step == location)
                expected[count] = expected.get(count, 0.0) + probability
            got = time_at_location_distribution(graph, location)
            assert set(got) == set(expected)
            for count, probability in expected.items():
                assert got[count] == pytest.approx(probability)

    def test_time_at_location_is_a_distribution(self, case):
        from repro.queries.analytics import time_at_location_distribution
        _, _, graph, _ = case
        distribution = time_at_location_distribution(graph, "B")
        assert math.fsum(distribution.values()) == pytest.approx(1.0)

    def test_time_at_location_mean_matches_expected_counts(self, case):
        from repro.queries.analytics import time_at_location_distribution
        _, _, graph, _ = case
        totals = expected_visit_counts(graph)
        for location in ("A", "B", "C"):
            distribution = time_at_location_distribution(graph, location)
            mean = sum(count * mass for count, mass in distribution.items())
            assert mean == pytest.approx(totals.get(location, 0.0))


# ----------------------------------------------------------------------
# property tests vs enumeration
# ----------------------------------------------------------------------

locations = st.sampled_from("ABC")


@st.composite
def instances(draw):
    duration = draw(st.integers(min_value=1, max_value=5))
    rows = []
    for _ in range(duration):
        support = draw(st.lists(locations, min_size=1, max_size=3, unique=True))
        weights = [draw(st.floats(min_value=0.1, max_value=1.0))
                   for _ in support]
        total = sum(weights)
        rows.append({l: w / total for l, w in zip(support, weights)})
    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        if draw(st.booleans()):
            constraints.append(Unreachable(draw(locations), draw(locations)))
        else:
            constraints.append(Latency(draw(locations),
                                       draw(st.integers(2, 3))))
    return LSequence(rows), ConstraintSet(constraints)


@settings(max_examples=200, deadline=None)
@given(instances())
def test_top_k_property(instance):
    lsequence, constraints = instance
    try:
        naive = NaiveConditioner(lsequence, constraints).conditioned_distribution()
    except InconsistentReadingsError:
        return
    graph = build_ct_graph(lsequence, constraints)
    expected = sorted(naive.values(), reverse=True)
    got = [p for _, p in top_k_trajectories(graph, len(expected))]
    assert len(got) == len(expected)
    for p_got, p_exp in zip(got, expected):
        assert p_got == pytest.approx(p_exp, abs=1e-9)


@settings(max_examples=200, deadline=None)
@given(instances(), locations)
def test_visit_probability_property(instance, location):
    lsequence, constraints = instance
    try:
        naive = NaiveConditioner(lsequence, constraints).conditioned_distribution()
    except InconsistentReadingsError:
        return
    graph = build_ct_graph(lsequence, constraints)
    expected = sum(p for t, p in naive.items() if location in t)
    assert visit_probability(graph, location) == pytest.approx(
        expected, abs=1e-9)
