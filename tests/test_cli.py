"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "--scale", "galactic"])

    def test_experiment_requires_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment"])


class TestCommands:
    @pytest.fixture(autouse=True)
    def _needs_numpy(self):
        # Every command here runs against a generated synthetic dataset,
        # and dataset generation draws from a numpy rng.
        pytest.importorskip("numpy", exc_type=ImportError)

    def test_info(self, capsys):
        assert main(["info", "--dataset", "syn1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "SYN1" in out
        assert "readers" in out

    def test_clean(self, capsys):
        code = main(["clean", "--dataset", "syn1", "--scale", "tiny",
                     "--constraints", "DU"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ct-graph" in out
        assert "P(ground truth)" in out

    def test_clean_many(self, capsys, tmp_path):
        out = tmp_path / "batch.json"
        code = main(["clean-many", "--dataset", "syn1", "--scale", "tiny",
                     "--constraints", "DU", "--workers", "2", "--limit", "3",
                     "--json", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "objects: 3" in text
        assert "wall-clock" in text
        import json
        payload = json.loads(out.read_text())
        assert payload["objects"] == 3
        assert payload["cleaned"] == 3
        assert len(payload["outcomes"]) == 3

    def test_clean_many_in_process(self, capsys):
        code = main(["clean-many", "--dataset", "syn1", "--scale", "tiny",
                     "--constraints", "DU", "--workers", "1", "--limit", "2"])
        assert code == 0
        assert "cleaned: 2" in capsys.readouterr().out

    def test_clean_many_timeout_and_retry_flags(self, capsys, tmp_path):
        # A generous --timeout routes through the supervised pool (even at
        # --workers 1) without failing anything; the payload reports the
        # respawn counter.
        out = tmp_path / "batch.json"
        code = main(["clean-many", "--dataset", "syn1", "--scale", "tiny",
                     "--constraints", "DU", "--workers", "1", "--limit", "2",
                     "--timeout", "60", "--max-retries", "0",
                     "--json", str(out)])
        assert code == 0
        assert "cleaned: 2" in capsys.readouterr().out
        import json
        payload = json.loads(out.read_text())
        assert payload["respawns"] == 0

    def test_clean_many_rejects_bad_timeout(self, capsys):
        from repro.errors import BatchConfigurationError
        with pytest.raises(BatchConfigurationError):
            main(["clean-many", "--dataset", "syn1", "--scale", "tiny",
                  "--constraints", "DU", "--limit", "1", "--timeout", "-1"])

    def test_clean_bad_index(self):
        with pytest.raises(SystemExit):
            main(["clean", "--dataset", "syn1", "--scale", "tiny",
                  "--index", "99"])

    def test_query_stay(self, capsys):
        code = main(["query", "--dataset", "syn1", "--scale", "tiny",
                     "--constraints", "DU,LT", "--at", "5"])
        assert code == 0
        assert "stay query at 5" in capsys.readouterr().out

    def test_query_pattern(self, capsys):
        code = main(["query", "--dataset", "syn1", "--scale", "tiny",
                     "--constraints", "DU", "--pattern", "? F0_R1 ?"])
        assert code == 0
        assert "trajectory query" in capsys.readouterr().out

    def test_query_without_work_errors(self, capsys):
        code = main(["query", "--dataset", "syn1", "--scale", "tiny"])
        assert code == 2
        assert "nothing to do" in capsys.readouterr().err

    def test_experiment_fig9a(self, capsys):
        code = main(["experiment", "--name", "fig9a", "--dataset", "syn1",
                     "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "RAW" in out
        assert "CTG(DU)" in out

    def test_analytics(self, capsys):
        code = main(["analytics", "--dataset", "syn1", "--scale", "tiny",
                     "--constraints", "DU,LT", "--top", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "uncertainty reduction" in out
        assert "#1" in out and "#2" in out
        assert "expected time per location" in out

    def test_export(self, capsys, tmp_path):
        out_dir = tmp_path / "archive"
        code = main(["export", "--dataset", "syn1", "--scale", "tiny",
                     "--constraints", "DU", "--out", str(out_dir)])
        assert code == 0
        for name in ("building.json", "constraints.json", "matrix.npz",
                     "readings.json", "ground_truth.json", "ctgraph.json"):
            assert (out_dir / name).exists(), name

    def test_report(self, capsys, tmp_path):
        out = tmp_path / "report.md"
        code = main(["report", "--dataset", "syn1", "--scale", "tiny",
                     "--out", str(out)])
        assert code == 0
        text = out.read_text()
        assert text.startswith("# rfid-ctg evaluation report")
        assert "Shape checklist" in text
        assert "FAIL" not in text[text.index("Shape checklist"):]

    def test_ql(self, capsys):
        code = main(["ql", "--dataset", "syn1", "--scale", "tiny",
                     "--constraints", "DU", "STAY 3", "TOP 2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "> STAY 3" in out
        assert "#1 p=" in out

    def test_map(self, capsys):
        code = main(["map", "--dataset", "syn1", "--scale", "tiny",
                     "--floor", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "F0_corridor" in out
        assert "R" in out

    def test_map_with_marginal(self, capsys):
        code = main(["map", "--dataset", "syn1", "--scale", "tiny",
                     "--floor", "0", "--at", "5", "--constraints", "DU"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cleaned position estimate at t=5" in out
        assert "on-floor mass" in out

    def test_map_bad_floor(self):
        with pytest.raises(SystemExit):
            main(["map", "--dataset", "syn1", "--scale", "tiny",
                  "--floor", "99"])

    def test_export_round_trips(self, tmp_path):
        from repro.io.jsonio import load_building, load_constraints
        from repro.io.matrices import load_matrix

        out_dir = tmp_path / "archive"
        main(["export", "--dataset", "syn1", "--scale", "tiny",
              "--constraints", "DU,LT", "--out", str(out_dir)])
        building = load_building(out_dir / "building.json")
        assert building.name == "SYN1"
        constraints = load_constraints(out_dir / "constraints.json")
        assert len(constraints) > 0
        matrix = load_matrix(out_dir / "matrix.npz", building)
        assert matrix.num_cells == matrix.grid.num_cells
