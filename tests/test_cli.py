"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "--scale", "galactic"])

    def test_experiment_requires_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment"])


class TestCommands:
    @pytest.fixture(autouse=True)
    def _needs_numpy(self):
        # Every command here runs against a generated synthetic dataset,
        # and dataset generation draws from a numpy rng.
        pytest.importorskip("numpy", exc_type=ImportError)

    def test_info(self, capsys):
        assert main(["info", "--dataset", "syn1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "SYN1" in out
        assert "readers" in out

    def test_clean(self, capsys):
        code = main(["clean", "--dataset", "syn1", "--scale", "tiny",
                     "--constraints", "DU"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ct-graph" in out
        assert "P(ground truth)" in out

    def test_clean_many(self, capsys, tmp_path):
        out = tmp_path / "batch.json"
        code = main(["clean-many", "--dataset", "syn1", "--scale", "tiny",
                     "--constraints", "DU", "--workers", "2", "--limit", "3",
                     "--json", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "objects: 3" in text
        assert "wall-clock" in text
        import json
        payload = json.loads(out.read_text())
        assert payload["objects"] == 3
        assert payload["cleaned"] == 3
        assert len(payload["outcomes"]) == 3

    def test_clean_many_in_process(self, capsys):
        code = main(["clean-many", "--dataset", "syn1", "--scale", "tiny",
                     "--constraints", "DU", "--workers", "1", "--limit", "2"])
        assert code == 0
        assert "cleaned: 2" in capsys.readouterr().out

    def test_clean_many_timeout_and_retry_flags(self, capsys, tmp_path):
        # A generous --timeout routes through the supervised pool (even at
        # --workers 1) without failing anything; the payload reports the
        # respawn counter.
        out = tmp_path / "batch.json"
        code = main(["clean-many", "--dataset", "syn1", "--scale", "tiny",
                     "--constraints", "DU", "--workers", "1", "--limit", "2",
                     "--timeout", "60", "--max-retries", "0",
                     "--json", str(out)])
        assert code == 0
        assert "cleaned: 2" in capsys.readouterr().out
        import json
        payload = json.loads(out.read_text())
        assert payload["respawns"] == 0

    def test_clean_many_rejects_bad_timeout(self, capsys):
        from repro.errors import BatchConfigurationError
        with pytest.raises(BatchConfigurationError):
            main(["clean-many", "--dataset", "syn1", "--scale", "tiny",
                  "--constraints", "DU", "--limit", "1", "--timeout", "-1"])

    def test_clean_bad_index(self):
        with pytest.raises(SystemExit):
            main(["clean", "--dataset", "syn1", "--scale", "tiny",
                  "--index", "99"])

    def test_query_stay(self, capsys):
        code = main(["query", "--dataset", "syn1", "--scale", "tiny",
                     "--constraints", "DU,LT", "--at", "5"])
        assert code == 0
        assert "stay query at 5" in capsys.readouterr().out

    def test_query_pattern(self, capsys):
        code = main(["query", "--dataset", "syn1", "--scale", "tiny",
                     "--constraints", "DU", "--pattern", "? F0_R1 ?"])
        assert code == 0
        assert "trajectory query" in capsys.readouterr().out

    def test_query_without_work_errors(self, capsys):
        code = main(["query", "--dataset", "syn1", "--scale", "tiny"])
        assert code == 2
        assert "nothing to do" in capsys.readouterr().err

    def test_experiment_fig9a(self, capsys):
        code = main(["experiment", "--name", "fig9a", "--dataset", "syn1",
                     "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "RAW" in out
        assert "CTG(DU)" in out

    def test_analytics(self, capsys):
        code = main(["analytics", "--dataset", "syn1", "--scale", "tiny",
                     "--constraints", "DU,LT", "--top", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "uncertainty reduction" in out
        assert "#1" in out and "#2" in out
        assert "expected time per location" in out

    def test_export(self, capsys, tmp_path):
        out_dir = tmp_path / "archive"
        code = main(["export", "--dataset", "syn1", "--scale", "tiny",
                     "--constraints", "DU", "--out", str(out_dir)])
        assert code == 0
        for name in ("building.json", "constraints.json", "matrix.npz",
                     "readings.json", "ground_truth.json", "ctgraph.json"):
            assert (out_dir / name).exists(), name

    def test_report(self, capsys, tmp_path):
        out = tmp_path / "report.md"
        code = main(["report", "--dataset", "syn1", "--scale", "tiny",
                     "--out", str(out)])
        assert code == 0
        text = out.read_text()
        assert text.startswith("# rfid-ctg evaluation report")
        assert "Shape checklist" in text
        assert "FAIL" not in text[text.index("Shape checklist"):]

    def test_ql(self, capsys):
        code = main(["ql", "--dataset", "syn1", "--scale", "tiny",
                     "--constraints", "DU", "STAY 3", "TOP 2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "> STAY 3" in out
        assert "#1 p=" in out

    def test_map(self, capsys):
        code = main(["map", "--dataset", "syn1", "--scale", "tiny",
                     "--floor", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "F0_corridor" in out
        assert "R" in out

    def test_map_with_marginal(self, capsys):
        code = main(["map", "--dataset", "syn1", "--scale", "tiny",
                     "--floor", "0", "--at", "5", "--constraints", "DU"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cleaned position estimate at t=5" in out
        assert "on-floor mass" in out

    def test_map_bad_floor(self):
        with pytest.raises(SystemExit):
            main(["map", "--dataset", "syn1", "--scale", "tiny",
                  "--floor", "99"])

    def test_export_round_trips(self, tmp_path):
        from repro.io.jsonio import load_building, load_constraints
        from repro.io.matrices import load_matrix

        out_dir = tmp_path / "archive"
        main(["export", "--dataset", "syn1", "--scale", "tiny",
              "--constraints", "DU,LT", "--out", str(out_dir)])
        building = load_building(out_dir / "building.json")
        assert building.name == "SYN1"
        constraints = load_constraints(out_dir / "constraints.json")
        assert len(constraints) > 0
        matrix = load_matrix(out_dir / "matrix.npz", building)
        assert matrix.num_cells == matrix.grid.num_cells


class TestServe:
    """The streaming service: feed, checkpoint, kill, resume, compare."""

    @pytest.fixture
    def setup(self, tmp_path):
        import json
        import random

        from repro.core.constraints import (
            ConstraintSet,
            Latency,
            TravelingTime,
            Unreachable,
        )
        from repro.io.jsonio import save_constraints

        constraints = ConstraintSet([Unreachable("A", "D"),
                                     TravelingTime("B", "D", 3),
                                     Latency("C", 2)])
        constraints_path = tmp_path / "constraints.json"
        save_constraints(constraints, constraints_path)
        rng = random.Random(3)
        stream = tmp_path / "stream.jsonl"
        with stream.open("w") as handle:
            for _ in range(40):
                for obj in ("tag-1", "tag-2"):
                    weights = [rng.random() + 0.05 for _ in "ABCD"]
                    total = sum(weights)
                    row = {l: w / total for l, w in zip("ABCD", weights)}
                    handle.write(json.dumps({"object": obj,
                                             "candidates": row}) + "\n")
        return constraints_path, stream

    def _finals(self, capsys):
        out = capsys.readouterr().out
        return sorted(line for line in out.splitlines()
                      if '"final": true' in line)

    def test_kill_resume_equals_uninterrupted(self, setup, tmp_path,
                                              capsys):
        constraints_path, stream = setup
        ckpt = tmp_path / "ckpt"
        base = ["serve", "--constraints-file", str(constraints_path),
                "--input", str(stream), "--window", "16"]
        # Uninterrupted reference run (no checkpointing at all).
        assert main(base) == 0
        reference = self._finals(capsys)
        assert len(reference) == 2
        # Killed run: periodic checkpoints, stop mid-stream, no exit
        # checkpoint (the abrupt-kill case).
        assert main(base + ["--checkpoint-dir", str(ckpt),
                            "--checkpoint-every", "7",
                            "--max-readings", "50",
                            "--no-final-checkpoint"]) == 0
        capsys.readouterr()
        assert list(ckpt.glob("*.ckpt"))
        # Resumed run over the same input: already-checkpointed readings
        # are skipped, the rest reingested; the final estimates must be
        # byte-identical to the uninterrupted run's.
        assert main(base + ["--checkpoint-dir", str(ckpt),
                            "--resume"]) == 0
        assert self._finals(capsys) == reference

    def test_sharded_output_is_byte_identical(self, setup, capsys):
        constraints_path, stream = setup
        base = ["serve", "--constraints-file", str(constraints_path),
                "--input", str(stream), "--window", "16",
                "--estimate-every", "5"]
        assert main(base) == 0
        reference = capsys.readouterr().out
        assert main(base + ["--shards", "2"]) == 0
        assert capsys.readouterr().out == reference

    def test_sharded_kill_resume_equals_uninterrupted(self, setup,
                                                      tmp_path, capsys):
        constraints_path, stream = setup
        ckpt = tmp_path / "shard-ckpt"
        base = ["serve", "--constraints-file", str(constraints_path),
                "--input", str(stream), "--window", "16",
                "--shards", "2"]
        assert main(["serve", "--constraints-file", str(constraints_path),
                     "--input", str(stream), "--window", "16"]) == 0
        reference = self._finals(capsys)
        assert main(base + ["--checkpoint-dir", str(ckpt),
                            "--checkpoint-every", "7",
                            "--max-readings", "50",
                            "--no-final-checkpoint"]) == 0
        capsys.readouterr()
        assert list(ckpt.glob("shard-*/*.ckpt"))
        assert main(base + ["--checkpoint-dir", str(ckpt),
                            "--resume"]) == 0
        assert self._finals(capsys) == reference
        # A different shard count cannot resume this directory.
        assert (ckpt / "shards.json").exists()
        with pytest.raises(SystemExit, match="--shards 2"):
            main(base[:-2] + ["--shards", "3", "--checkpoint-dir",
                              str(ckpt), "--resume"])

    def test_live_estimates_and_drops(self, setup, tmp_path, capsys):
        import json

        constraints_path, stream = setup
        # An inconsistent reading (A -> D is unreachable; D-only after an
        # A-only step) is dropped, not fatal.
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            json.dumps({"object": "t", "candidates": {"A": 1.0}}) + "\n" +
            "not json\n" +
            json.dumps({"object": "t", "candidates": {"D": 1.0}}) + "\n" +
            json.dumps({"object": "t", "candidates": {"A": 1.0}}) + "\n")
        assert main(["serve", "--constraints-file", str(constraints_path),
                     "--input", str(bad), "--estimate-every", "1"]) == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.splitlines()]
        dropped = [line for line in lines if "dropped" in line]
        assert len(dropped) == 1
        assert "InconsistentReadingsError" in dropped[0]["dropped"]
        finals = [line for line in lines if line.get("final")]
        assert finals[0]["duration"] == 2    # the bad reading left no trace
        assert "malformed" in captured.err
