"""Tests for the reader model (placement and detection physics)."""

import pytest

from repro.errors import MapModelError
from repro.geometry import Point
from repro.rfid.readers import Reader, ReaderModel, place_default_readers


def make_reader(**overrides):
    defaults = dict(name="r", floor=0, position=Point(2.5, 2.5),
                    major_radius=1.0, max_radius=3.0, major_probability=0.9)
    defaults.update(overrides)
    return Reader(**defaults)


class TestReader:
    def test_bad_radii_rejected(self):
        with pytest.raises(MapModelError):
            make_reader(major_radius=0.0)
        with pytest.raises(MapModelError):
            make_reader(major_radius=5.0, max_radius=3.0)

    def test_bad_probability_rejected(self):
        with pytest.raises(MapModelError):
            make_reader(major_probability=0.0)
        with pytest.raises(MapModelError):
            make_reader(major_probability=1.5)

    def test_three_state_curve(self):
        reader = make_reader()
        assert reader.base_probability(0.5) == 0.9       # major region
        assert reader.base_probability(1.0) == 0.9       # boundary inclusive
        assert reader.base_probability(2.0) == pytest.approx(0.45)
        assert reader.base_probability(3.0) == 0.0
        assert reader.base_probability(10.0) == 0.0

    def test_curve_is_monotonically_non_increasing(self):
        reader = make_reader()
        probabilities = [reader.base_probability(d / 10) for d in range(0, 40)]
        assert all(a >= b for a, b in zip(probabilities, probabilities[1:]))


class TestReaderModel:
    def test_needs_readers(self, two_rooms):
        with pytest.raises(MapModelError):
            ReaderModel(two_rooms, [])

    def test_duplicate_names_rejected(self, two_rooms):
        readers = [make_reader(name="x"), make_reader(name="x")]
        with pytest.raises(MapModelError):
            ReaderModel(two_rooms, readers)

    def test_bad_attenuation_rejected(self, two_rooms):
        with pytest.raises(MapModelError):
            ReaderModel(two_rooms, [make_reader()], wall_attenuation=1.5)

    def test_no_cross_floor_detection(self, two_floors):
        reader = make_reader(floor=0, position=Point(3, 3))
        model = ReaderModel(two_floors, [reader])
        assert model.detection_probability(reader, 1, Point(3, 3)) == 0.0

    def test_same_room_no_attenuation(self, two_rooms):
        reader = make_reader(position=Point(2.5, 2.5))
        model = ReaderModel(two_rooms, [reader], wall_attenuation=0.5)
        assert model.detection_probability(reader, 0, Point(2.5, 3.0)) == 0.9

    def test_wall_attenuation_applies(self, two_rooms):
        # Reader in room A, tag just across the wall in room B: two stored
        # wall segments are crossed (one per room footprint).
        reader = make_reader(position=Point(4.5, 2.5), max_radius=4.0)
        model = ReaderModel(two_rooms, [reader], wall_attenuation=0.5)
        in_a = model.detection_probability(reader, 0, Point(4.0, 2.5))
        in_b = model.detection_probability(reader, 0, Point(5.5, 2.5))
        assert in_a == 0.9
        assert 0.0 < in_b < in_a
        assert in_b == pytest.approx(
            reader.base_probability(1.0) * 0.5 ** 2)

    def test_out_of_range_skips_wall_computation(self, two_rooms):
        reader = make_reader()
        model = ReaderModel(two_rooms, [reader])
        assert model.detection_probability(reader, 0, Point(9.9, 4.9)) == 0.0

    def test_detection_probabilities_vector(self, two_rooms):
        readers = [make_reader(name="a", position=Point(1, 1)),
                   make_reader(name="b", position=Point(9, 4))]
        model = ReaderModel(two_rooms, readers)
        values = model.detection_probabilities(0, Point(1, 1))
        assert len(values) == 2
        assert values[0] == 0.9
        assert values[1] == 0.0

    def test_reader_lookup(self, two_rooms):
        model = ReaderModel(two_rooms, [make_reader(name="a")])
        assert model.reader("a").name == "a"
        with pytest.raises(MapModelError):
            model.reader("zzz")


class TestDefaultPlacement:
    def test_every_location_gets_a_reader(self, one_floor):
        model = place_default_readers(one_floor)
        covered = set()
        for reader in model.readers:
            location = one_floor.location_at(reader.floor, reader.position)
            assert location is not None
            covered.add(location)
        assert covered == set(one_floor.location_names)

    def test_long_locations_get_multiple_readers(self, one_floor):
        model = place_default_readers(one_floor, reader_spacing=5.0)
        corridor_readers = [r for r in model.readers
                            if "corridor" in r.name]
        assert len(corridor_readers) >= 3  # the corridor is 21 m long

    def test_readers_on_each_floor(self, two_floors):
        model = place_default_readers(two_floors)
        assert {reader.floor for reader in model.readers} == {0, 1}
