"""Smoke test for benchmarks/bench_streaming.py: the bench must run on
a tiny stream, pass its own memory-bound, bit-equality, kernel-parity
and shard-identity gates, and emit a well-formed BENCH_streaming.json
(the gates are correctness claims, so unlike the perf numbers they are
asserted even at smoke size; only the kernel *speedup* gate is
full-run-only)."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH = REPO_ROOT / "benchmarks" / "bench_streaming.py"


def _bench_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    env.update(extra)
    return env


def _check(path, env=None):
    return subprocess.run(
        [sys.executable, str(BENCH), "--check", str(path)],
        capture_output=True, text=True, env=env or _bench_env(),
        timeout=60)


def test_smoke_emits_well_formed_json(tmp_path):
    out = tmp_path / "BENCH_streaming.json"
    run = subprocess.run(
        [sys.executable, str(BENCH), "--duration", "300",
         "--window", "16", "--smoke", "--out", str(out)],
        capture_output=True, text=True, env=_bench_env(), timeout=300)
    assert run.returncode == 0, run.stderr

    payload = json.loads(out.read_text())
    assert payload["benchmark"] == "bench_streaming"
    assert payload["schema_version"] == 2
    assert payload["smoke"] is True
    workload = payload["workload"]
    assert workload["duration"] == 300
    assert workload["window"] == 16
    memory = payload["memory"]
    assert 0 < memory["retained_levels_max"] <= 16
    assert 0 < memory["frontier_states_max"] <= memory["frontier_states_gate"]
    assert memory["checkpoint_bytes"] > 0
    parity = payload["parity"]
    assert parity["filtered_bit_equal"] is True
    assert parity["resume_bit_equal"] is True
    assert parity["finalize_bit_equal"] is True
    assert payload["throughput"]["readings_per_second"] > 0.0

    kernel = payload["kernel"]
    assert kernel["backend"] == "numpy"
    if kernel["available"]:
        assert kernel["backend_resolved"] == "numpy"
        assert kernel["kernel_speedup"] > 0.0
        assert kernel["parity"]["filtered_close"] is True
        assert kernel["parity"]["resume_bit_equal"] is True
    else:
        assert kernel["backend_resolved"] == "python"
        assert kernel["kernel_speedup"] is None

    shard = payload["shard"]
    assert shard["shards"] == 2
    assert shard["merged_identical"] is True

    # The bench's own --check mode agrees.
    check = _check(out)
    assert check.returncode == 0, check.stderr


def test_no_numpy_leg_passes_with_null_speedup(tmp_path):
    # The pure-python fallback (REPRO_NO_NUMPY) must run the whole
    # bench — shard identity included — with the kernel leg recorded
    # as unavailable, and still pass --check.
    out = tmp_path / "BENCH_nonp.json"
    env = _bench_env(REPRO_NO_NUMPY="1")
    run = subprocess.run(
        [sys.executable, str(BENCH), "--duration", "120",
         "--window", "8", "--smoke", "--out", str(out)],
        capture_output=True, text=True, env=env, timeout=300)
    assert run.returncode == 0, run.stderr
    payload = json.loads(out.read_text())
    kernel = payload["kernel"]
    assert kernel["available"] is False
    assert kernel["backend_resolved"] == "python"
    assert kernel["kernel_speedup"] is None
    assert payload["shard"]["merged_identical"] is True
    assert _check(out, env=env).returncode == 0


def _valid_v2_payload():
    return {
        "benchmark": "bench_streaming", "schema_version": 2,
        "smoke": True,
        "workload": {"duration": 300, "window": 16},
        "memory": {"retained_levels_max": 16, "frontier_states_max": 5,
                   "frontier_states_gate": 240, "checkpoint_bytes": 1},
        "parity": {"filtered_bit_equal": True, "resume_bit_equal": True,
                   "finalize_bit_equal": True},
        "throughput": {"ingest_seconds": 0.1,
                       "readings_per_second": 3000.0},
        "kernel": {"backend": "numpy", "available": True,
                   "backend_resolved": "numpy", "ingest_seconds": 0.01,
                   "readings_per_second": 30000.0, "kernel_speedup": 10.0,
                   "parity": {"filtered_close": True, "parity_prefix": 300,
                              "resume_bit_equal": True}},
        "shard": {"shards": 2, "objects": 4, "readings": 300,
                  "merged_identical": True, "single_seconds": 0.1,
                  "pool_seconds": 0.1},
    }


def test_check_rejects_divergence(tmp_path):
    bad = tmp_path / "bad.json"
    payload = _valid_v2_payload()
    payload["memory"]["retained_levels_max"] = 17
    payload["parity"]["resume_bit_equal"] = False
    payload["kernel"]["parity"]["filtered_close"] = False
    payload["shard"]["merged_identical"] = False
    bad.write_text(json.dumps(payload))
    check = _check(bad)
    assert check.returncode == 1
    assert "retained levels" in check.stderr
    assert "resume_bit_equal" in check.stderr
    assert "filtered_close" in check.stderr
    assert "merged_identical" in check.stderr


def test_check_gates_speedup_on_full_runs_only(tmp_path):
    slow = _valid_v2_payload()
    slow["kernel"]["kernel_speedup"] = 1.5
    path = tmp_path / "slow_smoke.json"
    path.write_text(json.dumps(slow))
    # Smoke runs report the speedup but do not gate it...
    assert _check(path).returncode == 0
    # ...full runs gate it at 4x.
    slow["smoke"] = False
    path.write_text(json.dumps(slow))
    check = _check(path)
    assert check.returncode == 1
    assert "below the 4x gate" in check.stderr


def test_check_rejects_phantom_speedup_without_numpy(tmp_path):
    ghost = _valid_v2_payload()
    ghost["kernel"].update({"available": False,
                            "backend_resolved": "python"})
    path = tmp_path / "ghost.json"
    path.write_text(json.dumps(ghost))
    check = _check(path)
    assert check.returncode == 1
    assert "must be null" in check.stderr
