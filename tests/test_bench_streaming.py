"""Smoke test for benchmarks/bench_streaming.py: the bench must run on
a tiny stream, pass its own memory-bound and bit-equality gates, and
emit a well-formed BENCH_streaming.json (the gates are correctness
claims, so unlike the perf benches they are asserted even at smoke
size)."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH = REPO_ROOT / "benchmarks" / "bench_streaming.py"


def _bench_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    return env


def test_smoke_emits_well_formed_json(tmp_path):
    out = tmp_path / "BENCH_streaming.json"
    run = subprocess.run(
        [sys.executable, str(BENCH), "--duration", "300",
         "--window", "16", "--smoke", "--out", str(out)],
        capture_output=True, text=True, env=_bench_env(), timeout=300)
    assert run.returncode == 0, run.stderr

    payload = json.loads(out.read_text())
    assert payload["benchmark"] == "bench_streaming"
    assert payload["smoke"] is True
    workload = payload["workload"]
    assert workload["duration"] == 300
    assert workload["window"] == 16
    memory = payload["memory"]
    assert 0 < memory["retained_levels_max"] <= 16
    assert 0 < memory["frontier_states_max"] <= memory["frontier_states_gate"]
    assert memory["checkpoint_bytes"] > 0
    parity = payload["parity"]
    assert parity["filtered_bit_equal"] is True
    assert parity["resume_bit_equal"] is True
    assert parity["finalize_bit_equal"] is True
    assert payload["throughput"]["readings_per_second"] > 0.0

    # The bench's own --check mode agrees.
    check = subprocess.run(
        [sys.executable, str(BENCH), "--check", str(out)],
        capture_output=True, text=True, env=_bench_env(), timeout=60)
    assert check.returncode == 0, check.stderr


def test_check_rejects_divergence(tmp_path):
    bad = tmp_path / "bad.json"
    payload = {
        "benchmark": "bench_streaming", "schema_version": 1,
        "smoke": True,
        "workload": {"duration": 300, "window": 16},
        "memory": {"retained_levels_max": 17, "frontier_states_max": 5,
                   "frontier_states_gate": 240, "checkpoint_bytes": 1},
        "parity": {"filtered_bit_equal": True, "resume_bit_equal": False,
                   "finalize_bit_equal": True},
        "throughput": {"ingest_seconds": 0.1,
                       "readings_per_second": 3000.0},
    }
    bad.write_text(json.dumps(payload))
    check = subprocess.run(
        [sys.executable, str(BENCH), "--check", str(bad)],
        capture_output=True, text=True, env=_bench_env(), timeout=60)
    assert check.returncode == 1
    assert "retained levels" in check.stderr
    assert "resume_bit_equal" in check.stderr
