"""Tests for stay and trajectory queries over ct-graphs and l-sequences."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.algorithm import build_ct_graph
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.lsequence import LSequence
from repro.core.naive import NaiveConditioner
from repro.errors import InconsistentReadingsError, QueryError
from repro.queries.pattern import Pattern, PatternAtom
from repro.queries.stay import stay_query, stay_query_prior
from repro.queries.trajectory import TrajectoryQuery
from repro.queries.accuracy import (
    stay_accuracy,
    stay_accuracy_on,
    trajectory_accuracy_on,
    trajectory_query_accuracy,
)


@pytest.fixture
def small_case():
    ls = LSequence([{"A": 0.5, "B": 0.5},
                    {"B": 0.5, "C": 0.5},
                    {"C": 0.5, "D": 0.5}])
    cs = ConstraintSet([Unreachable("A", "C"), Unreachable("B", "D")])
    return ls, cs, build_ct_graph(ls, cs)


class TestStayQueries:
    def test_matches_naive_marginal(self, small_case):
        ls, cs, graph = small_case
        naive = NaiveConditioner(ls, cs)
        for tau in range(ls.duration):
            expected = naive.location_marginal(tau)
            got = stay_query(graph, tau)
            assert set(got) == set(expected)
            for location, probability in expected.items():
                assert got[location] == pytest.approx(probability)

    def test_prior_stay_query(self, small_case):
        ls, _, _ = small_case
        assert stay_query_prior(ls, 0) == {"A": 0.5, "B": 0.5}

    def test_out_of_range_rejected(self, small_case):
        _, _, graph = small_case
        with pytest.raises(QueryError):
            stay_query(graph, 99)


class TestTrajectoryQueries:
    def test_accepts_string_or_pattern(self, small_case):
        _, _, graph = small_case
        from_string = TrajectoryQuery("? C ?").probability(graph)
        from_pattern = TrajectoryQuery(Pattern.parse("? C ?")).probability(graph)
        assert from_string == from_pattern

    def test_probability_matches_enumeration(self, small_case):
        ls, cs, graph = small_case
        naive = NaiveConditioner(ls, cs).conditioned_distribution()
        for text in ("? B ?", "? A ? C ?", "? B[2] ?", "? D ?", "A ? ?"):
            query = TrajectoryQuery(text)
            expected = sum(p for t, p in naive.items() if query.matches(t))
            assert query.probability(graph) == pytest.approx(expected), text

    def test_prior_probability_matches_enumeration(self, small_case):
        ls, _, _ = small_case
        for text in ("? B ?", "? A ? C ?", "? B[2] ?"):
            query = TrajectoryQuery(text)
            expected = sum(p for t, p in ls.trajectories()
                           if query.matches(t))
            assert query.probability_prior(ls) == pytest.approx(expected), text

    def test_certain_and_impossible_patterns(self, small_case):
        _, _, graph = small_case
        assert TrajectoryQuery("?").probability(graph) == pytest.approx(1.0)
        assert TrajectoryQuery("? Z ?").probability(graph) == 0.0


class TestAccuracyMetrics:
    def test_stay_accuracy_reads_truth_probability(self):
        assert stay_accuracy({"A": 0.7, "B": 0.3}, "A") == 0.7
        assert stay_accuracy({"A": 0.7}, "Z") == 0.0

    def test_trajectory_accuracy_symmetric(self):
        assert trajectory_query_accuracy(0.8, True) == pytest.approx(0.8)
        assert trajectory_query_accuracy(0.8, False) == pytest.approx(0.2)

    def test_trajectory_accuracy_validates_probability(self):
        with pytest.raises(QueryError):
            trajectory_query_accuracy(1.7, True)

    def test_accuracy_on_dispatches_by_source(self, small_case):
        ls, _, graph = small_case
        truth = ("A", "B", "C")
        cleaned = stay_accuracy_on(graph, 1, truth)
        raw = stay_accuracy_on(ls, 1, truth)
        assert 0.0 <= raw <= 1.0 and 0.0 <= cleaned <= 1.0
        t_cleaned = trajectory_accuracy_on(graph, "? B ?", truth)
        t_raw = trajectory_accuracy_on(ls, "? B ?", truth)
        assert 0.0 <= t_raw <= 1.0 and 0.0 <= t_cleaned <= 1.0


# ----------------------------------------------------------------------
# property test: DP over the graph == enumeration, on random instances
# ----------------------------------------------------------------------

locations = st.sampled_from("ABC")


@st.composite
def query_cases(draw):
    duration = draw(st.integers(min_value=1, max_value=5))
    rows = []
    for _ in range(duration):
        support = draw(st.lists(locations, min_size=1, max_size=3, unique=True))
        weights = [draw(st.floats(min_value=0.1, max_value=1.0))
                   for _ in support]
        total = sum(weights)
        rows.append({l: w / total for l, w in zip(support, weights)})
    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        kind = draw(st.sampled_from(["du", "lt", "tt"]))
        if kind == "du":
            constraints.append(Unreachable(draw(locations), draw(locations)))
        elif kind == "lt":
            constraints.append(Latency(draw(locations),
                                       draw(st.integers(min_value=2, max_value=3))))
        else:
            a = draw(locations)
            b = draw(locations.filter(lambda x: x != a))
            constraints.append(TravelingTime(a, b, draw(st.integers(2, 3))))
    atoms = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        if draw(st.booleans()):
            atoms.append(PatternAtom(None))
        else:
            atoms.append(PatternAtom(draw(locations),
                                     draw(st.integers(min_value=1, max_value=2))))
    return LSequence(rows), ConstraintSet(constraints), Pattern(atoms)


@settings(max_examples=300, deadline=None)
@given(query_cases())
def test_query_dp_matches_enumeration(case):
    lsequence, constraints, pattern = case
    try:
        naive = NaiveConditioner(lsequence, constraints).conditioned_distribution()
    except InconsistentReadingsError:
        return
    graph = build_ct_graph(lsequence, constraints)
    query = TrajectoryQuery(pattern)
    expected = math.fsum(p for t, p in naive.items() if query.matches(t))
    assert query.probability(graph) == pytest.approx(expected, abs=1e-9)

    prior_expected = math.fsum(p for t, p in lsequence.trajectories()
                               if query.matches(t))
    assert query.probability_prior(lsequence) == pytest.approx(
        prior_expected, abs=1e-9)


@settings(max_examples=200, deadline=None)
@given(query_cases())
def test_stay_distribution_sums_to_one(case):
    lsequence, constraints, _ = case
    try:
        graph = build_ct_graph(lsequence, constraints)
    except InconsistentReadingsError:
        return
    for tau in range(lsequence.duration):
        assert math.fsum(stay_query(graph, tau).values()) == pytest.approx(1.0)
