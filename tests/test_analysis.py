"""Tests for the static constraint/map analyzer (repro.analysis).

One class per rule code C001-C006, plus the report object, the analyze()
orchestration, the pre-flight hook in build_ct_graph and the `rfid-ctg
analyze` CLI subcommand.  The hypothesis property test at the bottom pins
the C005 pre-check against the naive conditioner: on small random
instances the boolean forward pass reports zero mass **iff** no valid
trajectory exists.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CleaningOptions,
    ConstraintSet,
    Latency,
    LSequence,
    NaiveConditioner,
    TravelingTime,
    Unreachable,
    ZeroMassError,
    build_ct_graph,
)
from repro.analysis import (
    RULES,
    AnalysisReport,
    Diagnostic,
    ReachabilityIndex,
    Severity,
    ZERO_MASS_RULE,
    analyze,
    ctgraph_size_bounds,
    first_dead_timestep,
    location_universe,
    predict_zero_mass,
)
from repro.cli import main
from repro.core.lsequence import ReadingSequence
from repro.errors import ReadingSequenceError
from repro.io.jsonio import save_constraints


def codes(report: AnalysisReport) -> list:
    return [d.code for d in report]


class TestC001ContradictoryStay:
    def test_du_self_loop_plus_latency_is_error(self):
        report = analyze(ConstraintSet([Unreachable("A", "A"),
                                        Latency("A", 2)]))
        (diagnostic,) = report.by_code("C001")
        assert diagnostic.severity is Severity.ERROR
        assert "unreachable(A, A)" in diagnostic.message
        assert "latency(A, 2)" in diagnostic.message
        assert report.has_errors

    def test_du_self_loop_alone_is_fine(self):
        report = analyze(ConstraintSet([Unreachable("A", "A")]))
        assert report.by_code("C001") == ()

    def test_latency_alone_is_fine(self):
        report = analyze(ConstraintSet([Latency("A", 2)]))
        assert report.by_code("C001") == ()

    def test_c001_is_not_a_false_alarm(self):
        """The contradiction is real: every (non-truncated) stay at A dies."""
        cs = ConstraintSet([Unreachable("A", "A"), Latency("A", 3)])
        ls = LSequence([{"A": 0.5, "B": 0.5}] * 3)
        strict = NaiveConditioner(ls, cs, strict_truncation=True)
        for trajectory in strict.conditioned_distribution():
            assert "A" not in trajectory
        # Under the lenient policy only the final-timestep truncated
        # arrival survives — exactly what the diagnostic message states.
        lenient = NaiveConditioner(ls, cs)
        for trajectory in lenient.conditioned_distribution():
            assert "A" not in trajectory[:-1]


class TestC002DeadTravelingTime:
    def test_unreachable_destination_flagged(self):
        # B is fenced off from A entirely: direct step forbidden and the
        # only other location C cannot step to B either.
        cs = ConstraintSet([
            Unreachable("A", "B"), Unreachable("C", "B"),
            Unreachable("B", "B"),
            TravelingTime("A", "B", 3),
        ])
        (diagnostic,) = analyze(cs).by_code("C002")
        assert diagnostic.severity is Severity.WARNING
        assert "travelingTime(A, B, 3)" in diagnostic.message

    def test_multi_hop_reachability_clears_the_constraint(self):
        # A cannot step to B directly, but A -> C -> B exists.
        cs = ConstraintSet([
            Unreachable("A", "B"),
            TravelingTime("A", "B", 3),
            Latency("C", 2),  # mentions C so it joins the universe
        ])
        assert analyze(cs).by_code("C002") == ()

    def test_map_model_widens_the_universe(self):
        # With only the constraints the universe is {A, B} and A -> B is
        # dead; a map model contributing an unconstrained C opens the
        # detour A -> C -> B.  (Anything with location_names works.)
        class FakeMap:
            location_names = ("A", "B", "C")

        cs = ConstraintSet([Unreachable("A", "B"), TravelingTime("A", "B", 2)])
        assert analyze(cs).by_code("C002") != ()
        assert analyze(cs, map_model=FakeMap()).by_code("C002") == ()


class TestC003RedundantConstraints:
    def test_duplicate_statement_reported(self):
        cs = ConstraintSet([Unreachable("A", "B"), Unreachable("A", "B")])
        (diagnostic,) = analyze(cs).by_code("C003")
        assert diagnostic.severity is Severity.INFO
        assert "stated 2 times" in diagnostic.message

    def test_dominated_tt_reported(self):
        cs = ConstraintSet([TravelingTime("A", "B", 2),
                            TravelingTime("A", "B", 5)])
        (diagnostic,) = analyze(cs).by_code("C003")
        assert "dominated" in diagnostic.message
        assert "travelingTime(A, B, 5)" in diagnostic.message

    def test_dominated_latency_reported(self):
        cs = ConstraintSet([Latency("A", 2), Latency("A", 4)])
        (diagnostic,) = analyze(cs).by_code("C003")
        assert "dominated" in diagnostic.message
        assert "latency(A, 4)" in diagnostic.message

    def test_clean_set_has_no_c003(self):
        cs = ConstraintSet([Unreachable("A", "B"), TravelingTime("B", "C", 2),
                            Latency("A", 3)])
        assert analyze(cs).by_code("C003") == ()


class TestC004DeadLocation:
    def test_location_without_in_or_out_steps(self):
        cs = ConstraintSet([
            Unreachable("A", "A"), Unreachable("A", "B"),
            Unreachable("B", "A"),
        ])
        report = analyze(cs)
        subjects = [d.subjects for d in report.by_code("C004")]
        assert ("A",) in subjects

    def test_connected_locations_are_not_dead(self, two_rooms):
        report = analyze(ConstraintSet(), map_model=two_rooms)
        assert report.by_code("C004") == ()

    def test_severity_drops_to_info_without_mass(self):
        cs = ConstraintSet([Unreachable("A", "A"), Unreachable("A", "B"),
                            Unreachable("B", "A")])
        # The reading sequence never touches A, so the dead location is
        # advisory only.
        ls = LSequence([{"B": 1.0}, {"B": 1.0}])
        report = analyze(cs, readings=ls)
        a_diagnostics = [d for d in report.by_code("C004")
                         if d.subjects == ("A",)]
        assert [d.severity for d in a_diagnostics] == [Severity.INFO]


class TestC005ZeroMass:
    def test_zero_mass_detected(self):
        ls = LSequence([{"A": 1.0}, {"B": 1.0}])
        cs = ConstraintSet([Unreachable("A", "B")])
        report = analyze(cs, readings=ls)
        (diagnostic,) = report.by_code("C005")
        assert diagnostic.severity is Severity.ERROR
        assert diagnostic.data["failed_at"] == 1
        assert ZERO_MASS_RULE == "C005"

    def test_positive_mass_not_flagged(self):
        ls = LSequence([{"A": 0.5, "B": 0.5}, {"A": 0.5, "B": 0.5}])
        report = analyze(ConstraintSet([Unreachable("A", "B")]), readings=ls)
        assert report.by_code("C005") == ()

    def test_latency_truncation_policies_differ(self):
        # A 2-step window cannot finish a 3-step stay: strict truncation
        # kills it, the lenient default keeps it.
        ls = LSequence([{"A": 1.0}, {"A": 1.0}])
        cs = ConstraintSet([Latency("A", 3),
                            Unreachable("A", "B"), Unreachable("B", "A")])
        assert not predict_zero_mass(ls, cs)
        assert predict_zero_mass(ls, cs, strict_truncation=True)

    def test_first_dead_timestep_positions(self):
        cs = ConstraintSet([Unreachable("A", "B")])
        assert first_dead_timestep(
            LSequence([{"A": 1.0}, {"B": 1.0}, {"A": 1.0}]), cs) == 1
        assert first_dead_timestep(
            LSequence([{"B": 1.0}, {"A": 1.0}, {"B": 1.0}]), cs) == 2
        assert first_dead_timestep(
            LSequence([{"B": 1.0}, {"B": 1.0}]), cs) is None

    def test_traveling_time_kills_late(self):
        # A -> C in one step violates travelingTime(A, C, 3) even through
        # the intermediate B: left A at 0, reached C at 2 < 3.
        ls = LSequence([{"A": 1.0}, {"B": 1.0}, {"C": 1.0}])
        cs = ConstraintSet([TravelingTime("A", "C", 3)])
        assert predict_zero_mass(ls, cs)
        relaxed = ConstraintSet([TravelingTime("A", "C", 2)])
        assert not predict_zero_mass(ls, relaxed)


class TestC006BlowupEstimate:
    def test_bound_reported_with_readings(self):
        ls = LSequence([{"A": 0.5, "B": 0.5}] * 4)
        report = analyze(ConstraintSet(), readings=ls)
        (diagnostic,) = report.by_code("C006")
        assert diagnostic.severity is Severity.INFO
        assert diagnostic.data["per_timestep"] == [2, 2, 2, 2]
        assert diagnostic.data["total"] == 8

    def test_bound_dominates_actual_node_count(self):
        ls = LSequence([{"A": 0.4, "B": 0.3, "C": 0.3}] * 5)
        cs = ConstraintSet([Latency("A", 3), TravelingTime("B", "C", 3)])
        bounds = ctgraph_size_bounds(ls, cs)
        graph = build_ct_graph(ls, cs)
        per_level = [len(graph.level(tau)) for tau in range(graph.duration)]
        assert all(actual <= bound
                   for actual, bound in zip(per_level, bounds))

    def test_no_estimate_without_readings(self):
        assert analyze(ConstraintSet()).by_code("C006") == ()


class TestReachabilityIndex:
    def test_successors_respect_du(self):
        cs = ConstraintSet([Unreachable("A", "B")])
        index = ReachabilityIndex(("A", "B"), cs)
        assert index.successors("A") == ("A",)
        assert index.predecessors("B") == ("B",)
        assert index.can_step("B", "A")
        assert not index.can_step("A", "B")

    def test_closure_is_multi_step(self):
        cs = ConstraintSet([Unreachable("A", "C")])
        index = ReachabilityIndex(("A", "B", "C"), cs)
        assert index.can_ever_reach("A", "C")  # via B

    def test_universe_from_constraints_prior_and_readings(self):
        cs = ConstraintSet([Unreachable("A", "B"), TravelingTime("C", "D", 2),
                            Latency("E", 2)])
        assert location_universe(cs) == ("A", "B", "C", "D", "E")
        ls = LSequence([{"F": 1.0}])
        assert "F" in location_universe(cs, lsequence=ls)


class TestReport:
    def test_filters_and_exit_code(self):
        report = AnalysisReport((
            Diagnostic("C001", Severity.ERROR, "boom"),
            Diagnostic("C003", Severity.INFO, "meh"),
        ))
        assert len(report) == 2
        assert report.max_severity is Severity.ERROR
        assert report.errors[0].code == "C001"
        assert report.exit_code(strict=True) == 1
        assert report.exit_code(strict=False) == 0

    def test_empty_report(self):
        report = AnalysisReport(())
        assert not report.has_errors
        assert report.max_severity is None
        assert report.exit_code(strict=True) == 0
        assert report.render_text() == "analysis: no findings"

    def test_json_rendering_round_trips(self):
        report = analyze(ConstraintSet([Unreachable("A", "A"),
                                        Latency("A", 2)]))
        payload = json.loads(report.render_json())
        assert payload["format"] == "analysis-report/1"
        assert payload["summary"]["errors"] == 1
        assert payload["diagnostics"][0]["code"] == "C001"

    def test_rule_registry_is_complete(self):
        assert [spec.code for spec in RULES] == [
            "C001", "C002", "C003", "C004", "C005", "C006",
            "C007", "C008", "C009", "C010"]

    def test_only_c010_is_advisory(self):
        assert [spec.code for spec in RULES if spec.advisory] == ["C010"]


class TestAnalyzeOrchestration:
    def test_readings_without_prior_rejected(self):
        readings = ReadingSequence.from_reader_sets([["r1"], ["r2"]])
        with pytest.raises(ReadingSequenceError):
            analyze(ConstraintSet(), readings=readings)

    def test_bad_readings_type_rejected(self):
        with pytest.raises(ReadingSequenceError):
            analyze(ConstraintSet(), readings="not readings")

    def test_diagnostics_are_deterministic(self):
        cs = ConstraintSet([Unreachable("B", "B"), Latency("B", 2),
                            Unreachable("A", "A"), Latency("A", 2)])
        first = [str(d) for d in analyze(cs)]
        second = [str(d) for d in analyze(cs)]
        assert first == second
        assert first[0].startswith("C001")
        assert "(A," in first[0]  # sorted by location


class TestPrecheckHook:
    DOOMED = ConstraintSet([Unreachable("A", "A"), Unreachable("A", "B"),
                            Unreachable("B", "A"), Unreachable("B", "B")])

    def test_error_mode_raises_before_the_run(self):
        ls = LSequence([{"A": 0.5, "B": 0.5}] * 2)
        with pytest.raises(ZeroMassError, match="pre-check C005"):
            build_ct_graph(ls, self.DOOMED,
                           CleaningOptions(precheck="error"))

    def test_warn_mode_warns(self):
        ls = LSequence([{"A": 0.5, "B": 0.5}] * 2)
        with pytest.warns(UserWarning, match="pre-check C005"):
            with pytest.raises(ZeroMassError):
                build_ct_graph(ls, self.DOOMED,
                               CleaningOptions(precheck="warn"))

    def test_error_mode_never_rejects_cleanable_input(self):
        # C001 fires for location C, but the readings never touch C: the
        # pre-check warns and the cleaning still succeeds.
        ls = LSequence([{"A": 0.5, "B": 0.5}] * 2)
        cs = ConstraintSet([Unreachable("C", "C"), Latency("C", 2)])
        with pytest.warns(UserWarning, match="pre-check C001"):
            graph = build_ct_graph(ls, cs, CleaningOptions(precheck="error"))
        assert graph.duration == 2

    def test_off_is_the_default(self):
        assert CleaningOptions().precheck == "off"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReadingSequenceError):
            CleaningOptions(precheck="maybe")


class TestAnalyzeCLI:
    def test_strict_fixture_with_c001_exits_1(self, tmp_path, capsys):
        fixture = tmp_path / "constraints.json"
        save_constraints(ConstraintSet([Unreachable("l", "l"),
                                        Latency("l", 2)]), fixture)
        code = main(["analyze", "--constraints-file", str(fixture),
                     "--strict"])
        assert code == 1
        out = capsys.readouterr().out
        assert "C001 ERROR" in out

    def test_fixture_without_strict_exits_0(self, tmp_path, capsys):
        fixture = tmp_path / "constraints.json"
        save_constraints(ConstraintSet([Unreachable("l", "l"),
                                        Latency("l", 2)]), fixture)
        assert main(["analyze", "--constraints-file", str(fixture)]) == 0

    def test_json_format(self, tmp_path, capsys):
        fixture = tmp_path / "constraints.json"
        save_constraints(ConstraintSet([Unreachable("l", "l"),
                                        Latency("l", 2)]), fixture)
        code = main(["analyze", "--constraints-file", str(fixture),
                     "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 1

    def test_shipped_dataset_is_clean(self, capsys):
        pytest.importorskip("numpy", exc_type=ImportError)  # dataset generation draws from an rng
        code = main(["analyze", "--dataset", "syn1", "--scale", "tiny",
                     "--strict"])
        assert code == 0

    def test_dataset_with_readings_runs_the_precheck(self, capsys):
        pytest.importorskip("numpy", exc_type=ImportError)  # dataset generation draws from an rng
        code = main(["analyze", "--dataset", "syn1", "--scale", "tiny",
                     "--index", "0", "--strict"])
        assert code == 0
        assert "C006" in capsys.readouterr().out

    def test_dataset_bad_index_rejected(self):
        pytest.importorskip("numpy", exc_type=ImportError)  # dataset generation draws from an rng
        with pytest.raises(SystemExit):
            main(["analyze", "--dataset", "syn1", "--scale", "tiny",
                  "--index", "9999"])


# ----------------------------------------------------------------------
# The C005 <-> naive conditioner property (the analyzer's ground truth).
# ----------------------------------------------------------------------
_LOCATIONS = ("A", "B", "C")


@st.composite
def small_instances(draw):
    """A tiny l-sequence plus a random mixed constraint set."""
    duration = draw(st.integers(min_value=1, max_value=5))
    supports = [
        draw(st.sets(st.sampled_from(_LOCATIONS), min_size=1, max_size=3))
        for _ in range(duration)
    ]
    lsequence = LSequence(
        [{loc: 1.0 / len(support) for loc in support}
         for support in supports])

    pairs = [(a, b) for a in _LOCATIONS for b in _LOCATIONS]
    du = draw(st.sets(st.sampled_from(pairs), max_size=6))
    tt_pairs = [(a, b) for a, b in pairs if a != b]
    tt = draw(st.sets(st.sampled_from(tt_pairs), max_size=2))
    lt = draw(st.sets(st.sampled_from(_LOCATIONS), max_size=2))
    constraints = ConstraintSet(
        [Unreachable(a, b) for a, b in sorted(du)]
        + [TravelingTime(a, b, draw(st.integers(2, 4)))
           for a, b in sorted(tt)]
        + [Latency(location, draw(st.integers(2, 3)))
           for location in sorted(lt)])
    strict = draw(st.booleans())
    return lsequence, constraints, strict


@settings(max_examples=200, deadline=None)
@given(small_instances())
def test_c005_matches_naive_conditioner(instance):
    """predict_zero_mass <=> the naive enumerator finds no valid trajectory."""
    lsequence, constraints, strict = instance
    naive = NaiveConditioner(lsequence, constraints,
                             strict_truncation=strict)
    has_valid = next(iter(naive.valid_trajectories()), None) is not None
    predicted = predict_zero_mass(lsequence, constraints,
                                  strict_truncation=strict)
    assert predicted == (not has_valid)
