"""Tests for Algorithm 1 (ct-graph construction) on hand-checked instances."""

import math

import pytest

from repro.core.algorithm import CleaningOptions, build_ct_graph
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.lsequence import LSequence
from repro.errors import InconsistentReadingsError, ReadingSequenceError


class TestOptions:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ReadingSequenceError):
            CleaningOptions("sometimes")

    def test_policies(self):
        assert not CleaningOptions("lenient").strict_truncation
        assert CleaningOptions("strict").strict_truncation


class TestUnconstrainedCleaning:
    def test_no_constraints_preserves_priors(self, uniform_lsequence):
        graph = build_ct_graph(uniform_lsequence, ConstraintSet())
        paths = dict(graph.paths())
        assert len(paths) == 8
        for trajectory, probability in paths.items():
            assert probability == pytest.approx(
                uniform_lsequence.trajectory_prior(trajectory))

    def test_single_timestep(self):
        ls = LSequence([{"A": 0.3, "B": 0.7}])
        graph = build_ct_graph(ls, ConstraintSet())
        assert dict(graph.paths()) == {("A",): pytest.approx(0.3),
                                       ("B",): pytest.approx(0.7)}

    def test_path_probabilities_sum_to_one(self, uniform_lsequence):
        graph = build_ct_graph(uniform_lsequence, ConstraintSet())
        assert math.fsum(p for _, p in graph.paths()) == pytest.approx(1.0)


class TestPaperStyleScenario:
    """A scenario shaped like the paper's running example (Sections 4-5):
    two sources, one killed by constraints, losses propagating backward."""

    @pytest.fixture
    def scenario(self):
        lsequence = LSequence([
            {"L1": 0.6, "L2": 0.4},
            {"L3": 1 / 3, "L4": 2 / 3},
            {"L3": 2 / 3, "L4": 1 / 3},
        ])
        constraints = ConstraintSet([
            Latency("L3", 2),               # a stay at L3 lasts >= 2 steps
            Unreachable("L2", "L3"),        # L2 cannot reach L3 directly
            TravelingTime("L1", "L4", 3),   # L1 -> L4 takes >= 3 steps
            Unreachable("L4", "L4"),        # L4 is transit-only here
            Unreachable("L4", "L3"),
        ])
        return lsequence, constraints

    def test_unique_valid_trajectory(self, scenario):
        graph = build_ct_graph(*scenario)
        paths = dict(graph.paths())
        assert paths == {("L1", "L3", "L3"): pytest.approx(1.0)}

    def test_dead_branches_removed(self, scenario):
        graph = build_ct_graph(*scenario)
        # Only the L1 source survives; levels contain exactly the path.
        assert [node.location for node in graph.sources] == ["L1"]
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_source_conditioning(self, scenario):
        graph = build_ct_graph(*scenario)
        (source,) = graph.sources
        assert graph.source_probability(source) == pytest.approx(1.0)


class TestConditioningRatios:
    def test_ratios_of_survivors_are_preserved(self):
        # Two valid trajectories with prior ratio 2:1 keep that ratio.
        ls = LSequence([{"A": 1.0}, {"B": 2 / 3, "C": 1 / 3}])
        cs = ConstraintSet()  # everything valid
        graph = build_ct_graph(ls, cs)
        paths = dict(graph.paths())
        assert paths[("A", "B")] / paths[("A", "C")] == pytest.approx(2.0)

    def test_invalid_mass_redistributed_proportionally(self):
        ls = LSequence([{"A": 0.5, "B": 0.25, "C": 0.2, "D": 0.05},
                        {"Z": 1.0}])
        cs = ConstraintSet([Unreachable("C", "Z"), Unreachable("D", "Z")])
        graph = build_ct_graph(ls, cs)
        paths = dict(graph.paths())
        # The introduction's example: survivors get 2/3 and 1/3.
        assert paths[("A", "Z")] == pytest.approx(2 / 3)
        assert paths[("B", "Z")] == pytest.approx(1 / 3)


class TestInconsistency:
    def test_no_continuation_raises(self):
        ls = LSequence([{"A": 1.0}, {"B": 1.0}])
        cs = ConstraintSet([Unreachable("A", "B")])
        with pytest.raises(InconsistentReadingsError):
            build_ct_graph(ls, cs)

    def test_late_dead_end_raises(self):
        # Valid until the final step, where all branches die.
        ls = LSequence([{"A": 1.0}, {"A": 0.5, "B": 0.5}, {"C": 1.0}])
        cs = ConstraintSet([Unreachable("A", "C"), Unreachable("B", "C")])
        with pytest.raises(InconsistentReadingsError):
            build_ct_graph(ls, cs)

    def test_strict_truncation_can_be_inconsistent(self):
        ls = LSequence([{"A": 1.0}, {"B": 1.0}])
        cs = ConstraintSet([Latency("B", 3)])
        # Lenient: the truncated stay at B is fine.
        graph = build_ct_graph(ls, cs)
        assert dict(graph.paths()) == {("A", "B"): pytest.approx(1.0)}
        # Strict: B's stay cannot meet its bound -> nothing is valid.
        with pytest.raises(InconsistentReadingsError):
            build_ct_graph(ls, cs, CleaningOptions("strict"))


class TestLatencyGraphShape:
    def test_latency_splits_nodes_by_stay(self):
        # Two ways to be at B at step 1 (fresh arrival vs continuation)
        # must be distinct nodes when a latency constraint binds.
        ls = LSequence([{"A": 0.5, "B": 0.5},
                        {"B": 1.0},
                        {"B": 0.5, "C": 0.5}])
        cs = ConstraintSet([Latency("B", 3)])
        graph = build_ct_graph(ls, cs)
        level1 = graph.level(1)
        stays = sorted(node.stay if node.stay is not None else -1
                       for node in level1)
        assert stays == [1, 2]
        paths = dict(graph.paths())
        # A,B,B: stay of 2 truncated by window (lenient: valid);
        # B,B,B: stay meets bound; B,B,C: leaving after a 2-step stay < 3
        # is invalid.
        assert set(paths) == {("A", "B", "B"), ("B", "B", "B")}

    def test_stats_attached(self, uniform_lsequence):
        graph = build_ct_graph(uniform_lsequence, ConstraintSet())
        assert graph.stats.nodes_created == graph.num_nodes
        assert graph.stats.edges_created == graph.num_edges
        assert graph.stats.nodes_removed == 0

    def test_stats_count_removals(self):
        ls = LSequence([{"A": 0.5, "B": 0.5}, {"C": 1.0}])
        cs = ConstraintSet([Unreachable("B", "C")])
        graph = build_ct_graph(ls, cs)
        # The B source never even gets an edge (its only move is forbidden),
        # so one node is removed and no edge ever existed to remove.
        assert graph.stats.nodes_removed == 1
        assert graph.stats.edges_removed == 0
        assert graph.stats.nodes_kept == graph.num_nodes
        assert graph.stats.edges_kept == graph.num_edges


class TestNumericalRobustness:
    def test_long_sequence_does_not_underflow(self):
        # 600 steps of a 3-way branching with constant pruning: the naive
        # absolute-survival formulation underflows long before this.
        steps = [{"A": 0.4, "B": 0.4, "C": 0.2}] * 600
        cs = ConstraintSet([Unreachable("A", "C"), Unreachable("C", "A")])
        graph = build_ct_graph(LSequence(steps), cs)
        graph.validate()
        total = math.fsum(
            graph.source_probability(node) for node in graph.sources)
        assert total == pytest.approx(1.0)

    def test_tiny_probabilities_survive(self):
        ls = LSequence([{"A": 1e-9, "B": 1.0 - 1e-9}, {"Z": 1.0}])
        cs = ConstraintSet([Unreachable("B", "Z")])
        graph = build_ct_graph(ls, cs)
        assert dict(graph.paths()) == {("A", "Z"): pytest.approx(1.0)}
