"""Tests for the comparison baselines (smoothing, particles, beam)."""

import math

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.baselines.beam import BeamCleaner
from repro.baselines.particles import ParticleFilter
from repro.baselines.smoothing import SmoothingFilter
from repro.core.algorithm import build_ct_graph
from repro.core.constraints import ConstraintSet, Latency, Unreachable
from repro.core.lsequence import LSequence, ReadingSequence
from repro.errors import InconsistentReadingsError, ReadingSequenceError


class TestSmoothingFilter:
    def test_window_validation(self):
        with pytest.raises(ReadingSequenceError):
            SmoothingFilter(0)

    def test_interior_gap_filled(self):
        readings = ReadingSequence.from_reader_sets(
            [{"r"}, set(), set(), {"r"}])
        smoothed = SmoothingFilter(window=3).smooth(readings)
        assert [r.readers for r in smoothed] == [
            frozenset({"r"})] * 4

    def test_gap_larger_than_window_kept(self):
        readings = ReadingSequence.from_reader_sets(
            [{"r"}, set(), set(), set(), {"r"}])
        smoothed = SmoothingFilter(window=3).smooth(readings)
        assert smoothed[2].readers == frozenset()

    def test_leading_and_trailing_silence_untouched(self):
        readings = ReadingSequence.from_reader_sets(
            [set(), {"r"}, {"r"}, set()])
        smoothed = SmoothingFilter(window=3).smooth(readings)
        assert smoothed[0].readers == frozenset()
        assert smoothed[3].readers == frozenset()

    def test_readers_smoothed_independently(self):
        readings = ReadingSequence.from_reader_sets(
            [{"a"}, {"b"}, {"a"}])
        smoothed = SmoothingFilter(window=2).smooth(readings)
        assert smoothed[1].readers == frozenset({"a", "b"})
        assert smoothed[0].readers == frozenset({"a"})

    def test_no_detections_no_changes(self):
        readings = ReadingSequence.from_reader_sets([set(), set()])
        smoothed = SmoothingFilter().smooth(readings)
        assert all(r.readers == frozenset() for r in smoothed)


class TestParticleFilter:
    @pytest.fixture
    def case(self):
        ls = LSequence([{"A": 0.5, "B": 0.5},
                        {"B": 0.6, "C": 0.4},
                        {"B": 0.5, "C": 0.5}])
        cs = ConstraintSet([Unreachable("A", "C"), Latency("B", 2)])
        return ls, cs

    def test_particle_count_validation(self, case):
        _, cs = case
        with pytest.raises(ReadingSequenceError):
            ParticleFilter(cs, num_particles=0)

    def test_estimates_are_distributions(self, case, rng):
        ls, cs = case
        estimates = ParticleFilter(cs, 300, rng).run(ls)
        assert len(estimates) == ls.duration
        for estimate in estimates:
            assert math.fsum(estimate.values()) == pytest.approx(1.0)

    def test_estimates_respect_constraints_support(self, case, rng):
        ls, cs = case
        # Exact filtered support at step 1 excludes nothing here, but at
        # step 1 'C' can only be reached from 'B'; run the exact cleaner
        # and compare supports.
        graph = build_ct_graph(ls, cs)
        estimates = ParticleFilter(cs, 500, rng).run(ls)
        for tau, estimate in enumerate(estimates):
            # Every location the particles report must be in the exact
            # smoothed support or at least the prior support.
            assert set(estimate) <= set(ls.candidates(tau))

    def test_approximates_exact_filtering(self, case):
        ls, cs = case
        from repro.core.incremental import IncrementalCleaner
        cleaner = IncrementalCleaner(cs)
        exact_estimates = []
        for tau in range(ls.duration):
            cleaner.extend(ls.candidates(tau))
            exact_estimates.append(cleaner.filtered_distribution())
        particles = ParticleFilter(
            cs, 4000, np.random.default_rng(0)).run(ls)
        final_exact = exact_estimates[-1]
        final_particles = particles[-1]
        for location, probability in final_exact.items():
            assert final_particles.get(location, 0.0) == pytest.approx(
                probability, abs=0.05)

    def test_total_death_raises(self, rng):
        ls = LSequence([{"A": 1.0}, {"B": 1.0}])
        cs = ConstraintSet([Unreachable("A", "B")])
        with pytest.raises(InconsistentReadingsError):
            ParticleFilter(cs, 50, rng).run(ls)


class TestBeamCleaner:
    @pytest.fixture
    def case(self):
        ls = LSequence([{"A": 0.5, "B": 0.5},
                        {"B": 0.6, "C": 0.4},
                        {"B": 0.5, "C": 0.5},
                        {"A": 0.3, "B": 0.7}])
        cs = ConstraintSet([Unreachable("A", "C"), Latency("B", 2)])
        return ls, cs

    def test_width_validation(self, case):
        _, cs = case
        with pytest.raises(ReadingSequenceError):
            BeamCleaner(cs, beam_width=0)

    def test_wide_beam_equals_exact(self, case):
        ls, cs = case
        exact = build_ct_graph(ls, cs)
        beamed = BeamCleaner(cs, beam_width=10_000).build(ls)
        assert dict(beamed.paths()) == pytest.approx(dict(exact.paths()))
        beamed.validate()

    def test_narrow_beam_is_valid_subset(self, case):
        ls, cs = case
        exact = build_ct_graph(ls, cs)
        exact_paths = dict(exact.paths())
        beamed = BeamCleaner(cs, beam_width=1).build(ls)
        beamed.validate()
        paths = dict(beamed.paths())
        assert math.fsum(paths.values()) == pytest.approx(1.0)
        for trajectory in paths:
            assert trajectory in exact_paths
        assert beamed.num_nodes <= exact.num_nodes

    def test_beam_keeps_high_mass_trajectory(self, case):
        ls, cs = case
        exact = build_ct_graph(ls, cs)
        best = max(dict(exact.paths()).items(), key=lambda kv: kv[1])[0]
        beamed = BeamCleaner(cs, beam_width=2).build(ls)
        assert beamed.trajectory_probability(best) > 0.0

    def test_inconsistent_instance_raises(self):
        ls = LSequence([{"A": 1.0}, {"B": 1.0}])
        cs = ConstraintSet([Unreachable("A", "B")])
        with pytest.raises(InconsistentReadingsError):
            BeamCleaner(cs, beam_width=8).build(ls)

    def test_long_sequence_bounded_levels(self):
        rows = [{"A": 0.4, "B": 0.4, "C": 0.2}] * 200
        cs = ConstraintSet([Latency("B", 3)])
        beamed = BeamCleaner(cs, beam_width=4).build(LSequence(rows))
        for tau in range(beamed.duration):
            assert len(beamed.level(tau)) <= 4
