"""Tests for the a-priori distribution p*(l | R) (Section 6.2 formula)."""

import math

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.errors import CalibrationError
from repro.mapmodel.grid import Grid
from repro.rfid.calibration import DetectionMatrix
from repro.rfid.priors import PriorModel
from repro.rfid.readers import place_default_readers


@pytest.fixture
def simple_prior(two_rooms):
    """A hand-built 2-reader matrix over a 1-cell-per-room grid."""
    grid = Grid(two_rooms, 5.0)            # one cell per 5x5 room
    assert grid.num_cells == 2
    # reader rA sees room A strongly and B weakly; rB the reverse.
    values = np.array([
        [0.8, 0.2],   # rA over cells (A, B)
        [0.1, 0.9],   # rB
    ])
    matrix = DetectionMatrix(values, grid, ("rA", "rB"))
    return PriorModel(matrix)


class TestPaperFormula:
    def test_single_reader(self, simple_prior):
        dist = simple_prior.distribution({"rA"})
        assert dist["A"] == pytest.approx(0.8 / (0.8 + 0.2))
        assert dist["B"] == pytest.approx(0.2 / (0.8 + 0.2))

    def test_two_readers_product(self, simple_prior):
        dist = simple_prior.distribution({"rA", "rB"})
        wa, wb = 0.8 * 0.1, 0.2 * 0.9
        assert dist["A"] == pytest.approx(wa / (wa + wb))
        assert dist["B"] == pytest.approx(wb / (wa + wb))

    def test_empty_reading_is_cell_count_proportional(self, simple_prior):
        dist = simple_prior.distribution(frozenset())
        assert dist["A"] == pytest.approx(0.5)
        assert dist["B"] == pytest.approx(0.5)

    def test_distributions_sum_to_one(self, simple_prior):
        for readers in (set(), {"rA"}, {"rB"}, {"rA", "rB"}):
            assert math.fsum(simple_prior.distribution(readers).values()) \
                == pytest.approx(1.0)

    def test_uniform_fallback_when_no_cell_compatible(self, two_rooms):
        grid = Grid(two_rooms, 5.0)
        values = np.array([
            [0.8, 0.0],   # rA never sees room B
            [0.0, 0.9],   # rB never sees room A
        ])
        prior = PriorModel(DetectionMatrix(values, grid, ("rA", "rB")))
        # No cell is seen by both readers -> uniform over ALL locations.
        dist = prior.distribution({"rA", "rB"})
        assert dist == {"A": 0.5, "B": 0.5}

    def test_unknown_reader_rejected(self, simple_prior):
        with pytest.raises(CalibrationError):
            simple_prior.distribution({"ghost"})

    def test_cache_returns_same_object(self, simple_prior):
        first = simple_prior.distribution({"rA"})
        second = simple_prior.distribution(frozenset({"rA"}))
        assert first is second


class TestNegativeEvidence:
    def test_complement_factors_change_the_answer(self, two_rooms):
        grid = Grid(two_rooms, 5.0)
        values = np.array([
            [0.8, 0.2],
            [0.1, 0.9],
        ])
        matrix = DetectionMatrix(values, grid, ("rA", "rB"))
        paper = PriorModel(matrix).distribution({"rA"})
        negative = PriorModel(matrix, negative_evidence=True).distribution({"rA"})
        # Not being seen by rB should pull mass toward room A.
        assert negative["A"] > paper["A"]
        wa, wb = 0.8 * (1 - 0.1), 0.2 * (1 - 0.9)
        assert negative["A"] == pytest.approx(wa / (wa + wb))

    def test_sums_to_one(self, two_rooms):
        grid = Grid(two_rooms, 5.0)
        values = np.array([[0.8, 0.2], [0.1, 0.9]])
        matrix = DetectionMatrix(values, grid, ("rA", "rB"))
        prior = PriorModel(matrix, negative_evidence=True)
        for readers in (set(), {"rA"}, {"rA", "rB"}):
            assert math.fsum(prior.distribution(readers).values()) \
                == pytest.approx(1.0)


class TestGhostAwarePrior:
    def test_rate_validation(self, two_rooms):
        grid = Grid(two_rooms, 5.0)
        matrix = DetectionMatrix(np.array([[0.8, 0.2]]), grid, ("rA",))
        with pytest.raises(CalibrationError):
            PriorModel(matrix, ghost_read_rate=1.0)
        with pytest.raises(CalibrationError):
            PriorModel(matrix, ghost_read_rate=-0.1)

    def test_zero_rate_matches_paper_formula(self, two_rooms):
        grid = Grid(two_rooms, 5.0)
        matrix = DetectionMatrix(np.array([[0.8, 0.2]]), grid, ("rA",))
        paper = PriorModel(matrix).distribution({"rA"})
        aware = PriorModel(matrix, ghost_read_rate=0.0).distribution({"rA"})
        assert paper == aware

    def test_ghost_floor_keeps_impossible_cells_alive(self, two_rooms):
        # Reader rA never covers room B; under the paper formula a ghost
        # fire of rA rules room B out entirely, the noise-aware prior
        # keeps a small possibility alive.
        grid = Grid(two_rooms, 5.0)
        matrix = DetectionMatrix(np.array([[0.8, 0.0]]), grid, ("rA",))
        paper = PriorModel(matrix).distribution({"rA"})
        aware = PriorModel(matrix,
                           ghost_read_rate=0.05).distribution({"rA"})
        assert paper == {"A": pytest.approx(1.0)}
        assert aware["B"] == pytest.approx(0.05 / 0.85)
        assert aware["A"] > aware["B"]

    def test_sums_to_one(self, two_rooms):
        grid = Grid(two_rooms, 5.0)
        matrix = DetectionMatrix(np.array([[0.8, 0.0], [0.0, 0.9]]),
                                 grid, ("rA", "rB"))
        prior = PriorModel(matrix, ghost_read_rate=0.02)
        for readers in (set(), {"rA"}, {"rA", "rB"}):
            assert math.fsum(prior.distribution(readers).values()) \
                == pytest.approx(1.0)


class TestThreshold:
    def test_threshold_validation(self, two_rooms):
        grid = Grid(two_rooms, 5.0)
        matrix = DetectionMatrix(np.array([[0.8, 0.2]]), grid, ("rA",))
        with pytest.raises(CalibrationError):
            PriorModel(matrix, min_probability=1.0)

    def test_threshold_drops_and_renormalises(self, two_rooms):
        grid = Grid(two_rooms, 5.0)
        matrix = DetectionMatrix(np.array([[0.9, 0.05]]), grid, ("rA",))
        pruned = PriorModel(matrix, min_probability=0.1).distribution({"rA"})
        assert pruned == {"A": 1.0}

    def test_threshold_keeps_best_when_all_below(self, two_rooms):
        grid = Grid(two_rooms, 5.0)
        matrix = DetectionMatrix(np.array([[0.5, 0.4]]), grid, ("rA",))
        pruned = PriorModel(matrix, min_probability=0.99).distribution({"rA"})
        assert pruned == {"A": 1.0}


class TestEndToEnd:
    def test_real_building_distributions(self, one_floor):
        grid = Grid(one_floor, 0.5)
        model = place_default_readers(one_floor)
        from repro.rfid.calibration import calibrate
        matrix = calibrate(model, grid, rng=np.random.default_rng(11))
        prior = PriorModel(matrix)
        # A reading from a room reader should put most mass on that room.
        room_reader = next(name for name in model.reader_names
                           if "F0_R1" in name)
        dist = prior.distribution({room_reader})
        assert math.fsum(dist.values()) == pytest.approx(1.0)
        assert max(dist, key=dist.get) == "F0_R1"
