"""Tests for the experiment harness (workloads, runners, report tables)."""

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.experiments.harness import (
    CONSTRAINT_CONFIGS,
    RAW_CONFIG,
    clean_trajectory,
    run_batch,
    run_cleaning_experiment,
    run_query_time_experiment,
    run_stay_accuracy_experiment,
    run_trajectory_accuracy_experiment,
)
from repro.experiments.report import (
    accuracy_table,
    cleaning_table,
    format_table,
    query_time_table,
)
from repro.experiments.workloads import (
    random_stay_queries,
    random_trajectory_queries,
)

FAST_CONFIGS = {"CTG(DU)": ("DU",), "CTG(DU,LT)": ("DU", "LT")}


class TestWorkloads:
    def test_stay_queries_in_range(self, rng):
        taus = random_stay_queries(50, 200, rng)
        assert len(taus) == 200
        assert all(0 <= tau < 50 for tau in taus)

    def test_trajectory_queries_shape(self, one_floor, rng):
        patterns = random_trajectory_queries(one_floor, 30, rng)
        assert len(patterns) == 30
        for pattern in patterns:
            assert 2 <= pattern.num_conditions <= 4
            names = set(one_floor.location_names)
            assert set(pattern.mentioned_locations) <= names

    def test_pinned_query_length(self, one_floor, rng):
        patterns = random_trajectory_queries(one_floor, 10, rng,
                                             num_locations=3)
        assert all(p.num_conditions == 3 for p in patterns)

    def test_visited_bias_concentrates_locations(self, one_floor):
        import numpy as np
        visited = ("F0_R1", "F0_R2")
        patterns = random_trajectory_queries(
            one_floor, 60, np.random.default_rng(3),
            visited=visited, visited_bias=1.0)
        for pattern in patterns:
            assert set(pattern.mentioned_locations) <= set(visited)

    def test_zero_bias_samples_whole_map(self, one_floor):
        import numpy as np
        patterns = random_trajectory_queries(
            one_floor, 80, np.random.default_rng(5),
            visited=("F0_R1",), visited_bias=0.0)
        mentioned = {loc for p in patterns for loc in p.mentioned_locations}
        # With bias 0, picks are uniform over the map: many distinct
        # locations appear, not just the visited one.
        assert len(mentioned) > 4


class TestConfigs:
    def test_paper_configurations(self):
        assert list(CONSTRAINT_CONFIGS) == [
            "CTG(DU)", "CTG(DU,LT)", "CTG(DU,LT,TT)"]


class TestCleanTrajectory:
    def test_returns_graph_and_timing(self, tiny_dataset):
        trajectory = tiny_dataset.all_trajectories()[0]
        graph, lsequence, seconds = clean_trajectory(
            tiny_dataset, trajectory, ("DU",))
        assert graph.duration == trajectory.duration
        assert lsequence.duration == trajectory.duration
        assert seconds >= 0.0


class TestCleaningExperiment:
    def test_measurements_cover_grid(self, tiny_dataset):
        measurements = run_cleaning_experiment(tiny_dataset,
                                               configs=FAST_CONFIGS)
        assert len(measurements) == len(FAST_CONFIGS) * len(
            tiny_dataset.durations)
        for m in measurements:
            assert m.mean_seconds > 0
            assert m.mean_nodes > 0
            assert m.mean_bytes > 0

    def test_duration_filter(self, tiny_dataset):
        first = tiny_dataset.durations[0]
        measurements = run_cleaning_experiment(
            tiny_dataset, configs=FAST_CONFIGS, durations=[first])
        assert {m.duration for m in measurements} == {first}

    def test_table_rendering(self, tiny_dataset):
        measurements = run_cleaning_experiment(tiny_dataset,
                                               configs=FAST_CONFIGS)
        text = cleaning_table(measurements)
        assert "clean_ms" in text
        assert "CTG(DU)" in text


class TestBatchExperiment:
    def test_batch_covers_grid_and_matches_sequential(self, tiny_dataset):
        batched = run_batch(tiny_dataset, configs=FAST_CONFIGS)
        sequential = run_cleaning_experiment(tiny_dataset,
                                             configs=FAST_CONFIGS)
        assert len(batched) == len(sequential)
        for b, s in zip(batched, sequential):
            assert (b.config, b.duration) == (s.config, s.duration)
            assert b.trajectories == s.trajectories
            assert b.failures == 0
            assert b.wall_seconds > 0
            # Same graphs, so the structural means agree exactly.
            assert b.mean_nodes == s.mean_nodes
            assert b.mean_edges == s.mean_edges

    def test_batch_parallel_workers(self, tiny_dataset):
        first = tiny_dataset.durations[0]
        measurements = run_batch(tiny_dataset, configs=FAST_CONFIGS,
                                 durations=[first], workers=2)
        assert {m.duration for m in measurements} == {first}
        assert all(m.workers == 2 for m in measurements)


class TestQueryTimeExperiment:
    def test_measurements(self, tiny_dataset):
        measurements = run_query_time_experiment(
            tiny_dataset, configs=FAST_CONFIGS,
            stay_queries=3, trajectory_queries=2)
        assert len(measurements) == len(FAST_CONFIGS) * len(
            tiny_dataset.durations)
        for m in measurements:
            assert m.mean_stay_seconds >= 0
            assert m.mean_trajectory_seconds >= 0
            assert m.mean_seconds >= 0
        text = query_time_table(measurements)
        assert "trajectory_ms" in text


class TestAccuracyExperiments:
    def test_stay_accuracy_includes_raw_baseline(self, tiny_dataset):
        measurements = run_stay_accuracy_experiment(
            tiny_dataset, configs=FAST_CONFIGS, queries_per_trajectory=10)
        configs = [m.config for m in measurements]
        assert configs[0] == RAW_CONFIG
        assert set(configs) == {RAW_CONFIG, *FAST_CONFIGS}
        for m in measurements:
            assert 0.0 <= m.accuracy <= 1.0
            assert m.kind == "stay"

    def test_trajectory_accuracy(self, tiny_dataset):
        measurements = run_trajectory_accuracy_experiment(
            tiny_dataset, configs=FAST_CONFIGS, queries_per_trajectory=6)
        assert {m.config for m in measurements} == {RAW_CONFIG, *FAST_CONFIGS}
        for m in measurements:
            assert m.kind == "trajectory"
            assert 0.0 <= m.accuracy <= 1.0
        text = accuracy_table(measurements)
        assert "accuracy" in text

    def test_trajectory_accuracy_by_length(self, tiny_dataset):
        measurements = run_trajectory_accuracy_experiment(
            tiny_dataset, configs={"CTG(DU)": ("DU",)},
            queries_per_trajectory=6, by_query_length=True)
        lengths = {m.query_length for m in measurements}
        assert lengths == {2, 3, 4}

    def test_determinism(self, tiny_dataset):
        a = run_stay_accuracy_experiment(tiny_dataset, configs=FAST_CONFIGS,
                                         queries_per_trajectory=5, seed=9)
        b = run_stay_accuracy_experiment(tiny_dataset, configs=FAST_CONFIGS,
                                         queries_per_trajectory=5, seed=9)
        assert [(m.config, m.accuracy) for m in a] == \
            [(m.config, m.accuracy) for m in b]


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)
