"""Tests (incl. map-level property tests) for the random building generator."""

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.errors import MapModelError
from repro.mapmodel.random_plans import random_building


class TestRandomBuilding:
    def test_validation(self):
        with pytest.raises(MapModelError):
            random_building(num_floors=0)
        with pytest.raises(MapModelError):
            random_building(rooms_x=0)
        with pytest.raises(MapModelError):
            random_building(num_floors=2, rooms_x=1, rooms_y=1)

    def test_shape(self):
        b = random_building(num_floors=2, rooms_x=3, rooms_y=2,
                            rng=np.random.default_rng(0))
        assert len(b) == 12
        assert b.floors == (0, 1)

    def test_deterministic_given_rng(self):
        a = random_building(rng=np.random.default_rng(5))
        b = random_building(rng=np.random.default_rng(5))
        assert a.location_names == b.location_names
        assert [(d.loc_a, d.loc_b) for d in a.doors] == \
            [(d.loc_a, d.loc_b) for d in b.doors]

    @pytest.mark.parametrize("seed", range(8))
    def test_always_fully_connected(self, seed):
        b = random_building(num_floors=2, rooms_x=4, rooms_y=3,
                            rng=np.random.default_rng(seed))
        n = len(b)
        assert len(b.connected_location_pairs()) == n * (n - 1)

    @pytest.mark.parametrize("seed", range(4))
    def test_pipeline_runs_end_to_end(self, seed):
        """Random map -> constraints -> ground truth -> validity."""
        from repro.core.validity import violations
        from repro.inference import MotilityProfile, infer_constraints
        from repro.simulation.trajectories import TrajectoryGenerator

        rng = np.random.default_rng(seed)
        building = random_building(num_floors=1, rooms_x=3, rooms_y=3,
                                   extra_door_fraction=0.5, rng=rng)
        constraints = infer_constraints(building, MotilityProfile())
        truth = TrajectoryGenerator(building, rng=rng).generate(300)
        assert violations(truth.locations, constraints) == []

    def test_transit_fraction_zero(self):
        b = random_building(transit_fraction=0.0,
                            rng=np.random.default_rng(1))
        kinds = {loc.kind for loc in b.locations}
        assert "corridor" not in kinds

    def test_staircase_landing_present(self):
        b = random_building(num_floors=3, rng=np.random.default_rng(2))
        for floor in range(3):
            assert b.location(f"F{floor}_G0_0").kind == "staircase"
        assert b.are_adjacent("F0_G0_0", "F1_G0_0")
