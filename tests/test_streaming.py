"""Tests for the bounded-memory streaming cleaner and its checkpoints."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.algorithm import CleaningOptions, build_ct_graph
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.incremental import IncrementalCleaner
from repro.core.lsequence import LSequence
from repro.errors import (
    InconsistentReadingsError,
    ReadingSequenceError,
    StoreChecksumError,
    StoreFormatError,
)
from repro.runtime.sessions import StreamSessionManager
from repro.store.format import (
    read_stream_checkpoint,
    write_stream_checkpoint,
)
from repro.streaming import StreamingCleaner


@pytest.fixture
def constraints():
    return ConstraintSet([Unreachable("A", "C"), Unreachable("C", "A"),
                          Latency("B", 2), TravelingTime("B", "D", 3)])


# ----------------------------------------------------------------------
# the rfid-ctg/ckpt@1 codec
# ----------------------------------------------------------------------

class TestCheckpointCodec:
    meta = {"window": 4, "base": 2, "duration": 4, "output_consumed": False,
            "options": {}, "constraints": []}
    names = ["A", "B", "corridor"]
    rows = [[(0, 0.25), (1, 0.75)], [(2, 1.0)]]
    frontiers = [
        [(0, None, ((3, 1),), 0.5), (1, 2, (), 1.0)],
        [(2, 0, ((5, 0), (7, 1)), 0.125)],
    ]

    def test_round_trip_is_exact(self, tmp_path):
        path = tmp_path / "s.ckpt"
        written = write_stream_checkpoint(
            path, meta=self.meta, location_names=self.names,
            rows=self.rows, frontiers=self.frontiers)
        assert written == path.stat().st_size
        payload = read_stream_checkpoint(path)
        assert payload.meta == self.meta
        assert payload.location_names == tuple(self.names)
        assert payload.rows == tuple(tuple(r) for r in self.rows)
        assert payload.frontiers == tuple(tuple(f) for f in self.frontiers)

    def test_atomic_publish_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "s.ckpt"
        write_stream_checkpoint(path, meta=self.meta,
                                location_names=self.names,
                                rows=self.rows, frontiers=self.frontiers)
        write_stream_checkpoint(path, meta=self.meta,
                                location_names=self.names,
                                rows=self.rows, frontiers=self.frontiers)
        assert [p.name for p in tmp_path.iterdir()] == ["s.ckpt"]

    def test_corruption_is_detected(self, tmp_path):
        path = tmp_path / "s.ckpt"
        write_stream_checkpoint(path, meta=self.meta,
                                location_names=self.names,
                                rows=self.rows, frontiers=self.frontiers)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(StoreChecksumError, match="CRC-32"):
            read_stream_checkpoint(path)

    def test_truncation_is_a_format_error(self, tmp_path):
        path = tmp_path / "s.ckpt"
        write_stream_checkpoint(path, meta=self.meta,
                                location_names=self.names,
                                rows=self.rows, frontiers=self.frontiers)
        path.write_bytes(path.read_bytes()[:25])
        with pytest.raises(StoreFormatError, match="truncated"):
            read_stream_checkpoint(path)

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "s.ckpt"
        path.write_bytes(b"NOTACKPT" + b"\x00" * 40)
        with pytest.raises(StoreFormatError, match="bad magic"):
            read_stream_checkpoint(path)

    def test_out_of_range_location_id_rejected_on_write(self, tmp_path):
        with pytest.raises(StoreFormatError, match="outside the string"):
            write_stream_checkpoint(
                tmp_path / "s.ckpt", meta={}, location_names=["A"],
                rows=[[(7, 1.0)]], frontiers=[[]])

    def test_level_count_mismatch_rejected_on_write(self, tmp_path):
        with pytest.raises(StoreFormatError, match="disagree"):
            write_stream_checkpoint(
                tmp_path / "s.ckpt", meta={}, location_names=["A"],
                rows=[[(0, 1.0)]], frontiers=[])


# ----------------------------------------------------------------------
# StreamingCleaner semantics
# ----------------------------------------------------------------------

class TestStreamingCleaner:
    def test_window_must_be_positive(self, constraints):
        with pytest.raises(ReadingSequenceError, match="positive integer"):
            StreamingCleaner(constraints, window=0)

    def test_memory_is_bounded_by_window(self, constraints):
        cleaner = StreamingCleaner(constraints, window=8)
        for _ in range(500):
            cleaner.extend({"A": 0.4, "B": 0.4, "C": 0.2})
        assert cleaner.duration == 500
        assert cleaner.retained_duration == 8
        assert cleaner.base == 492
        assert math.fsum(cleaner.filtered_distribution().values()) == \
            pytest.approx(1.0)

    def test_filtered_bit_equal_to_unbounded_cleaner(self, constraints):
        rows = [{"A": 0.5, "B": 0.5}, {"B": 0.6, "D": 0.4},
                {"B": 0.5, "D": 0.5}, {"A": 0.3, "B": 0.7},
                {"B": 1.0}, {"B": 0.2, "C": 0.8}]
        bounded = StreamingCleaner(constraints, window=2)
        unbounded = IncrementalCleaner(constraints)
        for row in rows:
            bounded.extend(row)
            unbounded.extend(row)
            # == on the dicts: same keys, same order, same float bits.
            assert bounded.filtered_distribution() == \
                unbounded.filtered_distribution()

    def test_inconsistent_reading_preserves_state(self, constraints):
        cleaner = StreamingCleaner(constraints, window=4)
        cleaner.extend({"A": 1.0})
        with pytest.raises(InconsistentReadingsError):
            cleaner.extend({"C": 1.0})
        assert cleaner.duration == 1
        cleaner.extend({"B": 1.0})
        assert cleaner.duration == 2

    def test_finalize_before_eviction_equals_batch(self, constraints):
        rows = [{"A": 0.5, "B": 0.5}, {"B": 0.6, "C": 0.4}, {"B": 1.0}]
        cleaner = StreamingCleaner(constraints, window=10)
        for row in rows:
            cleaner.extend(row)
        batch = build_ct_graph(LSequence(rows), constraints)
        assert dict(cleaner.finalize().paths()) == \
            pytest.approx(dict(batch.paths()))

    def test_window_finalize_matches_full_graph_marginals(self, constraints):
        rows = [{"A": 0.5, "B": 0.5}, {"B": 0.6, "D": 0.4},
                {"B": 0.5, "D": 0.5}, {"A": 0.3, "B": 0.7},
                {"A": 0.5, "B": 0.5}, {"B": 0.2, "C": 0.8}]
        cleaner = StreamingCleaner(constraints, window=3)
        for row in rows:
            cleaner.extend(row)
        assert cleaner.base == 3
        window_graph = cleaner.finalize()
        full_graph = build_ct_graph(LSequence(rows), constraints)
        for relative in range(cleaner.retained_duration):
            expected = full_graph.location_marginal(cleaner.base + relative)
            got = window_graph.location_marginal(relative)
            assert set(got) == set(expected)
            for location, probability in expected.items():
                assert got[location] == pytest.approx(probability)

    def test_window_finalize_materialize_modes(self, constraints, tmp_path):
        from repro.core.ctgraph import CTGraph
        from repro.core.flatgraph import FlatCTGraph
        from repro.store.format import MappedCTGraph

        rows = [{"A": 0.5, "B": 0.5}, {"B": 1.0}, {"B": 0.5, "D": 0.5},
                {"A": 0.4, "B": 0.6}]
        def fed(options):
            cleaner = StreamingCleaner(constraints, window=2,
                                       options=options)
            for row in rows:
                cleaner.extend(row)
            assert cleaner.base > 0    # the window path, not the delegate
            return cleaner

        from repro.queries.session import QuerySession

        nodes_graph = fed(CleaningOptions()).finalize()
        assert isinstance(nodes_graph, CTGraph)
        flat = fed(CleaningOptions(materialize="flat")).finalize()
        assert isinstance(flat, FlatCTGraph)
        out = tmp_path / "w.ctg"
        cleaner = fed(CleaningOptions(output=str(out)))
        mapped = cleaner.finalize()
        assert isinstance(mapped, MappedCTGraph)
        assert QuerySession(mapped).location_marginal(1) == \
            pytest.approx(nodes_graph.location_marginal(1))
        assert QuerySession(flat).location_marginal(1) == \
            pytest.approx(nodes_graph.location_marginal(1))
        mapped.close()
        with pytest.raises(ReadingSequenceError, match="already wrote"):
            cleaner.finalize()

    def test_lsequence_covers_retained_window_and_is_a_copy(self,
                                                           constraints):
        cleaner = StreamingCleaner(constraints, window=2)
        for row in ({"A": 1.0}, {"A": 0.5, "B": 0.5}, {"B": 1.0}):
            cleaner.extend(row)
        before = cleaner.filtered_distribution()
        copy = cleaner.lsequence()
        assert copy.duration == 2    # the retained window only
        copy.candidates(0).clear()
        copy.candidates(1)["Z"] = 1.0
        assert cleaner.filtered_distribution() == before
        assert cleaner.lsequence().candidates(1) == {"B": pytest.approx(1.0)}


class TestCheckpointResume:
    def test_resume_is_bit_identical(self, constraints, tmp_path):
        rows = [{"A": 0.5, "B": 0.5}, {"B": 0.6, "D": 0.4},
                {"B": 0.5, "D": 0.5}, {"A": 0.3, "B": 0.7},
                {"B": 1.0}, {"B": 0.2, "C": 0.8}]
        uninterrupted = StreamingCleaner(constraints, window=3)
        killed = StreamingCleaner(constraints, window=3)
        for row in rows[:4]:
            uninterrupted.extend(row)
            killed.extend(row)
        path = tmp_path / "s.ckpt"
        killed.checkpoint(path)
        del killed    # the process dies here
        resumed = StreamingCleaner.resume(path)
        assert resumed.duration == 4
        assert resumed.base == uninterrupted.base
        for row in rows[4:]:
            uninterrupted.extend(row)
            resumed.extend(row)
        assert resumed.filtered_distribution() == \
            uninterrupted.filtered_distribution()
        graph_a = uninterrupted.finalize()
        graph_b = resumed.finalize()
        for relative in range(uninterrupted.retained_duration):
            assert graph_a.location_marginal(relative) == \
                graph_b.location_marginal(relative)

    def test_checkpoint_restores_options_and_constraints(self, constraints,
                                                         tmp_path):
        options = CleaningOptions(truncated_stay_policy="strict",
                                  materialize="flat")
        cleaner = StreamingCleaner(constraints, window=5, options=options)
        cleaner.extend({"A": 1.0})
        path = tmp_path / "s.ckpt"
        cleaner.checkpoint(path)
        resumed = StreamingCleaner.resume(path)
        assert resumed.constraints == constraints
        assert resumed.options == options
        assert resumed.window == 5

    def test_extra_meta_rides_along_but_cannot_collide(self, constraints,
                                                       tmp_path):
        cleaner = StreamingCleaner(constraints, window=2)
        cleaner.extend({"A": 1.0})
        path = tmp_path / "s.ckpt"
        cleaner.checkpoint(path, extra_meta={"object": "tag-7"})
        assert read_stream_checkpoint(path).meta["object"] == "tag-7"
        with pytest.raises(ReadingSequenceError, match="collide"):
            cleaner.checkpoint(path, extra_meta={"window": 9})

    def test_malformed_meta_is_a_format_error(self, constraints, tmp_path):
        path = tmp_path / "s.ckpt"
        write_stream_checkpoint(path, meta={"nonsense": True},
                                location_names=[], rows=[], frontiers=[])
        with pytest.raises(StoreFormatError, match="missing or malformed"):
            StreamingCleaner.resume(path)


# ----------------------------------------------------------------------
# multi-object sessions
# ----------------------------------------------------------------------

class TestStreamSessionManager:
    def test_sessions_are_per_object(self, constraints):
        manager = StreamSessionManager(constraints, window=4)
        manager.ingest("a", {"A": 1.0})
        manager.ingest("b", {"B": 1.0})
        manager.ingest("a", {"A": 0.5, "B": 0.5})
        assert manager.objects() == ("a", "b")
        assert manager.session("a").duration == 2
        assert manager.session("b").duration == 1

    def test_checkpoint_all_and_resume(self, constraints, tmp_path):
        manager = StreamSessionManager(constraints, window=4,
                                       checkpoint_dir=tmp_path)
        for _ in range(3):
            manager.ingest("tag-1", {"A": 0.5, "B": 0.5})
            manager.ingest("tag 2/with:odd chars", {"B": 1.0})
        paths = manager.checkpoint_all()
        assert set(paths) == {"tag-1", "tag 2/with:odd chars"}
        restored = StreamSessionManager(constraints, window=4,
                                        checkpoint_dir=tmp_path, resume=True)
        assert set(restored.objects()) == set(paths)
        for object_id in paths:
            assert restored.session(object_id).filtered_distribution() == \
                manager.session(object_id).filtered_distribution()

    def test_periodic_checkpoints(self, constraints, tmp_path):
        manager = StreamSessionManager(constraints, window=4,
                                       checkpoint_dir=tmp_path,
                                       checkpoint_every=2)
        manager.ingest("a", {"A": 1.0})
        assert not list(tmp_path.glob("*.ckpt"))
        manager.ingest("a", {"A": 1.0})
        files = list(tmp_path.glob("*.ckpt"))
        assert len(files) == 1
        payload = read_stream_checkpoint(files[0])
        assert payload.meta["object"] == "a"
        assert payload.meta["duration"] == 2

    def test_resume_rejects_foreign_constraints(self, constraints, tmp_path):
        manager = StreamSessionManager(constraints, window=4,
                                       checkpoint_dir=tmp_path)
        manager.ingest("a", {"A": 1.0})
        manager.checkpoint_all()
        other = ConstraintSet([Unreachable("X", "Y")])
        with pytest.raises(ReadingSequenceError, match="different "
                                                       "constraint set"):
            StreamSessionManager(other, checkpoint_dir=tmp_path, resume=True)

    def test_checkpoint_every_needs_a_directory(self, constraints):
        with pytest.raises(ReadingSequenceError, match="checkpoint_dir"):
            StreamSessionManager(constraints, checkpoint_every=5)


# ----------------------------------------------------------------------
# hypothesis suite: eviction and resume never change any observable
# ----------------------------------------------------------------------

locations = st.sampled_from("ABCD")


@st.composite
def streams(draw):
    duration = draw(st.integers(min_value=1, max_value=10))
    rows = []
    for _ in range(duration):
        support = draw(st.lists(locations, min_size=1, max_size=4,
                                unique=True))
        weights = [draw(st.floats(min_value=0.1, max_value=1.0))
                   for _ in support]
        total = sum(weights)
        rows.append({l: w / total for l, w in zip(support, weights)})
    constraint_list = []
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        kind = draw(st.sampled_from(["du", "lt", "tt"]))
        if kind == "du":
            constraint_list.append(Unreachable(draw(locations),
                                               draw(locations)))
        elif kind == "lt":
            constraint_list.append(Latency(draw(locations),
                                           draw(st.integers(2, 3))))
        else:
            a = draw(locations)
            b = draw(locations.filter(lambda x: x != a))
            constraint_list.append(TravelingTime(a, b,
                                                 draw(st.integers(2, 3))))
    window = draw(st.integers(min_value=1, max_value=4))
    return rows, ConstraintSet(constraint_list), window


@settings(max_examples=150, deadline=None)
@given(streams())
def test_eviction_is_invisible_to_the_filtered_estimate(stream):
    rows, constraints, window = stream
    bounded = StreamingCleaner(constraints, window=window)
    unbounded = IncrementalCleaner(constraints)
    for row in rows:
        try:
            unbounded.extend(row)
        except InconsistentReadingsError:
            with pytest.raises(InconsistentReadingsError):
                bounded.extend(row)
            return
        bounded.extend(row)
        assert bounded.filtered_distribution() == \
            unbounded.filtered_distribution()
    assert bounded.retained_duration <= window


@settings(max_examples=150, deadline=None)
@given(streams(), st.data())
def test_resume_equals_uninterrupted_run(stream, data):
    rows, constraints, window = stream
    uninterrupted = StreamingCleaner(constraints, window=window)
    try:
        for row in rows:
            uninterrupted.extend(row)
    except InconsistentReadingsError:
        return
    kill_at = data.draw(st.integers(min_value=1, max_value=len(rows)),
                        label="kill_at")
    killed = StreamingCleaner(constraints, window=window)
    for row in rows[:kill_at]:
        killed.extend(row)
    import os, tempfile
    fd, path = tempfile.mkstemp(suffix=".ckpt")
    os.close(fd)
    try:
        killed.checkpoint(path)
        resumed = StreamingCleaner.resume(path)
        for row in rows[kill_at:]:
            resumed.extend(row)
        assert resumed.filtered_distribution() == \
            uninterrupted.filtered_distribution()
        graph_a = uninterrupted.finalize()
        graph_b = resumed.finalize()
        for relative in range(uninterrupted.retained_duration):
            assert graph_a.location_marginal(relative) == \
                graph_b.location_marginal(relative)
    finally:
        os.unlink(path)


@settings(max_examples=100, deadline=None)
@given(streams())
def test_window_finalize_matches_full_graph(stream):
    rows, constraints, window = stream
    cleaner = StreamingCleaner(constraints, window=window)
    try:
        for row in rows:
            cleaner.extend(row)
        full = build_ct_graph(LSequence(rows), constraints)
    except InconsistentReadingsError:
        return
    window_graph = cleaner.finalize()
    for relative in range(cleaner.retained_duration):
        expected = full.location_marginal(cleaner.base + relative)
        got = window_graph.location_marginal(relative)
        assert set(got) == set(expected)
        for location, probability in expected.items():
            assert got[location] == pytest.approx(probability, abs=1e-9)
