"""The sharded streaming fleet: routing, engine, manifest, merge.

The heavyweight guarantee — ``--shards N`` stdout is byte-identical to
``--shards 1`` — is pinned end to end through the CLI in
``tests/test_cli.py``; this module covers the pieces: the stable
object-id hash, :class:`~repro.runtime.shards.ServeEngine`'s serve
semantics (resume skipping, drops, estimates, stats), the
``shards.json`` manifest, and an in-process
:class:`~repro.runtime.shards.StreamShardPool` run against the
single-engine reference with exact ``--max-readings`` accounting.
"""

import io
import json
import random

import pytest

from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.errors import ReadingSequenceError, StoreFormatError
from repro.io.jsonio import save_constraints
from repro.runtime.sessions import StreamSessionManager
from repro.runtime.shards import ServeEngine, StreamShardPool, shard_of
from repro.store.format import (
    SHARD_MANIFEST,
    ensure_shard_manifest,
    read_shard_manifest,
)

CONSTRAINTS = ConstraintSet([Unreachable("A", "D"),
                             TravelingTime("B", "D", 3),
                             Latency("C", 2)])


def stream_lines(objects=4, steps=30, seed=11):
    rng = random.Random(seed)
    lines = []
    for _ in range(steps):
        for index in range(objects):
            weights = [rng.random() + 0.05 for _ in "ABCD"]
            total = sum(weights)
            row = {l: w / total for l, w in zip("ABCD", weights)}
            lines.append(json.dumps({"object": f"tag-{index}",
                                     "candidates": row}) + "\n")
    return lines


# ----------------------------------------------------------------------
# routing hash
# ----------------------------------------------------------------------

class TestShardOf:
    def test_is_stable_across_calls_and_in_range(self):
        for object_id in ("tag-1", "tag-2", "", "ütf-8 ıd"):
            first = shard_of(object_id, 4)
            assert 0 <= first < 4
            assert shard_of(object_id, 4) == first

    def test_spreads_objects(self):
        hit = {shard_of(f"object-{i}", 8) for i in range(200)}
        assert hit == set(range(8))


# ----------------------------------------------------------------------
# ServeEngine semantics
# ----------------------------------------------------------------------

class TestServeEngine:
    def row(self, seed):
        rng = random.Random(seed)
        weights = [rng.random() + 0.05 for _ in "ABCD"]
        total = sum(weights)
        return {l: w / total for l, w in zip("ABCD", weights)}

    def test_estimate_and_drop_lines(self):
        engine = ServeEngine(StreamSessionManager(CONSTRAINTS),
                             estimate_every=2)
        ingested, out, err = engine.process("t", {"A": 1.0})
        assert ingested and out == [] and err == []
        # A -> D is unreachable: dropped, session untouched.
        ingested, out, err = engine.process("t", {"D": 1.0})
        assert not ingested
        payload = json.loads(out[0])
        assert payload["t"] == 1
        assert "InconsistentReadingsError" in payload["dropped"]
        ingested, out, err = engine.process("t", {"A": 1.0})
        assert ingested
        assert json.loads(out[0])["estimate"] == {"A": 1.0}
        assert engine.ingested == 2

    def test_resume_skipping(self, tmp_path):
        manager = StreamSessionManager(CONSTRAINTS,
                                       checkpoint_dir=tmp_path)
        manager.ingest("t", {"A": 1.0})
        manager.ingest("t", {"B": 1.0})
        manager.checkpoint_all()
        resumed = StreamSessionManager(CONSTRAINTS,
                                       checkpoint_dir=tmp_path,
                                       resume=True)
        engine = ServeEngine(resumed)
        assert engine.process("t", {"A": 1.0}) == (False, [], [])
        assert engine.process("t", {"B": 1.0}) == (False, [], [])
        ingested, _, _ = engine.process("t", {"B": 1.0})
        assert ingested
        assert resumed.session("t").duration == 3

    def test_stats_lines_and_final_block(self, tmp_path):
        manager = StreamSessionManager(CONSTRAINTS,
                                       checkpoint_dir=tmp_path,
                                       checkpoint_every=4)
        engine = ServeEngine(manager, stats_every=2)
        stats_lines = []
        for seed in range(6):
            _, _, err = engine.process("t", self.row(seed))
            stats_lines.extend(err)
        assert len(stats_lines) == 3
        assert "object=t" in stats_lines[0]
        assert "frontier_states=" in stats_lines[0]
        # Lag counts since the last periodic checkpoint (every 4).
        assert "checkpoint_lag=2" in stats_lines[0]
        assert "checkpoint_lag=0" in stats_lines[1]
        assert "checkpoint_lag=2" in stats_lines[2]
        (object_id, line), = engine.final_entries()
        assert object_id == "t"
        stats = json.loads(line)["stats"]
        assert stats["ingested"] == 6
        assert stats["checkpoint_lag"] == 2
        summary = engine.summary_line("fleet")
        assert "ingested=6" in summary

    def test_finals_without_stats_have_no_stats_block(self):
        engine = ServeEngine(StreamSessionManager(CONSTRAINTS))
        engine.process("t", {"A": 1.0})
        (_, line), = engine.final_entries()
        assert "stats" not in json.loads(line)


class TestCheckpointLag:
    def test_counts_without_checkpointing_enabled(self):
        manager = StreamSessionManager(CONSTRAINTS)
        assert manager.checkpoint_lag("t") == 0
        manager.ingest("t", {"A": 1.0})
        manager.ingest("t", {"B": 1.0})
        assert manager.checkpoint_lag("t") == 2

    def test_resets_on_explicit_checkpoint(self, tmp_path):
        manager = StreamSessionManager(CONSTRAINTS,
                                       checkpoint_dir=tmp_path)
        manager.ingest("t", {"A": 1.0})
        assert manager.checkpoint_lag("t") == 1
        manager.checkpoint("t")
        assert manager.checkpoint_lag("t") == 0


# ----------------------------------------------------------------------
# shards.json manifest
# ----------------------------------------------------------------------

class TestShardManifest:
    def test_absent_means_flat_layout(self, tmp_path):
        assert read_shard_manifest(tmp_path) is None
        ensure_shard_manifest(tmp_path, 1)
        assert not (tmp_path / SHARD_MANIFEST).exists()

    def test_written_and_reread(self, tmp_path):
        ensure_shard_manifest(tmp_path / "fresh", 3)
        assert read_shard_manifest(tmp_path / "fresh") == 3
        # Idempotent under the same count.
        ensure_shard_manifest(tmp_path / "fresh", 3)

    def test_mismatch_refused(self, tmp_path):
        ensure_shard_manifest(tmp_path, 2)
        with pytest.raises(StoreFormatError, match="--shards 2"):
            ensure_shard_manifest(tmp_path, 4)
        with pytest.raises(StoreFormatError, match="--shards 2"):
            ensure_shard_manifest(tmp_path, 1)

    def test_corrupt_manifest_is_a_typed_error(self, tmp_path):
        (tmp_path / SHARD_MANIFEST).write_text("{not json")
        with pytest.raises(StoreFormatError, match="unreadable"):
            read_shard_manifest(tmp_path)
        (tmp_path / SHARD_MANIFEST).write_text('{"format": "wrong"}')
        with pytest.raises(StoreFormatError, match="manifest"):
            read_shard_manifest(tmp_path)


# ----------------------------------------------------------------------
# the pool, in process
# ----------------------------------------------------------------------

def single_process_output(constraints_file, lines, *, estimate_every=0,
                          max_readings=None):
    manager = StreamSessionManager(CONSTRAINTS)
    engine = ServeEngine(manager, estimate_every=estimate_every)
    out = io.StringIO()
    for line in lines:
        if max_readings is not None and engine.ingested >= max_readings:
            break
        payload = json.loads(line)
        _, out_lines, _ = engine.process(payload["object"],
                                         payload["candidates"])
        for rendered in out_lines:
            out.write(rendered + "\n")
    for _object_id, rendered in engine.final_entries():
        out.write(rendered + "\n")
    return out.getvalue(), engine.ingested


class TestStreamShardPool:
    def test_needs_two_shards(self):
        with pytest.raises(ReadingSequenceError, match="at least 2"):
            StreamShardPool(1, constraints_file="x", window=4)

    def test_merged_output_matches_single_engine(self, tmp_path):
        constraints_file = tmp_path / "constraints.json"
        save_constraints(CONSTRAINTS, constraints_file)
        lines = stream_lines()
        expected, _ = single_process_output(constraints_file, lines,
                                            estimate_every=7)
        out, err = io.StringIO(), io.StringIO()
        with StreamShardPool(2, constraints_file=str(constraints_file),
                             window=64, estimate_every=7) as pool:
            pool.serve(lines, out, err)
            pool.finish(out, err)
        assert out.getvalue() == expected

    def test_max_readings_is_exact(self, tmp_path):
        constraints_file = tmp_path / "constraints.json"
        save_constraints(CONSTRAINTS, constraints_file)
        lines = stream_lines()
        expected, expected_ingested = single_process_output(
            constraints_file, lines, max_readings=37)
        assert expected_ingested == 37
        out, err = io.StringIO(), io.StringIO()
        with StreamShardPool(3, constraints_file=str(constraints_file),
                             window=64) as pool:
            ingested = pool.serve(lines, out, err, max_readings=37)
            pool.finish(out, err)
        assert ingested == 37
        assert out.getvalue() == expected

    def test_worker_checkpoints_live_in_shard_subdirectories(self,
                                                             tmp_path):
        constraints_file = tmp_path / "constraints.json"
        save_constraints(CONSTRAINTS, constraints_file)
        ckpt = tmp_path / "ckpt"
        out, err = io.StringIO(), io.StringIO()
        with StreamShardPool(2, constraints_file=str(constraints_file),
                             window=64,
                             checkpoint_dir=str(ckpt)) as pool:
            pool.serve(stream_lines(steps=5), out, err)
            pool.finish(out, err)
        files = sorted(path.parent.name for path in ckpt.glob("**/*.ckpt"))
        assert files and set(files) <= {"shard-00", "shard-01"}
        assert err.getvalue().count("serve: checkpointed") == 4
