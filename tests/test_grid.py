"""Tests for the grid partitioning of a building."""

import pytest

from repro.errors import MapModelError
from repro.geometry import Point
from repro.mapmodel.grid import Grid


class TestGridConstruction:
    def test_bad_cell_size_rejected(self, two_rooms):
        with pytest.raises(MapModelError):
            Grid(two_rooms, 0.0)
        with pytest.raises(MapModelError):
            Grid(two_rooms, -1.0)

    def test_cell_count_matches_area(self, two_rooms):
        # Two 5x5 rooms at 0.5 m cells: (10 * 10) * 2 = 200 cells.
        grid = Grid(two_rooms, 0.5)
        assert grid.num_cells == 200

    def test_cells_split_between_rooms(self, two_rooms):
        grid = Grid(two_rooms, 0.5)
        assert len(grid.cells_of("A")) == 100
        assert len(grid.cells_of("B")) == 100

    def test_cells_of_unknown_location(self, two_rooms):
        grid = Grid(two_rooms)
        with pytest.raises(MapModelError):
            grid.cells_of("Z")

    def test_indices_are_dense_and_ordered(self, two_rooms):
        grid = Grid(two_rooms, 1.0)
        indices = [cell.index for cell in grid.cells]
        assert indices == list(range(grid.num_cells))


class TestCellLookup:
    def test_cell_at_returns_containing_cell(self, two_rooms):
        grid = Grid(two_rooms, 0.5)
        cell = grid.cell_at(0, Point(0.6, 0.6))
        assert cell is not None
        assert cell.location == "A"
        assert cell.center == Point(0.75, 0.75)

    def test_cell_at_other_room(self, two_rooms):
        grid = Grid(two_rooms, 0.5)
        cell = grid.cell_at(0, Point(9.9, 4.9))
        assert cell is not None
        assert cell.location == "B"

    def test_cell_at_outside_returns_none(self, two_rooms):
        grid = Grid(two_rooms, 0.5)
        assert grid.cell_at(0, Point(50, 50)) is None
        assert grid.cell_at(7, Point(1, 1)) is None

    def test_round_trip_center(self, one_floor):
        grid = Grid(one_floor, 0.5)
        for cell in list(grid.cells)[::37]:
            looked_up = grid.cell_at(cell.floor, cell.center)
            assert looked_up is not None
            assert looked_up.index == cell.index


class TestLocationIndexArray:
    def test_matches_cell_assignment(self, two_rooms):
        pytest.importorskip("numpy", exc_type=ImportError)  # the index array is an ndarray
        grid = Grid(two_rooms, 1.0)
        ids = grid.location_index_array()
        names = two_rooms.location_names
        for cell in grid.cells:
            assert names[ids[cell.index]] == cell.location

    def test_multi_floor_cells_have_floor_tags(self, two_floors):
        grid = Grid(two_floors, 1.0)
        floors = {cell.floor for cell in grid.cells}
        assert floors == {0, 1}
