"""Unit tests for the planar geometry primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point, Rect, Segment

finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False,
                   allow_infinity=False)


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_to_self_is_zero(self):
        p = Point(2.5, -1.0)
        assert p.distance_to(p) == 0.0

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_towards_moves_partway(self):
        moved = Point(0, 0).towards(Point(10, 0), 4)
        assert moved == Point(4, 0)

    def test_towards_can_overshoot(self):
        moved = Point(0, 0).towards(Point(1, 0), 5)
        assert moved.x == pytest.approx(5.0)

    def test_towards_degenerate_direction(self):
        p = Point(3, 3)
        assert p.towards(p, 10) == p

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)

    @given(finite, finite, finite, finite)
    def test_distance_symmetry(self, x0, y0, x1, y1):
        a, b = Point(x0, y0), Point(x1, y1)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(finite, finite, finite, finite,
           st.floats(min_value=0, max_value=100))
    def test_towards_lands_at_requested_distance(self, x0, y0, x1, y1, d):
        a, b = Point(x0, y0), Point(x1, y1)
        if a.distance_to(b) < 1e-6:
            return
        moved = a.towards(b, d)
        assert a.distance_to(moved) == pytest.approx(d, abs=1e-6)


class TestRect:
    def test_invalid_corners_rejected(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 1, 0)

    def test_dimensions(self):
        r = Rect(1, 2, 4, 8)
        assert r.width == 3
        assert r.height == 6
        assert r.area == 18
        assert r.center == Point(2.5, 5.0)

    def test_contains_boundary_inclusive(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains(Point(0, 0))
        assert r.contains(Point(2, 2))
        assert r.contains(Point(1, 1))
        assert not r.contains(Point(2.1, 1))

    def test_contains_strict_excludes_boundary(self):
        r = Rect(0, 0, 2, 2)
        assert not r.contains_strict(Point(0, 1))
        assert r.contains_strict(Point(1, 1))

    def test_clamp_projects_outside_points(self):
        r = Rect(0, 0, 2, 2)
        assert r.clamp(Point(5, 1)) == Point(2, 1)
        assert r.clamp(Point(-1, -1)) == Point(0, 0)
        assert r.clamp(Point(1, 1)) == Point(1, 1)

    def test_intersects(self):
        a = Rect(0, 0, 2, 2)
        assert a.intersects(Rect(1, 1, 3, 3))
        assert a.intersects(Rect(2, 0, 4, 2))   # touching edge counts
        assert not a.intersects(Rect(2.5, 0, 4, 2))

    def test_edges_form_closed_loop(self):
        edges = list(Rect(0, 0, 1, 2).edges())
        assert len(edges) == 4
        perimeter = sum(edge.length for edge in edges)
        assert perimeter == pytest.approx(6.0)


class TestSegment:
    def test_length_and_midpoint(self):
        s = Segment(Point(0, 0), Point(4, 0))
        assert s.length == 4
        assert s.midpoint == Point(2, 0)

    def test_crossing_segments_intersect(self):
        a = Segment(Point(0, 0), Point(2, 2))
        b = Segment(Point(0, 2), Point(2, 0))
        assert a.intersects(b)
        assert b.intersects(a)

    def test_parallel_segments_do_not_intersect(self):
        a = Segment(Point(0, 0), Point(2, 0))
        b = Segment(Point(0, 1), Point(2, 1))
        assert not a.intersects(b)

    def test_collinear_overlapping_segments_intersect(self):
        a = Segment(Point(0, 0), Point(2, 0))
        b = Segment(Point(1, 0), Point(3, 0))
        assert a.intersects(b)

    def test_collinear_disjoint_segments_do_not_intersect(self):
        a = Segment(Point(0, 0), Point(1, 0))
        b = Segment(Point(2, 0), Point(3, 0))
        assert not a.intersects(b)

    def test_touching_at_endpoint_intersects(self):
        a = Segment(Point(0, 0), Point(1, 1))
        b = Segment(Point(1, 1), Point(2, 0))
        assert a.intersects(b)

    def test_distance_to_point_on_segment(self):
        s = Segment(Point(0, 0), Point(4, 0))
        assert s.distance_to_point(Point(2, 0)) == 0.0

    def test_distance_to_point_perpendicular(self):
        s = Segment(Point(0, 0), Point(4, 0))
        assert s.distance_to_point(Point(2, 3)) == pytest.approx(3.0)

    def test_distance_to_point_beyond_end(self):
        s = Segment(Point(0, 0), Point(4, 0))
        assert s.distance_to_point(Point(7, 4)) == pytest.approx(5.0)

    def test_degenerate_segment_distance(self):
        s = Segment(Point(1, 1), Point(1, 1))
        assert s.distance_to_point(Point(4, 5)) == pytest.approx(5.0)
