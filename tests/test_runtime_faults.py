"""Fault-injection tests for the fault-tolerant batch runtime.

The contract under test (docs/runtime.md, "Failure semantics"): a worker
crash or a per-object deadline miss fails *that object's* outcome — with
the right ``error_type``, in input order — while every surviving object's
graph stays bit-identical to a sequential ``build_ct_graph`` run, under
both ``fork`` and ``spawn`` start methods.
"""

import multiprocessing

import pytest

from repro.core.algorithm import build_ct_graph
from repro.core.constraints import ConstraintSet, Latency, Unreachable
from repro.core.lsequence import LSequence
from repro.errors import (
    BatchConfigurationError,
    CleaningTimeoutError,
    ReproError,
    WorkerCrashError,
)
from repro.runtime import BatchCleaner, clean_many
from repro.runtime.faults import CrashingSequence, SlowSequence

CONSTRAINTS = ConstraintSet([
    Unreachable("A", "C"), Unreachable("C", "A"), Latency("B", 2),
])

_PHASES = (
    {"A": 0.4, "B": 0.4, "C": 0.2},
    {"B": 0.6, "D": 0.4},
    {"B": 0.5, "C": 0.3, "D": 0.2},
    {"A": 0.5, "B": 0.5},
)

#: Both start methods where the platform offers them (Linux CI runs both;
#: Windows/macOS default installs only expose spawn).
START_METHODS = [method for method in ("fork", "spawn")
                 if method in multiprocessing.get_all_start_methods()]

#: Generous per-object budget for the timeout tests: it must absorb pool
#: spin-up (slow under spawn) yet stay far below the straggler's sleep.
TIMEOUT = 3.0
SLEEP = 60.0


def make_lsequence(duration, offset=0):
    return LSequence([_PHASES[(tau + offset) % len(_PHASES)]
                      for tau in range(duration)])


def assert_bit_identical(outcome, sequence):
    expected = build_ct_graph(sequence, CONSTRAINTS)
    assert outcome.ok
    assert list(outcome.graph.paths()) == list(expected.paths())


@pytest.mark.parametrize("start_method", START_METHODS)
class TestWorkerCrash:
    def test_crash_quarantined_siblings_bit_identical(self, start_method):
        workload = [make_lsequence(6, 0), CrashingSequence(),
                    make_lsequence(6, 1)]
        result = clean_many(workload, CONSTRAINTS, workers=2,
                            start_method=start_method)
        assert [outcome.ok for outcome in result] == [True, False, True]
        assert [outcome.index for outcome in result] == [0, 1, 2]
        failed = result[1]
        assert failed.error_type == "WorkerCrashError"
        assert "quarantined" in failed.error
        assert [o.index for o in result.failures] == [1]
        assert result.respawns >= 1
        assert_bit_identical(result[0], workload[0])
        assert_bit_identical(result[2], workload[2])

    def test_timeout_quarantined_siblings_bit_identical(self, start_method):
        slow = SlowSequence([{"A": 1.0}, {"B": 1.0}], seconds=SLEEP)
        workload = [make_lsequence(6, 0), slow, make_lsequence(6, 1)]
        result = clean_many(workload, CONSTRAINTS, workers=2,
                            timeout_seconds=TIMEOUT,
                            start_method=start_method)
        assert [outcome.ok for outcome in result] == [True, False, True]
        assert [outcome.index for outcome in result] == [0, 1, 2]
        failed = result[1]
        assert failed.error_type == "CleaningTimeoutError"
        assert "wall-clock" in failed.error
        assert failed.seconds >= TIMEOUT
        assert [o.index for o in result.failures] == [1]
        assert result.respawns >= 1
        assert_bit_identical(result[0], workload[0])
        assert_bit_identical(result[2], workload[2])


class TestCrashRecoveryDetails:
    """Fork-only coverage of the recovery machinery's corners (the start
    method moves where processes come from, not how the parent reacts)."""

    def test_multi_object_chunks_are_bisected_around_the_poison(self):
        workload = [make_lsequence(5, offset) for offset in range(6)]
        workload.insert(3, CrashingSequence())
        result = clean_many(workload, CONSTRAINTS, workers=2, chunk_size=4)
        assert result[3].error_type == "WorkerCrashError"
        assert [o.index for o in result.failures] == [3]
        for index, sequence in enumerate(workload):
            if index != 3:
                assert_bit_identical(result[index], sequence)

    def test_max_retries_zero_quarantines_on_first_confirmed_crash(self):
        workload = [CrashingSequence(), make_lsequence(4)]
        eager = clean_many(workload, CONSTRAINTS, workers=2, max_retries=0)
        patient = clean_many(workload, CONSTRAINTS, workers=2, max_retries=2)
        for result in (eager, patient):
            assert result[0].error_type == "WorkerCrashError"
            assert result[1].ok
        # Every extra permitted retry costs at least one more pool respawn.
        assert patient.respawns > eager.respawns

    def test_all_objects_crashing_still_terminates(self):
        result = clean_many([CrashingSequence(), CrashingSequence()],
                            CONSTRAINTS, workers=2, max_retries=0)
        assert [o.error_type for o in result] == ["WorkerCrashError"] * 2
        assert result.cleaned == 0

    def test_timeout_supervises_even_workers_1(self):
        # Asking for a deadline opts out of the in-process path: a stuck
        # object cannot supervise itself.
        slow = SlowSequence([{"A": 1.0}], seconds=SLEEP)
        result = clean_many([slow, make_lsequence(4)], CONSTRAINTS,
                            workers=1, timeout_seconds=TIMEOUT)
        assert result.workers == 1
        assert result[0].error_type == "CleaningTimeoutError"
        assert result[1].ok

    def test_fast_objects_clean_normally_under_a_deadline(self):
        workload = [make_lsequence(6, offset) for offset in range(4)]
        result = clean_many(workload, CONSTRAINTS, workers=2,
                            timeout_seconds=30.0)
        assert result.cleaned == len(workload)
        assert result.respawns == 0
        assert result.chunk_size == 1  # deadlines imply per-object tasks
        for outcome, sequence in zip(result, workload):
            assert_bit_identical(outcome, sequence)

    def test_domain_errors_still_fail_softly_not_as_crashes(self):
        poison = LSequence([{"A": 1.0}, {"C": 1.0}])   # zero valid mass
        result = clean_many([poison, make_lsequence(4)], CONSTRAINTS,
                            workers=2, timeout_seconds=30.0)
        assert result[0].error_type == "ZeroMassError"
        assert result[1].ok
        assert result.respawns == 0


class TestConfigurationValidation:
    def test_bad_values_raise_batch_configuration_error(self):
        for kwargs in ({"timeout_seconds": 0.0}, {"timeout_seconds": -1.0},
                       {"max_retries": -1}, {"workers": 0},
                       {"chunk_size": 0},
                       {"start_method": "no-such-method"}):
            with pytest.raises(BatchConfigurationError):
                BatchCleaner(CONSTRAINTS, **kwargs)

    def test_batch_configuration_error_is_both_taxonomies(self):
        # New code catches the library's ReproError; pre-existing callers
        # caught ValueError — the subclassing serves both.
        assert issubclass(BatchConfigurationError, ReproError)
        assert issubclass(BatchConfigurationError, ValueError)
        with pytest.raises(ValueError):
            BatchCleaner(CONSTRAINTS, workers=0)
        with pytest.raises(ReproError):
            clean_many([make_lsequence(3)], [CONSTRAINTS, CONSTRAINTS],
                       workers=1)

    def test_fault_error_types_exported_in_taxonomy(self):
        assert issubclass(WorkerCrashError, ReproError)
        assert issubclass(CleaningTimeoutError, ReproError)
