"""Tests for group conditioning (objects moving together)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.algorithm import build_ct_graph
from repro.core.constraints import ConstraintSet, Latency, Unreachable
from repro.core.groups import condition_on_meeting
from repro.core.lsequence import LSequence
from repro.core.naive import NaiveConditioner
from repro.errors import InconsistentReadingsError, QueryError


def joint_by_enumeration(ls_a, ls_b, constraints):
    """Reference: condition the product of the two cleaned distributions
    on 'same trajectory'."""
    a = NaiveConditioner(ls_a, constraints).conditioned_distribution()
    b = NaiveConditioner(ls_b, constraints).conditioned_distribution()
    joint = {t: a[t] * b[t] for t in set(a) & set(b)}
    total = sum(joint.values())
    if total <= 0.0:
        raise InconsistentReadingsError("no common trajectory")
    return {t: p / total for t, p in joint.items()}


@pytest.fixture
def pair_case():
    constraints = ConstraintSet([Unreachable("A", "C"), Latency("B", 2)])
    ls_a = LSequence([{"A": 0.5, "B": 0.5}, {"B": 0.7, "C": 0.3},
                      {"B": 0.5, "C": 0.5}])
    ls_b = LSequence([{"A": 0.2, "B": 0.8}, {"B": 0.4, "C": 0.6},
                      {"B": 0.9, "C": 0.1}])
    graph_a = build_ct_graph(ls_a, constraints)
    graph_b = build_ct_graph(ls_b, constraints)
    return constraints, ls_a, ls_b, graph_a, graph_b


class TestConditionOnMeeting:
    def test_duration_mismatch_rejected(self, pair_case):
        constraints, ls_a, _, graph_a, _ = pair_case
        short = build_ct_graph(LSequence([{"A": 1.0}]), ConstraintSet())
        with pytest.raises(QueryError):
            condition_on_meeting(graph_a, short)

    def test_joint_matches_enumeration(self, pair_case):
        constraints, ls_a, ls_b, graph_a, graph_b = pair_case
        joint = condition_on_meeting(graph_a, graph_b)
        expected = joint_by_enumeration(ls_a, ls_b, constraints)
        got = dict(joint.paths())
        assert set(got) == set(expected)
        for trajectory, probability in expected.items():
            assert got[trajectory] == pytest.approx(probability)

    def test_paths_sum_to_one(self, pair_case):
        _, _, _, graph_a, graph_b = pair_case
        joint = condition_on_meeting(graph_a, graph_b)
        assert math.fsum(p for _, p in joint.paths()) == pytest.approx(1.0)

    def test_marginals_sum_to_one(self, pair_case):
        _, _, _, graph_a, graph_b = pair_case
        joint = condition_on_meeting(graph_a, graph_b)
        for tau in range(joint.duration):
            assert math.fsum(joint.location_marginal(tau).values()) \
                == pytest.approx(1.0)

    def test_trajectory_probability(self, pair_case):
        constraints, ls_a, ls_b, graph_a, graph_b = pair_case
        joint = condition_on_meeting(graph_a, graph_b)
        expected = joint_by_enumeration(ls_a, ls_b, constraints)
        for trajectory, probability in expected.items():
            assert joint.trajectory_probability(trajectory) \
                == pytest.approx(probability)
        assert joint.trajectory_probability(("A", "C", "C")) == 0.0
        with pytest.raises(QueryError):
            joint.trajectory_probability(("A",))

    def test_disjoint_starts_are_inconsistent(self):
        constraints = ConstraintSet()
        graph_a = build_ct_graph(LSequence([{"A": 1.0}, {"A": 1.0}]),
                                 constraints)
        graph_b = build_ct_graph(LSequence([{"B": 1.0}, {"B": 1.0}]),
                                 constraints)
        with pytest.raises(InconsistentReadingsError):
            condition_on_meeting(graph_a, graph_b)

    def test_divergence_later_is_inconsistent(self):
        constraints = ConstraintSet()
        graph_a = build_ct_graph(LSequence([{"A": 1.0}, {"B": 1.0}]),
                                 constraints)
        graph_b = build_ct_graph(LSequence([{"A": 1.0}, {"C": 1.0}]),
                                 constraints)
        with pytest.raises(InconsistentReadingsError):
            condition_on_meeting(graph_a, graph_b)

    def test_pattern_queries_work_on_joint_graphs(self, pair_case):
        """TrajectoryQuery's DP only needs sources/edges/locations, so it
        runs unchanged on a JointGraph."""
        from repro.queries.trajectory import TrajectoryQuery
        constraints, ls_a, ls_b, graph_a, graph_b = pair_case
        joint = condition_on_meeting(graph_a, graph_b)
        expected_dist = joint_by_enumeration(ls_a, ls_b, constraints)
        for text in ("? B ?", "? C ?", "? B[2] ?"):
            query = TrajectoryQuery(text)
            expected = sum(p for t, p in expected_dist.items()
                           if query.matches(t))
            assert query.probability(joint) == pytest.approx(expected), text

    def test_meeting_sharpens_marginals(self, pair_case):
        """Pooling two objects' evidence should not increase uncertainty."""
        _, ls_a, _, graph_a, graph_b = pair_case
        joint = condition_on_meeting(graph_a, graph_b)

        def entropy(distribution):
            return -sum(p * math.log2(p)
                        for p in distribution.values() if p > 0)

        total_single = sum(entropy(graph_a.location_marginal(tau))
                           for tau in range(graph_a.duration))
        total_joint = sum(entropy(joint.location_marginal(tau))
                          for tau in range(joint.duration))
        assert total_joint <= total_single + 1e-9


class TestConditionGroup:
    def test_needs_two_graphs(self, pair_case):
        from repro.core.groups import condition_group
        _, _, _, graph_a, _ = pair_case
        with pytest.raises(QueryError):
            condition_group([graph_a])

    def test_three_way_matches_enumeration(self):
        from repro.core.groups import condition_group

        constraints = ConstraintSet([Unreachable("A", "C")])
        sequences = [
            LSequence([{"A": 0.5, "B": 0.5}, {"B": 0.6, "C": 0.4}]),
            LSequence([{"A": 0.3, "B": 0.7}, {"B": 0.5, "C": 0.5}]),
            LSequence([{"A": 0.8, "B": 0.2}, {"B": 0.4, "C": 0.6}]),
        ]
        graphs = [build_ct_graph(ls, constraints) for ls in sequences]
        joint = condition_group(graphs)

        # Reference: product of the three conditioned distributions over
        # common trajectories, renormalised.
        dists = [NaiveConditioner(ls, constraints).conditioned_distribution()
                 for ls in sequences]
        common = set(dists[0]) & set(dists[1]) & set(dists[2])
        raw = {t: dists[0][t] * dists[1][t] * dists[2][t] for t in common}
        total = sum(raw.values())
        expected = {t: p / total for t, p in raw.items()}

        got = dict(joint.paths())
        assert set(got) == set(expected)
        for trajectory, probability in expected.items():
            assert got[trajectory] == pytest.approx(probability)

    def test_fold_order_does_not_matter(self, pair_case):
        from repro.core.groups import condition_group
        constraints, ls_a, ls_b, graph_a, graph_b = pair_case
        ls_c = LSequence([{"A": 0.4, "B": 0.6}, {"B": 0.8, "C": 0.2},
                          {"B": 0.5, "C": 0.5}])
        graph_c = build_ct_graph(ls_c, constraints)
        abc = dict(condition_group([graph_a, graph_b, graph_c]).paths())
        cba = dict(condition_group([graph_c, graph_b, graph_a]).paths())
        assert set(abc) == set(cba)
        for trajectory, probability in abc.items():
            assert cba[trajectory] == pytest.approx(probability)


# ----------------------------------------------------------------------
# property test vs enumeration
# ----------------------------------------------------------------------

locations = st.sampled_from("ABC")


@st.composite
def joint_instances(draw):
    duration = draw(st.integers(min_value=1, max_value=4))

    def lseq():
        rows = []
        for _ in range(duration):
            support = draw(st.lists(locations, min_size=1, max_size=3,
                                    unique=True))
            weights = [draw(st.floats(min_value=0.1, max_value=1.0))
                       for _ in support]
            total = sum(weights)
            rows.append({l: w / total for l, w in zip(support, weights)})
        return LSequence(rows)

    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        if draw(st.booleans()):
            constraints.append(Unreachable(draw(locations), draw(locations)))
        else:
            constraints.append(Latency(draw(locations), draw(st.integers(2, 3))))
    return lseq(), lseq(), ConstraintSet(constraints)


@settings(max_examples=150, deadline=None)
@given(joint_instances())
def test_joint_property(instance):
    ls_a, ls_b, constraints = instance
    try:
        graph_a = build_ct_graph(ls_a, constraints)
        graph_b = build_ct_graph(ls_b, constraints)
    except InconsistentReadingsError:
        return
    try:
        expected = joint_by_enumeration(ls_a, ls_b, constraints)
    except InconsistentReadingsError:
        with pytest.raises(InconsistentReadingsError):
            condition_on_meeting(graph_a, graph_b)
        return
    joint = condition_on_meeting(graph_a, graph_b)
    got = dict(joint.paths())
    assert set(got) == set(expected)
    for trajectory, probability in expected.items():
        assert got[trajectory] == pytest.approx(probability, abs=1e-9)
