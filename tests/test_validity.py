"""Tests for Definition 2 trajectory validity."""

import pytest

from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.validity import is_valid_trajectory, stays_of, violations


class TestStaysOf:
    def test_single_location(self):
        assert list(stays_of(["A", "A", "A"])) == [(0, "A", 3)]

    def test_alternating(self):
        assert list(stays_of(["A", "B", "A"])) == [
            (0, "A", 1), (1, "B", 1), (2, "A", 1)]

    def test_mixed_runs(self):
        assert list(stays_of(["A", "A", "B", "B", "B", "A"])) == [
            (0, "A", 2), (2, "B", 3), (5, "A", 1)]

    def test_empty(self):
        assert list(stays_of([])) == []


class TestDirectUnreachability:
    def test_violating_step_detected(self):
        cs = ConstraintSet([Unreachable("A", "B")])
        assert not is_valid_trajectory(["A", "B"], cs)
        assert is_valid_trajectory(["B", "A"], cs)

    def test_violation_message(self):
        cs = ConstraintSet([Unreachable("A", "B")])
        (message,) = violations(["A", "B"], cs)
        assert "unreachable(A, B)" in message

    def test_self_du_forbids_staying(self):
        cs = ConstraintSet([Unreachable("A", "A")])
        assert not is_valid_trajectory(["A", "A"], cs)
        assert is_valid_trajectory(["A", "B", "A"], cs)


class TestLatency:
    def test_short_interior_stay_invalid(self):
        cs = ConstraintSet([Latency("B", 3)])
        assert not is_valid_trajectory(["A", "B", "B", "A"], cs)
        assert is_valid_trajectory(["A", "B", "B", "B", "A"], cs)

    def test_initial_stay_counts_from_zero(self):
        cs = ConstraintSet([Latency("A", 3)])
        assert not is_valid_trajectory(["A", "A", "B", "B"], cs)
        assert is_valid_trajectory(["A", "A", "A", "B"], cs)

    def test_truncated_final_stay_lenient_vs_strict(self):
        cs = ConstraintSet([Latency("B", 4)])
        trajectory = ["A", "B", "B"]       # stay of 2 cut off by the window
        assert is_valid_trajectory(trajectory, cs)
        assert not is_valid_trajectory(trajectory, cs, strict_truncation=True)

    def test_exactly_meeting_the_bound(self):
        cs = ConstraintSet([Latency("B", 2)])
        assert is_valid_trajectory(["A", "B", "B", "A"], cs)

    def test_unrelated_locations_unaffected(self):
        cs = ConstraintSet([Latency("Z", 5)])
        assert is_valid_trajectory(["A", "B", "A"], cs)


class TestTravelingTime:
    def test_direct_move_violates(self):
        cs = ConstraintSet([TravelingTime("A", "B", 3)])
        assert not is_valid_trajectory(["A", "B"], cs)

    def test_too_fast_through_intermediate(self):
        cs = ConstraintSet([TravelingTime("A", "C", 3)])
        assert not is_valid_trajectory(["A", "B", "C"], cs)    # 2 < 3
        assert is_valid_trajectory(["A", "B", "B", "C"], cs)   # 3 >= 3

    def test_last_departure_binds(self):
        cs = ConstraintSet([TravelingTime("A", "C", 3)])
        # A at 0..2 (leaves at 2), C at 4: 4 - 2 = 2 < 3 -> invalid.
        assert not is_valid_trajectory(["A", "A", "A", "B", "C"], cs)
        # A leaves at 0, C at 3: 3 >= 3 -> valid.
        assert is_valid_trajectory(["A", "B", "B", "C"], cs)

    def test_revisits_checked_per_arrival(self):
        cs = ConstraintSet([TravelingTime("A", "C", 2)])
        # First arrival at C OK (gap 2); bounce out and back stays OK.
        assert is_valid_trajectory(["A", "B", "C", "B", "C"], cs)

    def test_direction_matters(self):
        cs = ConstraintSet([TravelingTime("A", "C", 3)])
        assert is_valid_trajectory(["C", "B", "A"], cs)

    def test_violation_message(self):
        cs = ConstraintSet([TravelingTime("A", "C", 3)])
        messages = violations(["A", "B", "C"], cs)
        assert any("travelingTime(A, C, 3)" in m for m in messages)


class TestCombined:
    def test_all_constraint_kinds_together(self, simple_constraints):
        # simple_constraints: DU A<->C, TT A->D >=3, LT B >= 2.
        assert is_valid_trajectory(["A", "B", "B", "D"], simple_constraints)
        assert not is_valid_trajectory(["A", "C"], simple_constraints)
        assert not is_valid_trajectory(["A", "B", "D", "D"],
                                       simple_constraints)  # TT and LT(B)

    def test_violations_lists_every_problem(self):
        cs = ConstraintSet([Unreachable("A", "B"), Latency("B", 3),
                            TravelingTime("A", "C", 4)])
        found = violations(["A", "B", "C"], cs)
        assert len(found) == 3

    def test_empty_constraints_accept_everything(self):
        cs = ConstraintSet()
        assert is_valid_trajectory(["A", "B", "C", "A"], cs)
        assert violations(["A", "B"], cs) == []

    def test_single_step_trajectory(self):
        cs = ConstraintSet([Latency("A", 3)])
        assert is_valid_trajectory(["A"], cs)                       # lenient
        assert not is_valid_trajectory(["A"], cs, strict_truncation=True)
