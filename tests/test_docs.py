"""Executable documentation: the walkthrough's code blocks must run.

Extracts every ```python fence from docs/walkthrough.md and executes them
in one shared namespace, so the document can never drift from the API.
"""

import re
from pathlib import Path

import pytest

WALKTHROUGH = Path(__file__).resolve().parent.parent / "docs" / "walkthrough.md"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _code_blocks():
    text = WALKTHROUGH.read_text()
    return _FENCE.findall(text)


def test_walkthrough_exists_and_has_code():
    assert WALKTHROUGH.exists()
    assert len(_code_blocks()) >= 5


def test_walkthrough_blocks_execute_in_order():
    # The walkthrough's simulation blocks import numpy directly.
    pytest.importorskip("numpy", exc_type=ImportError)
    namespace: dict = {}
    for index, block in enumerate(_code_blocks()):
        try:
            exec(compile(block, f"walkthrough-block-{index}", "exec"),
                 namespace)
        except Exception as error:      # pragma: no cover - diagnostic path
            pytest.fail(f"walkthrough block {index} failed: {error!r}\n"
                        f"---\n{block}")


def test_walkthrough_claims_hold():
    """Re-check the concrete numbers the prose states."""
    from repro import (
        ConstraintSet,
        LSequence,
        Unreachable,
        build_ct_graph,
    )

    lsequence = LSequence([
        {"A": 0.5, "B": 0.25, "C": 0.2, "D": 0.05},
        {"Z": 1.0},
    ])
    constraints = ConstraintSet([Unreachable("C", "Z"),
                                 Unreachable("D", "Z")])
    paths = dict(build_ct_graph(lsequence, constraints).paths())
    assert paths[("A", "Z")] == pytest.approx(2 / 3)
    assert paths[("B", "Z")] == pytest.approx(1 / 3)
