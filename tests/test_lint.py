"""Tests for the repro.lint engine-invariant linter (rules L001-L009)."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    LEGACY_CODES,
    LintFinding,
    LintRule,
    all_rules,
    lint_path,
    lint_source,
    main,
    register,
    rule_codes,
    suppressed_lines,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"


def codes_for(source: str) -> list:
    return [finding.code for finding in lint_source(textwrap.dedent(source))]


class TestRegistry:
    def test_at_least_eight_rules_registered(self):
        assert len(all_rules()) >= 8

    def test_codes_are_the_l_series(self):
        assert rule_codes() == ("L001", "L002", "L003", "L004",
                                "L005", "L006", "L007", "L008", "L009",
                                "L010")

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            assert rule.code and rule.title and rule.rationale

    def test_duplicate_code_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            @register
            class Clone(LintRule):  # noqa: F811 - intentionally clashing
                code = "L001"
                title = "clone"

    def test_codeless_rule_rejected(self):
        with pytest.raises(ValueError, match="no code"):
            @register
            class Codeless(LintRule):
                title = "no code at all"


class TestFixtures:
    """Each known-bad snippet triggers exactly its own rule."""

    @pytest.mark.parametrize("code", ["L001", "L002", "L003", "L004",
                                      "L005", "L006", "L007", "L008",
                                      "L009", "L010"])
    def test_bad_fixture_triggers_exactly_its_rule(self, code):
        fixture = FIXTURES / f"bad_{code.lower()}.py"
        findings = lint_path(fixture)
        assert findings, f"{fixture.name} triggered nothing"
        assert {finding.code for finding in findings} == {code}

    def test_clean_fixture_passes_every_rule(self):
        assert lint_path(FIXTURES / "clean_example.py") == []

    def test_fixture_lines_point_at_the_violation(self):
        findings = lint_path(FIXTURES / "bad_l001.py")
        sources = (FIXTURES / "bad_l001.py").read_text().splitlines()
        for finding in findings:
            assert "==" in sources[finding.line - 1] or \
                "!=" in sources[finding.line - 1]


class TestInternedMutation:
    def test_foreign_subscript_write_flagged(self):
        assert codes_for("cache._rows[0] = row\n") == ["L004"]

    def test_foreign_mutating_call_flagged(self):
        assert codes_for("plan._du_rows.update(rows)\n") == ["L004"]

    def test_foreign_rebinding_flagged(self):
        assert codes_for("cache._states = []\n") == ["L004"]

    def test_augassign_through_foreign_receiver_flagged(self):
        assert codes_for("cache._levels += [row]\n") == ["L004"]

    def test_self_mutation_allowed(self):
        assert codes_for(
            "class Cache:\n"
            "    def intern(self, key, row):\n"
            "        self._rows[key] = row\n"
            "        self._states.append(row)\n") == []

    def test_non_interned_attributes_allowed(self):
        assert codes_for("graph._node_marginals = None\n") == []

    def test_reads_allowed(self):
        assert codes_for("states = cache._states\n") == []


class TestSetIteration:
    def test_for_over_set_literal_flagged(self):
        assert codes_for("for x in {1, 2}:\n    pass\n") == ["L005"]

    def test_comprehension_over_set_call_flagged(self):
        assert codes_for("out = [x for x in set(items)]\n") == ["L005"]

    def test_list_of_set_flagged(self):
        assert codes_for("out = list(set(items))\n") == ["L005"]

    def test_membership_test_allowed(self):
        assert codes_for("ok = x in {1, 2, 3}\n") == []

    def test_sorted_set_allowed(self):
        assert codes_for("for x in sorted(set(items)):\n    pass\n") == []


class TestWorkerBoundary:
    def test_lambda_to_submit_flagged(self):
        assert codes_for("pool.submit(lambda: 1)\n") == ["L006"]

    def test_lambda_keyword_argument_flagged(self):
        assert codes_for("pool.apply_async(func=lambda: 1)\n") == ["L006"]

    def test_named_function_allowed(self):
        assert codes_for("pool.submit(worker, chunk)\n") == []

    def test_builtin_map_allowed(self):
        # In-process map never pickles.
        assert codes_for("out = map(lambda x: x, items)\n") == []


class TestAssertAndCsr:
    def test_assert_flagged(self):
        assert codes_for("assert x > 0\n") == ["L007"]

    def test_csr_subscript_flagged_outside_accessors(self):
        assert codes_for("child = graph.edge_children[i]\n") == ["L008"]

    def test_csr_subscript_allowed_in_flatgraph(self):
        findings = lint_source("child = self.edge_children[i]\n",
                               "src/repro/core/flatgraph.py")
        assert findings == []

    def test_csr_subscript_allowed_in_queries(self):
        findings = lint_source("child = graph.edge_children[i]\n",
                               "src/repro/queries/session.py")
        assert findings == []

    def test_csr_subscript_allowed_in_kernels(self):
        findings = lint_source("offs = graph.edge_offsets[tau]\n",
                               "src/repro/core/kernels.py")
        assert findings == []


class TestMultipliedMutable:
    def test_multiplied_list_literal_flagged(self):
        assert codes_for("rows = [[]] * duration\n") == ["L009"]

    def test_multiplied_dict_literal_flagged(self):
        assert codes_for("rows = [{}] * n\n") == ["L009"]

    def test_reversed_operand_order_flagged(self):
        assert codes_for("rows = n * [[]]\n") == ["L009"]

    def test_constructor_call_element_flagged(self):
        assert codes_for("rows = [list()] * n\n") == ["L009"]

    def test_immutable_elements_allowed(self):
        assert codes_for("row = [0.0] * n\n") == []
        assert codes_for("row = [None] * n\n") == []
        assert codes_for("pair = ((), ()) * n\n") == []

    def test_numeric_multiplication_allowed(self):
        assert codes_for("area = width * height\n") == []


class TestSuppression:
    def test_lint_ok_comment_suppresses(self):
        assert lint_source("ok = p == 0.5  # lint-ok: L001\n") == []

    def test_legacy_invariant_ok_comment_suppresses(self):
        assert lint_source("ok = p == 0.5  # invariant-ok: INV001\n") == []

    def test_suppression_is_code_specific(self):
        (finding,) = lint_source("ok = p == 0.5  # lint-ok: L002\n")
        assert finding.code == "L001"

    def test_multiple_codes_on_one_line(self):
        source = "assert p == 0.5  # lint-ok: L001, L007\n"
        assert lint_source(source) == []

    def test_legacy_codes_normalised(self):
        assert suppressed_lines("x = 1  # invariant-ok: inv003\n") == {
            (1, "L003")}
        assert LEGACY_CODES == {"INV001": "L001", "INV002": "L002",
                                "INV003": "L003"}


class TestSelect:
    def test_select_restricts_rules(self):
        source = "assert p == 0.5\n"
        assert [f.code for f in lint_source(source)] == ["L001", "L007"]
        selected = lint_source(source, select=frozenset({"L007"}))
        assert [f.code for f in selected] == ["L007"]

    def test_findings_are_sorted_and_printable(self):
        source = "assert p == 0.5\n"
        findings = lint_source(source, path="x.py")
        assert findings == sorted(
            findings, key=lambda f: (f.path, f.line, f.code))
        assert str(findings[0]) == f"x.py:1: L001 {findings[0].message}"
        assert isinstance(findings[0], LintFinding)


class TestMain:
    def test_clean_tree_exits_0(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == 0
        assert "1 file(s) clean" in capsys.readouterr().out

    def test_findings_exit_1_with_locations(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("flag = p == 0.5\n")
        assert main([str(tmp_path)]) == 1
        assert "bad.py:1: L001" in capsys.readouterr().out

    def test_unparsable_file_exits_2(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def (:\n")
        assert main([str(tmp_path)]) == 2

    def test_no_paths_exits_2(self, capsys):
        assert main([]) == 2

    def test_unknown_select_exits_2(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path), "--select", "L999"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_legacy_select_aliases_accepted(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("flag = p == 0.5\nassert flag\n")
        assert main([str(tmp_path), "--select", "INV001"]) == 1
        out = capsys.readouterr().out
        assert "L001" in out and "L007" not in out

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("flag = p == 0.5\n")
        assert main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "lint-report/1"
        assert payload["summary"]["findings"] == 1
        assert payload["findings"][0]["code"] == "L001"
        assert len(payload["rules"]) >= 8

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in rule_codes():
            assert code in out

    def test_repo_sources_are_clean(self, capsys):
        assert main([str(REPO_ROOT / "src"), str(REPO_ROOT / "tools")]) == 0

    def test_fixture_directory_fails_the_gate(self, capsys):
        # The self-test CI job relies on the fixtures being red.
        assert main([str(FIXTURES)]) == 1


class TestCliSubcommand:
    def test_rfid_ctg_lint_routes_to_the_engine(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        (tmp_path / "bad.py").write_text("flag = p == 0.5\n")
        assert cli_main(["lint", str(tmp_path)]) == 1
        assert "L001" in capsys.readouterr().out
        assert cli_main(["lint", "--list-rules"]) == 0
