"""Tests for walking distances and traveling-time derivation."""

import math

import pytest

from repro.errors import MapModelError
from repro.geometry import Rect
from repro.mapmodel.building import Building
from repro.mapmodel.distances import WalkingDistances


class TestBasicDistances:
    def test_self_distance_is_zero(self, two_rooms):
        d = WalkingDistances(two_rooms)
        assert d.distance("A", "A") == 0.0

    def test_adjacent_rooms_have_zero_distance(self, two_rooms):
        # An object may stand right at the shared door.
        d = WalkingDistances(two_rooms)
        assert d.distance("A", "B") == 0.0

    def test_symmetry(self, corridor4):
        d = WalkingDistances(corridor4)
        for a in corridor4.location_names:
            for b in corridor4.location_names:
                assert d.distance(a, b) == pytest.approx(d.distance(b, a))

    def test_corridor_rooms_distance_is_door_gap(self, corridor4):
        # room1 and room2 doors are 5 m apart along the corridor.
        d = WalkingDistances(corridor4)
        assert d.distance("room1", "room2") == pytest.approx(5.0)
        assert d.distance("room1", "room4") == pytest.approx(15.0)

    def test_non_negative_and_finite_when_connected(self, one_floor):
        # Note: the location-to-location travel distance is *not* a metric
        # (an object can stand at different doors of the same location, so
        # the triangle inequality through a large location fails); it only
        # needs to be a valid lower bound for TT constraints.
        d = WalkingDistances(one_floor)
        names = one_floor.location_names
        for a in names:
            for b in names:
                value = d.distance(a, b)
                assert value >= 0.0
                assert math.isfinite(value)

    def test_unreachable_is_infinite(self):
        b = Building()
        b.add_location("A", 0, Rect(0, 0, 1, 1))
        b.add_location("B", 0, Rect(5, 0, 6, 1))
        d = WalkingDistances(b)
        assert math.isinf(d.distance("A", "B"))
        assert not d.is_reachable("A", "B")
        assert d.is_reachable("A", "A")


class TestStairDistances:
    def test_flight_length_counts(self, two_floors):
        d = WalkingDistances(two_floors)
        flight = [door for door in two_floors.doors if door.length > 0][0]
        # Unlike point-like doors, a staircase flight has real length:
        # reaching the next floor's stair room costs the flight walk even
        # though the rooms are directly connected.
        assert d.distance("F0_stairs", "F1_stairs") == pytest.approx(
            flight.length)
        # Crossing floors from a room includes the flight length.
        cross = d.distance("F0_R1", "F1_R1")
        same = d.distance("F0_R1", "F0_stairs")
        assert cross >= same + flight.length - 1e-9


class TestTravelingTime:
    def test_rounding_up(self, corridor4):
        d = WalkingDistances(corridor4)
        # 5 m at 2 m/step -> ceil(2.5) = 3 steps.
        assert d.min_traveling_time("room1", "room2", 2.0) == 3

    def test_exact_division(self, corridor4):
        d = WalkingDistances(corridor4)
        assert d.min_traveling_time("room1", "room2", 2.5) == 2

    def test_bad_speed_rejected(self, corridor4):
        d = WalkingDistances(corridor4)
        with pytest.raises(MapModelError):
            d.min_traveling_time("room1", "room2", 0.0)

    def test_unreachable_pair_rejected(self):
        b = Building()
        b.add_location("A", 0, Rect(0, 0, 1, 1))
        b.add_location("B", 0, Rect(5, 0, 6, 1))
        d = WalkingDistances(b)
        with pytest.raises(MapModelError):
            d.min_traveling_time("A", "B", 1.0)

    def test_as_dict_snapshot(self, two_rooms):
        d = WalkingDistances(two_rooms)
        table = d.as_dict()
        assert table["A"]["B"] == d.distance("A", "B")
        table["A"]["B"] = 999.0          # mutating the copy is harmless
        assert d.distance("A", "B") == 0.0
