"""The optional-numpy level-sweep kernels vs the pure-python oracle.

The contract (``docs/perf.md``): the ``"python"`` backend is the parity
oracle; the ``"numpy"`` backend must reproduce it under the *tolerance
gate* — everything discrete (which nodes/edges survive, dict key sets,
tie-breaks, top-k order) exactly, every float to 1e-12 relative.  The
hypothesis workloads mirror ``tests/test_engine_vs_reference.py`` so the
kernels face the same instance distribution that pins the engines.

Also covered here: backend resolution (``auto`` thresholding, the
``REPRO_NO_NUMPY`` fallback), ``GraphViews`` caching, and the satellite
edge cases — duration-1 graphs (no edge levels at all) and single-node
levels — through ``FlatCTGraph.validate``, ``num_valid_trajectories``
and the session sweeps on both backends.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import kernels
from repro.core.algorithm import CleaningOptions, build_ct_graph
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.lsequence import LSequence
from repro.errors import (
    InconsistentReadingsError,
    ReadingSequenceError,
    ReproError,
)
from repro.queries.session import QuerySession

needs_numpy = pytest.mark.skipif(not kernels.numpy_available(),
                                 reason="numpy backend unavailable")

LOCATIONS = ("A", "B", "C", "D")

locations = st.sampled_from(LOCATIONS)

FLAT_NUMPY = CleaningOptions(engine="compact", materialize="flat",
                             backend="numpy")
FLAT_PYTHON = CleaningOptions(engine="compact", materialize="flat",
                              backend="python")


@st.composite
def lsequences(draw, max_duration=10):
    duration = draw(st.integers(min_value=1, max_value=max_duration))
    rows = []
    for _ in range(duration):
        support = draw(st.lists(locations, min_size=1, max_size=3,
                                unique=True))
        weights = [draw(st.floats(min_value=0.05, max_value=1.0))
                   for _ in support]
        total = sum(weights)
        rows.append({loc: w / total for loc, w in zip(support, weights)})
    return LSequence(rows)


@st.composite
def constraint_sets(draw):
    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        kind = draw(st.sampled_from(["du", "tt", "lt"]))
        if kind == "du":
            constraints.append(Unreachable(draw(locations), draw(locations)))
        elif kind == "tt":
            a = draw(locations)
            b = draw(locations.filter(lambda x: x != a))
            constraints.append(TravelingTime(
                a, b, draw(st.integers(min_value=2, max_value=4))))
        else:
            constraints.append(Latency(
                draw(locations), draw(st.integers(min_value=2, max_value=4))))
    return ConstraintSet(constraints)


def close(a, b):
    # The documented gate, plus an absolute term for quantities clamped
    # at zero (e.g. visit probabilities of never-reachable locations).
    return math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-12)


# ----------------------------------------------------------------------
# backend resolution
# ----------------------------------------------------------------------
class TestResolveBackend:
    def test_python_passes_through(self):
        assert kernels.resolve_backend("python") == "python"
        assert kernels.resolve_backend("python", 1e9) == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError, match="unknown kernel backend"):
            kernels.resolve_backend("fortran")

    def test_options_reject_unknown_backend(self):
        with pytest.raises(ReadingSequenceError, match="unknown backend"):
            CleaningOptions(backend="fortran")

    @needs_numpy
    def test_numpy_resolves_when_available(self):
        assert kernels.resolve_backend("numpy") == "numpy"

    @needs_numpy
    def test_auto_thresholds_on_level_width(self):
        threshold = kernels.KERNEL_MIN_LEVEL_EDGES
        assert kernels.resolve_backend("auto", threshold) == "numpy"
        assert kernels.resolve_backend("auto", threshold - 1) == "python"
        assert kernels.resolve_backend("auto", None) == "python"
        assert kernels.resolve_backend("auto") == "python"

    def test_no_numpy_env_forces_python(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert not kernels.numpy_available()
        assert kernels.resolve_backend("numpy", 1e9) == "python"
        assert kernels.resolve_backend("auto", 1e9) == "python"
        with pytest.raises(ReproError, match="unavailable"):
            kernels.require_numpy()

    def test_fallback_build_matches_python(self, monkeypatch):
        lsequence = LSequence([{"A": 0.5, "B": 0.5}, {"B": 1.0},
                               {"B": 0.5, "C": 0.5}])
        constraints = ConstraintSet([Unreachable("A", "C")])
        oracle = build_ct_graph(lsequence, constraints, FLAT_PYTHON)
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        fallen_back = build_ct_graph(lsequence, constraints, FLAT_NUMPY)
        assert fallen_back == oracle

    def test_fallback_session_resolves_to_python(self, monkeypatch):
        lsequence = LSequence([{"A": 0.5, "B": 0.5}, {"B": 1.0}])
        graph = build_ct_graph(lsequence, ConstraintSet([]), FLAT_PYTHON)
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        session = QuerySession(graph, backend="numpy")
        assert session.backend == "python"
        assert session.visit_probability("B") == 1.0


# ----------------------------------------------------------------------
# cached views
# ----------------------------------------------------------------------
@needs_numpy
class TestGraphViews:
    @pytest.fixture
    def graph(self):
        lsequence = LSequence([{"A": 0.5, "B": 0.5},
                               {"A": 0.25, "B": 0.5, "C": 0.25},
                               {"B": 0.5, "D": 0.5}])
        return build_ct_graph(lsequence, ConstraintSet([]), FLAT_PYTHON)

    def test_levels_convert_once(self, graph):
        views = kernels.GraphViews(graph)
        first = views.edge_level(0)
        assert views.edge_level(0) is first
        assert views.level_lids(1) is views.level_lids(1)
        assert views.source is views.source

    def test_parents_expand_the_offsets(self, graph):
        import numpy as np

        views = kernels.GraphViews(graph)
        children, probabilities, parents, count, next_count = \
            views.edge_level(0)
        offsets = graph.edge_offsets[0]
        assert count == len(graph.locations[0])
        assert next_count == len(graph.locations[1])
        assert children.dtype == np.int32
        assert parents.dtype == np.int32
        assert probabilities.dtype == np.float64
        expected = [i for i in range(count)
                    for _ in range(offsets[i + 1] - offsets[i])]
        assert parents.tolist() == expected
        assert children.tolist() == list(graph.edge_children[0])


# ----------------------------------------------------------------------
# engine parity (numpy flat builds vs the python oracle)
# ----------------------------------------------------------------------
@needs_numpy
class TestEngineParity:
    @settings(max_examples=150, deadline=None)
    @given(lsequences(), constraint_sets())
    def test_flat_builds_bit_exact(self, lsequence, constraints):
        try:
            oracle = build_ct_graph(lsequence, constraints, FLAT_PYTHON)
        except InconsistentReadingsError:
            with pytest.raises(InconsistentReadingsError):
                build_ct_graph(lsequence, constraints, FLAT_NUMPY)
            return
        vectorized = build_ct_graph(lsequence, constraints, FLAT_NUMPY)
        # Frozen-dataclass equality covers every column and float;
        # stats equality covers the counters (timings are excluded).
        assert vectorized == oracle
        assert vectorized.stats == oracle.stats
        vectorized.validate()

    def test_kernel_width_instance_bit_exact(self):
        # A wide periodic instance that clears KERNEL_MIN_LEVEL_EDGES,
        # so backend="auto" genuinely engages the kernels.
        names = [f"L{i:02d}" for i in range(24)]
        rows = []
        for tau in range(40):
            weights = {name: 1.0 + ((i * 7 + tau * 3) % 13) / 13.0
                       for i, name in enumerate(names)}
            total = sum(weights.values())
            rows.append({name: w / total for name, w in weights.items()})
        lsequence = LSequence(rows)
        constraints = ConstraintSet([Unreachable(names[0], names[1])])
        oracle = build_ct_graph(lsequence, constraints, FLAT_PYTHON)
        auto = build_ct_graph(
            lsequence, constraints,
            CleaningOptions(engine="compact", materialize="flat",
                            backend="auto"))
        assert auto == oracle
        assert auto.stats == oracle.stats

    def test_zero_mass_raises_identically(self):
        # A -> C is forbidden and unavoidable: both backends must refuse
        # with the same typed error, not return an empty graph.
        lsequence = LSequence([{"A": 1.0}, {"C": 1.0}])
        constraints = ConstraintSet([Unreachable("A", "C")])
        for options in (FLAT_PYTHON, FLAT_NUMPY):
            with pytest.raises(InconsistentReadingsError):
                build_ct_graph(lsequence, constraints, options)


# ----------------------------------------------------------------------
# session parity (numpy sweeps vs the python oracle)
# ----------------------------------------------------------------------
@needs_numpy
class TestSessionParity:
    def assert_sessions_agree(self, graph):
        oracle = QuerySession(graph, backend="python")
        vectorized = QuerySession(graph, backend="numpy")
        assert vectorized.backend == "numpy"

        for row, expected in zip(vectorized.alphas(), oracle.alphas()):
            assert len(row) == len(expected)
            for a, b in zip(row, expected):
                assert close(a, b)
        # The max-product suffix pass is bit-exact, not just close.
        for row, expected in zip(vectorized._best_suffixes(),
                                 oracle._best_suffixes()):
            assert list(row) == list(expected)

        for tau in range(graph.duration):
            marginal = vectorized.location_marginal(tau)
            expected_marginal = oracle.location_marginal(tau)
            assert set(marginal) == set(expected_marginal)
            for name, mass in expected_marginal.items():
                assert close(marginal[name], mass)
        for a, b in zip(vectorized.entropy_profile(),
                        oracle.entropy_profile()):
            assert close(a, b)
        counts = vectorized.expected_visit_counts()
        expected_counts = oracle.expected_visit_counts()
        assert set(counts) == set(expected_counts)
        for name, value in expected_counts.items():
            assert close(counts[name], value)

        for location in LOCATIONS + ("Z",):
            assert close(vectorized.visit_probability(location),
                         oracle.visit_probability(location))
        last = graph.duration - 1
        windows = [(0, 0), (0, last), (last, last)]
        if last >= 2:
            windows.append((1, last - 1))
        for start, end in windows:
            for location in LOCATIONS + ("Z",):
                assert close(
                    vectorized.span_probability(location, start, end),
                    oracle.span_probability(location, start, end))

        # Trajectory extraction consumes the (bit-exact) suffix rows, so
        # order, tie-breaks and floats must all be identical.
        assert vectorized.most_likely_trajectory() == \
            oracle.most_likely_trajectory()
        assert vectorized.top_k_trajectories(4) == \
            oracle.top_k_trajectories(4)

    @settings(max_examples=75, deadline=None)
    @given(lsequences(), constraint_sets())
    def test_query_parity_on_random_instances(self, lsequence, constraints):
        try:
            graph = build_ct_graph(lsequence, constraints, FLAT_PYTHON)
        except InconsistentReadingsError:
            return
        self.assert_sessions_agree(graph)


# ----------------------------------------------------------------------
# satellite edge cases: duration 1, single-node levels, empty levels
# ----------------------------------------------------------------------
class TestEdgeCases:
    BACKENDS = ["python"] + (["numpy"] if kernels.numpy_available() else [])

    @pytest.fixture
    def duration_one(self):
        lsequence = LSequence([{"A": 0.25, "B": 0.75}])
        return build_ct_graph(lsequence, ConstraintSet([]), FLAT_PYTHON)

    @pytest.fixture
    def single_node_levels(self):
        lsequence = LSequence([{"A": 1.0}, {"B": 1.0}, {"B": 1.0},
                               {"D": 1.0}])
        return build_ct_graph(
            lsequence, ConstraintSet([Unreachable("A", "C")]), FLAT_PYTHON)

    def test_duration_one_graph_is_valid(self, duration_one):
        duration_one.validate()
        assert duration_one.duration == 1
        assert duration_one.num_valid_trajectories() == 2
        assert duration_one.edge_offsets == ()

    @needs_numpy
    def test_duration_one_numpy_build_matches(self, duration_one):
        lsequence = LSequence([{"A": 0.25, "B": 0.75}])
        built = build_ct_graph(lsequence, ConstraintSet([]), FLAT_NUMPY)
        assert built == duration_one
        built.validate()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_duration_one_session_sweeps(self, duration_one, backend):
        session = QuerySession(duration_one, backend=backend)
        assert session.alphas() == [[0.25, 0.75]]
        assert list(session._best_suffixes()[0]) == [1.0, 1.0]
        marginal = session.location_marginal(0)
        assert set(marginal) == {"A", "B"}
        assert close(marginal["A"], 0.25)
        assert close(session.visit_probability("A"), 0.25)
        assert close(session.span_probability("B", 0, 0), 0.75)
        assert session.span_probability("Z", 0, 0) == 0.0
        assert session.most_likely_trajectory() == (("B",), 0.75)
        assert session.top_k_trajectories(5) == [(("B",), 0.75),
                                                (("A",), 0.25)]

    def test_single_node_levels_graph_is_valid(self, single_node_levels):
        single_node_levels.validate()
        assert single_node_levels.num_valid_trajectories() == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_node_levels_session_sweeps(self, single_node_levels,
                                               backend):
        session = QuerySession(single_node_levels, backend=backend)
        assert session.alphas() == [[1.0]] * 4
        assert close(session.visit_probability("B"), 1.0)
        assert session.visit_probability("C") == 0.0
        assert close(session.span_probability("B", 1, 2), 1.0)
        assert session.most_likely_trajectory() == \
            (("A", "B", "B", "D"), 1.0)

    @needs_numpy
    def test_kernels_on_a_graph_without_edge_levels(self, duration_one):
        # Duration 1: every per-edge-level array is empty; the kernels
        # must neither index out of range nor crash on zero-length loops.
        views = kernels.GraphViews(duration_one)
        assert [row.tolist() for row in kernels.alphas(views)] == \
            [[0.25, 0.75]]
        assert [row.tolist() for row in kernels.best_suffixes(views)] == \
            [[1.0, 1.0]]
        masses = kernels.masses_by_location(views, 0, views.source)
        assert close(kernels.entropy_bits(masses),
                     -(0.25 * math.log2(0.25) + 0.75 * math.log2(0.75)))
        lid = duration_one.location_names.index("A")
        assert close(kernels.avoidance_mass(views, lid), 0.75)
        assert close(kernels.span_mass(views, lid, 0, 0, views.source),
                     0.25)
        assert kernels.avoidance_mass(views, -1) == 1.0

    @needs_numpy
    def test_entropy_of_empty_mass_vector(self):
        import numpy as np

        assert kernels.entropy_bits(np.zeros(0)) == 0.0
        assert kernels.entropy_bits(np.zeros(3)) == 0.0


# ----------------------------------------------------------------------
# the satellite-1 aliasing regression
# ----------------------------------------------------------------------
class TestSuffixRowAliasing:
    def test_python_suffix_rows_are_distinct_objects(self):
        # Regression: `[[]] * duration` aliased every pre-filled row to
        # one list object, so filling level tau clobbered every level.
        lsequence = LSequence([{"A": 0.5, "B": 0.5}] * 4)
        graph = build_ct_graph(lsequence, ConstraintSet([]), FLAT_PYTHON)
        session = QuerySession(graph, backend="python")
        rows = session._best_suffixes()
        for i in range(len(rows)):
            for j in range(i + 1, len(rows)):
                assert rows[i] is not rows[j]

    def test_lint_gate_over_the_session_module(self):
        # The L009 rule exists precisely to keep this bug out; the
        # session module must stay clean under it.
        from pathlib import Path

        from repro.lint import lint_path

        module = (Path(__file__).resolve().parent.parent / "src" / "repro"
                  / "queries" / "session.py")
        findings = [f for f in lint_path(module) if f.code == "L009"]
        assert findings == []
