"""Tests for the ground-truth trajectory generator (Section 6.4)."""

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.errors import MapModelError
from repro.geometry import Rect
from repro.mapmodel.building import Building
from repro.simulation.trajectories import (
    GroundTruthTrajectory,
    MovementParameters,
    TrajectoryGenerator,
)


@pytest.fixture
def generator(one_floor, rng):
    return TrajectoryGenerator(one_floor, rng=rng)


class TestMovementParameters:
    def test_defaults_match_paper(self):
        p = MovementParameters()
        assert p.velocity_range == (1.0, 2.0)
        assert p.room_rest_range == (30, 60)

    def test_validation(self):
        with pytest.raises(MapModelError):
            MovementParameters(velocity_range=(0.0, 1.0))
        with pytest.raises(MapModelError):
            MovementParameters(velocity_range=(2.0, 1.0))
        with pytest.raises(MapModelError):
            MovementParameters(room_rest_range=(5, 2))


class TestGeneration:
    def test_exact_duration(self, generator):
        for duration in (1, 7, 50, 200):
            trajectory = generator.generate(duration)
            assert trajectory.duration == duration

    def test_bad_duration_rejected(self, generator):
        with pytest.raises(MapModelError):
            generator.generate(0)

    def test_positions_inside_labelled_location(self, generator, one_floor):
        trajectory = generator.generate(300)
        for tau in range(trajectory.duration):
            location = one_floor.location(trajectory.locations[tau])
            assert location.floor == trajectory.floors[tau]
            assert location.rect.contains(trajectory.points[tau], tol=1e-6)

    def test_speed_never_exceeds_velocity_bound(self, generator):
        trajectory = generator.generate(300)
        vmax = generator.parameters.velocity_range[1]
        for tau in range(trajectory.duration - 1):
            if trajectory.floors[tau] != trajectory.floors[tau + 1]:
                continue  # staircase flights switch coordinate frames
            step = trajectory.points[tau].distance_to(
                trajectory.points[tau + 1])
            assert step <= vmax + 1e-6

    def test_moves_only_through_doors(self, generator, one_floor):
        trajectory = generator.generate(500)
        for tau in range(trajectory.duration - 1):
            here = trajectory.locations[tau]
            there = trajectory.locations[tau + 1]
            if here != there:
                assert one_floor.are_adjacent(here, there), (here, there)

    def test_room_stays_respect_rest_minimum(self, generator, one_floor):
        trajectory = generator.generate(600)
        stays = trajectory.stay_sequence()
        # Interior room stays include >= 30 steps of rest plus walking.
        for (location, length) in stays[1:-1]:
            if not one_floor.location(location).is_transit:
                assert length >= 30

    def test_deterministic_given_seed(self, one_floor):
        a = TrajectoryGenerator(one_floor,
                                rng=np.random.default_rng(9)).generate(100)
        b = TrajectoryGenerator(one_floor,
                                rng=np.random.default_rng(9)).generate(100)
        assert a.locations == b.locations
        assert a.points == b.points

    def test_generate_many(self, generator):
        batch = generator.generate_many(50, 3)
        assert len(batch) == 3
        assert all(t.duration == 50 for t in batch)

    def test_sealed_room_keeps_object_inside(self, rng):
        building = Building("sealed")
        building.add_location("only", 0, Rect(0, 0, 5, 5))
        generator = TrajectoryGenerator(building, rng=rng)
        trajectory = generator.generate(80)
        assert set(trajectory.locations) == {"only"}


class TestMultiFloor:
    def test_floor_changes_happen_through_stairs(self, two_floors, rng):
        generator = TrajectoryGenerator(two_floors, rng=rng)
        # Long trajectory so stair crossings actually occur.
        trajectory = generator.generate(2000)
        for tau in range(trajectory.duration - 1):
            if trajectory.floors[tau] != trajectory.floors[tau + 1]:
                assert "stairs" in trajectory.locations[tau]
                assert "stairs" in trajectory.locations[tau + 1]

    def test_helpers(self, generator):
        trajectory = generator.generate(200)
        visited = trajectory.visited_locations()
        assert len(visited) >= 1
        stays = trajectory.stay_sequence()
        assert sum(length for _, length in stays) == trajectory.duration


class TestGroundTruthValidity:
    """The generated ground truth must satisfy the inferred constraints —
    the evaluation's accuracy metric depends on it (DESIGN.md §3)."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_truth_valid_under_inferred_constraints(self, two_floors, seed):
        from repro.core.validity import violations
        from repro.inference import MotilityProfile, infer_constraints

        generator = TrajectoryGenerator(two_floors,
                                        rng=np.random.default_rng(seed))
        trajectory = generator.generate(600)
        constraints = infer_constraints(two_floors, MotilityProfile())
        assert violations(trajectory.locations, constraints) == []
