"""Tests for constraint inference from building maps (Section 6.3)."""

import pytest

from repro.core.constraints import Latency, TravelingTime, Unreachable
from repro.errors import ConstraintError
from repro.inference.infer import (
    MotilityProfile,
    infer_constraints,
    infer_du_constraints,
    infer_lt_constraints,
    infer_tt_constraints,
)
from repro.mapmodel.distances import WalkingDistances


class TestMotilityProfile:
    def test_defaults_match_paper(self):
        profile = MotilityProfile()
        assert profile.max_speed == 2.0
        assert profile.min_stay == 5

    def test_validation(self):
        with pytest.raises(ConstraintError):
            MotilityProfile(max_speed=0.0)
        with pytest.raises(ConstraintError):
            MotilityProfile(min_stay=0)


class TestDUInference:
    def test_non_adjacent_pairs_covered(self, corridor4):
        du = infer_du_constraints(corridor4)
        pairs = {(c.loc_a, c.loc_b) for c in du}
        assert ("room1", "room2") in pairs
        assert ("room2", "room1") in pairs
        assert ("room1", "corridor") not in pairs
        assert ("corridor", "room1") not in pairs

    def test_no_self_constraints(self, corridor4):
        du = infer_du_constraints(corridor4)
        assert all(c.loc_a != c.loc_b for c in du)

    def test_count_formula(self, corridor4):
        # 5 locations; only the 4 room<->corridor pairs are adjacent.
        du = infer_du_constraints(corridor4)
        assert len(du) == 5 * 4 - 2 * 4


class TestTTInference:
    def test_only_connected_non_adjacent_pairs(self, corridor4):
        tt = infer_tt_constraints(corridor4, max_speed=2.0)
        pairs = {(c.loc_a, c.loc_b) for c in tt}
        assert all(a != b for a, b in pairs)
        assert ("room1", "corridor") not in pairs
        assert ("room1", "room2") in pairs

    def test_values_match_distances(self, corridor4):
        distances = WalkingDistances(corridor4)
        tt = infer_tt_constraints(corridor4, max_speed=2.0,
                                  distances=distances)
        lookup = {(c.loc_a, c.loc_b): c.steps for c in tt}
        assert lookup[("room1", "room4")] == distances.min_traveling_time(
            "room1", "room4", 2.0)

    def test_higher_speed_weakens_constraints(self, corridor4):
        slow = {(c.loc_a, c.loc_b): c.steps
                for c in infer_tt_constraints(corridor4, max_speed=1.0)}
        fast = {(c.loc_a, c.loc_b): c.steps
                for c in infer_tt_constraints(corridor4, max_speed=4.0)}
        for pair, steps in fast.items():
            assert steps <= slow[pair]

    def test_vacuous_constraints_skipped(self, corridor4):
        # At absurd speed every travel takes <= 1 step: no TT constraints.
        tt = infer_tt_constraints(corridor4, max_speed=1000.0)
        assert tt == []


class TestLTInference:
    def test_transit_locations_excluded(self, one_floor):
        lt = infer_lt_constraints(one_floor, min_stay=5)
        constrained = {c.location for c in lt}
        assert "F0_corridor" not in constrained
        assert "F0_stairs" not in constrained
        assert "F0_R1" in constrained

    def test_vacuous_bound_produces_nothing(self, one_floor):
        assert infer_lt_constraints(one_floor, min_stay=1) == []

    def test_bound_propagated(self, one_floor):
        lt = infer_lt_constraints(one_floor, min_stay=7)
        assert all(c.duration == 7 for c in lt)


class TestFullInference:
    def test_kind_selection(self, corridor4):
        du_only = infer_constraints(corridor4, kinds=("DU",))
        assert all(isinstance(c, Unreachable) for c in du_only)
        du_lt = infer_constraints(corridor4, kinds=("DU", "LT"))
        kinds = {type(c) for c in du_lt}
        assert kinds == {Unreachable, Latency}
        full = infer_constraints(corridor4)
        assert {type(c) for c in full} == {Unreachable, Latency, TravelingTime}

    def test_unknown_kind_rejected(self, corridor4):
        with pytest.raises(ConstraintError):
            infer_constraints(corridor4, kinds=("DU", "XX"))

    def test_reuses_precomputed_distances(self, corridor4):
        distances = WalkingDistances(corridor4)
        full = infer_constraints(corridor4, distances=distances)
        assert len(full) > 0

    def test_constraints_respect_profile(self, corridor4):
        profile = MotilityProfile(max_speed=1.0, min_stay=9)
        cs = infer_constraints(corridor4, profile)
        assert cs.latency_of("room1") == 9
        assert cs.traveling_time("room1", "room4") == 15  # 15 m at 1 m/s
