"""Tests for dataset assembly (SYN1/SYN2 and custom builds)."""

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.errors import ReproError
from repro.simulation.datasets import (
    SCALES,
    active_scale,
    build_dataset,
    syn1_dataset,
)


class TestScales:
    def test_known_scales(self):
        assert set(SCALES) == {"tiny", "small", "medium", "paper"}
        durations, per = SCALES["paper"]
        assert durations == (1800, 3600, 5400, 7200)
        assert per == 25

    def test_active_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert active_scale() == "small"
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert active_scale() == "tiny"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ReproError):
            active_scale()


class TestBuildDataset:
    def test_structure(self, tiny_dataset):
        assert tiny_dataset.durations == (40, 80)
        assert len(tiny_dataset.trajectories[40]) == 2
        assert len(tiny_dataset.all_trajectories()) == 4

    def test_readings_match_truth_durations(self, tiny_dataset):
        for trajectory in tiny_dataset.all_trajectories():
            assert trajectory.readings.duration == trajectory.truth.duration
            assert trajectory.duration == trajectory.truth.duration

    def test_matrices_share_shape(self, tiny_dataset):
        assert (tiny_dataset.true_matrix.values.shape
                == tiny_dataset.calibrated_matrix.values.shape)

    def test_calibrated_differs_from_true(self, tiny_dataset):
        # 30 epochs of sampling noise: the matrices should not be identical.
        assert not np.array_equal(tiny_dataset.true_matrix.values,
                                  tiny_dataset.calibrated_matrix.values)

    def test_deterministic_given_seed(self, one_floor):
        a = build_dataset(one_floor, durations=(30,), per_duration=1, seed=2)
        b_building = type(one_floor)(one_floor.name)
        # Rebuild an identical building to avoid shared state.
        from repro.mapmodel.floorplans import multi_floor_building
        b = build_dataset(multi_floor_building(1, name="one-floor"),
                          durations=(30,), per_duration=1, seed=2)
        ta = a.trajectories[30][0]
        tb = b.trajectories[30][0]
        assert ta.truth.locations == tb.truth.locations
        assert [r.readers for r in ta.readings] == \
            [r.readers for r in tb.readings]

    def test_prior_consumes_calibrated_matrix(self, tiny_dataset):
        assert tiny_dataset.prior.matrix is tiny_dataset.calibrated_matrix

    def test_repr(self, tiny_dataset):
        assert "durations=(40, 80)" in repr(tiny_dataset)


class TestSynDatasets:
    def test_syn1_tiny(self):
        dataset = syn1_dataset(scale="tiny")
        assert dataset.name == "SYN1[tiny]"
        assert dataset.building.name == "SYN1"
        assert dataset.durations == (30, 60)
        assert len(dataset.all_trajectories()) == 4
