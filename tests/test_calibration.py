"""Tests for the detection-matrix calibration (Section 6.2 procedure)."""

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.errors import CalibrationError
from repro.mapmodel.grid import Grid
from repro.rfid.calibration import DetectionMatrix, calibrate, exact_matrix
from repro.rfid.readers import place_default_readers


@pytest.fixture
def setup(two_rooms):
    grid = Grid(two_rooms, 1.0)
    model = place_default_readers(two_rooms)
    return two_rooms, grid, model


class TestDetectionMatrix:
    def test_shape_validation(self, setup):
        _, grid, model = setup
        with pytest.raises(CalibrationError):
            DetectionMatrix(np.zeros((3,)), grid, model.reader_names)
        with pytest.raises(CalibrationError):
            DetectionMatrix(np.zeros((len(model) + 1, grid.num_cells)),
                            grid, model.reader_names)
        with pytest.raises(CalibrationError):
            DetectionMatrix(np.zeros((len(model), grid.num_cells + 5)),
                            grid, model.reader_names)

    def test_probability_range_validation(self, setup):
        _, grid, model = setup
        bad = np.full((len(model), grid.num_cells), 1.5)
        with pytest.raises(CalibrationError):
            DetectionMatrix(bad, grid, model.reader_names)

    def test_row_and_column_access(self, setup):
        _, grid, model = setup
        matrix = exact_matrix(model, grid)
        name = model.reader_names[0]
        row = matrix.reader_row(name)
        assert row.shape == (grid.num_cells,)
        column = matrix.cell_column(0)
        assert column.shape == (len(model),)
        with pytest.raises(CalibrationError):
            matrix.reader_row("nope")

    def test_coverage_bounds(self, setup):
        _, grid, model = setup
        coverage = exact_matrix(model, grid).coverage()
        assert coverage.shape == (grid.num_cells,)
        assert np.all(coverage >= 0.0) and np.all(coverage <= 1.0)


class TestExactMatrix:
    def test_values_match_model(self, setup):
        _, grid, model = setup
        matrix = exact_matrix(model, grid)
        reader = model.readers[0]
        cell = grid.cells[0]
        assert matrix.values[0, 0] == pytest.approx(
            model.detection_probability(reader, cell.floor, cell.center))

    def test_near_cells_are_covered(self, setup):
        _, grid, model = setup
        matrix = exact_matrix(model, grid)
        # Each reader's own cell should be in the major region.
        for r, reader in enumerate(model.readers):
            cell = grid.cell_at(reader.floor, reader.position)
            assert matrix.values[r, cell.index] == pytest.approx(
                reader.major_probability)


class TestCalibrate:
    def test_deterministic_given_rng(self, setup):
        _, grid, model = setup
        a = calibrate(model, grid, rng=np.random.default_rng(3))
        b = calibrate(model, grid, rng=np.random.default_rng(3))
        assert np.array_equal(a.values, b.values)

    def test_bad_epochs_rejected(self, setup):
        _, grid, model = setup
        with pytest.raises(CalibrationError):
            calibrate(model, grid, epochs=0)

    def test_values_are_multiples_of_one_over_epochs(self, setup):
        _, grid, model = setup
        matrix = calibrate(model, grid, epochs=10,
                           rng=np.random.default_rng(0))
        scaled = matrix.values * 10
        assert np.allclose(scaled, np.round(scaled))

    def test_converges_to_exact_with_many_epochs(self, setup):
        _, grid, model = setup
        exact = exact_matrix(model, grid)
        noisy = calibrate(model, grid, epochs=20000,
                          rng=np.random.default_rng(1))
        assert np.max(np.abs(noisy.values - exact.values)) < 0.03

    def test_zero_probability_stays_zero(self, setup):
        _, grid, model = setup
        exact = exact_matrix(model, grid)
        noisy = calibrate(model, grid, rng=np.random.default_rng(2))
        assert np.all(noisy.values[exact.values == 0.0] == 0.0)
