"""Tests for the CTGraph structure and its query primitives."""

import math
import pickle
import subprocess
import sys

import pytest

from repro.core.algorithm import build_ct_graph
from repro.core.constraints import ConstraintSet, Unreachable
from repro.core.lsequence import LSequence
from repro.errors import GraphInvariantError, QueryError


@pytest.fixture
def diamond_graph():
    """Two middle alternatives converging: A -> {B, C} -> D."""
    ls = LSequence([{"A": 1.0}, {"B": 0.75, "C": 0.25}, {"D": 1.0}])
    return build_ct_graph(ls, ConstraintSet())


class TestStructure:
    def test_levels(self, diamond_graph):
        assert diamond_graph.duration == 3
        assert len(diamond_graph.level(0)) == 1
        assert len(diamond_graph.level(1)) == 2
        assert len(diamond_graph.level(2)) == 1

    def test_bad_level_rejected(self, diamond_graph):
        with pytest.raises(QueryError):
            diamond_graph.level(3)
        with pytest.raises(QueryError):
            diamond_graph.level(-1)

    def test_sources_and_targets(self, diamond_graph):
        assert [n.location for n in diamond_graph.sources] == ["A"]
        assert [n.location for n in diamond_graph.targets] == ["D"]

    def test_counts(self, diamond_graph):
        assert diamond_graph.num_nodes == 4
        assert diamond_graph.num_edges == 4

    def test_nodes_iterates_level_order(self, diamond_graph):
        taus = [node.tau for node in diamond_graph.nodes()]
        assert taus == sorted(taus)

    def test_locations_at(self, diamond_graph):
        assert diamond_graph.locations_at(1) == ("B", "C")

    def test_successor_for(self, diamond_graph):
        (source,) = diamond_graph.sources
        node_b = source.successor_for("B")
        assert node_b is not None and node_b.location == "B"
        assert source.successor_for("Z") is None

    def test_successor_index_tracks_edge_replacement(self, diamond_graph):
        (source,) = diamond_graph.sources
        node_b = source.successor_for("B")
        assert source.successor_for("C") is not None
        # Rebinding the edges dict (what the backward pass does) must
        # invalidate the lazy per-location index.
        source.edges = {node_b: 1.0}
        assert source.successor_for("C") is None
        assert source.successor_for("B") is node_b

    def test_repr_mentions_shape(self, diamond_graph):
        assert "duration=3" in repr(diamond_graph)
        (source,) = diamond_graph.sources
        assert "loc='A'" in repr(source)


class TestProbabilities:
    def test_source_probability_of_foreign_node_is_zero(self, diamond_graph):
        target = diamond_graph.targets[0]
        assert diamond_graph.source_probability(target) == 0.0

    def test_path_enumeration(self, diamond_graph):
        paths = dict(diamond_graph.paths())
        assert paths[("A", "B", "D")] == pytest.approx(0.75)
        assert paths[("A", "C", "D")] == pytest.approx(0.25)

    def test_trajectory_probability_length_check(self, diamond_graph):
        with pytest.raises(QueryError):
            diamond_graph.trajectory_probability(("A", "B"))

    def test_unknown_start_scores_zero(self, diamond_graph):
        assert diamond_graph.trajectory_probability(("Z", "B", "D")) == 0.0

    def test_node_marginals_cached(self, diamond_graph):
        first = diamond_graph.node_marginals()
        assert diamond_graph.node_marginals() is first

    def test_location_marginal_sums_to_one(self, diamond_graph):
        for tau in range(diamond_graph.duration):
            marginal = diamond_graph.location_marginal(tau)
            assert math.fsum(marginal.values()) == pytest.approx(1.0)

    def test_location_marginal_merges_node_states(self):
        # Two nodes at the same location (different histories) merge in the
        # location marginal.
        ls = LSequence([{"A": 0.5, "B": 0.5}, {"C": 1.0}, {"C": 1.0}])
        graph = build_ct_graph(ls, ConstraintSet())
        marginal = graph.location_marginal(1)
        assert marginal == {"C": pytest.approx(1.0)}


class TestValidateAndSize:
    def test_validate_passes_for_algorithm_output(self, diamond_graph):
        diamond_graph.validate()

    def test_validate_rejects_broken_source_distribution(self, diamond_graph):
        (source,) = diamond_graph.sources
        diamond_graph._source_probabilities[source] = 0.5
        with pytest.raises(GraphInvariantError, match="sum to 0.5"):
            diamond_graph.validate()
        # The historical contract: assertion-catching callers still work.
        with pytest.raises(AssertionError):
            diamond_graph.validate()

    def test_validate_rejects_broken_edge_distribution(self, diamond_graph):
        (source,) = diamond_graph.sources
        child = next(iter(source.edges))
        source.edges[child] += 0.5
        with pytest.raises(GraphInvariantError, match="outgoing"):
            diamond_graph.validate()

    def test_validate_rejects_orphaned_node(self, diamond_graph):
        node = diamond_graph.level(1)[0]
        node.parents.clear()
        with pytest.raises(GraphInvariantError, match="unreachable"):
            diamond_graph.validate()

    def test_validate_survives_assert_stripping(self):
        # Regression for the `python -O` hole: the invariant checks must be
        # real raises, not asserts, so they still fire under PYTHONOPTIMIZE.
        script = (
            "from repro.core.algorithm import build_ct_graph\n"
            "from repro.core.constraints import ConstraintSet\n"
            "from repro.core.lsequence import LSequence\n"
            "from repro.errors import GraphInvariantError\n"
            "assert True is False  # proves -O stripped asserts\n"
            "ls = LSequence([{'A': 1.0}, {'B': 0.5, 'C': 0.5}, {'D': 1.0}])\n"
            "graph = build_ct_graph(ls, ConstraintSet())\n"
            "(source,) = graph.sources\n"
            "graph._source_probabilities[source] = 0.25\n"
            "try:\n"
            "    graph.validate()\n"
            "except GraphInvariantError:\n"
            "    print('RAISED')\n"
        )
        import os
        from pathlib import Path

        import repro

        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run([sys.executable, "-O", "-c", script],
                              capture_output=True, text=True, env=env)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "RAISED"

    def test_stats_declared_on_every_graph(self, diamond_graph):
        # Algorithm output carries its counters...
        assert diamond_graph.stats is not None
        assert diamond_graph.stats.nodes_created == 4
        # ...and hand-built graphs have the attribute too (None), instead
        # of raising AttributeError.
        bare = type(diamond_graph)([[], []], {})
        assert bare.stats is None

    def test_pickle_round_trip_preserves_probabilities(self):
        ls = LSequence([{"A": 0.5, "B": 0.5}, {"A": 0.3, "C": 0.7},
                        {"B": 1.0}, {"A": 0.4, "B": 0.6}])
        graph = build_ct_graph(ls, ConstraintSet([Unreachable("A", "A")]))
        clone = pickle.loads(pickle.dumps(graph))
        assert list(clone.paths()) == list(graph.paths())
        assert clone.stats == graph.stats
        clone.validate()

    def test_pickle_handles_long_graphs(self):
        # Default recursive pickling would exceed the recursion limit here;
        # the flat __getstate__ must not.
        duration = 1200
        ls = LSequence([{"A": 0.5, "B": 0.5}] * duration)
        graph = build_ct_graph(ls, ConstraintSet())
        clone = pickle.loads(pickle.dumps(graph))
        assert clone.num_nodes == graph.num_nodes
        assert clone.num_edges == graph.num_edges
        assert clone.location_marginal(duration // 2) \
            == graph.location_marginal(duration // 2)

    def test_size_estimate_positive_and_monotone(self):
        small = build_ct_graph(
            LSequence([{"A": 1.0}, {"B": 1.0}]), ConstraintSet())
        large = build_ct_graph(
            LSequence([{"A": 0.5, "B": 0.5}] * 20), ConstraintSet())
        assert 0 < small.estimate_size_bytes() < large.estimate_size_bytes()

    def test_num_valid_trajectories_counts_paths(self):
        graph = build_ct_graph(LSequence([{"A": 0.5, "B": 0.5}] * 10),
                               ConstraintSet())
        assert graph.num_valid_trajectories() == 2 ** 10


class TestNetworkxExport:
    def test_structure_round_trips(self, diamond_graph):
        digraph = diamond_graph.to_networkx()
        assert digraph.number_of_nodes() == diamond_graph.num_nodes
        assert digraph.number_of_edges() == diamond_graph.num_edges
        assert digraph.graph["duration"] == diamond_graph.duration

    def test_attributes(self, diamond_graph):
        digraph = diamond_graph.to_networkx()
        sources = [n for n, data in digraph.nodes(data=True)
                   if data["source_probability"] > 0]
        assert len(sources) == 1
        locations = {data["location"]
                     for _, data in digraph.nodes(data=True)}
        assert locations == {"A", "B", "C", "D"}
        for _, _, data in digraph.edges(data=True):
            assert 0.0 < data["probability"] <= 1.0

    def test_edge_probabilities_normalised(self, diamond_graph):
        digraph = diamond_graph.to_networkx()
        for node in digraph.nodes:
            out = [data["probability"]
                   for _, _, data in digraph.out_edges(node, data=True)]
            if out:
                assert sum(out) == pytest.approx(1.0)
