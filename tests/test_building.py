"""Unit tests for the building model (locations, doors, adjacency)."""

import pytest

from repro.errors import MapModelError, UnknownLocationError
from repro.geometry import Point, Rect
from repro.mapmodel.building import Building, Door, Location


def make_two_rooms() -> Building:
    b = Building("b")
    b.add_location("A", 0, Rect(0, 0, 5, 5))
    b.add_location("B", 0, Rect(5, 0, 10, 5))
    b.add_door("A", "B")
    return b


class TestLocation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(MapModelError):
            Location("x", 0, Rect(0, 0, 1, 1), kind="garden")

    def test_degenerate_footprint_rejected(self):
        with pytest.raises(MapModelError):
            Location("x", 0, Rect(0, 0, 0, 1))

    def test_transit_kinds(self):
        assert Location("c", 0, Rect(0, 0, 1, 1), kind="corridor").is_transit
        assert Location("s", 0, Rect(0, 0, 1, 1), kind="staircase").is_transit
        assert not Location("r", 0, Rect(0, 0, 1, 1), kind="room").is_transit


class TestDoor:
    def test_self_door_rejected(self):
        with pytest.raises(MapModelError):
            Door("A", "A", Point(0, 0), Point(0, 0))

    def test_negative_length_rejected(self):
        with pytest.raises(MapModelError):
            Door("A", "B", Point(0, 0), Point(0, 0), length=-1)

    def test_other_and_point_in(self):
        door = Door("A", "B", Point(1, 1), Point(2, 2))
        assert door.other("A") == "B"
        assert door.other("B") == "A"
        assert door.point_in("A") == Point(1, 1)
        assert door.point_in("B") == Point(2, 2)
        with pytest.raises(MapModelError):
            door.other("C")


class TestBuilding:
    def test_duplicate_location_rejected(self):
        b = Building()
        b.add_location("A", 0, Rect(0, 0, 1, 1))
        with pytest.raises(MapModelError):
            b.add_location("A", 0, Rect(2, 0, 3, 1))

    def test_overlapping_footprints_rejected(self):
        b = Building()
        b.add_location("A", 0, Rect(0, 0, 2, 2))
        with pytest.raises(MapModelError):
            b.add_location("B", 0, Rect(1, 1, 3, 3))

    def test_same_footprint_other_floor_allowed(self):
        b = Building()
        b.add_location("A", 0, Rect(0, 0, 2, 2))
        b.add_location("B", 1, Rect(0, 0, 2, 2))
        assert len(b) == 2

    def test_touching_footprints_allowed(self):
        b = make_two_rooms()
        assert set(b.location_names) == {"A", "B"}

    def test_unknown_location_lookup(self):
        b = make_two_rooms()
        with pytest.raises(UnknownLocationError):
            b.location("missing")

    def test_auto_door_point_on_shared_wall(self):
        b = make_two_rooms()
        (door,) = b.doors
        assert door.point_a == Point(5, 2.5)

    def test_door_between_disjoint_rooms_needs_point(self):
        b = Building()
        b.add_location("A", 0, Rect(0, 0, 1, 1))
        b.add_location("B", 0, Rect(5, 0, 6, 1))
        with pytest.raises(MapModelError):
            b.add_door("A", "B")

    def test_neighbors_and_adjacency(self):
        b = make_two_rooms()
        assert b.neighbors("A") == ("B",)
        assert b.are_adjacent("A", "B")
        assert b.are_adjacent("B", "A")

    def test_location_at(self):
        b = make_two_rooms()
        assert b.location_at(0, Point(1, 1)) == "A"
        assert b.location_at(0, Point(7, 1)) == "B"
        assert b.location_at(0, Point(20, 20)) is None
        assert b.location_at(3, Point(1, 1)) is None

    def test_floor_bounds(self):
        b = make_two_rooms()
        bounds = b.floor_bounds(0)
        assert (bounds.x0, bounds.y0, bounds.x1, bounds.y1) == (0, 0, 10, 5)
        with pytest.raises(MapModelError):
            b.floor_bounds(9)

    def test_validate_accepts_good_building(self):
        make_two_rooms().validate()

    def test_validate_rejects_empty_building(self):
        with pytest.raises(MapModelError):
            Building().validate()

    def test_validate_rejects_offside_door(self):
        b = Building()
        b.add_location("A", 0, Rect(0, 0, 5, 5))
        b.add_location("B", 0, Rect(5, 0, 10, 5))
        b.add_door("A", "B", point=Point(20, 20))
        with pytest.raises(MapModelError):
            b.validate()

    def test_validate_rejects_zero_length_stairs(self):
        b = Building()
        b.add_location("A", 0, Rect(0, 0, 5, 5))
        b.add_location("B", 1, Rect(0, 0, 5, 5))
        b.add_door("A", "B")  # defaults to length 0 across floors
        with pytest.raises(MapModelError):
            b.validate()

    def test_connected_pairs_within_component_only(self):
        b = Building()
        b.add_location("A", 0, Rect(0, 0, 1, 1))
        b.add_location("B", 0, Rect(1, 0, 2, 1))
        b.add_location("C", 0, Rect(5, 0, 6, 1))  # isolated
        b.add_door("A", "B")
        pairs = b.connected_location_pairs()
        assert ("A", "B") in pairs and ("B", "A") in pairs
        assert not any("C" in pair for pair in pairs)

    def test_walls_between_counts_crossings(self):
        b = make_two_rooms()
        # A straight line across the shared wall crosses A's right edge and
        # B's left edge (shared walls are stored once per room).
        crossings = b.walls_between(0, Point(2.5, 2.5), Point(7.5, 2.5))
        assert crossings == 2

    def test_walls_between_same_room_is_zero(self):
        b = make_two_rooms()
        assert b.walls_between(0, Point(1, 1), Point(4, 4)) == 0

    def test_walls_between_ignores_wall_at_endpoint(self):
        b = make_two_rooms()
        # Reader mounted exactly on the shared wall: the wall it sits on
        # does not attenuate its own signal.
        assert b.walls_between(0, Point(5, 2.5), Point(4, 2.5)) == 0
