"""Tests for readings, reading sequences and l-sequences."""

import math

import pytest

from repro.core.lsequence import LSequence, Reading, ReadingSequence
from repro.errors import ReadingSequenceError


class TestReading:
    def test_negative_time_rejected(self):
        with pytest.raises(ReadingSequenceError):
            Reading(-1, frozenset())

    def test_readers_coerced_to_frozenset(self):
        reading = Reading(0, {"a", "b"})
        assert isinstance(reading.readers, frozenset)
        assert reading.readers == {"a", "b"}

    def test_str(self):
        assert str(Reading(3, frozenset())) == "(3, {-})"
        assert str(Reading(0, frozenset({"r1"}))) == "(0, {r1})"


class TestReadingSequence:
    def test_empty_rejected(self):
        with pytest.raises(ReadingSequenceError):
            ReadingSequence([])

    def test_gap_rejected(self):
        with pytest.raises(ReadingSequenceError):
            ReadingSequence([Reading(0, frozenset()), Reading(2, frozenset())])

    def test_duplicate_timestamp_rejected(self):
        with pytest.raises(ReadingSequenceError):
            ReadingSequence([Reading(0, frozenset()), Reading(0, frozenset())])

    def test_must_start_at_zero(self):
        with pytest.raises(ReadingSequenceError):
            ReadingSequence([Reading(1, frozenset())])

    def test_sorts_by_time(self):
        seq = ReadingSequence([Reading(1, frozenset({"b"})),
                               Reading(0, frozenset({"a"}))])
        assert seq[0].readers == {"a"}
        assert seq[1].readers == {"b"}

    def test_from_reader_sets(self):
        seq = ReadingSequence.from_reader_sets([{"a"}, set(), {"b", "c"}])
        assert seq.duration == 3
        assert seq[2].readers == {"b", "c"}

    def test_iteration(self):
        seq = ReadingSequence.from_reader_sets([{"a"}, {"b"}])
        assert [r.time for r in seq] == [0, 1]


class TestLSequence:
    def test_empty_rejected(self):
        with pytest.raises(ReadingSequenceError):
            LSequence([])

    def test_empty_step_rejected(self):
        with pytest.raises(ReadingSequenceError):
            LSequence([{"A": 1.0}, {}])

    def test_non_normalised_step_rejected(self):
        with pytest.raises(ReadingSequenceError):
            LSequence([{"A": 0.4, "B": 0.4}])

    def test_zero_probability_entries_dropped(self):
        ls = LSequence([{"A": 1.0, "B": 0.0}])
        assert ls.support(0) == ("A",)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf"), -0.25])
    def test_malformed_probability_rejected(self, bad):
        with pytest.raises(ReadingSequenceError, match="finite and "
                                                       "non-negative"):
            LSequence([{"A": 1.0}, {"A": 0.5, "B": bad}])

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_malformed_probability_rejected_without_validate(self, bad):
        # The prior-model path (_validate=False) skips the sum check but
        # must still refuse NaN/inf/negative — NaN fails every `>` test,
        # so the positivity floor alone would silently drop it.
        with pytest.raises(ReadingSequenceError, match="timestep 0"):
            LSequence([{"A": bad, "B": 1.0}], _validate=False)

    def test_small_drift_is_renormalised(self):
        ls = LSequence([{"A": 0.5000001, "B": 0.5}])
        assert math.fsum(ls.candidates(0).values()) == pytest.approx(1.0)

    def test_candidates_and_probability(self, uniform_lsequence):
        assert uniform_lsequence.probability(0, "A") == 0.5
        assert uniform_lsequence.probability(0, "Z") == 0.0
        with pytest.raises(ReadingSequenceError):
            uniform_lsequence.candidates(10)

    def test_num_trajectories(self, uniform_lsequence):
        assert uniform_lsequence.num_trajectories() == 8

    def test_trajectories_enumeration(self, uniform_lsequence):
        all_t = dict(uniform_lsequence.trajectories())
        assert len(all_t) == 8
        assert math.fsum(all_t.values()) == pytest.approx(1.0)
        assert all_t[("A", "B", "C")] == pytest.approx(0.125)

    def test_trajectory_prior(self, uniform_lsequence):
        assert uniform_lsequence.trajectory_prior(("A", "B", "C")) \
            == pytest.approx(0.125)
        assert uniform_lsequence.trajectory_prior(("A", "A", "C")) == 0.0
        with pytest.raises(ReadingSequenceError):
            uniform_lsequence.trajectory_prior(("A",))

    def test_from_readings_uses_prior(self):
        class FakePrior:
            def distribution(self, readers):
                if readers:
                    return {"A": 1.0}
                return {"A": 0.5, "B": 0.5}

        readings = ReadingSequence.from_reader_sets([{"r"}, set()])
        ls = LSequence.from_readings(readings, FakePrior())
        assert ls.support(0) == ("A",)
        assert set(ls.support(1)) == {"A", "B"}


class TestProbabilityCoercion:
    def test_numeric_string_probability_is_coerced(self):
        # The coerced float is reused for the floor filter and the row,
        # so a numeric string behaves like the float it denotes.
        ls = LSequence([{"A": "0.5", "B": 0.5}])
        assert ls.probability(0, "A") == pytest.approx(0.5)

    def test_non_numeric_probability_is_a_typed_error(self):
        with pytest.raises(ReadingSequenceError,
                           match="does not coerce to a float"):
            LSequence([{"A": "half"}])
        with pytest.raises(ReadingSequenceError,
                           match="does not coerce to a float"):
            LSequence([{"A": None}], _validate=False)
