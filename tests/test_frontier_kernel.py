"""The vectorized frontier-advance kernel vs the python oracle.

Parity contract (same shape as the level-sweep kernels in
``tests/test_kernels.py``): the ``"python"`` backend is the oracle; the
``"numpy"`` :class:`~repro.core.kernels.FrontierKernel` must reproduce
everything discrete *exactly* — which readings are rejected, the
surviving node states, their dict key order, frontier sizes — while
floats are tolerance-gated (``np.bincount`` reassociates the
per-successor sums).  numpy-vs-numpy checkpoint/resume is additionally
*bit*-exact, because checkpoints materialise the kernel's own float64
values unchanged.

The hypothesis suite draws random constraint sets and streams (including
zero-mass dead-ends), kills and resumes mid-stream, and drives the
windowed :class:`~repro.streaming.StreamingCleaner` through eviction on
both backends.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import kernels
from repro.core.algorithm import CleaningOptions
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.incremental import (
    IncrementalCleaner,
    advance_frontier,
    advance_frontier_routed,
    frontier_to_dict,
)
from repro.errors import InconsistentReadingsError
from repro.streaming import StreamingCleaner

needs_numpy = pytest.mark.skipif(not kernels.numpy_available(),
                                 reason="numpy backend unavailable")

LOCATIONS = ("A", "B", "C", "D")

locations = st.sampled_from(LOCATIONS)

PYTHON = CleaningOptions(backend="python")
NUMPY = CleaningOptions(backend="numpy")


@st.composite
def constraint_sets(draw):
    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        kind = draw(st.sampled_from(["du", "lt", "tt"]))
        if kind == "du":
            constraints.append(Unreachable(draw(locations),
                                           draw(locations)))
        elif kind == "lt":
            constraints.append(Latency(draw(locations),
                                       draw(st.integers(2, 4))))
        else:
            a = draw(locations)
            b = draw(locations.filter(lambda x: x != a))
            constraints.append(TravelingTime(a, b,
                                             draw(st.integers(2, 4))))
    return ConstraintSet(constraints)


@st.composite
def streams(draw, max_duration=12):
    duration = draw(st.integers(min_value=1, max_value=max_duration))
    rows = []
    for _ in range(duration):
        support = draw(st.lists(locations, min_size=1, max_size=4,
                                unique=True))
        weights = [draw(st.floats(min_value=0.05, max_value=1.0))
                   for _ in support]
        total = sum(weights)
        rows.append({loc: w / total for loc, w in zip(support, weights)})
    return rows


def assert_distributions_close(oracle, kernel):
    assert list(oracle) == list(kernel)
    for location, probability in oracle.items():
        assert math.isclose(kernel[location], probability,
                            rel_tol=1e-9, abs_tol=1e-12)


def run_parity(rows, constraints, make_oracle, make_kernel):
    """Feed both cleaners, asserting lockstep parity; True if completed."""
    oracle, kernel = make_oracle(), make_kernel()
    for row in rows:
        try:
            oracle.extend(row)
        except InconsistentReadingsError:
            with pytest.raises(InconsistentReadingsError):
                kernel.extend(row)
            # The rejection left both cleaners usable and in agreement.
            if oracle.duration:
                assert_distributions_close(oracle.filtered_distribution(),
                                           kernel.filtered_distribution())
            return False
        kernel.extend(row)
        assert kernel.frontier_size() == oracle.frontier_size()
        assert_distributions_close(oracle.filtered_distribution(),
                                   kernel.filtered_distribution())
    return True


# ----------------------------------------------------------------------
# hypothesis parity: random constraints, dead-ends, eviction, resume
# ----------------------------------------------------------------------

@needs_numpy
@settings(max_examples=150, deadline=None)
@given(streams(), constraint_sets())
def test_incremental_kernel_matches_oracle(rows, constraints):
    run_parity(rows, constraints,
               lambda: IncrementalCleaner(constraints, PYTHON),
               lambda: IncrementalCleaner(constraints, NUMPY))


@needs_numpy
@settings(max_examples=150, deadline=None)
@given(streams(), constraint_sets(), st.integers(1, 4))
def test_streaming_kernel_matches_oracle_through_eviction(rows, constraints,
                                                          window):
    completed = run_parity(
        rows, constraints,
        lambda: StreamingCleaner(constraints, window=window,
                                 options=PYTHON),
        lambda: StreamingCleaner(constraints, window=window,
                                 options=NUMPY))
    if not completed:
        return
    # The retained-window conditioning sees identical structure too.
    oracle = StreamingCleaner(constraints, window=window, options=PYTHON)
    kernel = StreamingCleaner(constraints, window=window, options=NUMPY)
    for row in rows:
        oracle.extend(row)
        kernel.extend(row)
    graph_a, graph_b = oracle.finalize(), kernel.finalize()
    for relative in range(oracle.retained_duration):
        expected = graph_a.location_marginal(relative)
        got = graph_b.location_marginal(relative)
        assert list(got) == list(expected)
        for location, probability in expected.items():
            assert math.isclose(got[location], probability,
                                rel_tol=1e-9, abs_tol=1e-12)


@needs_numpy
@settings(max_examples=100, deadline=None)
@given(streams(), constraint_sets(), st.data())
def test_numpy_checkpoint_resume_mid_stream_is_bit_exact(rows, constraints,
                                                         data):
    uninterrupted = StreamingCleaner(constraints, window=4, options=NUMPY)
    try:
        for row in rows:
            uninterrupted.extend(row)
    except InconsistentReadingsError:
        return
    kill_at = data.draw(st.integers(min_value=1, max_value=len(rows)),
                        label="kill_at")
    killed = StreamingCleaner(constraints, window=4, options=NUMPY)
    for row in rows[:kill_at]:
        killed.extend(row)
    import os
    import tempfile

    fd, path = tempfile.mkstemp(suffix=".ckpt")
    os.close(fd)
    try:
        killed.checkpoint(path)
        resumed = StreamingCleaner.resume(path)
        assert resumed.options.backend == "numpy"
        for row in rows[kill_at:]:
            resumed.extend(row)
        # Bit-exact, not merely close: the checkpoint carries the
        # kernel's own float64 values and the resumed kernel replays the
        # same tables.
        assert resumed.filtered_distribution() == \
            uninterrupted.filtered_distribution()
        assert resumed.frontier_size() == uninterrupted.frontier_size()
    finally:
        os.unlink(path)


# ----------------------------------------------------------------------
# zero-mass dead-ends and state preservation
# ----------------------------------------------------------------------

DEAD = ConstraintSet([Unreachable("A", "B"), Unreachable("B", "A")])


@needs_numpy
def test_dead_end_raises_and_preserves_state():
    cleaner = IncrementalCleaner(DEAD, NUMPY)
    cleaner.extend({"A": 1.0})
    with pytest.raises(InconsistentReadingsError):
        cleaner.extend({"B": 1.0})
    assert cleaner.duration == 1
    assert cleaner.filtered_distribution() == {"A": 1.0}
    # The survivor keeps streaming after the drop.
    cleaner.extend({"A": 0.5, "C": 0.5})
    assert cleaner.duration == 2


@needs_numpy
def test_empty_kernel_frontier_is_falsy():
    kernel = kernels.FrontierKernel(DEAD)
    frontier = kernel.seed({"A": 1.0})
    assert frontier and len(frontier) == 1
    advanced = kernel.advance(frontier, {"B": 1.0})
    assert not advanced
    assert len(advanced) == 0
    assert advanced.to_dict() == {}


# ----------------------------------------------------------------------
# kernel internals: table cache, dict round-trips, routing
# ----------------------------------------------------------------------

STEADY = ConstraintSet([Latency("B", 3), TravelingTime("B", "D", 4)])


@needs_numpy
def test_transition_tables_are_compiled_once_per_signature():
    kernel = kernels.FrontierKernel(STEADY)
    row = {"A": 0.4, "B": 0.3, "C": 0.2, "D": 0.1}
    frontier = kernel.seed(row)
    for _ in range(50):
        frontier = kernel.advance(frontier, row)
    compiled = kernel.cached_tables
    frontier = kernel.seed(row)
    for _ in range(50):
        frontier = kernel.advance(frontier, row)
    # A periodic stream revisits the same (signature, support) pairs:
    # the second pass re-uses every table the first one compiled.
    assert kernel.cached_tables == compiled


@needs_numpy
def test_shared_kernel_serves_multiple_cleaners():
    kernel = kernels.FrontierKernel(STEADY)
    row = {"A": 0.4, "B": 0.3, "C": 0.2, "D": 0.1}
    first = IncrementalCleaner(STEADY, NUMPY, frontier_kernel=kernel)
    for _ in range(20):
        first.extend(row)
    compiled = kernel.cached_tables
    second = IncrementalCleaner(STEADY, NUMPY, frontier_kernel=kernel)
    for _ in range(20):
        second.extend(row)
    assert kernel.cached_tables == compiled
    assert second.filtered_distribution() == first.filtered_distribution()


@needs_numpy
def test_enter_to_dict_round_trip_preserves_bits_and_order():
    kernel = kernels.FrontierKernel(STEADY)
    row = {"B": 0.5, "A": 0.3, "D": 0.2}
    frontier = {}
    tau = 0
    for step in range(6):
        frontier = advance_frontier(frontier, row, step, STEADY)
        tau = step
    adopted = kernel.enter(frontier, tau)
    assert adopted.to_dict() == frontier
    assert list(adopted.to_dict()) == list(frontier)


@needs_numpy
def test_max_tables_caps_the_cache_but_not_correctness():
    kernel = kernels.FrontierKernel(STEADY, max_tables=1)
    capped = IncrementalCleaner(STEADY, NUMPY, frontier_kernel=kernel)
    oracle = IncrementalCleaner(STEADY, PYTHON)
    row_a = {"A": 0.6, "B": 0.4}
    row_b = {"C": 0.7, "D": 0.3}
    for row in (row_a, row_a, row_b, row_a, row_b, row_a):
        capped.extend(row)
        oracle.extend(row)
    assert kernel.cached_tables <= 1
    assert_distributions_close(oracle.filtered_distribution(),
                               capped.filtered_distribution())


@needs_numpy
def test_routed_auto_stays_python_below_threshold():
    frontier, kernel = advance_frontier_routed(
        {}, {"A": 1.0}, 0, STEADY, backend="auto")
    assert isinstance(frontier, dict)
    assert kernel is None


@needs_numpy
def test_routed_numpy_switches_representation_and_back(monkeypatch):
    frontier, kernel = advance_frontier_routed(
        {}, {"A": 0.5, "B": 0.5}, 0, STEADY, backend="numpy")
    assert isinstance(frontier, kernels.KernelFrontier)
    assert kernel is not None
    # Forcing the fallback mid-stream materialises the kernel frontier.
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    fallback, kernel = advance_frontier_routed(
        frontier, {"A": 0.5, "B": 0.5}, 1, STEADY, backend="numpy",
        kernel=kernel)
    assert isinstance(fallback, dict)


def test_python_backend_never_touches_numpy(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    cleaner = IncrementalCleaner(STEADY, CleaningOptions(backend="numpy"))
    row = {"A": 0.5, "B": 0.5}
    oracle = IncrementalCleaner(STEADY, PYTHON)
    for _ in range(5):
        cleaner.extend(row)
        oracle.extend(row)
    # Graceful fallback: numpy requested but unavailable == the oracle.
    assert cleaner.filtered_distribution() == oracle.filtered_distribution()
