"""Tests for the exception hierarchy (catchability contracts)."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in errors.__all__:
            if name == "ReproError":
                continue
            klass = getattr(errors, name)
            assert issubclass(klass, errors.ReproError), name

    def test_map_errors(self):
        assert issubclass(errors.UnknownLocationError, errors.MapModelError)

    def test_unknown_location_carries_name(self):
        error = errors.UnknownLocationError("kitchen")
        assert error.name == "kitchen"
        assert "kitchen" in str(error)

    def test_single_catch_at_api_boundary(self):
        """The intended usage: one except clause catches the library."""
        from repro import LSequence

        with pytest.raises(errors.ReproError):
            LSequence([])
        with pytest.raises(errors.ReproError):
            from repro import ConstraintSet, Unreachable, build_ct_graph
            build_ct_graph(LSequence([{"A": 1.0}, {"B": 1.0}]),
                           ConstraintSet([Unreachable("A", "B")]))

    def test_zero_mass_is_an_inconsistent_readings_error(self):
        # Existing callers catching InconsistentReadingsError must keep
        # catching the zero-mass case after the subclass split.
        assert issubclass(errors.ZeroMassError,
                          errors.InconsistentReadingsError)

    def test_zero_mass_message_points_at_the_analyzer(self):
        error = errors.ZeroMassError("no valid source state")
        assert "no valid source state" in str(error)
        assert "rfid-ctg analyze" in str(error)
        assert "repro.analysis.analyze" in str(error)

    def test_algorithm_raises_zero_mass_on_doomed_input(self):
        from repro import ConstraintSet, LSequence, Unreachable, build_ct_graph

        with pytest.raises(errors.ZeroMassError):
            build_ct_graph(LSequence([{"A": 1.0}, {"B": 1.0}]),
                           ConstraintSet([Unreachable("A", "B")]))

    def test_inconsistent_is_not_a_sequence_error(self):
        # Callers distinguish "your data is malformed" from "no valid
        # interpretation exists" — these must stay separate branches.
        assert not issubclass(errors.InconsistentReadingsError,
                              errors.ReadingSequenceError)
        assert not issubclass(errors.ReadingSequenceError,
                              errors.InconsistentReadingsError)
