"""Soundness of the abstract-interpretation envelope (C007-C010).

The load-bearing property suite: for random instances the C007 envelope
width must dominate the actual per-level width of the built
``FlatCTGraph`` while staying under C006's product bound, and a C009
zero-level verdict must imply ``build_ct_graph`` raising
``ZeroMassError``.  Plus direct unit coverage of the advisor hook and the
``engine="auto"`` routing path.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze
from repro.analysis.advisor import (
    AUTO_COMPACT_MIN_STATES,
    EngineAdvice,
    advise,
    recommend_options,
)
from repro.analysis.envelope import ConstraintEnvelope, estimate_graph_bytes
from repro.analysis.rules import ctgraph_size_bounds
from repro.core.algorithm import CleaningOptions, build_ct_graph
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.lsequence import LSequence
from repro.errors import ZeroMassError
from repro.runtime import SharedCleaningPlan

_LOCATIONS = ("A", "B", "C")


@st.composite
def small_instances(draw):
    """A tiny l-sequence plus a random mixed constraint set."""
    duration = draw(st.integers(min_value=1, max_value=5))
    supports = [
        draw(st.sets(st.sampled_from(_LOCATIONS), min_size=1, max_size=3))
        for _ in range(duration)
    ]
    lsequence = LSequence(
        [{loc: 1.0 / len(support) for loc in support}
         for support in supports])

    pairs = [(a, b) for a in _LOCATIONS for b in _LOCATIONS]
    du = draw(st.sets(st.sampled_from(pairs), max_size=6))
    tt_pairs = [(a, b) for a, b in pairs if a != b]
    tt = draw(st.sets(st.sampled_from(tt_pairs), max_size=2))
    lt = draw(st.sets(st.sampled_from(_LOCATIONS), max_size=2))
    constraints = ConstraintSet(
        [Unreachable(a, b) for a, b in sorted(du)]
        + [TravelingTime(a, b, draw(st.integers(2, 4)))
           for a, b in sorted(tt)]
        + [Latency(location, draw(st.integers(2, 3)))
           for location in sorted(lt)])
    strict = draw(st.booleans())
    return lsequence, constraints, strict


@settings(max_examples=200, deadline=None)
@given(small_instances())
def test_envelope_width_is_sound_and_tighter_than_c006(instance):
    """actual width <= C007 envelope <= C006 product bound, pointwise;
    and an envelope zero-mass verdict implies ZeroMassError."""
    lsequence, constraints, strict = instance
    policy = "strict" if strict else "lenient"
    envelope = ConstraintEnvelope(lsequence, constraints,
                                  strict_truncation=strict)
    widths = envelope.width_bounds()
    c006 = ctgraph_size_bounds(lsequence, constraints)
    assert len(widths) == lsequence.duration
    # C007 <= C006, always (zero-mass instances included: widths just
    # collapse to zero past the empty level).
    assert all(w <= c for w, c in zip(widths, c006))
    try:
        graph = build_ct_graph(
            lsequence, constraints,
            CleaningOptions(engine="reference", materialize="flat",
                            truncated_stay_policy=policy))
    except ZeroMassError:
        # Emptiness may or may not be provable abstractly (C005 is the
        # complete test); nothing more to check either way.
        return
    # The build succeeded, so the envelope must not claim zero mass...
    assert not envelope.proves_zero_mass
    # ...and must dominate the actual per-level width.
    actual = [graph.level_size(tau) for tau in range(graph.duration)]
    assert all(a <= w for a, w in zip(actual, widths))
    assert graph.num_edges <= sum(envelope.edge_bounds())


@settings(max_examples=200, deadline=None)
@given(small_instances())
def test_auto_routing_is_bit_exact_with_both_engines(instance):
    """recommend_options never changes results, only the engine choice."""
    lsequence, constraints, strict = instance
    policy = "strict" if strict else "lenient"
    base = CleaningOptions(truncated_stay_policy=policy, materialize="flat")
    routed = recommend_options(lsequence, constraints, base)
    assert routed.engine in ("reference", "compact")
    try:
        reference = build_ct_graph(
            lsequence, constraints,
            CleaningOptions(engine="reference", materialize="flat",
                            truncated_stay_policy=policy))
    except ZeroMassError:
        with pytest.raises(ZeroMassError):
            build_ct_graph(lsequence, constraints, base)
        return
    auto = build_ct_graph(lsequence, constraints, base)
    assert auto == reference


class TestEnvelope:
    CONSTRAINTS = ConstraintSet([
        Unreachable("A", "C"), Unreachable("C", "A"),
        Latency("B", 3),
        TravelingTime("A", "D", 4), TravelingTime("D", "A", 4),
    ])

    def test_dead_candidate_detected(self):
        # A -> C is forbidden, so C at timestep 1 can never carry mass.
        ls = LSequence([{"A": 1.0}, {"B": 0.5, "C": 0.5}])
        envelope = ConstraintEnvelope(ls, self.CONSTRAINTS)
        assert envelope.dead_candidates() == [(1, "C")]
        assert envelope.forced_levels() == [(1, "B")]
        assert not envelope.proves_zero_mass

    def test_zero_mass_proved_by_intervals(self):
        # TravelingTime(A, D, 4) forbids the direct 1-step A -> D move.
        ls = LSequence([{"A": 1.0}, {"D": 1.0}])
        envelope = ConstraintEnvelope(ls, self.CONSTRAINTS)
        assert envelope.proves_zero_mass
        assert envelope.first_empty_level == 1
        with pytest.raises(ZeroMassError):
            build_ct_graph(ls, self.CONSTRAINTS)

    def test_departure_interval_tracks_tt_window(self):
        ls = LSequence([{"A": 1.0}, {"B": 1.0}, {"B": 1.0}, {"D": 1.0}])
        envelope = ConstraintEnvelope(ls, self.CONSTRAINTS)
        state = envelope.state(1, "B")
        assert state is not None
        entry = state.departures["A"]
        assert (entry.earliest, entry.latest) == (0, 0)
        assert not entry.absent_possible
        # Arriving at D at tau=3 requires the A-departure to be >= 4 steps
        # old — impossible — so the whole level is infeasible.
        assert envelope.feasible_locations(3) == ()
        assert envelope.proves_zero_mass

    def test_stay_interval_respects_latency(self):
        ls = LSequence([{"B": 1.0}] * 4)
        envelope = ConstraintEnvelope(ls, self.CONSTRAINTS)
        first = envelope.state(0, "B")
        assert (first.stay_lo, first.stay_hi) == (1, 1)
        assert not first.stay_none_possible
        third = envelope.state(2, "B")
        # After three timesteps the 3-step bound is met: None possible,
        # no binding counter remains (bound - 1 = 2 < advanced lo).
        assert third.stay_none_possible
        assert third.stay_lo > third.stay_hi

    def test_width_bounds_cached_and_copied(self):
        ls = LSequence([{"A": 0.5, "B": 0.5}] * 3)
        envelope = ConstraintEnvelope(ls, self.CONSTRAINTS)
        first = envelope.width_bounds()
        first[0] = -1
        assert envelope.width_bounds()[0] != -1

    def test_estimate_graph_bytes_flat_is_smaller(self):
        node_form, flat_form = estimate_graph_bytes([10, 10], [20])
        assert 0 < flat_form < node_form


class TestAdvisor:
    CONSTRAINTS = TestEnvelope.CONSTRAINTS

    def test_small_instance_routes_to_reference(self):
        ls = LSequence([{"A": 0.5, "B": 0.5}] * 4)
        advice = advise(ls, self.CONSTRAINTS)
        assert isinstance(advice, EngineAdvice)
        assert advice.engine == "reference"
        assert advice.predicted_states < AUTO_COMPACT_MIN_STATES
        assert advice.predicted_flat_bytes < advice.predicted_node_bytes

    def test_wide_instance_routes_to_compact(self):
        ls = LSequence([{"A": 0.4, "B": 0.35, "C": 0.25},
                        {"B": 0.55, "D": 0.45},
                        {"B": 0.3, "C": 0.4, "D": 0.3},
                        {"A": 0.65, "B": 0.35}] * 30)
        advice = advise(ls, self.CONSTRAINTS)
        assert advice.engine == "compact"
        assert advice.predicted_states >= AUTO_COMPACT_MIN_STATES

    def test_recommend_options_respects_explicit_choice(self):
        ls = LSequence([{"A": 1.0}] * 200)
        explicit = CleaningOptions(engine="reference")
        assert recommend_options(ls, self.CONSTRAINTS, explicit) is explicit

    def test_recommend_options_resolves_auto(self):
        ls = LSequence([{"A": 0.5, "B": 0.5}] * 4)
        routed = recommend_options(ls, self.CONSTRAINTS)
        assert routed.engine == "reference"
        assert routed.materialize == "auto"  # untouched

    def test_zero_mass_instances_route_to_reference(self):
        ls = LSequence([{"A": 1.0}, {"D": 1.0}])
        advice = advise(ls, self.CONSTRAINTS)
        assert advice.zero_mass
        assert advice.engine == "reference"
        assert "ZeroMassError" in advice.reason


class TestPlanAdviceCache:
    CONSTRAINTS = TestEnvelope.CONSTRAINTS

    def test_advice_cached_per_support_signature(self):
        plan = SharedCleaningPlan(self.CONSTRAINTS)
        ls_a = LSequence([{"A": 0.5, "B": 0.5}] * 3)
        ls_b = LSequence([{"B": 0.9, "A": 0.1}] * 3)  # same supports
        options = CleaningOptions()
        first = plan.advice_for(ls_a, options)
        second = plan.advice_for(ls_b, options)
        assert second is first
        assert plan.cached_advice == 1
        ls_c = LSequence([{"A": 1.0}] * 3)
        plan.advice_for(ls_c, options)
        assert plan.cached_advice == 2

    def test_strictness_keys_separately(self):
        plan = SharedCleaningPlan(self.CONSTRAINTS)
        ls = LSequence([{"B": 1.0}] * 3)
        plan.advice_for(ls, CleaningOptions())
        plan.advice_for(
            ls, CleaningOptions(truncated_stay_policy="strict"))
        assert plan.cached_advice == 2

    def test_build_ct_graph_routes_through_the_plan(self, monkeypatch):
        plan = SharedCleaningPlan(self.CONSTRAINTS)
        ls = LSequence([{"A": 0.5, "B": 0.5}] * 3)
        seen = []
        original = plan.advice_for

        def spy(lsequence, options):
            seen.append(lsequence)
            return original(lsequence, options)

        monkeypatch.setattr(plan, "advice_for", spy)
        graph = build_ct_graph(ls, self.CONSTRAINTS, CleaningOptions(),
                               plan=plan)
        assert seen == [ls]
        plain = build_ct_graph(ls, self.CONSTRAINTS,
                               CleaningOptions(engine="reference"))
        assert graph.to_flat() == plain.to_flat()


class TestAdviseReport:
    CONSTRAINTS = TestEnvelope.CONSTRAINTS

    def test_c010_only_with_advise_flag(self):
        ls = LSequence([{"A": 0.5, "B": 0.5}] * 4)
        plain = analyze(self.CONSTRAINTS, readings=ls)
        assert "C010" not in {d.code for d in plain}
        advised = analyze(self.CONSTRAINTS, readings=ls, advise=True)
        (c010,) = advised.by_code("C010")
        assert c010.data["engine"] == "reference"
        assert c010.data["predicted_states"] > 0

    def test_c007_reports_tightening(self):
        ls = LSequence([{"A": 0.5, "B": 0.5}] * 4)
        report = analyze(self.CONSTRAINTS, readings=ls)
        (c007,) = report.by_code("C007")
        (c006,) = report.by_code("C006")
        assert c007.data["total"] <= c006.data["total"]
        assert c007.data["c006_total"] == c006.data["total"]
        assert "node_bytes" in c006.data and "flat_bytes" in c006.data

    def test_c008_reports_dead_candidates(self):
        ls = LSequence([{"A": 1.0}, {"B": 0.5, "C": 0.5}])
        report = analyze(self.CONSTRAINTS, readings=ls)
        warnings = [d for d in report.by_code("C008")
                    if d.severity.name == "WARNING"]
        (dead,) = warnings
        assert dead.data["dead"] == [[1, "C"]]

    def test_c009_fires_with_c005(self):
        ls = LSequence([{"A": 1.0}, {"D": 1.0}])
        report = analyze(self.CONSTRAINTS, readings=ls)
        codes = {d.code for d in report.errors}
        assert {"C005", "C009"} <= codes
