"""Tests for the text rendering helpers."""

import pytest

from repro.mapmodel.floorplans import corridor_map, multi_floor_building
from repro.rfid.readers import place_default_readers
from repro.viz import (
    render_entropy_sparkline,
    render_floor,
    render_marginal,
)


class TestRenderFloor:
    def test_contains_walls_doors_and_legend(self, corridor4):
        art = render_floor(corridor4, 0)
        assert "+" in art and "|" in art and "-" in art
        assert "/" in art                      # doors
        assert "corridor" in art               # legend
        assert "room1" in art

    def test_reader_marks(self, corridor4):
        readers = place_default_readers(corridor4)
        art = render_floor(corridor4, 0, readers=readers)
        assert "R" in art

    def test_scale_changes_size(self, corridor4):
        coarse = render_floor(corridor4, 0, scale=2.0)
        fine = render_floor(corridor4, 0, scale=0.5)
        assert len(fine) > len(coarse)

    def test_multi_floor_renders_requested_floor_only(self, two_floors):
        art = render_floor(two_floors, 1)
        assert "F1_R1" in art
        assert "F0_R1" not in art


class TestRenderMarginal:
    def test_mass_summary(self, corridor4):
        art = render_marginal(corridor4, 0, {"room1": 0.8, "corridor": 0.2})
        assert "on-floor mass: 1.000" in art

    def test_off_floor_mass_reported(self, two_floors):
        art = render_marginal(two_floors, 0, {"F1_R1": 1.0})
        assert "off-floor mass: 1.000" in art

    def test_high_probability_uses_dense_shade(self, corridor4):
        dense = render_marginal(corridor4, 0, {"room1": 1.0})
        spread = render_marginal(corridor4, 0, {
            "room1": 0.25, "room2": 0.25, "room3": 0.25, "room4": 0.25})
        assert "@" in dense
        assert "@" not in spread.replace("on-floor", "")


class TestSparkline:
    def test_empty_input(self):
        assert render_entropy_sparkline([]) == ""

    def test_reports_peak(self):
        line = render_entropy_sparkline([0.5, 2.0, 1.0])
        assert "peak=2.00 bits" in line

    def test_downsamples_long_profiles(self):
        line = render_entropy_sparkline([1.0] * 1000, width=40)
        inner = line[1:line.index("]")]
        assert len(inner) == 40

    def test_flat_zero_profile(self):
        line = render_entropy_sparkline([0.0, 0.0])
        assert "peak=0.00" in line
