"""Tests for trajectory-query patterns: parsing, DFA compilation, matching."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PatternSyntaxError
from repro.queries.pattern import OTHER, Pattern, PatternAtom


class TestParsing:
    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternSyntaxError):
            Pattern.parse("   ")
        with pytest.raises(PatternSyntaxError):
            Pattern([])

    def test_wildcard(self):
        pattern = Pattern.parse("?")
        assert len(pattern.atoms) == 1
        assert pattern.atoms[0].is_wildcard

    def test_bare_location(self):
        pattern = Pattern.parse("A")
        assert pattern.atoms == (PatternAtom("A", 1),)

    def test_run_length(self):
        pattern = Pattern.parse("A[3]")
        assert pattern.atoms == (PatternAtom("A", 3),)

    def test_negative_run_normalised_to_one(self):
        # The paper's generator uses -1 for 'bare l'.
        pattern = Pattern.parse("A[-1]")
        assert pattern.atoms == (PatternAtom("A", 1),)

    def test_full_pattern(self):
        pattern = Pattern.parse("? A[3] ? B ?")
        assert str(pattern) == "? A[3] ? B ?"
        assert pattern.mentioned_locations == ("A", "B")
        assert pattern.num_conditions == 2

    def test_bad_tokens_rejected(self):
        with pytest.raises(PatternSyntaxError):
            Pattern.parse("A[")
        with pytest.raises(PatternSyntaxError):
            Pattern.parse("A[x]")

    def test_zero_run_atom_rejected(self):
        with pytest.raises(PatternSyntaxError):
            PatternAtom("A", 0)

    def test_visits_builder(self):
        pattern = Pattern.visits("A", "B", min_runs=[3, 1])
        assert str(pattern) == "? A[3] ? B ?"
        with pytest.raises(PatternSyntaxError):
            Pattern.visits()
        with pytest.raises(PatternSyntaxError):
            Pattern.visits("A", min_runs=[1, 2])


class TestMatching:
    def test_single_wildcard_matches_everything(self):
        pattern = Pattern.parse("?")
        assert pattern.matches(["A"])
        assert pattern.matches(["A", "B", "C"])

    def test_bare_location_needs_exact_run(self):
        pattern = Pattern.parse("A")
        assert pattern.matches(["A"])
        assert pattern.matches(["A", "A"])
        assert not pattern.matches(["A", "B"])
        assert not pattern.matches(["B"])

    def test_run_length_minimum(self):
        pattern = Pattern.parse("? A[3] ?")
        assert not pattern.matches(["A", "A"])
        assert pattern.matches(["A", "A", "A"])
        assert pattern.matches(["B", "A", "A", "A", "C"])
        # Interrupted runs do not count.
        assert not pattern.matches(["A", "A", "B", "A"])

    def test_sequencing(self):
        pattern = Pattern.parse("? A ? B ?")
        assert pattern.matches(["A", "B"])
        assert pattern.matches(["C", "A", "C", "B", "C"])
        assert not pattern.matches(["B", "A"])

    def test_same_location_twice(self):
        pattern = Pattern.parse("A ? A")
        assert not pattern.matches(["A"])
        assert pattern.matches(["A", "A"])      # empty wildcard, two runs
        assert pattern.matches(["A", "B", "A"])
        assert not pattern.matches(["A", "B", "B"])

    def test_anchored_pattern_without_wildcards(self):
        pattern = Pattern.parse("A B")
        assert pattern.matches(["A", "B"])
        assert pattern.matches(["A", "A", "B", "B"])
        assert not pattern.matches(["A", "B", "C"])
        assert not pattern.matches(["C", "A", "B"])

    def test_paper_example_shape(self):
        # '? l1[3] ? l2[2] ?' from Section 6.6.
        pattern = Pattern.parse("? L1[3] ? L2[2] ?")
        assert pattern.matches(["L1"] * 3 + ["X"] + ["L2"] * 2)
        assert pattern.matches(["Z", "L1", "L1", "L1", "L2", "L2", "Z"])
        assert not pattern.matches(["L1", "L1", "L1", "L2"])


class TestDFA:
    def test_dfa_is_cached(self):
        pattern = Pattern.parse("? A ?")
        assert pattern.dfa() is pattern.dfa()

    def test_unmentioned_locations_map_to_other(self):
        dfa = Pattern.parse("? A ?").dfa()
        assert dfa.symbol("A") == "A"
        assert dfa.symbol("Z") == OTHER

    def test_dfa_total_over_alphabet(self):
        dfa = Pattern.parse("? A[2] ? B ?").dfa()
        for state in range(dfa.num_states):
            for symbol in ("A", "B", OTHER):
                assert dfa.step(state, symbol) < dfa.num_states


def naive_match(atoms, trajectory):
    """Reference matcher: recursive expansion of the conditions."""
    def rec(ai, ti):
        if ai == len(atoms):
            return ti == len(trajectory)
        atom = atoms[ai]
        if atom.is_wildcard:
            return any(rec(ai + 1, tj)
                       for tj in range(ti, len(trajectory) + 1))
        run = 0
        tj = ti
        while tj < len(trajectory) and trajectory[tj] == atom.location:
            tj += 1
            run += 1
            if run >= atom.min_run and rec(ai + 1, tj):
                return True
        return False
    return rec(0, 0)


@st.composite
def patterns_and_trajectories(draw):
    atoms = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        if draw(st.booleans()):
            atoms.append(PatternAtom(None))
        else:
            atoms.append(PatternAtom(draw(st.sampled_from("AB")),
                                     draw(st.integers(min_value=1, max_value=3))))
    trajectory = draw(st.lists(st.sampled_from("ABC"), min_size=1, max_size=8))
    return Pattern(atoms), trajectory


@settings(max_examples=500, deadline=None)
@given(patterns_and_trajectories())
def test_dfa_matches_reference_semantics(case):
    pattern, trajectory = case
    assert pattern.matches(trajectory) == naive_match(pattern.atoms, trajectory)
