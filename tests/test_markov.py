"""Tests for the Markovian-stream export of ct-graphs."""

import math

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.core.algorithm import build_ct_graph
from repro.core.constraints import ConstraintSet, Latency, Unreachable
from repro.core.lsequence import LSequence
from repro.errors import QueryError
from repro.markov.stream import MarkovianStream


@pytest.fixture
def chain_case():
    ls = LSequence([{"A": 0.5, "B": 0.5},
                    {"B": 0.5, "C": 0.5},
                    {"C": 0.5, "D": 0.5}])
    cs = ConstraintSet([Unreachable("A", "C")])
    graph = build_ct_graph(ls, cs)
    return graph, MarkovianStream.from_ct_graph(graph)


class TestExport:
    def test_duration_matches_graph(self, chain_case):
        graph, stream = chain_case
        assert stream.duration == graph.duration

    def test_initial_matches_graph_marginal(self, chain_case):
        graph, stream = chain_case
        expected = graph.location_marginal(0)
        assert set(stream.initial) == set(expected)
        for location, probability in expected.items():
            assert stream.initial[location] == pytest.approx(probability)

    def test_transition_rows_are_distributions(self, chain_case):
        _, stream = chain_case
        for step in stream.transitions:
            for row in step.values():
                assert math.fsum(row.values()) == pytest.approx(1.0)

    def test_marginals_match_graph(self, chain_case):
        graph, stream = chain_case
        for tau in range(graph.duration):
            expected = graph.location_marginal(tau)
            got = stream.marginal(tau)
            assert set(got) == set(expected)
            for location, probability in expected.items():
                assert got[location] == pytest.approx(probability)

    def test_marginal_bad_timestep(self, chain_case):
        _, stream = chain_case
        with pytest.raises(QueryError):
            stream.marginal(99)


class TestTrajectoryProbability:
    def test_exact_when_locations_identify_nodes(self, chain_case):
        # In this instance every (timestep, location) has a single node
        # state, so the location-level chain is exact.
        graph, stream = chain_case
        for trajectory, probability in graph.paths():
            assert stream.trajectory_probability(trajectory) == pytest.approx(
                probability)

    def test_lossy_when_states_share_a_location(self):
        # Latency(B, 2) creates two node states for (1, B) with *different*
        # futures: the fresh arrival (from A) cannot leave yet, while the
        # continuing stay can.  The location-level chain merges them and
        # loses that correlation.
        ls = LSequence([{"A": 0.5, "B": 0.5}, {"B": 1.0},
                        {"B": 0.5, "C": 0.5}])
        cs = ConstraintSet([Latency("B", 2)])
        graph = build_ct_graph(ls, cs)
        stream = MarkovianStream.from_ct_graph(graph)
        # Exactly one of the valid trajectories must disagree.
        exact = {t: p for t, p in graph.paths()}
        approx = {t: stream.trajectory_probability(t) for t in exact}
        assert any(abs(exact[t] - approx[t]) > 1e-9 for t in exact)
        # ... and the chain still assigns positive mass to the impossible
        # combination (A, B, C) — the correlation it cannot represent.
        assert graph.trajectory_probability(("A", "B", "C")) == 0.0
        assert stream.trajectory_probability(("A", "B", "C")) > 0.0

    def test_length_validation(self, chain_case):
        _, stream = chain_case
        with pytest.raises(QueryError):
            stream.trajectory_probability(("A",))

    def test_impossible_trajectory_is_zero(self, chain_case):
        _, stream = chain_case
        assert stream.trajectory_probability(("A", "C", "C")) == 0.0


class TestSampling:
    def test_samples_follow_chain_support(self, chain_case):
        _, stream = chain_case
        rng = np.random.default_rng(5)
        for _ in range(50):
            trajectory = stream.sample(rng)
            assert len(trajectory) == stream.duration
            assert stream.trajectory_probability(trajectory) > 0.0

    def test_sample_frequencies_match_chain(self, chain_case):
        _, stream = chain_case
        rng = np.random.default_rng(11)
        n = 3000
        counts = {}
        for _ in range(n):
            trajectory = stream.sample(rng)
            counts[trajectory] = counts.get(trajectory, 0) + 1
        for trajectory, count in counts.items():
            expected = stream.trajectory_probability(trajectory)
            assert count / n == pytest.approx(expected, abs=0.03)

    def test_initial_marginal_from_samples(self, chain_case):
        _, stream = chain_case
        rng = np.random.default_rng(13)
        n = 2000
        starts = {}
        for _ in range(n):
            first = stream.sample(rng)[0]
            starts[first] = starts.get(first, 0) + 1
        for location, probability in stream.initial.items():
            assert starts.get(location, 0) / n == pytest.approx(
                probability, abs=0.04)

class TestLeakedMass:
    """Hand-built (non-``from_ct_graph``) chains may leak probability mass:
    a reachable state with a missing or zero-sum transition row.  The
    contract: ``marginal`` reports the deficit silently (dict sums < 1),
    ``sample`` refuses with a QueryError naming the leak site."""

    @pytest.fixture
    def leaky(self):
        # At timestep 1, state "B" has no transition row: the 0.4 mass
        # reaching it leaks before timestep 2.
        return MarkovianStream(
            initial={"A": 0.6, "B": 0.4},
            transitions=[{"A": {"A": 0.5, "B": 0.5}, "B": {"B": 1.0}},
                         {"A": {"A": 1.0}}])

    def test_marginal_may_sum_below_one(self, leaky):
        assert math.fsum(leaky.marginal(0).values()) == pytest.approx(1.0)
        assert math.fsum(leaky.marginal(1).values()) == pytest.approx(1.0)
        # P(X_1 = B) = 0.6*0.5 + 0.4*1.0 = 0.7 leaks: only A's mass flows on.
        last = leaky.marginal(2)
        assert set(last) == {"A"}
        assert math.fsum(last.values()) == pytest.approx(0.3)

    def test_from_ct_graph_streams_are_leak_free(self, chain_case):
        _, stream = chain_case
        for tau in range(stream.duration):
            assert math.fsum(stream.marginal(tau).values()) == \
                pytest.approx(1.0)

    def test_sample_missing_row_raises_query_error(self, leaky):
        # Force the walk into the leak: B at step 1 has no row.
        rng = np.random.default_rng(3)
        with pytest.raises(QueryError) as excinfo:
            for _ in range(200):
                leaky.sample(rng)
        message = str(excinfo.value)
        assert "timestep 1" in message
        assert "'B'" in message

    def test_sample_zero_sum_row_raises_query_error(self):
        stream = MarkovianStream(initial={"A": 1.0},
                                 transitions=[{"A": {"B": 0.0}}])
        with pytest.raises(QueryError) as excinfo:
            stream.sample(np.random.default_rng(0))
        message = str(excinfo.value)
        assert "timestep 0" in message and "'A'" in message
        assert "sums to" in message

    def test_sample_empty_initial_raises_query_error(self):
        stream = MarkovianStream(initial={}, transitions=[])
        with pytest.raises(QueryError) as excinfo:
            stream.sample(np.random.default_rng(0))
        assert "initial distribution" in str(excinfo.value)
