"""Tests for the ready-made floor plans (paper maps, SYN1/SYN2)."""

import pytest

from repro.errors import MapModelError
from repro.mapmodel.floorplans import (
    corridor_map,
    multi_floor_building,
    syn1_building,
    syn2_building,
    two_room_map,
)


class TestTwoRoomMap:
    def test_structure(self):
        b = two_room_map()
        assert set(b.location_names) == {"A", "B"}
        assert b.are_adjacent("A", "B")
        b.validate()


class TestCorridorMap:
    def test_rooms_connect_only_through_corridor(self):
        b = corridor_map(4)
        assert len(b) == 5
        for i in range(1, 5):
            assert b.neighbors(f"room{i}") == ("corridor",)
        assert len(b.neighbors("corridor")) == 4

    def test_zero_rooms_rejected(self):
        with pytest.raises(MapModelError):
            corridor_map(0)

    def test_corridor_is_transit(self):
        b = corridor_map(2)
        assert b.location("corridor").is_transit
        assert not b.location("room1").is_transit


class TestPaperFloor:
    def test_floor_inventory(self):
        b = multi_floor_building(1)
        names = set(b.location_names)
        assert "F0_corridor" in names
        assert "F0_stairs" in names
        assert {f"F0_R{i}" for i in range(1, 7)} <= names
        assert len(names) == 8

    def test_every_room_reaches_the_corridor(self):
        b = multi_floor_building(1)
        for i in range(1, 7):
            assert b.are_adjacent(f"F0_R{i}", "F0_corridor")

    def test_room_to_room_shortcuts(self):
        b = multi_floor_building(1)
        assert b.are_adjacent("F0_R1", "F0_R2")
        assert b.are_adjacent("F0_R5", "F0_R6")
        assert not b.are_adjacent("F0_R2", "F0_R3")
        assert not b.are_adjacent("F0_R1", "F0_R4")


class TestMultiFloor:
    def test_zero_floors_rejected(self):
        with pytest.raises(MapModelError):
            multi_floor_building(0)

    def test_stairs_chain_floors(self):
        b = multi_floor_building(3)
        assert b.are_adjacent("F0_stairs", "F1_stairs")
        assert b.are_adjacent("F1_stairs", "F2_stairs")
        assert not b.are_adjacent("F0_stairs", "F2_stairs")

    def test_stairs_have_positive_flight_length(self):
        b = multi_floor_building(2)
        flights = [d for d in b.doors
                   if b.location(d.loc_a).floor != b.location(d.loc_b).floor]
        assert len(flights) == 1
        assert flights[0].length > 0

    def test_floor_counts(self):
        assert multi_floor_building(2).floors == (0, 1)
        assert len(multi_floor_building(2)) == 16


class TestSynBuildings:
    def test_syn1_is_four_floors(self):
        b = syn1_building()
        assert b.name == "SYN1"
        assert b.floors == (0, 1, 2, 3)
        assert len(b) == 32

    def test_syn2_is_eight_floors(self):
        b = syn2_building()
        assert b.name == "SYN2"
        assert len(b.floors) == 8
        assert len(b) == 64

    def test_syn_buildings_are_fully_connected(self):
        b = syn2_building()
        pairs = b.connected_location_pairs()
        n = len(b)
        assert len(pairs) == n * (n - 1)
