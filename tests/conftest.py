"""Shared fixtures: tiny maps, constraint sets and datasets.

Heavy objects (datasets) are session-scoped; everything is seeded so the
whole suite is deterministic.
"""

from __future__ import annotations

import pytest

try:
    import numpy as np
except ImportError:  # pragma: no cover - the no-numpy CI leg
    np = None

from repro import (
    ConstraintSet,
    Grid,
    Latency,
    LSequence,
    TravelingTime,
    Unreachable,
    build_dataset,
    corridor_map,
    two_room_map,
)
from repro.mapmodel.floorplans import multi_floor_building


@pytest.fixture
def rng():
    if np is None:
        pytest.skip("numpy not installed (repro[numpy] extra)")
    return np.random.default_rng(1234)


@pytest.fixture
def two_rooms():
    """Rooms A and B joined by one door."""
    return two_room_map()


@pytest.fixture
def corridor4():
    """Four rooms along a corridor; rooms only connect to the corridor."""
    return corridor_map(4)


@pytest.fixture
def one_floor():
    """A single paper-style floor (7 rooms + corridor + stairs room)."""
    return multi_floor_building(1, name="one-floor")


@pytest.fixture
def two_floors():
    """Two paper-style floors joined by a staircase."""
    return multi_floor_building(2, name="two-floors")


@pytest.fixture
def simple_constraints():
    """A hand-written mixed constraint set over abstract locations A-D."""
    return ConstraintSet([
        Unreachable("A", "C"),
        Unreachable("C", "A"),
        TravelingTime("A", "D", 3),
        Latency("B", 2),
    ])


@pytest.fixture
def uniform_lsequence():
    """Three steps, two candidates each, uniform priors."""
    return LSequence([
        {"A": 0.5, "B": 0.5},
        {"B": 0.5, "C": 0.5},
        {"C": 0.5, "D": 0.5},
    ])


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small end-to-end dataset over a one-floor building."""
    pytest.importorskip("numpy", exc_type=ImportError)
    building = multi_floor_building(1, name="tiny")
    return build_dataset(building, durations=(40, 80), per_duration=2, seed=5)
