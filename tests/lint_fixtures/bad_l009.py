"""L009 fixture: sequence repetition of a mutable literal."""


def make_rows(duration):
    rows = [[]] * duration
    rows[0].append(1.0)
    return rows
