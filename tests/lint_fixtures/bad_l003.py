"""L003 fixture: object.__setattr__ outside __post_init__."""


def poke(frozen_thing):
    object.__setattr__(frozen_thing, "steps", 3)
