"""A fixture every rule must pass: the sanctioned idioms."""

import math


class Cache:
    def __init__(self):
        self._rows = {}
        self._states = []

    def intern(self, key, row):
        # Owners may mutate their own interned state.
        self._rows[key] = row
        self._states.append(row)
        return row


class Frozen:
    def __post_init__(self):
        object.__setattr__(self, "normalised", True)


def close_enough(probability):
    # Sentinels are exact by construction; fractions use a tolerance.
    return (probability == 0.0 or probability == 1.0
            or math.isclose(probability, 0.5))


def ordered(names, wanted):
    # Membership tests and sorted() iteration over sets are fine.
    chosen = [name for name in sorted(set(names)) if name in wanted]
    try:
        return chosen[0]
    except IndexError:
        return None
