"""L001 fixture: exact equality against a fractional float literal."""


def survived(probability):
    return probability == 0.5


def not_tiny(value):
    return value != 1e-6
