"""L002 fixture: a bare except swallowing everything."""


def swallow(action):
    try:
        return action()
    except:
        return None
