"""L007 fixture: a library invariant guarded only by assert."""


def survival_mass(total):
    assert total > 0, "zero mass should have raised ZeroMassError"
    return 1.0 / total
