"""L008 fixture: raw CSR column arithmetic outside the accessor layer."""


def first_child(graph, node):
    start = graph.edge_offsets[node]
    return graph.edge_children[start], graph.edge_probabilities[start]
