"""L006 fixture: a lambda shipped across the worker boundary."""


def dispatch(pool, items):
    return pool.map(lambda item: item + 1, items)
