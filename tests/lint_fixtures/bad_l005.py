"""L005 fixture: iterating freshly built sets in hash order."""


def hash_ordered(names):
    collected = []
    for name in {"b", "a", "c"}:
        collected.append(name)
    collected.extend(n for n in set(names))
    return collected, list(set(names))
