"""L004 fixture: mutating interned engine-cache state from outside."""


def corrupt(cache, row):
    cache._rows[("B", "C")] = row
    cache._states.append(row)
    cache._du_rows = {}
