"""L010 fixture: raw .ctg byte codec outside repro/store/."""

import struct


def read_ctg_header(blob):
    magic, version = struct.unpack("<8sI", blob[:12])
    return magic, version


def patch_crc(blob, crc):
    struct.pack_into("<I", blob, 56, crc)
