"""Round-trip tests for dataset archives."""

import json

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.core.algorithm import build_ct_graph
from repro.core.lsequence import LSequence
from repro.errors import ReproError
from repro.inference import MotilityProfile, infer_constraints
from repro.io.archives import load_dataset, save_dataset
from repro.io.jsonio import load_readers, save_readers
from repro.rfid.readers import place_default_readers


class TestReadersRoundTrip:
    def test_round_trip(self, two_rooms, tmp_path):
        model = place_default_readers(two_rooms)
        path = tmp_path / "readers.json"
        save_readers(model, path)
        loaded = load_readers(path, two_rooms)
        assert loaded.reader_names == model.reader_names
        assert loaded.wall_attenuation == model.wall_attenuation
        for a, b in zip(loaded.readers, model.readers):
            assert a == b


class TestDatasetArchive:
    def test_round_trip_preserves_everything(self, tiny_dataset, tmp_path):
        root = tmp_path / "archive"
        save_dataset(tiny_dataset, root)
        loaded = load_dataset(root)

        assert loaded.name == tiny_dataset.name
        assert loaded.durations == tiny_dataset.durations
        assert np.array_equal(loaded.true_matrix.values,
                              tiny_dataset.true_matrix.values)
        assert np.array_equal(loaded.calibrated_matrix.values,
                              tiny_dataset.calibrated_matrix.values)
        assert loaded.grid.num_cells == tiny_dataset.grid.num_cells
        for duration in tiny_dataset.durations:
            originals = tiny_dataset.trajectories[duration]
            copies = loaded.trajectories[duration]
            assert len(copies) == len(originals)
            for original, copy in zip(originals, copies):
                assert copy.truth.locations == original.truth.locations
                assert [r.readers for r in copy.readings] == \
                    [r.readers for r in original.readings]

    def test_loaded_dataset_cleans_identically(self, tiny_dataset, tmp_path):
        root = tmp_path / "archive"
        save_dataset(tiny_dataset, root)
        loaded = load_dataset(root)

        constraints = infer_constraints(loaded.building, MotilityProfile(),
                                        kinds=("DU", "LT"),
                                        distances=loaded.distances)
        original_traj = tiny_dataset.all_trajectories()[0]
        loaded_traj = loaded.all_trajectories()[0]
        graph_a = build_ct_graph(
            LSequence.from_readings(original_traj.readings,
                                    tiny_dataset.prior), constraints)
        graph_b = build_ct_graph(
            LSequence.from_readings(loaded_traj.readings, loaded.prior),
            constraints)
        # Path enumeration would blow up (billions of valid trajectories);
        # marginals + the ground-truth path probability pin equality.
        assert graph_a.num_valid_trajectories() \
            == graph_b.num_valid_trajectories()
        for tau in range(graph_a.duration):
            assert graph_a.location_marginal(tau) \
                == pytest.approx(graph_b.location_marginal(tau))
        truth = tuple(original_traj.truth.locations)
        assert graph_a.trajectory_probability(truth) \
            == pytest.approx(graph_b.trajectory_probability(truth))

    def test_bad_manifest_rejected(self, tmp_path):
        root = tmp_path / "archive"
        root.mkdir()
        (root / "dataset.json").write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ReproError):
            load_dataset(root)
