"""Round-trip tests for the serialization package."""

import json

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.core.algorithm import build_ct_graph
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.lsequence import LSequence, ReadingSequence
from repro.errors import ReproError
from repro.io.graphs import ctgraph_to_dict, ctgraph_to_dot, save_ctgraph
from repro.io.jsonio import (
    load_building,
    load_constraints,
    load_readings,
    load_trajectory,
    save_building,
    save_constraints,
    save_readings,
    save_trajectory,
)
from repro.io.matrices import load_matrix, save_matrix
from repro.mapmodel.grid import Grid
from repro.rfid.calibration import calibrate
from repro.rfid.readers import place_default_readers
from repro.simulation.trajectories import TrajectoryGenerator


class TestBuildingRoundTrip:
    def test_round_trip_preserves_structure(self, two_floors, tmp_path):
        path = tmp_path / "building.json"
        save_building(two_floors, path)
        loaded = load_building(path)
        assert loaded.name == two_floors.name
        assert loaded.location_names == two_floors.location_names
        for name in two_floors.location_names:
            original = two_floors.location(name)
            copy = loaded.location(name)
            assert copy.floor == original.floor
            assert copy.kind == original.kind
            assert copy.rect == original.rect
            assert loaded.neighbors(name) == two_floors.neighbors(name)
        flights = [d for d in loaded.doors if d.length > 0]
        assert len(flights) == 1

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ReproError):
            load_building(path)


class TestConstraintsRoundTrip:
    def test_round_trip(self, tmp_path):
        constraints = ConstraintSet([
            Unreachable("A", "B"), TravelingTime("A", "C", 4),
            Latency("B", 3),
        ])
        path = tmp_path / "ic.json"
        save_constraints(constraints, path)
        loaded = load_constraints(path)
        assert set(map(str, loaded)) == set(map(str, constraints))
        assert loaded.latency_of("B") == 3
        assert loaded.traveling_time("A", "C") == 4

    def test_empty_set(self, tmp_path):
        path = tmp_path / "ic.json"
        save_constraints(ConstraintSet(), path)
        assert len(load_constraints(path)) == 0


class TestReadingsRoundTrip:
    def test_round_trip(self, tmp_path):
        readings = ReadingSequence.from_reader_sets(
            [{"a", "b"}, set(), {"c"}])
        path = tmp_path / "readings.json"
        save_readings(readings, path)
        loaded = load_readings(path)
        assert loaded.duration == 3
        assert [r.readers for r in loaded] == [r.readers for r in readings]


class TestTrajectoryRoundTrip:
    def test_round_trip(self, one_floor, tmp_path, rng):
        truth = TrajectoryGenerator(one_floor, rng=rng).generate(50)
        path = tmp_path / "truth.json"
        save_trajectory(truth, path)
        loaded = load_trajectory(path, one_floor)
        assert loaded.locations == truth.locations
        assert loaded.floors == truth.floors
        assert loaded.points == truth.points

    def test_building_mismatch_rejected(self, one_floor, two_floors,
                                        tmp_path, rng):
        truth = TrajectoryGenerator(one_floor, rng=rng).generate(10)
        path = tmp_path / "truth.json"
        save_trajectory(truth, path)
        with pytest.raises(ReproError):
            load_trajectory(path, two_floors)


class TestMatrixRoundTrip:
    def test_round_trip(self, two_rooms, tmp_path):
        grid = Grid(two_rooms, 1.0)
        readers = place_default_readers(two_rooms)
        matrix = calibrate(readers, grid, rng=np.random.default_rng(1))
        path = tmp_path / "matrix.npz"
        save_matrix(matrix, path)
        loaded = load_matrix(path, two_rooms)
        assert np.array_equal(loaded.values, matrix.values)
        assert loaded.reader_names == matrix.reader_names
        assert loaded.grid.num_cells == matrix.grid.num_cells

    def test_wrong_building_rejected(self, two_rooms, corridor4, tmp_path):
        grid = Grid(two_rooms, 1.0)
        readers = place_default_readers(two_rooms)
        matrix = calibrate(readers, grid, rng=np.random.default_rng(1))
        path = tmp_path / "matrix.npz"
        save_matrix(matrix, path)
        with pytest.raises(ReproError):
            load_matrix(path, corridor4)


class TestCtGraphExport:
    @pytest.fixture
    def graph(self):
        ls = LSequence([{"A": 0.5, "B": 0.5}, {"B": 1.0}, {"B": 0.5, "C": 0.5}])
        cs = ConstraintSet([Unreachable("A", "C")])
        return build_ct_graph(ls, cs)

    def test_dict_is_self_consistent(self, graph):
        payload = ctgraph_to_dict(graph)
        assert payload["duration"] == graph.duration
        assert len(payload["nodes"]) == graph.num_nodes
        assert len(payload["edges"]) == graph.num_edges
        node_ids = {entry["id"] for entry in payload["nodes"]}
        for edge in payload["edges"]:
            assert edge["from"] in node_ids
            assert edge["to"] in node_ids
        assert sum(s["p"] for s in payload["sources"]) == pytest.approx(1.0)

    def test_save_produces_valid_json(self, graph, tmp_path):
        path = tmp_path / "graph.json"
        save_ctgraph(graph, path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "rfid-ctg/ctgraph@1"

    def test_dot_output(self, graph):
        dot = ctgraph_to_dot(graph)
        assert dot.startswith("digraph")
        assert dot.count("->") == graph.num_edges
        assert "lightblue" in dot  # sources highlighted

    def test_dot_refuses_large_graphs(self, graph):
        with pytest.raises(ValueError):
            ctgraph_to_dot(graph, max_nodes=1)
