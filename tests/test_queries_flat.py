"""Property-based bit-exactness of the flat query engine.

Three representations of the same cleaned object must answer every query
identically — not approximately, *bitwise*:

* the ``CTGraph`` object path (``repro.queries.analytics`` et al.),
* a ``QuerySession`` over ``CTGraph.to_flat()``,
* a ``QuerySession`` over an engine-native flat build
  (``CleaningOptions(materialize="flat")``), for both the reference and
  the compact engine.

The suite reuses the random-instance strategies of
``test_engine_vs_reference`` (random supports include zero-mass-pruned
levels and constraint mixes that trim whole branches) and pins, per
query: every location marginal, the entropy profile, expected visit
counts, visit/first-visit/span/dwell for every location (plus one the
graph never mentions), pattern matching, the MAP trajectory and top-k
lists.  Deterministic tie-breaking (lexicographic, per the
``most_likely_trajectory`` contract) gets its own regression tests on
hand-built tied graphs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.algorithm import CleaningOptions, build_ct_graph
from repro.core.constraints import ConstraintSet, Latency, Unreachable
from repro.core.flatgraph import FlatCTGraph
from repro.core.lsequence import LSequence
from repro.errors import InconsistentReadingsError, QueryError
from repro.queries import (
    entropy_profile,
    expected_visit_counts,
    first_visit_distribution,
    most_likely_trajectory,
    span_probability,
    stay_query,
    time_at_location_distribution,
    top_k_trajectories,
    visit_probability,
)
from repro.queries.session import QuerySession
from repro.queries.trajectory import TrajectoryQuery

from tests.test_engine_vs_reference import (
    LOCATIONS,
    constraint_sets,
    lsequences,
    tt_heavy_constraint_sets,
)

QUERY_LOCATIONS = LOCATIONS + ("Z",)  # "Z" never appears in any graph


def _build_all_forms(lsequence, constraints):
    """The node graph plus its three flat forms, or None on zero mass."""
    try:
        nodes = build_ct_graph(lsequence, constraints,
                               CleaningOptions(engine="reference"))
    except InconsistentReadingsError as error:
        for engine in ("reference", "compact"):
            with pytest.raises(type(error)):
                build_ct_graph(lsequence, constraints,
                               CleaningOptions(engine=engine,
                                               materialize="flat"))
        return None
    flats = [nodes.to_flat()]
    for engine in ("reference", "compact"):
        flats.append(build_ct_graph(
            lsequence, constraints,
            CleaningOptions(engine=engine, materialize="flat")))
    return nodes, flats


def _assert_query_parity(nodes, flat):
    session = QuerySession(flat)
    duration = nodes.duration
    assert session.duration == duration
    assert flat.num_valid_trajectories() == nodes.num_valid_trajectories()

    for tau in range(duration):
        assert session.location_marginal(tau) == stay_query(nodes, tau)
    assert session.entropy_profile() == entropy_profile(nodes)
    assert session.expected_visit_counts() == expected_visit_counts(nodes)

    for location in QUERY_LOCATIONS:
        assert (session.visit_probability(location)
                == visit_probability(nodes, location))
        assert (session.first_visit_distribution(location)
                == first_visit_distribution(nodes, location))
        assert (session.time_at_location_distribution(location)
                == time_at_location_distribution(nodes, location))
        end = min(duration - 1, 3)
        assert (session.span_probability(location, 0, end)
                == span_probability(nodes, location, 0, end))

    assert session.most_likely_trajectory() == most_likely_trajectory(nodes)
    for k in (1, 3, 10_000):
        assert session.top_k_trajectories(k) == top_k_trajectories(nodes, k)

    query = TrajectoryQuery("? B[1] ?" if duration >= 3 else "B[1]")
    assert query.probability(flat) == query.probability(nodes)


@settings(max_examples=150, deadline=None)
@given(lsequences(), constraint_sets())
def test_query_parity_on_random_instances(lsequence, constraints):
    forms = _build_all_forms(lsequence, constraints)
    if forms is None:
        return
    nodes, flats = forms
    # All flat forms are one value: to_flat == engine-native (both engines).
    assert flats[0] == flats[1] == flats[2]
    flats[0].validate()
    _assert_query_parity(nodes, flats[0])


@settings(max_examples=100, deadline=None)
@given(lsequences(max_duration=12), tt_heavy_constraint_sets())
def test_query_parity_on_tt_heavy_instances(lsequence, constraints):
    """TT constraints prune mid-sequence levels — the zero-mass-pruned
    node/edge paths the flat emission must drop identically."""
    forms = _build_all_forms(lsequence, constraints)
    if forms is None:
        return
    nodes, flats = forms
    assert flats[0] == flats[1] == flats[2]
    _assert_query_parity(nodes, flats[0])


# ----------------------------------------------------------------------
# deterministic tie-breaking
# ----------------------------------------------------------------------
def _tied_graph():
    """Four equal-probability trajectories: (B|C) -> A -> (B|D)."""
    lsequence = LSequence([
        {"B": 0.5, "C": 0.5},
        {"A": 1.0},
        {"B": 0.5, "D": 0.5},
    ])
    return build_ct_graph(lsequence, ConstraintSet([]))


def test_map_tie_break_is_lexicographic():
    nodes = _tied_graph()
    trajectory, probability = most_likely_trajectory(nodes)
    assert trajectory == ("B", "A", "B")
    assert probability == 0.25


def test_map_tie_break_identical_on_flat_path():
    nodes = _tied_graph()
    session = QuerySession(nodes.to_flat())
    assert session.most_likely_trajectory() == most_likely_trajectory(nodes)


def test_top_k_ties_ordered_identically_across_paths():
    nodes = _tied_graph()
    session = QuerySession(nodes.to_flat())
    expected = top_k_trajectories(nodes, 4)
    assert [t for t, _ in expected] == [
        ("B", "A", "B"), ("B", "A", "D"), ("C", "A", "B"), ("C", "A", "D")]
    assert session.top_k_trajectories(4) == expected


def test_map_tie_break_prefers_earlier_divergence():
    """Lexicographic means position 0 dominates: A.. beats B.. even when
    the B-prefixed path would win later positions."""
    lsequence = LSequence([
        {"A": 0.5, "B": 0.5},
        {"A": 0.5, "D": 0.5},
    ])
    nodes = build_ct_graph(lsequence, ConstraintSet([]))
    trajectory, _ = most_likely_trajectory(nodes)
    assert trajectory == ("A", "A")
    session = QuerySession(nodes.to_flat())
    assert session.most_likely_trajectory() == most_likely_trajectory(nodes)


# ----------------------------------------------------------------------
# top-k contract
# ----------------------------------------------------------------------
def test_top_k_exhausts_at_num_valid_trajectories():
    nodes = _tied_graph()
    assert nodes.num_valid_trajectories() == 4
    for graphlike in (nodes, None):
        if graphlike is None:
            result = QuerySession(nodes.to_flat()).top_k_trajectories(100)
        else:
            result = top_k_trajectories(graphlike, 100)
        assert len(result) == 4
        assert sum(p for _, p in result) == pytest.approx(1.0)


def test_top_k_rejects_non_positive_k():
    nodes = _tied_graph()
    with pytest.raises(QueryError):
        top_k_trajectories(nodes, 0)
    with pytest.raises(QueryError):
        QuerySession(nodes.to_flat()).top_k_trajectories(0)


@settings(max_examples=60, deadline=None)
@given(lsequences(max_duration=6), constraint_sets(),
       st.integers(min_value=1, max_value=30))
def test_top_k_length_contract_on_random_instances(lsequence, constraints,
                                                   k):
    forms = _build_all_forms(lsequence, constraints)
    if forms is None:
        return
    nodes, flats = forms
    result = top_k_trajectories(nodes, k)
    assert len(result) == min(k, nodes.num_valid_trajectories())
    assert result == QuerySession(flats[0]).top_k_trajectories(k)
    # Sorted by probability, descending.
    probabilities = [p for _, p in result]
    assert probabilities == sorted(probabilities, reverse=True)


# ----------------------------------------------------------------------
# flat container behaviour
# ----------------------------------------------------------------------
def test_flat_graph_is_smaller_and_validates():
    lsequence = LSequence([{"A": 0.5, "B": 0.5} for _ in range(40)])
    nodes = build_ct_graph(lsequence, ConstraintSet([Latency("B", 3)]))
    flat = nodes.to_flat()
    flat.validate()
    assert flat.estimate_size_bytes() < nodes.estimate_size_bytes()
    assert flat.num_nodes == nodes.num_nodes
    assert flat.num_edges == nodes.num_edges


def test_session_rejects_out_of_range_queries():
    nodes = _tied_graph()
    session = QuerySession(nodes.to_flat())
    with pytest.raises(QueryError):
        session.location_marginal(3)
    with pytest.raises(QueryError):
        session.span_probability("A", 1, 3)
    with pytest.raises(QueryError):
        nodes.to_flat().locations_at(-1)


def test_flat_equality_ignores_stats():
    lsequence = LSequence([{"A": 1.0}, {"A": 0.6, "B": 0.4}])
    constraints = ConstraintSet([Unreachable("A", "C")])
    reference = build_ct_graph(
        lsequence, constraints,
        CleaningOptions(engine="reference", materialize="flat"))
    compact = build_ct_graph(
        lsequence, constraints,
        CleaningOptions(engine="compact", materialize="flat"))
    assert isinstance(reference, FlatCTGraph)
    assert isinstance(compact, FlatCTGraph)
    assert reference == compact  # stats differ (compare=False), values equal
