"""Smoke test for benchmarks/bench_parallel.py: the bench must run on a
tiny workload and emit a well-formed BENCH_parallel.json (schema only — no
performance assertion; speedup is hardware)."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH = REPO_ROOT / "benchmarks" / "bench_parallel.py"


def _bench_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    return env


def test_smoke_emits_well_formed_json(tmp_path):
    out = tmp_path / "BENCH_parallel.json"
    run = subprocess.run(
        [sys.executable, str(BENCH), "--objects", "3", "--duration", "40",
         "--workers", "2", "--out", str(out)],
        capture_output=True, text=True, env=_bench_env(), timeout=300)
    assert run.returncode == 0, run.stderr

    payload = json.loads(out.read_text())
    assert payload["benchmark"] == "bench_parallel"
    assert payload["workload"]["objects"] == 3
    assert payload["identical_output"] is True
    assert payload["failures"] == 0
    assert payload["sequential"]["wall_seconds"] > 0.0
    assert payload["parallel"]["workers"] == 2
    assert len(payload["per_object"]) == 3

    # The bench's own --check mode agrees.
    check = subprocess.run(
        [sys.executable, str(BENCH), "--check", str(out)],
        capture_output=True, text=True, env=_bench_env(), timeout=60)
    assert check.returncode == 0, check.stderr


def test_check_rejects_malformed_payload(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"benchmark": "bench_parallel"}))
    check = subprocess.run(
        [sys.executable, str(BENCH), "--check", str(bad)],
        capture_output=True, text=True, env=_bench_env(), timeout=60)
    assert check.returncode == 1
    assert "SCHEMA:" in check.stderr

def test_inject_crash_smoke_records_quarantine(tmp_path):
    out = tmp_path / "BENCH_faults.json"
    run = subprocess.run(
        [sys.executable, str(BENCH), "--objects", "2", "--duration", "30",
         "--workers", "2", "--inject-crash", "--out", str(out)],
        capture_output=True, text=True, env=_bench_env(), timeout=300)
    assert run.returncode == 0, run.stderr
    assert "WorkerCrashError" in run.stdout

    payload = json.loads(out.read_text())
    # Real objects are unharmed and identical to the sequential run...
    assert payload["identical_output"] is True
    assert payload["failures"] == 0
    # ...while the injected object was quarantined with the right type.
    fault = payload["fault_injection"]
    assert fault["inject_crash"] is True
    [injected] = fault["injected"]
    assert injected["ok"] is False
    assert injected["error_type"] == "WorkerCrashError"
    assert fault["respawns"] >= 1

    check = subprocess.run(
        [sys.executable, str(BENCH), "--check", str(out)],
        capture_output=True, text=True, env=_bench_env(), timeout=60)
    assert check.returncode == 0, check.stderr


def test_check_rejects_unquarantined_injection(tmp_path):
    # An injected fault that "succeeded" (or failed with the wrong type)
    # must flunk --check: the quarantine contract is part of the schema.
    good = tmp_path / "base.json"
    run = subprocess.run(
        [sys.executable, str(BENCH), "--objects", "2", "--duration", "30",
         "--workers", "2", "--inject-crash", "--out", str(good)],
        capture_output=True, text=True, env=_bench_env(), timeout=300)
    assert run.returncode == 0, run.stderr
    payload = json.loads(good.read_text())
    payload["fault_injection"]["injected"][0]["error_type"] = "ZeroMassError"
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(payload))
    check = subprocess.run(
        [sys.executable, str(BENCH), "--check", str(bad)],
        capture_output=True, text=True, env=_bench_env(), timeout=60)
    assert check.returncode == 1
    assert "not quarantined" in check.stderr
