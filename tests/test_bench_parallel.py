"""Smoke test for benchmarks/bench_parallel.py: the bench must run on a
tiny workload and emit a well-formed BENCH_parallel.json (schema only — no
performance assertion; speedup is hardware)."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH = REPO_ROOT / "benchmarks" / "bench_parallel.py"


def _bench_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    return env


def test_smoke_emits_well_formed_json(tmp_path):
    out = tmp_path / "BENCH_parallel.json"
    run = subprocess.run(
        [sys.executable, str(BENCH), "--objects", "3", "--duration", "40",
         "--workers", "2", "--out", str(out)],
        capture_output=True, text=True, env=_bench_env(), timeout=300)
    assert run.returncode == 0, run.stderr

    payload = json.loads(out.read_text())
    assert payload["benchmark"] == "bench_parallel"
    assert payload["workload"]["objects"] == 3
    assert payload["identical_output"] is True
    assert payload["failures"] == 0
    assert payload["sequential"]["wall_seconds"] > 0.0
    assert payload["parallel"]["workers"] == 2
    assert len(payload["per_object"]) == 3

    # The bench's own --check mode agrees.
    check = subprocess.run(
        [sys.executable, str(BENCH), "--check", str(out)],
        capture_output=True, text=True, env=_bench_env(), timeout=60)
    assert check.returncode == 0, check.stderr


def test_check_rejects_malformed_payload(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"benchmark": "bench_parallel"}))
    check = subprocess.run(
        [sys.executable, str(BENCH), "--check", str(bad)],
        capture_output=True, text=True, env=_bench_env(), timeout=60)
    assert check.returncode == 1
    assert "SCHEMA:" in check.stderr
