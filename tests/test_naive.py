"""Tests for the naive enumeration conditioner."""

import math

import pytest

from repro.core.constraints import ConstraintSet, Latency, Unreachable
from repro.core.lsequence import LSequence
from repro.core.naive import NaiveConditioner
from repro.errors import InconsistentReadingsError, ReadingSequenceError


class TestEnumerationLimit:
    def test_large_instances_refused(self):
        ls = LSequence([{"A": 0.5, "B": 0.5}] * 30)
        with pytest.raises(ReadingSequenceError):
            NaiveConditioner(ls, ConstraintSet(), enumeration_limit=1000)

    def test_limit_can_be_disabled(self):
        ls = LSequence([{"A": 0.5, "B": 0.5}] * 12)
        conditioner = NaiveConditioner(ls, ConstraintSet(),
                                       enumeration_limit=None)
        assert len(conditioner.conditioned_distribution()) == 2 ** 12


class TestConditioning:
    def test_invalid_trajectories_excluded(self):
        ls = LSequence([{"A": 0.5, "B": 0.5}, {"C": 1.0}])
        cs = ConstraintSet([Unreachable("B", "C")])
        conditioner = NaiveConditioner(ls, cs)
        distribution = conditioner.conditioned_distribution()
        assert distribution == {("A", "C"): pytest.approx(1.0)}

    def test_distribution_sums_to_one(self, uniform_lsequence):
        cs = ConstraintSet([Unreachable("A", "B")])
        conditioner = NaiveConditioner(uniform_lsequence, cs)
        total = math.fsum(conditioner.conditioned_distribution().values())
        assert total == pytest.approx(1.0)

    def test_probability_of_invalid_is_zero(self):
        ls = LSequence([{"A": 0.5, "B": 0.5}, {"C": 1.0}])
        cs = ConstraintSet([Unreachable("B", "C")])
        conditioner = NaiveConditioner(ls, cs)
        assert conditioner.probability(("B", "C")) == 0.0
        assert conditioner.probability(("A", "C")) == pytest.approx(1.0)

    def test_inconsistent_raises(self):
        ls = LSequence([{"A": 1.0}, {"B": 1.0}])
        cs = ConstraintSet([Unreachable("A", "B")])
        with pytest.raises(InconsistentReadingsError):
            NaiveConditioner(ls, cs).conditioned_distribution()

    def test_strict_truncation_respected(self):
        ls = LSequence([{"A": 1.0}, {"B": 1.0}])
        cs = ConstraintSet([Latency("B", 3)])
        lenient = NaiveConditioner(ls, cs)
        assert len(lenient.conditioned_distribution()) == 1
        strict = NaiveConditioner(ls, cs, strict_truncation=True)
        with pytest.raises(InconsistentReadingsError):
            strict.conditioned_distribution()

    def test_location_marginal(self):
        ls = LSequence([{"A": 0.5, "B": 0.5}, {"C": 0.5, "D": 0.5}])
        cs = ConstraintSet([Unreachable("B", "C")])
        conditioner = NaiveConditioner(ls, cs)
        marginal = conditioner.location_marginal(0)
        # Valid: AC (.25), AD (.25), BD (.25) -> renormalised.
        assert marginal["A"] == pytest.approx(2 / 3)
        assert marginal["B"] == pytest.approx(1 / 3)

    def test_valid_trajectories_report_priors(self):
        ls = LSequence([{"A": 0.6, "B": 0.4}])
        conditioner = NaiveConditioner(ls, ConstraintSet())
        assert dict(conditioner.valid_trajectories()) == {
            ("A",): pytest.approx(0.6), ("B",): pytest.approx(0.4)}
