"""End-to-end integration tests: the full pipeline, on real (tiny) datasets.

These pin the facts the paper's evaluation depends on:

* generated ground truth is valid under every inferred constraint set;
* the ground truth is always represented in the cleaned ct-graph;
* cleaning never *hurts* much and on average helps (accuracy ordering);
* richer constraint sets yield larger graphs and longer cleaning times.
"""

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from repro.core.algorithm import build_ct_graph
from repro.core.lsequence import LSequence
from repro.core.validity import violations
from repro.inference import MotilityProfile, infer_constraints
from repro.queries.stay import stay_query, stay_query_prior
from repro.queries.accuracy import stay_accuracy

CONFIGS = (("DU",), ("DU", "LT"), ("DU", "LT", "TT"))


@pytest.fixture(scope="module")
def cleaned(tiny_dataset):
    """Every trajectory cleaned under every configuration."""
    profile = MotilityProfile()
    results = {}
    for kinds in CONFIGS:
        constraints = infer_constraints(tiny_dataset.building, profile,
                                        kinds=kinds,
                                        distances=tiny_dataset.distances)
        for index, trajectory in enumerate(tiny_dataset.all_trajectories()):
            lsequence = LSequence.from_readings(trajectory.readings,
                                                tiny_dataset.prior)
            graph = build_ct_graph(lsequence, constraints)
            results[(kinds, index)] = (trajectory, lsequence, graph)
    return results


class TestGroundTruthSurvival:
    def test_truth_valid_under_all_inferred_sets(self, tiny_dataset):
        profile = MotilityProfile()
        for kinds in CONFIGS:
            constraints = infer_constraints(tiny_dataset.building, profile,
                                            kinds=kinds,
                                            distances=tiny_dataset.distances)
            for trajectory in tiny_dataset.all_trajectories():
                assert violations(trajectory.truth.locations,
                                  constraints) == []

    def test_truth_has_positive_prior_support(self, tiny_dataset):
        for trajectory in tiny_dataset.all_trajectories():
            lsequence = LSequence.from_readings(trajectory.readings,
                                                tiny_dataset.prior)
            truth = trajectory.truth.locations
            for tau in range(len(truth)):
                assert lsequence.probability(tau, truth[tau]) > 0.0

    def test_truth_is_a_path_of_every_graph(self, cleaned):
        for (kinds, index), (trajectory, _, graph) in cleaned.items():
            truth = tuple(trajectory.truth.locations)
            assert graph.trajectory_probability(truth) > 0.0, (kinds, index)


class TestGraphInvariants:
    def test_all_graphs_validate(self, cleaned):
        for (_, _), (_, _, graph) in cleaned.items():
            graph.validate()

    def test_stay_distributions_normalised(self, cleaned):
        import math
        for (_, _), (_, _, graph) in cleaned.items():
            for tau in range(0, graph.duration, 7):
                total = math.fsum(stay_query(graph, tau).values())
                assert total == pytest.approx(1.0)


class TestEvaluationShapes:
    def test_cleaning_improves_average_stay_accuracy(self, cleaned,
                                                     tiny_dataset):
        """The paper's headline: conditioning beats the raw prior."""
        raw_scores, cleaned_scores = [], []
        for (kinds, index), (trajectory, lsequence, graph) in cleaned.items():
            if kinds != ("DU", "LT", "TT"):
                continue
            truth = trajectory.truth.locations
            for tau in range(trajectory.duration):
                raw_scores.append(stay_accuracy(
                    stay_query_prior(lsequence, tau), truth[tau]))
                cleaned_scores.append(stay_accuracy(
                    stay_query(graph, tau), truth[tau]))
        assert np.mean(cleaned_scores) > np.mean(raw_scores)

    def test_richer_constraints_monotone_graph_size(self, cleaned):
        """DU+LT+TT graphs are at least as large as DU graphs (Section 6.7)."""
        by_index = {}
        for (kinds, index), (_, _, graph) in cleaned.items():
            by_index.setdefault(index, {})[kinds] = graph
        for index, graphs in by_index.items():
            du = graphs[("DU",)].num_nodes
            full = graphs[("DU", "LT", "TT")].num_nodes
            assert full >= du

    def test_constraints_shrink_interpretation_space(self, cleaned):
        """Valid trajectories are (weakly) fewer with each added kind."""
        by_index = {}
        for (kinds, index), (_, lsequence, graph) in cleaned.items():
            by_index.setdefault(index, {})[kinds] = (lsequence, graph)
        for index, entry in by_index.items():
            lsequence, du_graph = entry[("DU",)]
            assert du_graph.num_valid_trajectories() \
                <= lsequence.num_trajectories()
            _, full_graph = entry[("DU", "LT", "TT")]
            assert full_graph.num_valid_trajectories() \
                <= du_graph.num_valid_trajectories()
