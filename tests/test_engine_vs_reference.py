"""Property-based bit-exactness: the compact engine == the reference
builder, on randomly generated instances.

``test_algorithm_vs_naive`` pins the reference builder to exact
enumeration; this suite pins :mod:`repro.core.engine` to the reference
builder — not approximately, *bitwise*: the flat (pickle) forms of the
two graphs must be equal (every path, every float), the construction
counters must agree, and zero-mass inputs must fail identically.  Random
map plans (``random_building`` + ``infer_constraints``) cover inferred
constraint sets beyond the hand-written strategies.
"""

import pytest
from hypothesis import given, settings, strategies as st

try:
    import numpy as np
except ImportError:  # pragma: no cover - the no-numpy CI leg
    np = None  # only the random-map-plan test needs it; it skips

from repro.core.algorithm import CleaningOptions, build_ct_graph
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.lsequence import LSequence
from repro.errors import InconsistentReadingsError
from repro.inference import MotilityProfile, infer_constraints
from repro.mapmodel.random_plans import random_building
from repro.runtime.plan import SharedCleaningPlan

LOCATIONS = ("A", "B", "C", "D")

locations = st.sampled_from(LOCATIONS)


@st.composite
def lsequences(draw, max_duration=10):
    duration = draw(st.integers(min_value=1, max_value=max_duration))
    rows = []
    for _ in range(duration):
        support = draw(st.lists(locations, min_size=1, max_size=3,
                                unique=True))
        weights = [draw(st.floats(min_value=0.05, max_value=1.0))
                   for _ in support]
        total = sum(weights)
        rows.append({loc: w / total for loc, w in zip(support, weights)})
    return LSequence(rows)


@st.composite
def constraint_sets(draw):
    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        kind = draw(st.sampled_from(["du", "tt", "lt"]))
        if kind == "du":
            constraints.append(Unreachable(draw(locations), draw(locations)))
        elif kind == "tt":
            a = draw(locations)
            b = draw(locations.filter(lambda x: x != a))
            constraints.append(TravelingTime(
                a, b, draw(st.integers(min_value=2, max_value=4))))
        else:
            constraints.append(Latency(
                draw(locations), draw(st.integers(min_value=2, max_value=4))))
    return ConstraintSet(constraints)


@st.composite
def tt_heavy_constraint_sets(draw):
    """2-5 TravelingTime constraints (so the DepartureFilter and the
    mask-widened transition keys are always on the hot path), plus an
    optional DU/LT each."""
    constraints = []
    for _ in range(draw(st.integers(min_value=2, max_value=5))):
        a = draw(locations)
        b = draw(locations.filter(lambda x: x != a))
        constraints.append(TravelingTime(
            a, b, draw(st.integers(min_value=2, max_value=5))))
    if draw(st.booleans()):
        constraints.append(Unreachable(draw(locations), draw(locations)))
    if draw(st.booleans()):
        constraints.append(Latency(
            draw(locations), draw(st.integers(min_value=2, max_value=4))))
    return ConstraintSet(constraints)


def _flat(graph):
    state = graph.__getstate__()
    return {key: value for key, value in state.items() if key != "stats"}


def _assert_engines_agree(lsequence, constraints, strict, *, plan=None):
    options_reference = CleaningOptions("strict" if strict else "lenient",
                                        engine="reference")
    options_compact = CleaningOptions("strict" if strict else "lenient",
                                      engine="compact")
    try:
        reference = build_ct_graph(lsequence, constraints, options_reference)
    except InconsistentReadingsError as error:
        with pytest.raises(type(error)):
            build_ct_graph(lsequence, constraints, options_compact,
                           plan=plan)
        return
    compact = build_ct_graph(lsequence, constraints, options_compact,
                             plan=plan)
    assert _flat(reference) == _flat(compact), \
        "compact engine diverged from the reference builder"
    assert reference.stats == compact.stats, \
        "construction counters diverged"


@settings(max_examples=250, deadline=None)
@given(lsequences(), constraint_sets(), st.booleans())
def test_bit_exact_on_random_instances(lsequence, constraints, strict):
    _assert_engines_agree(lsequence, constraints, strict)


@settings(max_examples=250, deadline=None)
@given(lsequences(max_duration=14), tt_heavy_constraint_sets(),
       st.booleans())
def test_bit_exact_on_tt_heavy_instances(lsequence, constraints, strict):
    _assert_engines_agree(lsequence, constraints, strict)


@settings(max_examples=100, deadline=None)
@given(st.lists(lsequences(), min_size=2, max_size=4), constraint_sets(),
       st.booleans())
def test_bit_exact_through_a_shared_plan(batch, constraints, strict):
    """One plan (one transition cache) across several objects must give
    every object the same graph a fresh build gives it."""
    plan = SharedCleaningPlan(constraints)
    for lsequence in batch:
        _assert_engines_agree(lsequence, constraints, strict, plan=plan)


@pytest.mark.skipif(np is None, reason="numpy not installed "
                    "(repro[numpy] extra); random plans draw from an rng")
@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=8, max_value=20))
def test_bit_exact_on_random_map_plans(seed, duration):
    """Inferred constraint sets over random buildings: a support-connected
    random walk, read with positional ambiguity."""
    rng = np.random.default_rng(seed)
    building = random_building(num_floors=1, rooms_x=3, rooms_y=2,
                               extra_door_fraction=0.5, rng=rng)
    constraints = infer_constraints(building, MotilityProfile())
    names = building.location_names
    current = names[int(rng.integers(len(names)))]
    rows = []
    for _ in range(duration):
        if rng.random() < 0.4:
            moves = building.neighbors(current)
            if moves:
                current = moves[int(rng.integers(len(moves)))]
        support = {current}
        for _ in range(int(rng.integers(0, 3))):
            support.add(names[int(rng.integers(len(names)))])
        weights = rng.random(len(support)) + 0.05
        weights /= weights.sum()
        rows.append({name: float(w)
                     for name, w in zip(sorted(support), weights)})
    lsequence = LSequence(rows)
    _assert_engines_agree(lsequence, constraints, strict=False)
