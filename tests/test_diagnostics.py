"""Tests for inconsistency diagnosis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.algorithm import CleaningOptions, build_ct_graph
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.diagnostics import diagnose
from repro.core.lsequence import LSequence
from repro.errors import InconsistentReadingsError


class TestDiagnose:
    def test_consistent_data(self):
        ls = LSequence([{"A": 1.0}, {"B": 1.0}])
        report = diagnose(ls, ConstraintSet())
        assert report.is_consistent
        assert report.failed_at is None
        assert "consistent" in report.summary()

    def test_du_dead_end_located_and_explained(self):
        ls = LSequence([{"A": 1.0}, {"B": 1.0}, {"C": 1.0}])
        cs = ConstraintSet([Unreachable("B", "C")])
        report = diagnose(ls, cs)
        assert report.failed_at == 2
        assert report.frontier_locations == ("B",)
        assert report.candidate_locations == ("C",)
        (move,) = report.blocked
        assert move.reason == "unreachable"
        assert "unreachable(B, C)" in str(move)
        assert "timestep 2" in report.summary()

    def test_latency_dead_end_explained(self):
        ls = LSequence([{"A": 1.0}, {"B": 1.0}, {"A": 1.0}])
        cs = ConstraintSet([Latency("B", 3)])
        report = diagnose(ls, cs)
        assert report.failed_at == 2
        assert any(move.reason == "latency" for move in report.blocked)

    def test_travelingtime_dead_end_explained(self):
        ls = LSequence([{"A": 1.0}, {"B": 1.0}, {"C": 1.0}])
        cs = ConstraintSet([TravelingTime("A", "C", 4)])
        report = diagnose(ls, cs)
        assert report.failed_at == 2
        assert any(move.reason == "travelingTime" for move in report.blocked)
        assert any("left A at 0" in move.detail for move in report.blocked)

    def test_strict_truncation_source_failure(self):
        ls = LSequence([{"A": 1.0}])
        cs = ConstraintSet([Latency("A", 3)])
        report = diagnose(ls, cs, CleaningOptions("strict"))
        assert report.failed_at == 0
        assert not report.frontier_locations

    def test_blocked_list_is_capped(self):
        rows = [{chr(ord("A") + i): 1.0 / 8 for i in range(8)},
                {"Z": 1.0}]
        cs = ConstraintSet([Unreachable(chr(ord("A") + i), "Z")
                            for i in range(8)])
        report = diagnose(LSequence(rows), cs, max_blocked=3)
        assert len(report.blocked) == 3


locations = st.sampled_from("ABC")


@st.composite
def random_cases(draw):
    duration = draw(st.integers(min_value=1, max_value=5))
    rows = []
    for _ in range(duration):
        support = draw(st.lists(locations, min_size=1, max_size=3,
                                unique=True))
        rows.append({l: 1.0 / len(support) for l in support})
    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        kind = draw(st.sampled_from(["du", "lt", "tt"]))
        if kind == "du":
            constraints.append(Unreachable(draw(locations), draw(locations)))
        elif kind == "lt":
            constraints.append(Latency(draw(locations), draw(st.integers(2, 3))))
        else:
            a = draw(locations)
            b = draw(locations.filter(lambda x: x != a))
            constraints.append(TravelingTime(a, b, draw(st.integers(2, 3))))
    return LSequence(rows), ConstraintSet(constraints)


@settings(max_examples=300, deadline=None)
@given(random_cases())
def test_diagnosis_agrees_with_the_cleaner(case):
    """diagnose() says inconsistent exactly when build_ct_graph raises."""
    lsequence, constraints = case
    report = diagnose(lsequence, constraints)
    try:
        build_ct_graph(lsequence, constraints)
        cleanable = True
    except InconsistentReadingsError:
        cleanable = False
    assert report.is_consistent == cleanable
    if not report.is_consistent:
        assert 0 <= report.failed_at < lsequence.duration
