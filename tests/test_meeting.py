"""Tests for contact (co-location) queries over two cleaned graphs."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.algorithm import build_ct_graph
from repro.core.constraints import ConstraintSet, Latency, Unreachable
from repro.core.lsequence import LSequence
from repro.core.naive import NaiveConditioner
from repro.errors import InconsistentReadingsError, QueryError
from repro.queries.meeting import (
    colocation_profile,
    meeting_probability,
    meeting_time_distribution,
)


def meeting_by_enumeration(ls_a, ls_b, constraints):
    """Reference: enumerate both conditioned distributions and join."""
    a = NaiveConditioner(ls_a, constraints).conditioned_distribution()
    b = NaiveConditioner(ls_b, constraints).conditioned_distribution()
    first: dict = {}
    profile = [0.0] * ls_a.duration
    for ta, pa in a.items():
        for tb, pb in b.items():
            mass = pa * pb
            met_at = None
            for tau, (la, lb) in enumerate(zip(ta, tb)):
                if la == lb:
                    profile[tau] += mass
                    if met_at is None:
                        met_at = tau
            if met_at is not None:
                first[met_at] = first.get(met_at, 0.0) + mass
    return first, profile


@pytest.fixture
def pair():
    constraints = ConstraintSet([Unreachable("A", "C")])
    ls_a = LSequence([{"A": 0.5, "B": 0.5}, {"B": 0.6, "C": 0.4},
                      {"A": 0.5, "C": 0.5}])
    ls_b = LSequence([{"B": 0.7, "C": 0.3}, {"B": 0.5, "C": 0.5},
                      {"C": 1.0}])
    return (constraints, ls_a, ls_b,
            build_ct_graph(ls_a, constraints),
            build_ct_graph(ls_b, constraints))


class TestMeetingQueries:
    def test_duration_mismatch_rejected(self, pair):
        _, _, _, graph_a, _ = pair
        short = build_ct_graph(LSequence([{"A": 1.0}]), ConstraintSet())
        with pytest.raises(QueryError):
            meeting_probability(graph_a, short)
        with pytest.raises(QueryError):
            colocation_profile(graph_a, short)

    def test_first_meeting_matches_enumeration(self, pair):
        constraints, ls_a, ls_b, graph_a, graph_b = pair
        expected_first, _ = meeting_by_enumeration(ls_a, ls_b, constraints)
        got = meeting_time_distribution(graph_a, graph_b)
        assert set(got) == set(expected_first)
        for tau, probability in expected_first.items():
            assert got[tau] == pytest.approx(probability)

    def test_profile_matches_enumeration(self, pair):
        constraints, ls_a, ls_b, graph_a, graph_b = pair
        _, expected_profile = meeting_by_enumeration(ls_a, ls_b, constraints)
        got = colocation_profile(graph_a, graph_b)
        assert len(got) == len(expected_profile)
        for value, expected in zip(got, expected_profile):
            assert value == pytest.approx(expected)

    def test_meeting_probability_is_total_first_mass(self, pair):
        _, _, _, graph_a, graph_b = pair
        total = math.fsum(
            meeting_time_distribution(graph_a, graph_b).values())
        assert meeting_probability(graph_a, graph_b) == pytest.approx(total)

    def test_identical_deterministic_graphs_always_meet(self):
        ls = LSequence([{"A": 1.0}, {"B": 1.0}])
        graph = build_ct_graph(ls, ConstraintSet())
        assert meeting_probability(graph, graph) == pytest.approx(1.0)
        assert meeting_time_distribution(graph, graph) == {
            0: pytest.approx(1.0)}

    def test_disjoint_supports_never_meet(self):
        constraints = ConstraintSet()
        graph_a = build_ct_graph(LSequence([{"A": 1.0}, {"A": 1.0}]),
                                 constraints)
        graph_b = build_ct_graph(LSequence([{"B": 1.0}, {"C": 1.0}]),
                                 constraints)
        assert meeting_probability(graph_a, graph_b) == 0.0
        assert meeting_time_distribution(graph_a, graph_b) == {}
        assert colocation_profile(graph_a, graph_b) == [0.0, 0.0]


locations = st.sampled_from("ABC")


@st.composite
def meeting_instances(draw):
    duration = draw(st.integers(min_value=1, max_value=4))

    def lseq():
        rows = []
        for _ in range(duration):
            support = draw(st.lists(locations, min_size=1, max_size=3,
                                    unique=True))
            weights = [draw(st.floats(min_value=0.1, max_value=1.0))
                       for _ in support]
            total = sum(weights)
            rows.append({l: w / total for l, w in zip(support, weights)})
        return LSequence(rows)

    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        if draw(st.booleans()):
            constraints.append(Unreachable(draw(locations), draw(locations)))
        else:
            constraints.append(Latency(draw(locations), draw(st.integers(2, 3))))
    return lseq(), lseq(), ConstraintSet(constraints)


@settings(max_examples=150, deadline=None)
@given(meeting_instances())
def test_meeting_property(instance):
    ls_a, ls_b, constraints = instance
    try:
        graph_a = build_ct_graph(ls_a, constraints)
        graph_b = build_ct_graph(ls_b, constraints)
    except InconsistentReadingsError:
        return
    expected_first, expected_profile = meeting_by_enumeration(
        ls_a, ls_b, constraints)
    got_first = meeting_time_distribution(graph_a, graph_b)
    assert set(got_first) == set(expected_first)
    for tau, probability in expected_first.items():
        assert got_first[tau] == pytest.approx(probability, abs=1e-9)
    got_profile = colocation_profile(graph_a, graph_b)
    for value, expected in zip(got_profile, expected_profile):
        assert value == pytest.approx(expected, abs=1e-9)
