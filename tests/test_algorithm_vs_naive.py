"""Property-based equivalence: Algorithm 1 == exact conditioning by
enumeration, on randomly generated instances (the load-bearing invariant of
the whole reproduction — DESIGN.md §7)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.algorithm import CleaningOptions, build_ct_graph
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.lsequence import LSequence
from repro.core.naive import NaiveConditioner
from repro.errors import InconsistentReadingsError

LOCATIONS = ("A", "B", "C", "D")

locations = st.sampled_from(LOCATIONS)


@st.composite
def lsequences(draw):
    duration = draw(st.integers(min_value=1, max_value=6))
    rows = []
    for _ in range(duration):
        support = draw(st.lists(locations, min_size=1, max_size=3,
                                unique=True))
        weights = [draw(st.floats(min_value=0.05, max_value=1.0))
                   for _ in support]
        total = sum(weights)
        rows.append({loc: w / total for loc, w in zip(support, weights)})
    return LSequence(rows)


@st.composite
def constraint_sets(draw):
    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        kind = draw(st.sampled_from(["du", "tt", "lt"]))
        if kind == "du":
            constraints.append(Unreachable(draw(locations), draw(locations)))
        elif kind == "tt":
            a = draw(locations)
            b = draw(locations.filter(lambda x: x != a))
            constraints.append(
                TravelingTime(a, b, draw(st.integers(min_value=2, max_value=4))))
        else:
            constraints.append(
                Latency(draw(locations), draw(st.integers(min_value=2, max_value=4))))
    return ConstraintSet(constraints)


def _run_both(lsequence, constraints, strict):
    options = CleaningOptions("strict" if strict else "lenient")
    naive = NaiveConditioner(lsequence, constraints, strict_truncation=strict)
    try:
        expected = naive.conditioned_distribution()
    except InconsistentReadingsError:
        expected = None
    try:
        graph = build_ct_graph(lsequence, constraints, options)
    except InconsistentReadingsError:
        graph = None
    return expected, graph


@settings(max_examples=300, deadline=None)
@given(lsequences(), constraint_sets(), st.booleans())
def test_same_valid_set_and_probabilities(lsequence, constraints, strict):
    expected, graph = _run_both(lsequence, constraints, strict)
    assert (expected is None) == (graph is None), \
        "one engine found valid trajectories, the other did not"
    if expected is None:
        return
    got = dict(graph.paths())
    assert set(got) == set(expected)
    for trajectory, probability in expected.items():
        assert got[trajectory] == pytest.approx(probability, abs=1e-9)


@settings(max_examples=200, deadline=None)
@given(lsequences(), constraint_sets())
def test_probabilities_sum_to_one(lsequence, constraints):
    expected, graph = _run_both(lsequence, constraints, strict=False)
    if graph is None:
        return
    assert math.fsum(p for _, p in graph.paths()) == pytest.approx(1.0)
    graph.validate()


@settings(max_examples=200, deadline=None)
@given(lsequences(), constraint_sets())
def test_trajectory_probability_lookup_matches_paths(lsequence, constraints):
    expected, graph = _run_both(lsequence, constraints, strict=False)
    if graph is None:
        return
    for trajectory, probability in expected.items():
        assert graph.trajectory_probability(trajectory) == pytest.approx(
            probability, abs=1e-9)
    # And invalid/incompatible trajectories score 0.
    for trajectory, prior in lsequence.trajectories():
        if trajectory not in expected:
            assert graph.trajectory_probability(trajectory) == 0.0


@settings(max_examples=200, deadline=None)
@given(lsequences(), constraint_sets())
def test_marginals_match_enumeration(lsequence, constraints):
    options = CleaningOptions()
    naive = NaiveConditioner(lsequence, constraints)
    try:
        naive.conditioned_distribution()
    except InconsistentReadingsError:
        return
    graph = build_ct_graph(lsequence, constraints, options)
    for tau in range(lsequence.duration):
        expected = naive.location_marginal(tau)
        got = graph.location_marginal(tau)
        assert set(got) == set(expected)
        for location, probability in expected.items():
            assert got[location] == pytest.approx(probability, abs=1e-9)


@settings(max_examples=150, deadline=None)
@given(lsequences(), constraint_sets())
def test_num_valid_trajectories_matches(lsequence, constraints):
    expected, graph = _run_both(lsequence, constraints, strict=False)
    if graph is None:
        return
    assert graph.num_valid_trajectories() == len(expected)


@settings(max_examples=150, deadline=None)
@given(lsequences())
def test_no_constraints_graph_is_lossless(lsequence):
    """With an empty constraint set the graph must reproduce the prior."""
    graph = build_ct_graph(lsequence, ConstraintSet())
    assert graph.num_valid_trajectories() == lsequence.num_trajectories()
    for trajectory, prior in lsequence.trajectories():
        assert graph.trajectory_probability(trajectory) == pytest.approx(
            prior, abs=1e-9)
