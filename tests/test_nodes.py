"""Tests for location-node states and the successor relation (Definition 3)."""

import pytest

from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.nodes import initial_stay, source_states, successor_state


def succ(tau, state, dest, constraints):
    return successor_state(tau, state, dest, constraints)


class TestInitialStay:
    def test_unconstrained_location_is_bottom(self):
        assert initial_stay("A", ConstraintSet()) is None

    def test_constrained_location_starts_at_one(self):
        cs = ConstraintSet([Latency("A", 3)])
        assert initial_stay("A", cs) == 1


class TestSourceStates:
    def test_sources_have_empty_departures(self):
        cs = ConstraintSet([Latency("A", 2)])
        states = source_states(["A", "B"], cs)
        assert states["A"] == ("A", 1, ())
        assert states["B"] == ("B", None, ())


class TestDirectUnreachability:
    def test_du_blocks_move(self):
        cs = ConstraintSet([Unreachable("A", "B")])
        assert succ(0, ("A", None, ()), "B", cs) is None
        assert succ(0, ("B", None, ()), "A", cs) is not None

    def test_self_du_blocks_staying(self):
        cs = ConstraintSet([Unreachable("A", "A")])
        assert succ(0, ("A", None, ()), "A", cs) is None


class TestLatency:
    def test_stay_counter_increments(self):
        cs = ConstraintSet([Latency("A", 3)])
        state = ("A", 1, ())
        state = succ(0, state, "A", cs)
        assert state == ("A", 2, ())
        state = succ(1, state, "A", cs)
        # Stay reached the bound: counter collapses to bottom.
        assert state == ("A", None, ())

    def test_cannot_leave_while_binding(self):
        cs = ConstraintSet([Latency("A", 3)])
        assert succ(0, ("A", 1, ()), "B", cs) is None
        assert succ(0, ("A", 2, ()), "B", cs) is None

    def test_can_leave_once_satisfied(self):
        cs = ConstraintSet([Latency("A", 3)])
        assert succ(0, ("A", None, ()), "B", cs) is not None

    def test_arrival_at_constrained_location_starts_counter(self):
        cs = ConstraintSet([Latency("B", 2)])
        state = succ(0, ("A", None, ()), "B", cs)
        assert state == ("B", 1, ())

    def test_arrival_at_unconstrained_location_is_bottom(self):
        cs = ConstraintSet([Latency("A", 2)])
        state = succ(0, ("B", None, ()), "C", cs)
        assert state == ("C", None, ())


class TestTravelingTime:
    def test_direct_move_checked_against_tt(self):
        # Even without a TL entry, moving A -> B in one step violates
        # travelingTime(A, B, 3) (the implicit departure of the move).
        cs = ConstraintSet([TravelingTime("A", "B", 3)])
        assert succ(5, ("A", None, ()), "B", cs) is None

    def test_departure_recorded_for_tt_sources(self):
        cs = ConstraintSet([TravelingTime("A", "C", 4)])
        state = succ(5, ("A", None, ()), "B", cs)
        assert state == ("B", None, ((5, "A"),))

    def test_departure_not_recorded_without_tt(self):
        cs = ConstraintSet([TravelingTime("X", "Y", 4)])
        state = succ(5, ("A", None, ()), "B", cs)
        assert state == ("B", None, ())

    def test_arrival_blocked_while_window_open(self):
        cs = ConstraintSet([TravelingTime("A", "C", 4)])
        # Left A at time 5; arriving at C at time 7 violates 7 - 5 < 4.
        assert succ(6, ("B", None, ((5, "A"),)), "C", cs) is None

    def test_arrival_allowed_after_window(self):
        cs = ConstraintSet([TravelingTime("A", "C", 2)])
        state = succ(6, ("B", None, ((5, "A"),)), "C", cs)
        assert state is not None
        assert state[0] == "C"

    def test_entries_expire_at_horizon(self):
        cs = ConstraintSet([TravelingTime("A", "C", 3)])
        # At arrival time tau+1 = 8, 8 - 5 = 3 >= maxTT(A) = 3: expired.
        state = succ(7, ("B", None, ((5, "A"),)), "D", cs)
        assert state == ("D", None, ())

    def test_entries_kept_while_binding(self):
        cs = ConstraintSet([TravelingTime("A", "C", 5)])
        state = succ(6, ("B", None, ((5, "A"),)), "D", cs)
        assert state == ("D", None, ((5, "A"),))

    def test_arriving_at_entry_location_clears_it(self):
        cs = ConstraintSet([TravelingTime("A", "C", 3),
                            TravelingTime("B", "D", 9)])
        # Coming back to A: the A entry is dropped (a fresh departure will
        # be recorded when the object leaves again).
        state = succ(6, ("B", None, ((5, "A"),)), "A", cs)
        assert state == ("A", None, ((6, "B"),))

    def test_latest_departure_per_location_wins(self):
        cs = ConstraintSet([TravelingTime("A", "C", 9)])
        # The stale (2, A) entry is superseded by the new departure (6, A).
        state = succ(6, ("A", None, ((2, "A"),)), "B", cs)
        assert state == ("B", None, ((6, "A"),))

    def test_staying_only_ages_entries(self):
        cs = ConstraintSet([TravelingTime("A", "C", 3)])
        state = succ(6, ("B", None, ((5, "A"),)), "B", cs)
        assert state == ("B", None, ((5, "A"),))
        state = succ(7, state, "B", cs)
        assert state == ("B", None, ())   # expired at time 8

    def test_staying_is_never_blocked_by_tt(self):
        cs = ConstraintSet([TravelingTime("A", "B", 9)])
        # Already at B: staying at B is not an arrival.
        assert succ(6, ("B", None, ((5, "A"),)), "B", cs) is not None


class TestDeterminism:
    def test_at_most_one_successor_per_destination(self):
        cs = ConstraintSet([Latency("A", 2), TravelingTime("A", "C", 3)])
        state = ("A", None, ())
        results = {succ(3, state, dest, cs) for dest in ("A", "B", "C")}
        # Each destination yields one specific state (or None).
        assert len(results) == 3

    def test_departures_are_sorted_canonical(self):
        cs = ConstraintSet([TravelingTime("A", "X", 9),
                            TravelingTime("B", "X", 9)])
        state = succ(6, ("B", None, ((5, "A"),)), "C", cs)
        assert state[2] == ((5, "A"), (6, "B"))


class TestStateAccessors:
    """The named accessors are the supported way to read a NodeState.

    Code outside repro.core.nodes must not destructure the bare tuple —
    this pin makes a NodeState shape change fail here, in one obvious
    place, instead of silently misassigning fields at unpacking sites.
    """

    def test_accessors_cover_the_whole_state(self):
        from repro.core.nodes import (
            state_departures,
            state_location,
            state_stay,
        )

        cs = ConstraintSet([Latency("A", 3), TravelingTime("A", "C", 3)])
        state = succ(4, ("A", None, ()), "B", cs)
        assert state is not None
        assert state_location(state) == "B"
        assert state_stay(state) is None
        assert state_departures(state) == ((4, "A"),)
        # The three accessors reconstruct the state exactly — if a field
        # is ever added to NodeState, this equality breaks loudly.
        assert (state_location(state), state_stay(state),
                state_departures(state)) == state
