"""Node-path vs. flat ``QuerySession``: many-queries-per-graph speedup.

The flat query engine (:class:`repro.core.flatgraph.FlatCTGraph` +
:class:`repro.queries.session.QuerySession`) must be *bit-identical* to
the ``CTGraph`` object-path query functions — this bench both asserts
that (every statement's value compared across paths) and records how
much faster the flat pipeline answers a realistic analysis session:
clean one long periodic l-sequence, then ask eleven questions of it
(marginals, entropy, visit/first-visit/span, a pattern match, the MAP
trajectory and the top-10 trajectories).

* **node path** — ``CleaningOptions(engine="compact")`` materialising
  ``CTNode`` objects, each statement answered by the object-path
  query functions (``repro.queries.ql.execute`` on the ``CTGraph``);
* **flat path** — the same cleaning with ``materialize="flat"`` (no
  ``CTNode`` is ever built), all statements answered through one shared
  :class:`~repro.queries.session.QuerySession`.

Both sides use the compact cleaning engine, so the measured gap is the
query layer + materialisation, not the engine (``bench_engine`` covers
that).  Also records ``estimate_size_bytes()`` for both forms.

Since schema v3 the sweep carries a **backend axis** (``--backend``, the
flat pipeline's ``QuerySession(backend=...)``) and a **kernel block**: a
wide periodic workload (thousands of edges per level) cleaned once, then
a six-query analysis bundle timed on a python session vs a numpy session
sharing pre-built ``GraphViews`` (the one-off ndarray conversion cost is
reported separately as ``view_build_seconds`` — a real session amortises
it across every query).  ``kernel_speedup`` is the bundle-time ratio;
``parity`` holds the two bundles to the documented tolerance gate
(discrete structure exact, floats to 1e-12 relative) and ``--check``
hard-gates it.  With ``--backend numpy`` the main sweep's node-vs-flat
``parity`` uses the same gate; on the default python backend it stays
bit-exact equality.

Emits a machine-readable ``BENCH_queries.json`` so successive commits
can be compared.  Usage::

    python benchmarks/bench_queries.py                    # full sweep
    python benchmarks/bench_queries.py --smoke            # CI-sized
    python benchmarks/bench_queries.py --smoke --backend numpy
    python benchmarks/bench_queries.py --check BENCH_queries.json

``--check`` validates an existing result file against the schema and
exits non-zero on problems — that (and only that) is what CI asserts:
the recorded speedups are hardware- and load-dependent numbers for
humans to judge, not gates for containers to flake on.  ``parity``
must be true in any payload.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import kernels
from repro.core.algorithm import BACKENDS, CleaningOptions, build_ct_graph
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.lsequence import LSequence
from repro.queries import ql
from repro.queries.session import QuerySession

#: v3 in lockstep with ``bench_engine`` (v2 never shipped here): the
#: backend axis and the kernel block arrived together across both files.
SCHEMA_VERSION = 3

#: The ``bench_engine``/``bench_scaling`` workload: DU + LT + TT all
#: bind, keeping the cleaned graphs branchy enough that queries have
#: real mass to aggregate.
CONSTRAINTS = ConstraintSet([
    Unreachable("A", "C"), Unreachable("C", "A"),
    Latency("B", 3),
    TravelingTime("A", "D", 4), TravelingTime("D", "A", 4),
])

_PHASES = (
    {"A": 0.4, "B": 0.4, "C": 0.2},
    {"B": 0.6, "D": 0.4},
    {"B": 0.5, "C": 0.3, "D": 0.2},
    {"A": 0.5, "B": 0.5},
)

DURATIONS = (400, 800, 1600)
TOP_K = 10

#: The kernel block's wide workload (mirrors ``bench_engine``): 96
#: locations per level so the session sweeps face thousands of edges
#: per level and the ndarray kernels have real work to win on.
KERNEL_WIDTH = 96
KERNEL_DURATION = 1600
KERNEL_SMOKE_DURATION = 96


def make_instance(duration: int) -> LSequence:
    """The periodic ambiguous l-sequence the other benches use."""
    return LSequence([dict(_PHASES[tau % len(_PHASES)])
                      for tau in range(duration)])


def make_wide_instance(duration: int, width: int = KERNEL_WIDTH):
    """The kernel block's wide workload (same shape as bench_engine's)."""
    names = [f"L{i:02d}" for i in range(width)]
    rows = []
    for tau in range(duration):
        weights = [1.0 + ((i * 7 + tau * 3) % 13) / 13.0
                   for i in range(width)]
        total = sum(weights)
        rows.append({name: w / total
                     for name, w in zip(names, weights)})
    constraints = ConstraintSet([Unreachable(names[0], names[1]),
                                 Unreachable(names[2], names[3])])
    return LSequence(rows), constraints, names


def statements(duration: int) -> List[str]:
    """The eleven-statement analysis session asked of each graph."""
    mid = duration // 2
    return [
        f"STAY {mid}",
        "ENTROPY",
        "EXPECTED",
        "VISIT B",
        "VISIT D",
        "FIRST C",
        "FIRST D",
        f"SPAN B {mid} {min(mid + 4, duration - 1)}",
        "MATCH ? B[2] ? D[1] ?",
        "BEST",
        f"TOP {TOP_K}",
    ]


def _node_pipeline(lsequence: LSequence,
                   session_statements: Sequence[str]) -> Tuple[list, int]:
    """Clean to ``CTNode`` form, answer via object-path functions."""
    graph = build_ct_graph(lsequence, CONSTRAINTS,
                           CleaningOptions(engine="compact"))
    results = [ql.execute(graph, statement)
               for statement in session_statements]
    return results, graph.estimate_size_bytes()


def _flat_pipeline(lsequence: LSequence,
                   session_statements: Sequence[str],
                   backend: str) -> Tuple[list, int]:
    """Clean straight to flat form, answer via one ``QuerySession``."""
    graph = build_ct_graph(lsequence, CONSTRAINTS,
                           CleaningOptions(engine="compact",
                                           materialize="flat",
                                           backend=backend))
    session = QuerySession(graph, backend=backend)
    results = [ql.execute(session, statement)
               for statement in session_statements]
    return results, graph.estimate_size_bytes()


def _values_agree(node_value: object, flat_value: object,
                  exact: bool) -> bool:
    """Whether two statement answers agree under the backend's contract.

    Python backend: bit-exact equality.  Numpy backend: the documented
    tolerance gate — container shapes, key sets and orders exact, every
    float within 1e-12 relative (1e-12 absolute for clamped zeros).
    """
    if exact:
        return node_value == flat_value
    if isinstance(node_value, float) and isinstance(flat_value, float):
        return math.isclose(node_value, flat_value,
                            rel_tol=1e-12, abs_tol=1e-12)
    if isinstance(node_value, dict) and isinstance(flat_value, dict):
        # Key *sets* are pinned; insertion order may differ (the numpy
        # reductions emit in location-id order, the loops in node order).
        return (set(node_value) == set(flat_value)
                and all(_values_agree(node_value[key], flat_value[key],
                                      exact)
                        for key in node_value))
    if (isinstance(node_value, (list, tuple))
            and isinstance(flat_value, (list, tuple))):
        return (len(node_value) == len(flat_value)
                and all(_values_agree(a, b, exact)
                        for a, b in zip(node_value, flat_value)))
    return node_value == flat_value


def _best_of(repeats: int, build: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        build()
        best = min(best, time.perf_counter() - started)
    return best


def _kernel_bundle(session: QuerySession, names: Sequence[str],
                   duration: int) -> Dict[str, object]:
    """The kernel block's analysis bundle: every vectorised sweep once.

    Forces the alpha pass (marginal/entropy/expected), the max-product
    suffix pass, and the visit/span restricted flows — exactly the
    sweeps the kernels replace.  The suffix pass is triggered directly
    (private, but this bench lives in the same repo) rather than through
    ``top_k_trajectories``: the heap expansion is python on both
    backends, a large shared constant that would only blur what is being
    measured; ``bench_engine`` and the main sweep above already cover
    end-to-end pipelines.  Only the first suffix row is materialised for
    the parity compare — the pass is bit-exact, so one row pins it.
    """
    mid = duration // 2
    return {
        "entropy": session.entropy_profile(),
        "expected": session.expected_visit_counts(),
        "marginal": session.location_marginal(mid),
        "visit": session.visit_probability(names[5]),
        "span": session.span_probability(
            names[7], mid, min(mid + 40, duration - 1)),
        "suffix_head": list(session._best_suffixes()[0]),
    }


def run_kernel(duration: int, repeats: int) -> Dict[str, object]:
    """The kernel block: python vs warm-views numpy session bundles."""
    lsequence, constraints, names = make_wide_instance(duration)
    graph = build_ct_graph(
        lsequence, constraints,
        CleaningOptions(engine="compact", materialize="flat",
                        backend="auto"))
    levels = max(1, duration - 1)
    block: Dict[str, object] = {
        "measured": False,
        "width": KERNEL_WIDTH,
        "duration": duration,
        "edges": graph.num_edges,
        "edges_per_level": graph.num_edges / levels,
        "python_seconds": _best_of(
            repeats,
            lambda: _kernel_bundle(QuerySession(graph, backend="python"),
                                   names, duration)),
        "view_build_seconds": None,
        "numpy_seconds": None,
        "kernel_speedup": None,
        "parity": None,
    }
    if not kernels.numpy_available():
        return block

    started = time.perf_counter()
    views = kernels.GraphViews(graph)
    for tau in range(duration - 1):
        views.edge_level(tau)
    for tau in range(duration):
        views.level_lids(tau)
    views.source
    view_build_seconds = time.perf_counter() - started

    def numpy_bundle() -> Dict[str, object]:
        session = QuerySession(graph, backend="numpy")
        # Fresh session, shared warm views: a real analysis session
        # converts the columns once and amortises them across queries;
        # the conversion cost is reported separately above.
        session._views = views
        return _kernel_bundle(session, names, duration)

    oracle = _kernel_bundle(QuerySession(graph, backend="python"),
                            names, duration)
    vectorized = numpy_bundle()
    parity = all(_values_agree(oracle[key], vectorized[key], exact=False)
                 for key in oracle)
    numpy_seconds = _best_of(repeats, numpy_bundle)
    block.update({
        "measured": True,
        "view_build_seconds": view_build_seconds,
        "numpy_seconds": numpy_seconds,
        "kernel_speedup": block["python_seconds"] / numpy_seconds,
        "parity": parity,
    })
    return block


def run(durations: Sequence[int], repeats: int, backend: str,
        kernel_duration: int, kernel_repeats: int) -> Dict[str, object]:
    """Execute the sweep; returns the JSON-serialisable payload."""
    results: List[Dict[str, object]] = []
    parity = True
    exact = backend == "python"
    for duration in durations:
        lsequence = make_instance(duration)
        session_statements = statements(duration)
        node_results, node_size = _node_pipeline(
            lsequence, session_statements)
        flat_results, flat_size = _flat_pipeline(
            lsequence, session_statements, backend)
        parity = parity and all(
            _values_agree(node.value, flat.value, exact)
            for node, flat in zip(node_results, flat_results))
        node_seconds = _best_of(
            repeats, lambda: _node_pipeline(lsequence, session_statements))
        flat_seconds = _best_of(
            repeats, lambda: _flat_pipeline(lsequence, session_statements,
                                            backend))
        results.append({
            "duration": duration,
            "statements": len(session_statements),
            "node_seconds": node_seconds,
            "flat_seconds": flat_seconds,
            "speedup": node_seconds / flat_seconds,
            "node_size_bytes": node_size,
            "flat_size_bytes": flat_size,
        })

    kernel = run_kernel(kernel_duration, kernel_repeats)
    parity = parity and kernel["parity"] is not False

    headline = results[-1]
    return {
        "benchmark": "bench_queries",
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "cpu_count": os.cpu_count() or 1,
        "repeats": repeats,
        "backend": backend,
        "workload": {
            "generator": "periodic 4-phase ambiguous readings",
            "durations": list(durations),
            "statements": statements(int(durations[-1])),
            "constraints": [repr(c) for c in CONSTRAINTS],
        },
        "speedup": headline["speedup"],
        "kernel_speedup": kernel["kernel_speedup"],
        "parity": parity,
        "kernel": kernel,
        "results": results,
    }


def validate_payload(payload: Dict[str, object]) -> List[str]:
    """Schema check of a ``BENCH_queries.json`` payload; [] when valid."""
    problems: List[str] = []

    def expect(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    expect(payload.get("benchmark") == "bench_queries",
           "benchmark name missing or wrong")
    expect(payload.get("schema_version") == SCHEMA_VERSION,
           f"schema_version must be {SCHEMA_VERSION}")
    expect(isinstance(payload.get("cpu_count"), int),
           "cpu_count must be an int")
    expect(isinstance(payload.get("repeats"), int)
           and payload["repeats"] >= 1, "repeats must be an int >= 1")
    workload = payload.get("workload")
    expect(isinstance(workload, dict)
           and isinstance(workload.get("durations"), list)
           and workload["durations"]
           and isinstance(workload.get("statements"), list)
           and len(workload.get("statements") or ()) >= 8
           and isinstance(workload.get("constraints"), list),
           "workload must describe durations/statements (>= 8)/constraints")
    expect(isinstance(payload.get("speedup"), float)
           and payload["speedup"] > 0.0,
           "speedup must be a positive float")
    expect(payload.get("backend") in BACKENDS,
           f"backend must be one of {BACKENDS}")
    expect(payload.get("parity") is True,
           "parity must be true — the flat query engine diverged from "
           "the object-path answers")
    kernel = payload.get("kernel")
    if not isinstance(kernel, dict):
        problems.append("kernel block missing")
    else:
        expect(isinstance(kernel.get("width"), int) and kernel["width"] > 0
               and isinstance(kernel.get("duration"), int)
               and kernel["duration"] > 0
               and isinstance(kernel.get("edges"), int)
               and kernel["edges"] > 0
               and isinstance(kernel.get("edges_per_level"), float)
               and kernel["edges_per_level"] > 0.0
               and isinstance(kernel.get("python_seconds"), float)
               and kernel["python_seconds"] > 0.0
               and isinstance(kernel.get("measured"), bool),
               "kernel block malformed")
        if kernel.get("measured"):
            expect(isinstance(kernel.get("numpy_seconds"), float)
                   and kernel["numpy_seconds"] > 0.0
                   and isinstance(kernel.get("view_build_seconds"), float)
                   and kernel["view_build_seconds"] > 0.0
                   and isinstance(kernel.get("kernel_speedup"), float)
                   and kernel["kernel_speedup"] > 0.0,
                   "measured kernel block needs positive numpy timings "
                   "and speedup")
            expect(kernel.get("parity") is True,
                   "kernel parity must be true — the numpy session "
                   "bundle diverged from the python oracle")
            expect(payload.get("kernel_speedup")
                   == kernel.get("kernel_speedup"),
                   "top-level kernel_speedup disagrees with the kernel "
                   "block")
        else:
            expect(payload.get("kernel_speedup") is None,
                   "kernel_speedup must be null when the kernel block "
                   "was not measured")
    results = payload.get("results")
    expect(isinstance(results, list) and bool(results),
           "results must be a non-empty list")
    if isinstance(results, list) and results:
        if isinstance(workload, dict):
            expect(len(results) == len(workload.get("durations") or ()),
                   "results length disagrees with workload.durations")
        for entry in results:
            if not (isinstance(entry, dict)
                    and isinstance(entry.get("duration"), int)
                    and entry["duration"] > 0
                    and isinstance(entry.get("statements"), int)
                    and entry["statements"] >= 8
                    and isinstance(entry.get("node_seconds"), float)
                    and entry["node_seconds"] > 0.0
                    and isinstance(entry.get("flat_seconds"), float)
                    and entry["flat_seconds"] > 0.0
                    and isinstance(entry.get("speedup"), float)
                    and entry["speedup"] > 0.0
                    and isinstance(entry.get("node_size_bytes"), int)
                    and isinstance(entry.get("flat_size_bytes"), int)):
                problems.append(f"malformed result entry: {entry!r}")
                continue
            if entry["flat_size_bytes"] >= entry["node_size_bytes"]:
                problems.append(
                    f"duration {entry['duration']}: flat form "
                    f"({entry['flat_size_bytes']} B) must be smaller "
                    f"than node form ({entry['node_size_bytes']} B)")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--durations", type=int, nargs="+",
                        default=list(DURATIONS))
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of-N timing repeats per path")
    parser.add_argument("--backend", choices=BACKENDS, default="python",
                        help="sweep backend of the flat pipeline's "
                             "QuerySession (the kernel block always "
                             "compares python vs numpy)")
    parser.add_argument("--kernel-duration", type=int,
                        default=KERNEL_DURATION,
                        help="duration of the kernel block's wide "
                             "workload")
    parser.add_argument("--kernel-repeats", type=int, default=3,
                        help="best-of-N bundles per backend in the "
                             "kernel block")
    parser.add_argument("--out", default="BENCH_queries.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI workload (one 60-step object, "
                             "2 repeats, short kernel block)")
    parser.add_argument("--check", metavar="FILE",
                        help="validate an existing result file and exit")
    args = parser.parse_args(argv)

    if args.check:
        with open(args.check) as handle:
            payload = json.load(handle)
        problems = validate_payload(payload)
        for problem in problems:
            print(f"SCHEMA: {problem}", file=sys.stderr)
        if not problems:
            kernel = payload.get("kernel_speedup")
            kernel_text = (f", kernel {kernel:.2f}x" if kernel
                           else ", kernel not measured")
            print(f"{args.check}: well-formed (speedup "
                  f"{payload['speedup']:.2f}x, parity ok{kernel_text})")
        return 1 if problems else 0

    if args.smoke:
        args.durations, args.repeats = [60], 2
        args.kernel_duration = KERNEL_SMOKE_DURATION
        args.kernel_repeats = 2

    payload = run(args.durations, args.repeats, args.backend,
                  args.kernel_duration, args.kernel_repeats)
    problems = validate_payload(payload)
    if problems:
        for problem in problems:
            print(f"SELF-CHECK: {problem}", file=sys.stderr)
        return 1
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    for entry in payload["results"]:
        print(f"duration {entry['duration']:>5}: "
              f"node {entry['node_seconds'] * 1000:7.1f} ms  "
              f"flat {entry['flat_seconds'] * 1000:7.1f} ms "
              f"({entry['speedup']:.2f}x)  "
              f"size {entry['node_size_bytes']:>9} B -> "
              f"{entry['flat_size_bytes']:>9} B")
    kernel = payload["kernel"]
    if kernel["measured"]:
        print(f"kernel ({kernel['width']} locations x "
              f"{kernel['duration']} steps, "
              f"{kernel['edges_per_level']:.0f} edges/level): bundle "
              f"{kernel['python_seconds'] * 1000:7.1f} ms -> "
              f"{kernel['numpy_seconds'] * 1000:7.1f} ms "
              f"({kernel['kernel_speedup']:.2f}x; views built once in "
              f"{kernel['view_build_seconds'] * 1000:.1f} ms), parity ok")
    else:
        print("kernel: numpy unavailable, block not measured")
    print(f"headline: {payload['speedup']:.2f}x on "
          f"{payload['results'][-1]['duration']} steps x "
          f"{payload['results'][-1]['statements']} statements, "
          f"parity ok")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
