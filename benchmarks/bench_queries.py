"""Node-path vs. flat ``QuerySession``: many-queries-per-graph speedup.

The flat query engine (:class:`repro.core.flatgraph.FlatCTGraph` +
:class:`repro.queries.session.QuerySession`) must be *bit-identical* to
the ``CTGraph`` object-path query functions — this bench both asserts
that (every statement's value compared across paths) and records how
much faster the flat pipeline answers a realistic analysis session:
clean one long periodic l-sequence, then ask eleven questions of it
(marginals, entropy, visit/first-visit/span, a pattern match, the MAP
trajectory and the top-10 trajectories).

* **node path** — ``CleaningOptions(engine="compact")`` materialising
  ``CTNode`` objects, each statement answered by the object-path
  query functions (``repro.queries.ql.execute`` on the ``CTGraph``);
* **flat path** — the same cleaning with ``materialize="flat"`` (no
  ``CTNode`` is ever built), all statements answered through one shared
  :class:`~repro.queries.session.QuerySession`.

Both sides use the compact cleaning engine, so the measured gap is the
query layer + materialisation, not the engine (``bench_engine`` covers
that).  Also records ``estimate_size_bytes()`` for both forms.

Emits a machine-readable ``BENCH_queries.json`` so successive commits
can be compared.  Usage::

    python benchmarks/bench_queries.py                    # full sweep
    python benchmarks/bench_queries.py --smoke            # CI-sized
    python benchmarks/bench_queries.py --check BENCH_queries.json

``--check`` validates an existing result file against the schema and
exits non-zero on problems — that (and only that) is what CI asserts:
the recorded speedups are hardware- and load-dependent numbers for
humans to judge, not gates for containers to flake on.  ``parity``
(bit-identical answers across paths) must be true in any payload.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.algorithm import CleaningOptions, build_ct_graph
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.lsequence import LSequence
from repro.queries import ql
from repro.queries.session import QuerySession

SCHEMA_VERSION = 1

#: The ``bench_engine``/``bench_scaling`` workload: DU + LT + TT all
#: bind, keeping the cleaned graphs branchy enough that queries have
#: real mass to aggregate.
CONSTRAINTS = ConstraintSet([
    Unreachable("A", "C"), Unreachable("C", "A"),
    Latency("B", 3),
    TravelingTime("A", "D", 4), TravelingTime("D", "A", 4),
])

_PHASES = (
    {"A": 0.4, "B": 0.4, "C": 0.2},
    {"B": 0.6, "D": 0.4},
    {"B": 0.5, "C": 0.3, "D": 0.2},
    {"A": 0.5, "B": 0.5},
)

DURATIONS = (400, 800, 1600)
TOP_K = 10


def make_instance(duration: int) -> LSequence:
    """The periodic ambiguous l-sequence the other benches use."""
    return LSequence([dict(_PHASES[tau % len(_PHASES)])
                      for tau in range(duration)])


def statements(duration: int) -> List[str]:
    """The eleven-statement analysis session asked of each graph."""
    mid = duration // 2
    return [
        f"STAY {mid}",
        "ENTROPY",
        "EXPECTED",
        "VISIT B",
        "VISIT D",
        "FIRST C",
        "FIRST D",
        f"SPAN B {mid} {min(mid + 4, duration - 1)}",
        "MATCH ? B[2] ? D[1] ?",
        "BEST",
        f"TOP {TOP_K}",
    ]


def _node_pipeline(lsequence: LSequence,
                   session_statements: Sequence[str]) -> Tuple[list, int]:
    """Clean to ``CTNode`` form, answer via object-path functions."""
    graph = build_ct_graph(lsequence, CONSTRAINTS,
                           CleaningOptions(engine="compact"))
    results = [ql.execute(graph, statement)
               for statement in session_statements]
    return results, graph.estimate_size_bytes()


def _flat_pipeline(lsequence: LSequence,
                   session_statements: Sequence[str]) -> Tuple[list, int]:
    """Clean straight to flat form, answer via one ``QuerySession``."""
    graph = build_ct_graph(lsequence, CONSTRAINTS,
                           CleaningOptions(engine="compact",
                                           materialize="flat"))
    session = QuerySession(graph)
    results = [ql.execute(session, statement)
               for statement in session_statements]
    return results, graph.estimate_size_bytes()


def _best_of(repeats: int, build: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        build()
        best = min(best, time.perf_counter() - started)
    return best


def run(durations: Sequence[int], repeats: int) -> Dict[str, object]:
    """Execute the sweep; returns the JSON-serialisable payload."""
    results: List[Dict[str, object]] = []
    parity = True
    for duration in durations:
        lsequence = make_instance(duration)
        session_statements = statements(duration)
        node_results, node_size = _node_pipeline(
            lsequence, session_statements)
        flat_results, flat_size = _flat_pipeline(
            lsequence, session_statements)
        parity = parity and all(
            node.value == flat.value
            for node, flat in zip(node_results, flat_results))
        node_seconds = _best_of(
            repeats, lambda: _node_pipeline(lsequence, session_statements))
        flat_seconds = _best_of(
            repeats, lambda: _flat_pipeline(lsequence, session_statements))
        results.append({
            "duration": duration,
            "statements": len(session_statements),
            "node_seconds": node_seconds,
            "flat_seconds": flat_seconds,
            "speedup": node_seconds / flat_seconds,
            "node_size_bytes": node_size,
            "flat_size_bytes": flat_size,
        })
    headline = results[-1]
    return {
        "benchmark": "bench_queries",
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "cpu_count": os.cpu_count() or 1,
        "repeats": repeats,
        "workload": {
            "generator": "periodic 4-phase ambiguous readings",
            "durations": list(durations),
            "statements": statements(int(durations[-1])),
            "constraints": [repr(c) for c in CONSTRAINTS],
        },
        "speedup": headline["speedup"],
        "parity": parity,
        "results": results,
    }


def validate_payload(payload: Dict[str, object]) -> List[str]:
    """Schema check of a ``BENCH_queries.json`` payload; [] when valid."""
    problems: List[str] = []

    def expect(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    expect(payload.get("benchmark") == "bench_queries",
           "benchmark name missing or wrong")
    expect(payload.get("schema_version") == SCHEMA_VERSION,
           f"schema_version must be {SCHEMA_VERSION}")
    expect(isinstance(payload.get("cpu_count"), int),
           "cpu_count must be an int")
    expect(isinstance(payload.get("repeats"), int)
           and payload["repeats"] >= 1, "repeats must be an int >= 1")
    workload = payload.get("workload")
    expect(isinstance(workload, dict)
           and isinstance(workload.get("durations"), list)
           and workload["durations"]
           and isinstance(workload.get("statements"), list)
           and len(workload.get("statements") or ()) >= 8
           and isinstance(workload.get("constraints"), list),
           "workload must describe durations/statements (>= 8)/constraints")
    expect(isinstance(payload.get("speedup"), float)
           and payload["speedup"] > 0.0,
           "speedup must be a positive float")
    expect(payload.get("parity") is True,
           "parity must be true — the flat query engine diverged from "
           "the object-path answers")
    results = payload.get("results")
    expect(isinstance(results, list) and bool(results),
           "results must be a non-empty list")
    if isinstance(results, list) and results:
        if isinstance(workload, dict):
            expect(len(results) == len(workload.get("durations") or ()),
                   "results length disagrees with workload.durations")
        for entry in results:
            if not (isinstance(entry, dict)
                    and isinstance(entry.get("duration"), int)
                    and entry["duration"] > 0
                    and isinstance(entry.get("statements"), int)
                    and entry["statements"] >= 8
                    and isinstance(entry.get("node_seconds"), float)
                    and entry["node_seconds"] > 0.0
                    and isinstance(entry.get("flat_seconds"), float)
                    and entry["flat_seconds"] > 0.0
                    and isinstance(entry.get("speedup"), float)
                    and entry["speedup"] > 0.0
                    and isinstance(entry.get("node_size_bytes"), int)
                    and isinstance(entry.get("flat_size_bytes"), int)):
                problems.append(f"malformed result entry: {entry!r}")
                continue
            if entry["flat_size_bytes"] >= entry["node_size_bytes"]:
                problems.append(
                    f"duration {entry['duration']}: flat form "
                    f"({entry['flat_size_bytes']} B) must be smaller "
                    f"than node form ({entry['node_size_bytes']} B)")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--durations", type=int, nargs="+",
                        default=list(DURATIONS))
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of-N timing repeats per path")
    parser.add_argument("--out", default="BENCH_queries.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI workload (one 60-step object, "
                             "2 repeats)")
    parser.add_argument("--check", metavar="FILE",
                        help="validate an existing result file and exit")
    args = parser.parse_args(argv)

    if args.check:
        with open(args.check) as handle:
            payload = json.load(handle)
        problems = validate_payload(payload)
        for problem in problems:
            print(f"SCHEMA: {problem}", file=sys.stderr)
        if not problems:
            print(f"{args.check}: well-formed (speedup "
                  f"{payload['speedup']:.2f}x, parity ok)")
        return 1 if problems else 0

    if args.smoke:
        args.durations, args.repeats = [60], 2

    payload = run(args.durations, args.repeats)
    problems = validate_payload(payload)
    if problems:
        for problem in problems:
            print(f"SELF-CHECK: {problem}", file=sys.stderr)
        return 1
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    for entry in payload["results"]:
        print(f"duration {entry['duration']:>5}: "
              f"node {entry['node_seconds'] * 1000:7.1f} ms  "
              f"flat {entry['flat_seconds'] * 1000:7.1f} ms "
              f"({entry['speedup']:.2f}x)  "
              f"size {entry['node_size_bytes']:>9} B -> "
              f"{entry['flat_size_bytes']:>9} B")
    print(f"headline: {payload['speedup']:.2f}x on "
          f"{payload['results'][-1]['duration']} steps x "
          f"{payload['results'][-1]['statements']} statements, "
          f"bit-identical answers")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
