"""Shared fixtures for the figure benchmarks.

Scale control: every benchmark honours the ``REPRO_SCALE`` environment
variable (``tiny`` | ``small`` | ``medium`` | ``paper``).  The default is
``tiny`` so the whole bench suite completes in minutes; ``paper`` restores
the EDBT setup (25 trajectories per duration in {30, 60, 90, 120} minutes)
and takes hours in pure Python.  The paper's claims are about curve
*shapes* (linearity, cost/accuracy orderings), which are preserved at every
scale — see EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.inference import MotilityProfile, infer_constraints
from repro.simulation.datasets import active_scale, syn1_dataset, syn2_dataset

#: The benchmark-default scale (overridden via REPRO_SCALE).
BENCH_SCALE = active_scale(default="small")


@pytest.fixture(scope="session")
def scale() -> str:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def syn1():
    return syn1_dataset(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def syn2():
    return syn2_dataset(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def profile():
    return MotilityProfile()


@pytest.fixture(scope="session")
def constraint_cache(profile):
    """Constraint sets per (dataset name, kinds), computed once."""
    cache = {}

    def get(dataset, kinds):
        key = (dataset.name, tuple(kinds))
        if key not in cache:
            cache[key] = infer_constraints(dataset.building, profile,
                                           kinds=kinds,
                                           distances=dataset.distances)
        return cache[key]

    return get
