"""Figure 9(b): average trajectory-query accuracy on SYN1 and SYN2.

50 random ``? l1[n1] ? ... ?`` patterns per trajectory (Section 6.6);
accuracy is the probability assigned to the correct yes/no answer.
Expected shape: cleaned configurations beat the RAW prior baseline.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import run_trajectory_accuracy_experiment
from repro.experiments.report import accuracy_table


@pytest.mark.parametrize("dataset_name", ["syn1", "syn2"])
def test_fig9b_trajectory_accuracy(benchmark, dataset_name, request, capsys):
    dataset = request.getfixturevalue(dataset_name)
    measurements = benchmark.pedantic(
        run_trajectory_accuracy_experiment, args=(dataset,),
        kwargs={"queries_per_trajectory": 25},
        rounds=1, iterations=1, warmup_rounds=0)
    with capsys.disabled():
        print()
        print(f"=== Figure 9(b): trajectory-query accuracy on "
              f"{dataset.name} ===")
        print(accuracy_table(measurements))

    scores = {m.config: m.accuracy for m in measurements}
    benchmark.extra_info.update(scores)
    assert scores["CTG(DU,LT,TT)"] >= scores["RAW"] - 0.02, \
        "cleaning should not hurt trajectory-query accuracy"


@pytest.mark.parametrize("dataset_name", ["syn1", "syn2"])
def test_fig9b_hard_workload(benchmark, dataset_name, request, capsys):
    """A harder variant: half the pattern locations come from the ground
    truth, so 'yes' answers are common and the accuracy figure is
    informative on large maps (the paper's uniform workload almost always
    answers 'no' with near-certainty on 32-64-location buildings)."""
    dataset = request.getfixturevalue(dataset_name)
    measurements = benchmark.pedantic(
        run_trajectory_accuracy_experiment, args=(dataset,),
        kwargs={"queries_per_trajectory": 25, "visited_bias": 0.5},
        rounds=1, iterations=1, warmup_rounds=0)
    with capsys.disabled():
        print()
        print(f"=== Figure 9(b) hard workload (visited_bias=0.5) on "
              f"{dataset.name} ===")
        print(accuracy_table(measurements))

    scores = {m.config: m.accuracy for m in measurements}
    benchmark.extra_info.update(scores)
    assert scores["CTG(DU,LT,TT)"] >= scores["RAW"] - 0.02
