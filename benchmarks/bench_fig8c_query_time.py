"""Figure 8(c): average query execution time on SYN1/SYN2 vs duration.

The paper's claims: query time grows linearly with the trajectory length,
and querying DU / DU+LT graphs is much faster than querying DU+LT+TT
graphs (which are larger).  Benchmarked per (dataset, configuration) on the
longest duration; the summary test prints the full series.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithm import build_ct_graph
from repro.core.lsequence import LSequence
from repro.experiments.harness import (
    CONSTRAINT_CONFIGS,
    run_query_time_experiment,
)
from repro.experiments.report import query_time_table
from repro.experiments.workloads import random_trajectory_queries
from repro.queries.stay import stay_query
from repro.queries.trajectory import TrajectoryQuery

_CONFIG_ITEMS = list(CONSTRAINT_CONFIGS.items())


@pytest.fixture(scope="module")
def graphs(syn1, constraint_cache):
    """One cleaned graph per configuration (longest duration of SYN1)."""
    duration = syn1.durations[-1]
    trajectory = syn1.trajectories[duration][0]
    lsequence = LSequence.from_readings(trajectory.readings, syn1.prior)
    return {
        name: build_ct_graph(lsequence, constraint_cache(syn1, kinds))
        for name, kinds in _CONFIG_ITEMS
    }


@pytest.mark.parametrize("config_name", [name for name, _ in _CONFIG_ITEMS])
def test_stay_query_time(benchmark, graphs, config_name):
    graph = graphs[config_name]
    taus = list(range(0, graph.duration, max(1, graph.duration // 16)))

    def workload():
        graph._node_marginals = None      # pay the real forward-pass cost
        return [stay_query(graph, tau) for tau in taus]

    benchmark.pedantic(workload, rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info["config"] = config_name
    benchmark.extra_info["nodes"] = graph.num_nodes


@pytest.mark.parametrize("config_name", [name for name, _ in _CONFIG_ITEMS])
def test_trajectory_query_time(benchmark, syn1, graphs, config_name):
    graph = graphs[config_name]
    rng = np.random.default_rng(42)
    queries = [TrajectoryQuery(p) for p in
               random_trajectory_queries(syn1.building, 5, rng)]

    def workload():
        return [query.probability(graph) for query in queries]

    benchmark.pedantic(workload, rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info["config"] = config_name


def test_fig8c_series(benchmark, syn1, syn2, capsys):
    """Prints the Fig. 8(c) series for both datasets."""
    def run_both():
        return (run_query_time_experiment(syn1, stay_queries=5,
                                          trajectory_queries=3)
                + run_query_time_experiment(syn2, stay_queries=5,
                                            trajectory_queries=3))

    measurements = benchmark.pedantic(run_both, rounds=1, iterations=1,
                                      warmup_rounds=0)
    with capsys.disabled():
        print()
        print("=== Figure 8(c): query time on SYN1/SYN2 ===")
        print(query_time_table(measurements))

    # Shape: querying the TT graphs is not cheaper than the DU graphs.
    def mean_for(config):
        values = [m.mean_seconds for m in measurements if m.config == config]
        return sum(values) / len(values)

    assert mean_for("CTG(DU,LT,TT)") >= 0.5 * mean_for("CTG(DU)")
