"""Baseline comparison: conditioning vs smoothing vs particles vs beam.

The paper's Section 7 positions its approach against constraint-free
smoothing (SMURF [14]) and sampling-under-constraints [4, 25].  This bench
measures all of them on the same SYN1 readings:

* RAW            — the uncleaned a-priori interpretation;
* SMOOTH+RAW     — SMURF-style per-reader smoothing, then the prior;
* PARTICLES      — constraint-aware particle filtering (approximate,
                   filtered — no lookahead);
* BEAM           — beam-limited conditioning (approximate, smoothed);
* CTG (exact)    — the paper's algorithm.

Expected shape: CTG >= BEAM >> PARTICLES ~ SMOOTH+RAW > RAW in stay
accuracy, with smoothing unable to exploit the map at all.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines.beam import BeamCleaner
from repro.baselines.particles import ParticleFilter
from repro.baselines.smoothing import SmoothingFilter
from repro.core.algorithm import build_ct_graph
from repro.core.lsequence import LSequence
from repro.errors import InconsistentReadingsError
from repro.experiments.report import format_table
from repro.inference import infer_constraints
from repro.queries.accuracy import stay_accuracy
from repro.queries.stay import stay_query, stay_query_prior


def test_baseline_comparison(benchmark, syn1, profile, capsys):
    constraints = infer_constraints(syn1.building, profile,
                                    kinds=("DU", "LT"),
                                    distances=syn1.distances)
    trajectories = syn1.all_trajectories()[:4]

    def run():
        scores = {name: [] for name in
                  ("RAW", "SMOOTH+RAW", "PARTICLES", "BEAM", "CTG")}
        seconds = {name: 0.0 for name in scores}
        smoother = SmoothingFilter(window=3)
        for trajectory in trajectories:
            truth = trajectory.truth.locations
            taus = range(0, trajectory.duration, 3)
            lsequence = LSequence.from_readings(trajectory.readings,
                                                syn1.prior)

            scores["RAW"].extend(
                stay_accuracy(stay_query_prior(lsequence, tau), truth[tau])
                for tau in taus)

            started = time.perf_counter()
            smoothed = LSequence.from_readings(
                smoother.smooth(trajectory.readings), syn1.prior)
            seconds["SMOOTH+RAW"] += time.perf_counter() - started
            scores["SMOOTH+RAW"].extend(
                stay_accuracy(stay_query_prior(smoothed, tau), truth[tau])
                for tau in taus)

            started = time.perf_counter()
            try:
                estimates = ParticleFilter(
                    constraints, 400,
                    np.random.default_rng(7)).run(lsequence)
                seconds["PARTICLES"] += time.perf_counter() - started
                scores["PARTICLES"].extend(
                    stay_accuracy(estimates[tau], truth[tau])
                    for tau in taus)
            except InconsistentReadingsError:
                seconds["PARTICLES"] += time.perf_counter() - started

            started = time.perf_counter()
            beamed = BeamCleaner(constraints, beam_width=16).build(lsequence)
            seconds["BEAM"] += time.perf_counter() - started
            scores["BEAM"].extend(
                stay_accuracy(stay_query(beamed, tau), truth[tau])
                for tau in taus)

            started = time.perf_counter()
            graph = build_ct_graph(lsequence, constraints)
            seconds["CTG"] += time.perf_counter() - started
            scores["CTG"].extend(
                stay_accuracy(stay_query(graph, tau), truth[tau])
                for tau in taus)
        return ({name: float(np.mean(values)) if values else float("nan")
                 for name, values in scores.items()}, seconds)

    accuracy, seconds = benchmark.pedantic(run, rounds=1, iterations=1,
                                           warmup_rounds=0)
    rows = [(name, f"{accuracy[name]:.3f}",
             f"{seconds.get(name, 0.0) * 1000:.0f}")
            for name in ("RAW", "SMOOTH+RAW", "PARTICLES", "BEAM", "CTG")]
    with capsys.disabled():
        print()
        print("=== Baselines: stay accuracy (SYN1, DU+LT constraints) ===")
        print(format_table(["method", "accuracy", "ms_total"], rows))

    benchmark.extra_info.update(accuracy)
    # The paper's core claim: constraint conditioning beats
    # constraint-free smoothing, and the exact graph is at least as good
    # as any approximation of it.
    assert accuracy["CTG"] > accuracy["SMOOTH+RAW"]
    assert accuracy["CTG"] > accuracy["RAW"]
    assert accuracy["CTG"] >= accuracy["BEAM"] - 0.02
    if not np.isnan(accuracy["PARTICLES"]):
        assert accuracy["CTG"] >= accuracy["PARTICLES"] - 0.02