"""Sequential vs. parallel batch cleaning: the repo's perf trajectory.

Unlike the pytest-benchmark figures, this bench emits a machine-readable
``BENCH_parallel.json`` so successive commits can be compared: it cleans
the same multi-object workload once sequentially (``workers=1``, the
in-process loop) and once through the process pool, records both
wall-clocks, the speedup, and per-object stats, and asserts the two runs
produced probability-identical graphs.

Usage::

    python benchmarks/bench_parallel.py                      # full workload
    python benchmarks/bench_parallel.py --smoke              # CI-sized
    python benchmarks/bench_parallel.py --check BENCH_parallel.json

``--check`` validates an existing result file against the schema and exits
non-zero on problems — that (and only that) is what CI asserts: speedup is
hardware (a single-core container cannot beat sequential; the file records
``cpu_count`` so readers can judge the number).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.lsequence import LSequence
from repro.runtime import clean_many

SCHEMA_VERSION = 1

#: The same constraint shape as ``bench_scaling`` — DU + LT + TT all bind.
CONSTRAINTS = ConstraintSet([
    Unreachable("A", "C"), Unreachable("C", "A"),
    Latency("B", 3),
    TravelingTime("A", "D", 4), TravelingTime("D", "A", 4),
])

_PHASES = (
    {"A": 0.4, "B": 0.4, "C": 0.2},
    {"B": 0.6, "D": 0.4},
    {"B": 0.5, "C": 0.3, "D": 0.2},
    {"A": 0.5, "B": 0.5},
)


def make_workload(objects: int, duration: int) -> List[LSequence]:
    """``objects`` synthetic l-sequences with rotated phase offsets, so the
    objects are equally heavy but not byte-identical."""
    workload = []
    for index in range(objects):
        rows = [_PHASES[(tau + index) % len(_PHASES)]
                for tau in range(duration)]
        workload.append(LSequence(rows))
    return workload


def _graphs_identical(left, right) -> bool:
    """Exact (bitwise) equality of two cleaned graphs' distributions."""
    if (left.num_nodes != right.num_nodes
            or left.num_edges != right.num_edges):
        return False
    for tau in (0, left.duration // 2, left.duration - 1):
        if left.location_marginal(tau) != right.location_marginal(tau):
            return False
    return True


def run(objects: int, duration: int, workers: int,
        chunk_size: Optional[int]) -> Dict[str, object]:
    workload = make_workload(objects, duration)

    sequential = clean_many(workload, CONSTRAINTS, workers=1)
    parallel = clean_many(workload, CONSTRAINTS, workers=workers,
                          chunk_size=chunk_size)

    identical = all(
        (not s.ok and not p.ok) or (s.ok and p.ok
                                    and _graphs_identical(s.graph, p.graph))
        for s, p in zip(sequential, parallel))
    failures = len(sequential.failures) + len(parallel.failures)

    per_object = []
    for s, p in zip(sequential, parallel):
        per_object.append({
            "index": s.index,
            "duration": duration,
            "nodes": s.graph.num_nodes if s.ok else None,
            "edges": s.graph.num_edges if s.ok else None,
            "sequential_seconds": s.seconds,
            "parallel_seconds": p.seconds,
        })

    return {
        "benchmark": "bench_parallel",
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "cpu_count": os.cpu_count(),
        "workload": {
            "objects": objects,
            "duration": duration,
            "generator": "synthetic-phase4",
            "constraints": [str(c) for c in CONSTRAINTS],
        },
        "sequential": {
            "workers": 1,
            "wall_seconds": sequential.wall_seconds,
            "compute_seconds": sequential.compute_seconds,
        },
        "parallel": {
            "workers": parallel.workers,
            "chunk_size": parallel.chunk_size,
            "wall_seconds": parallel.wall_seconds,
            "compute_seconds": parallel.compute_seconds,
        },
        "speedup": sequential.wall_seconds / parallel.wall_seconds,
        "identical_output": identical,
        "failures": failures,
        "per_object": per_object,
    }


def validate_payload(payload: Dict[str, object]) -> List[str]:
    """Schema check of a ``BENCH_parallel.json`` payload; [] when valid."""
    problems: List[str] = []

    def expect(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    expect(payload.get("benchmark") == "bench_parallel",
           "benchmark name missing or wrong")
    expect(payload.get("schema_version") == SCHEMA_VERSION,
           f"schema_version must be {SCHEMA_VERSION}")
    expect(isinstance(payload.get("cpu_count"), int),
           "cpu_count must be an int")
    workload = payload.get("workload")
    expect(isinstance(workload, dict)
           and isinstance(workload.get("objects"), int)
           and workload["objects"] > 0
           and isinstance(workload.get("duration"), int)
           and isinstance(workload.get("constraints"), list),
           "workload must describe objects/duration/constraints")
    for side in ("sequential", "parallel"):
        timing = payload.get(side)
        if not isinstance(timing, dict):
            problems.append(f"{side} timing block missing")
            continue
        expect(isinstance(timing.get("workers"), int)
               and timing["workers"] >= 1, f"{side}.workers must be >= 1")
        expect(isinstance(timing.get("wall_seconds"), float)
               and timing["wall_seconds"] > 0.0,
               f"{side}.wall_seconds must be a positive float")
    expect(isinstance(payload.get("speedup"), float)
           and payload["speedup"] > 0.0,
           "speedup must be a positive float")
    expect(payload.get("identical_output") is True,
           "identical_output must be true — parallel cleaning changed "
           "the results")
    expect(payload.get("failures") == 0, "workload objects failed to clean")
    per_object = payload.get("per_object")
    if isinstance(per_object, list) and isinstance(workload, dict):
        expect(len(per_object) == workload.get("objects"),
               "per_object length disagrees with workload.objects")
        for entry in per_object:
            if not (isinstance(entry, dict)
                    and isinstance(entry.get("index"), int)
                    and isinstance(entry.get("sequential_seconds"), float)
                    and isinstance(entry.get("parallel_seconds"), float)):
                problems.append(f"malformed per_object entry: {entry!r}")
                break
    else:
        problems.append("per_object must be a list")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--objects", type=int, default=12)
    parser.add_argument("--duration", type=int, default=600,
                        help="timesteps per object")
    parser.add_argument("--workers", type=int,
                        default=min(4, os.cpu_count() or 1))
    parser.add_argument("--chunk-size", type=int, default=None)
    parser.add_argument("--out", default="BENCH_parallel.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI workload (4 objects x 60 steps, "
                             "2 workers)")
    parser.add_argument("--check", metavar="FILE",
                        help="validate an existing result file and exit")
    args = parser.parse_args(argv)

    if args.check:
        with open(args.check) as handle:
            payload = json.load(handle)
        problems = validate_payload(payload)
        for problem in problems:
            print(f"SCHEMA: {problem}", file=sys.stderr)
        if not problems:
            print(f"{args.check}: well-formed (speedup "
                  f"{payload['speedup']:.2f}x on "
                  f"{payload['cpu_count']} CPUs)")
        return 1 if problems else 0

    if args.smoke:
        args.objects, args.duration, args.workers = 4, 60, 2

    payload = run(args.objects, args.duration, args.workers, args.chunk_size)
    problems = validate_payload(payload)
    if problems:
        for problem in problems:
            print(f"SELF-CHECK: {problem}", file=sys.stderr)
        return 1
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    seq = payload["sequential"]["wall_seconds"]
    par = payload["parallel"]["wall_seconds"]
    print(f"objects={args.objects} duration={args.duration} "
          f"workers={payload['parallel']['workers']}")
    print(f"sequential {seq:.3f}s  parallel {par:.3f}s  "
          f"speedup {payload['speedup']:.2f}x "
          f"(cpu_count={payload['cpu_count']})")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
