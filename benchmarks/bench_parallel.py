"""Sequential vs. parallel batch cleaning: the repo's perf trajectory.

Unlike the pytest-benchmark figures, this bench emits a machine-readable
``BENCH_parallel.json`` so successive commits can be compared: it cleans
the same multi-object workload once sequentially (``workers=1``, the
in-process loop) and once through the process pool, records both
wall-clocks, the speedup, and per-object stats, and asserts the two runs
produced probability-identical graphs.

Usage::

    python benchmarks/bench_parallel.py                      # full workload
    python benchmarks/bench_parallel.py --smoke              # CI-sized
    python benchmarks/bench_parallel.py --smoke --inject-crash
    python benchmarks/bench_parallel.py --check BENCH_parallel.json

``--check`` validates an existing result file against the schema and exits
non-zero on problems — that (and only that) is what CI asserts: speedup is
hardware (a single-core container cannot beat sequential; the file records
``cpu_count`` so readers can judge the number).

``--inject-crash`` / ``--inject-timeout`` append deliberately faulty
objects (a worker-killing ``CrashingSequence``, a deadline-busting
``SlowSequence``) to the *parallel* run only, and the payload additionally
records that each fault was quarantined as exactly one failed outcome of
the right ``error_type`` while every real object stayed bit-identical to
the sequential run — the fault-tolerance contract of ``docs/runtime.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.lsequence import LSequence
from repro.runtime import clean_many
from repro.runtime.faults import CrashingSequence, SlowSequence

SCHEMA_VERSION = 1

#: Wall-clock budget per object when ``--inject-timeout`` runs, and how
#: long the injected straggler sleeps (comfortably past the budget).
INJECT_TIMEOUT_SECONDS = 2.0
INJECT_SLEEP_SECONDS = 60.0

#: The same constraint shape as ``bench_scaling`` — DU + LT + TT all bind.
CONSTRAINTS = ConstraintSet([
    Unreachable("A", "C"), Unreachable("C", "A"),
    Latency("B", 3),
    TravelingTime("A", "D", 4), TravelingTime("D", "A", 4),
])

_PHASES = (
    {"A": 0.4, "B": 0.4, "C": 0.2},
    {"B": 0.6, "D": 0.4},
    {"B": 0.5, "C": 0.3, "D": 0.2},
    {"A": 0.5, "B": 0.5},
)


def make_workload(objects: int, duration: int) -> List[LSequence]:
    """``objects`` synthetic l-sequences with rotated phase offsets, so the
    objects are equally heavy but not byte-identical."""
    workload = []
    for index in range(objects):
        rows = [_PHASES[(tau + index) % len(_PHASES)]
                for tau in range(duration)]
        workload.append(LSequence(rows))
    return workload


def _graphs_identical(left, right) -> bool:
    """Exact (bitwise) equality of two cleaned graphs' distributions."""
    if (left.num_nodes != right.num_nodes
            or left.num_edges != right.num_edges):
        return False
    for tau in (0, left.duration // 2, left.duration - 1):
        if left.location_marginal(tau) != right.location_marginal(tau):
            return False
    return True


def run(objects: int, duration: int, workers: int,
        chunk_size: Optional[int], inject_crash: bool = False,
        inject_timeout: bool = False) -> Dict[str, object]:
    workload = make_workload(objects, duration)

    sequential = clean_many(workload, CONSTRAINTS, workers=1)

    # Fault injection: the faulty objects ride along in the parallel run
    # only (a CrashingSequence in the sequential in-process loop would
    # kill the benchmark itself — which is the point of the pool).
    injected: List[Dict[str, object]] = []
    parallel_workload: List[object] = list(workload)
    timeout_seconds = None
    if inject_crash:
        injected.append({"expected_error_type": "WorkerCrashError"})
        parallel_workload.append(CrashingSequence())
    if inject_timeout:
        timeout_seconds = INJECT_TIMEOUT_SECONDS
        injected.append({"expected_error_type": "CleaningTimeoutError"})
        parallel_workload.append(SlowSequence(
            [{"A": 1.0}, {"B": 1.0}], seconds=INJECT_SLEEP_SECONDS))
    if injected:
        workers = max(2, workers)

    parallel = clean_many(parallel_workload, CONSTRAINTS, workers=workers,
                          chunk_size=chunk_size,
                          timeout_seconds=timeout_seconds, max_retries=1)

    # zip() stops at the sequential run, so injected tail objects are
    # excluded from the identity check and the (real-object) failure count.
    identical = all(
        (not s.ok and not p.ok) or (s.ok and p.ok
                                    and _graphs_identical(s.graph, p.graph))
        for s, p in zip(sequential, parallel))
    failures = len(sequential.failures) + sum(
        1 for s, p in zip(sequential, parallel) if not p.ok)
    for expectation, outcome in zip(injected, list(parallel)[objects:]):
        expectation["index"] = outcome.index
        expectation["error_type"] = outcome.error_type
        expectation["ok"] = outcome.ok

    per_object = []
    for s, p in zip(sequential, parallel):
        per_object.append({
            "index": s.index,
            "duration": duration,
            "nodes": s.graph.num_nodes if s.ok else None,
            "edges": s.graph.num_edges if s.ok else None,
            "sequential_seconds": s.seconds,
            "parallel_seconds": p.seconds,
        })

    return {
        "benchmark": "bench_parallel",
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "cpu_count": os.cpu_count(),
        "workload": {
            "objects": objects,
            "duration": duration,
            "generator": "synthetic-phase4",
            "constraints": [str(c) for c in CONSTRAINTS],
        },
        "sequential": {
            "workers": 1,
            "wall_seconds": sequential.wall_seconds,
            "compute_seconds": sequential.compute_seconds,
        },
        "parallel": {
            "workers": parallel.workers,
            "chunk_size": parallel.chunk_size,
            "wall_seconds": parallel.wall_seconds,
            "compute_seconds": parallel.compute_seconds,
            "respawns": parallel.respawns,
        },
        "speedup": sequential.wall_seconds / parallel.wall_seconds,
        "identical_output": identical,
        "failures": failures,
        "per_object": per_object,
        **({"fault_injection": {
            "inject_crash": inject_crash,
            "inject_timeout": inject_timeout,
            "timeout_seconds": timeout_seconds,
            "respawns": parallel.respawns,
            "injected": injected,
        }} if injected else {}),
    }


def validate_payload(payload: Dict[str, object]) -> List[str]:
    """Schema check of a ``BENCH_parallel.json`` payload; [] when valid."""
    problems: List[str] = []

    def expect(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    expect(payload.get("benchmark") == "bench_parallel",
           "benchmark name missing or wrong")
    expect(payload.get("schema_version") == SCHEMA_VERSION,
           f"schema_version must be {SCHEMA_VERSION}")
    expect(isinstance(payload.get("cpu_count"), int),
           "cpu_count must be an int")
    workload = payload.get("workload")
    expect(isinstance(workload, dict)
           and isinstance(workload.get("objects"), int)
           and workload["objects"] > 0
           and isinstance(workload.get("duration"), int)
           and isinstance(workload.get("constraints"), list),
           "workload must describe objects/duration/constraints")
    for side in ("sequential", "parallel"):
        timing = payload.get(side)
        if not isinstance(timing, dict):
            problems.append(f"{side} timing block missing")
            continue
        expect(isinstance(timing.get("workers"), int)
               and timing["workers"] >= 1, f"{side}.workers must be >= 1")
        expect(isinstance(timing.get("wall_seconds"), float)
               and timing["wall_seconds"] > 0.0,
               f"{side}.wall_seconds must be a positive float")
    expect(isinstance(payload.get("speedup"), float)
           and payload["speedup"] > 0.0,
           "speedup must be a positive float")
    expect(payload.get("identical_output") is True,
           "identical_output must be true — parallel cleaning changed "
           "the results")
    expect(payload.get("failures") == 0, "workload objects failed to clean")
    per_object = payload.get("per_object")
    if isinstance(per_object, list) and isinstance(workload, dict):
        expect(len(per_object) == workload.get("objects"),
               "per_object length disagrees with workload.objects")
        for entry in per_object:
            if not (isinstance(entry, dict)
                    and isinstance(entry.get("index"), int)
                    and isinstance(entry.get("sequential_seconds"), float)
                    and isinstance(entry.get("parallel_seconds"), float)):
                problems.append(f"malformed per_object entry: {entry!r}")
                break
    else:
        problems.append("per_object must be a list")
    fault = payload.get("fault_injection")
    if fault is not None:
        if not isinstance(fault, dict):
            problems.append("fault_injection must be an object")
        else:
            injected = fault.get("injected")
            if not (isinstance(injected, list) and injected):
                problems.append("fault_injection.injected must be a "
                                "non-empty list")
            else:
                for entry in injected:
                    expected = entry.get("expected_error_type")
                    if entry.get("ok") is not False \
                            or entry.get("error_type") != expected:
                        problems.append(
                            "injected fault was not quarantined as "
                            f"{expected}: {entry!r}")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--objects", type=int, default=12)
    parser.add_argument("--duration", type=int, default=600,
                        help="timesteps per object")
    parser.add_argument("--workers", type=int,
                        default=min(4, os.cpu_count() or 1))
    parser.add_argument("--chunk-size", type=int, default=None)
    parser.add_argument("--out", default="BENCH_parallel.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI workload (4 objects x 60 steps, "
                             "2 workers)")
    parser.add_argument("--inject-crash", action="store_true",
                        help="append a worker-killing object to the "
                             "parallel run and record its quarantine")
    parser.add_argument("--inject-timeout", action="store_true",
                        help="append a deadline-busting object to the "
                             "parallel run (enables --timeout machinery)")
    parser.add_argument("--check", metavar="FILE",
                        help="validate an existing result file and exit")
    args = parser.parse_args(argv)

    if args.check:
        with open(args.check) as handle:
            payload = json.load(handle)
        problems = validate_payload(payload)
        for problem in problems:
            print(f"SCHEMA: {problem}", file=sys.stderr)
        if not problems:
            print(f"{args.check}: well-formed (speedup "
                  f"{payload['speedup']:.2f}x on "
                  f"{payload['cpu_count']} CPUs)")
        return 1 if problems else 0

    if args.smoke:
        args.objects, args.duration, args.workers = 4, 60, 2

    payload = run(args.objects, args.duration, args.workers, args.chunk_size,
                  inject_crash=args.inject_crash,
                  inject_timeout=args.inject_timeout)
    problems = validate_payload(payload)
    if problems:
        for problem in problems:
            print(f"SELF-CHECK: {problem}", file=sys.stderr)
        return 1
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    seq = payload["sequential"]["wall_seconds"]
    par = payload["parallel"]["wall_seconds"]
    print(f"objects={args.objects} duration={args.duration} "
          f"workers={payload['parallel']['workers']}")
    print(f"sequential {seq:.3f}s  parallel {par:.3f}s  "
          f"speedup {payload['speedup']:.2f}x "
          f"(cpu_count={payload['cpu_count']})")
    fault = payload.get("fault_injection")
    if fault:
        quarantined = ", ".join(
            f"#{entry['index']} {entry['error_type']}"
            for entry in fault["injected"])
        print(f"fault injection: {quarantined} quarantined "
              f"(pool respawns: {fault['respawns']}); "
              "surviving objects identical to sequential")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
