"""Ablation E: quantifying the title claim — uncertainty reduction.

The paper's goal is "reducing the inherent uncertainty of trajectory data".
This ablation measures it directly: the average per-timestep Shannon
entropy of the position marginal, before cleaning and after cleaning under
each constraint configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithm import build_ct_graph
from repro.core.lsequence import LSequence
from repro.experiments.harness import CONSTRAINT_CONFIGS
from repro.experiments.report import format_table
from repro.queries.analytics import entropy_profile, entropy_profile_prior


def test_uncertainty_reduction(benchmark, syn1, constraint_cache, capsys):
    def run():
        raw_entropy = []
        per_config = {name: [] for name in CONSTRAINT_CONFIGS}
        for trajectory in syn1.all_trajectories():
            lsequence = LSequence.from_readings(trajectory.readings,
                                                syn1.prior)
            raw_entropy.extend(entropy_profile_prior(lsequence))
            for name, kinds in CONSTRAINT_CONFIGS.items():
                graph = build_ct_graph(lsequence,
                                       constraint_cache(syn1, kinds))
                per_config[name].extend(entropy_profile(graph))
        return float(np.mean(raw_entropy)), {
            name: float(np.mean(values))
            for name, values in per_config.items()}

    raw, cleaned = benchmark.pedantic(run, rounds=1, iterations=1,
                                      warmup_rounds=0)
    rows = [("RAW", f"{raw:.3f}", "-")]
    for name, value in cleaned.items():
        rows.append((name, f"{value:.3f}", f"{raw - value:+.3f}"))
    with capsys.disabled():
        print()
        print("=== Ablation E: mean position entropy (bits/step), SYN1 ===")
        print(format_table(["config", "entropy", "reduction"], rows))

    benchmark.extra_info["raw_entropy"] = raw
    benchmark.extra_info.update(cleaned)
    # Conditioning can only concentrate the marginal given more structure:
    # every configuration should reduce average entropy, monotonically with
    # richer constraint sets (up to sampling noise).
    assert cleaned["CTG(DU)"] <= raw + 1e-9
    assert cleaned["CTG(DU,LT)"] <= cleaned["CTG(DU)"] + 0.02
    assert cleaned["CTG(DU,LT,TT)"] <= cleaned["CTG(DU,LT)"] + 0.02