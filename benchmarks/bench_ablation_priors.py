"""Ablation A: the paper's prior formula vs full negative evidence.

Section 6.2's ``p*(l | R)`` uses only the readers *in* ``R``; the exact
"all and only" likelihood would also multiply ``(1 - F[r, c])`` for the
readers outside ``R``.  This ablation measures what that choice costs: the
stay accuracy of the RAW interpretation and of full cleaning under both
prior variants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithm import build_ct_graph
from repro.core.lsequence import LSequence
from repro.experiments.report import format_table
from repro.inference import MotilityProfile, infer_constraints
from repro.queries.accuracy import stay_accuracy
from repro.queries.stay import stay_query, stay_query_prior
from repro.rfid.priors import PriorModel


def _mean_accuracy(dataset, prior, constraints) -> tuple:
    raw_scores, cleaned_scores = [], []
    for trajectory in dataset.all_trajectories():
        truth = trajectory.truth.locations
        lsequence = LSequence.from_readings(trajectory.readings, prior)
        graph = build_ct_graph(lsequence, constraints)
        for tau in range(0, trajectory.duration, 2):
            raw_scores.append(stay_accuracy(
                stay_query_prior(lsequence, tau), truth[tau]))
            cleaned_scores.append(stay_accuracy(
                stay_query(graph, tau), truth[tau]))
    return float(np.mean(raw_scores)), float(np.mean(cleaned_scores))


def test_negative_evidence_ablation(benchmark, syn1, profile, capsys):
    constraints = infer_constraints(syn1.building, profile,
                                    kinds=("DU", "LT"),
                                    distances=syn1.distances)
    paper_prior = syn1.prior
    negative_prior = PriorModel(syn1.calibrated_matrix,
                                negative_evidence=True)

    def run():
        return {
            "paper": _mean_accuracy(syn1, paper_prior, constraints),
            "negative": _mean_accuracy(syn1, negative_prior, constraints),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1,
                                 warmup_rounds=0)
    rows = [(variant, f"{raw:.3f}", f"{cleaned:.3f}")
            for variant, (raw, cleaned) in results.items()]
    with capsys.disabled():
        print()
        print("=== Ablation A: prior formula (stay accuracy, SYN1, "
              "CTG(DU,LT)) ===")
        print(format_table(["prior", "raw_accuracy", "cleaned_accuracy"],
                           rows))

    for variant, (raw, cleaned) in results.items():
        benchmark.extra_info[f"{variant}_raw"] = raw
        benchmark.extra_info[f"{variant}_cleaned"] = cleaned
        # Cleaning should help (or at worst be neutral) under both priors.
        assert cleaned >= raw - 0.02, variant
