"""Ablation C: ct-graph construction vs naive enumeration.

The introduction's motivation: enumeration is exponential in the duration
(2 candidate locations per step already means 2^n trajectories), while the
ct-graph is polynomial.  This ablation measures both on the same instances
and shows the crossover at toy durations.
"""

from __future__ import annotations

import time

import pytest

from repro.core.algorithm import build_ct_graph
from repro.core.constraints import ConstraintSet, Latency, Unreachable
from repro.core.lsequence import LSequence
from repro.core.naive import NaiveConditioner
from repro.experiments.report import format_table

CONSTRAINTS = ConstraintSet([
    Unreachable("A", "C"), Unreachable("C", "A"), Latency("B", 2),
])


def _instance(duration: int) -> LSequence:
    rows = []
    for tau in range(duration):
        if tau % 3 == 0:
            rows.append({"A": 0.4, "B": 0.4, "C": 0.2})
        else:
            rows.append({"A": 0.5, "B": 0.5})
    return LSequence(rows)


@pytest.mark.parametrize("duration", [4, 8, 12, 16])
def test_ctg_vs_naive(benchmark, duration):
    lsequence = _instance(duration)

    def run_both():
        started = time.perf_counter()
        graph = build_ct_graph(lsequence, CONSTRAINTS)
        ctg_seconds = time.perf_counter() - started
        started = time.perf_counter()
        naive = NaiveConditioner(lsequence, CONSTRAINTS,
                                 enumeration_limit=None)
        distribution = naive.conditioned_distribution()
        naive_seconds = time.perf_counter() - started
        return graph, distribution, ctg_seconds, naive_seconds

    graph, distribution, ctg_seconds, naive_seconds = benchmark.pedantic(
        run_both, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["ctg_ms"] = round(ctg_seconds * 1000, 3)
    benchmark.extra_info["naive_ms"] = round(naive_seconds * 1000, 3)
    benchmark.extra_info["valid_trajectories"] = len(distribution)
    assert graph.num_valid_trajectories() == len(distribution)


def test_crossover_report(benchmark, capsys):
    def sweep():
        rows = []
        for duration in (4, 8, 12, 16, 18):
            lsequence = _instance(duration)
            started = time.perf_counter()
            build_ct_graph(lsequence, CONSTRAINTS)
            ctg_seconds = time.perf_counter() - started
            started = time.perf_counter()
            NaiveConditioner(lsequence, CONSTRAINTS,
                             enumeration_limit=None).conditioned_distribution()
            naive_seconds = time.perf_counter() - started
            rows.append((duration, lsequence.num_trajectories(),
                         f"{ctg_seconds * 1000:.2f}",
                         f"{naive_seconds * 1000:.2f}"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    with capsys.disabled():
        print()
        print("=== Ablation C: ct-graph vs naive enumeration ===")
        print(format_table(
            ["duration", "trajectories", "ctg_ms", "naive_ms"], rows))

    # At the longest duration the naive engine must be clearly slower.
    last = rows[-1]
    assert float(last[3]) > float(last[2]), \
        "enumeration should lose badly on longer instances"
