"""Figure 8(b): average cleaning time on SYN2 vs trajectory length.

Same series as Fig. 8(a) on the eight-floor building.  The paper's extra
claim here: CTG is slower on SYN2 than on SYN1 (especially with TT
constraints, whose horizons grow with the map) — asserted by the summary
test, which compares against the SYN1 run.
"""

from __future__ import annotations

import pytest

from repro.core.algorithm import build_ct_graph
from repro.core.lsequence import LSequence
from repro.experiments.harness import CONSTRAINT_CONFIGS, run_cleaning_experiment
from repro.experiments.report import cleaning_table

_CONFIG_ITEMS = list(CONSTRAINT_CONFIGS.items())


@pytest.mark.parametrize("config_name,kinds", _CONFIG_ITEMS,
                         ids=[name for name, _ in _CONFIG_ITEMS])
@pytest.mark.parametrize("duration_index", [0, 1, 2, 3])
def test_cleaning_time_syn2(benchmark, syn2, constraint_cache,
                            config_name, kinds, duration_index):
    durations = syn2.durations
    if duration_index >= len(durations):
        pytest.skip("scale has fewer duration buckets")
    duration = durations[duration_index]
    constraints = constraint_cache(syn2, kinds)
    trajectory = syn2.trajectories[duration][0]
    lsequence = LSequence.from_readings(trajectory.readings, syn2.prior)

    graph = benchmark.pedantic(
        build_ct_graph, args=(lsequence, constraints),
        rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["duration"] = duration
    benchmark.extra_info["config"] = config_name
    benchmark.extra_info["nodes"] = graph.num_nodes


def test_fig8b_series(benchmark, syn1, syn2, capsys):
    """Prints Fig. 8(b) and checks the SYN2-slower-than-SYN1 claim."""
    syn2_measurements = benchmark.pedantic(
        run_cleaning_experiment, args=(syn2,),
        rounds=1, iterations=1, warmup_rounds=0)
    syn1_measurements = run_cleaning_experiment(syn1)
    with capsys.disabled():
        print()
        print("=== Figure 8(b): cleaning time on SYN2 ===")
        print(cleaning_table(syn2_measurements))

    # Aggregate TT-config cost over the common durations: SYN2 >= SYN1.
    def total(measurements, config):
        return sum(m.mean_seconds for m in measurements
                   if m.config == config)

    assert total(syn2_measurements, "CTG(DU,LT,TT)") >= \
        0.5 * total(syn1_measurements, "CTG(DU,LT,TT)"), \
        "SYN2 full-constraint cleaning should not be dramatically cheaper"
