"""Figure 9(c): trajectory-query accuracy on SYN2 vs query length.

The paper buckets the Fig. 9(b) workload by the number of location
conditions (2, 3 or 4).  Expected shape: accuracy stays high and roughly
stable (or mildly decreasing) as queries get longer.
"""

from __future__ import annotations

from repro.experiments.harness import run_trajectory_accuracy_experiment
from repro.experiments.report import accuracy_table


def test_fig9c_accuracy_by_query_length(benchmark, syn2, capsys):
    # visited_bias makes 'yes' answers common enough to be informative on a
    # 64-location map (the paper's uniform workload answers 'no' with
    # near-certainty almost always) — see bench_fig9b for both variants.
    measurements = benchmark.pedantic(
        run_trajectory_accuracy_experiment, args=(syn2,),
        kwargs={"queries_per_trajectory": 24, "by_query_length": True,
                "visited_bias": 0.5},
        rounds=1, iterations=1, warmup_rounds=0)
    with capsys.disabled():
        print()
        print("=== Figure 9(c): trajectory-query accuracy on SYN2 "
              "by query length ===")
        print(accuracy_table(measurements))

    full = {m.query_length: m.accuracy for m in measurements
            if m.config == "CTG(DU,LT,TT)"}
    assert set(full) == {2, 3, 4}
    for length, accuracy in full.items():
        benchmark.extra_info[f"qlen{length}"] = accuracy
        assert accuracy > 0.5, \
            f"length-{length} queries should beat a coin flip"
