"""Figure 8(a): average cleaning time on SYN1 vs trajectory length.

The paper's curves: one per configuration (CTG(DU), CTG(DU,LT),
CTG(DU,LT,TT)), time growing linearly with the trajectory duration and
cost ordered DU <= DU+LT <= DU+LT+TT.  Each benchmark row below is one
(configuration, duration) point of the figure; the summary test prints the
full series as a table.
"""

from __future__ import annotations

import pytest

from repro.core.algorithm import build_ct_graph
from repro.core.lsequence import LSequence
from repro.experiments.harness import CONSTRAINT_CONFIGS, run_cleaning_experiment
from repro.experiments.report import cleaning_table

_CONFIG_ITEMS = list(CONSTRAINT_CONFIGS.items())


def _duration_params(dataset):
    return dataset.durations


@pytest.mark.parametrize("config_name,kinds", _CONFIG_ITEMS,
                         ids=[name for name, _ in _CONFIG_ITEMS])
@pytest.mark.parametrize("duration_index", [0, 1, 2, 3])
def test_cleaning_time_syn1(benchmark, syn1, constraint_cache,
                            config_name, kinds, duration_index):
    durations = syn1.durations
    if duration_index >= len(durations):
        pytest.skip("scale has fewer duration buckets")
    duration = durations[duration_index]
    constraints = constraint_cache(syn1, kinds)
    trajectory = syn1.trajectories[duration][0]
    lsequence = LSequence.from_readings(trajectory.readings, syn1.prior)

    graph = benchmark.pedantic(
        build_ct_graph, args=(lsequence, constraints),
        rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["duration"] = duration
    benchmark.extra_info["config"] = config_name
    benchmark.extra_info["nodes"] = graph.num_nodes
    benchmark.extra_info["edges"] = graph.num_edges


def test_fig8a_series(benchmark, syn1, capsys):
    """Prints the full Fig. 8(a) series (all trajectories, all configs)."""
    measurements = benchmark.pedantic(
        run_cleaning_experiment, args=(syn1,),
        rounds=1, iterations=1, warmup_rounds=0)
    with capsys.disabled():
        print()
        print("=== Figure 8(a): cleaning time on SYN1 ===")
        print(cleaning_table(measurements))
    # The paper's shape claims.
    by_key = {(m.config, m.duration): m for m in measurements}
    for duration in syn1.durations:
        du = by_key[("CTG(DU)", duration)].mean_seconds
        full = by_key[("CTG(DU,LT,TT)", duration)].mean_seconds
        assert full >= du, "TT cleaning should not be cheaper than DU-only"
