"""Ablation B: lenient vs strict handling of window-truncated stays.

DESIGN.md §3: Definition 2 read literally ("strict") invalidates a final
stay that the monitoring window cuts short of its latency bound; the
printed algorithm ("lenient", our default) keeps it.  This ablation shows
the semantic knob is almost free: graph shapes and accuracies are nearly
identical, with strict graphs (weakly) smaller.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithm import CleaningOptions, build_ct_graph
from repro.core.lsequence import LSequence
from repro.errors import InconsistentReadingsError
from repro.experiments.report import format_table
from repro.inference import infer_constraints
from repro.queries.accuracy import stay_accuracy
from repro.queries.stay import stay_query


def test_truncation_policy_ablation(benchmark, syn1, profile, capsys):
    constraints = infer_constraints(syn1.building, profile,
                                    kinds=("DU", "LT"),
                                    distances=syn1.distances)

    def run():
        results = {}
        for policy in ("lenient", "strict"):
            options = CleaningOptions(policy)
            nodes, scores, inconsistent = [], [], 0
            for trajectory in syn1.all_trajectories():
                truth = trajectory.truth.locations
                lsequence = LSequence.from_readings(trajectory.readings,
                                                    syn1.prior)
                try:
                    graph = build_ct_graph(lsequence, constraints, options)
                except InconsistentReadingsError:
                    inconsistent += 1
                    continue
                nodes.append(graph.num_nodes)
                scores.extend(
                    stay_accuracy(stay_query(graph, tau), truth[tau])
                    for tau in range(0, trajectory.duration, 3))
            results[policy] = (float(np.mean(nodes)) if nodes else 0.0,
                               float(np.mean(scores)) if scores else 0.0,
                               inconsistent)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1,
                                 warmup_rounds=0)
    rows = [(policy, f"{nodes:.0f}", f"{accuracy:.3f}", inconsistent)
            for policy, (nodes, accuracy, inconsistent) in results.items()]
    with capsys.disabled():
        print()
        print("=== Ablation B: truncated-stay policy (SYN1, CTG(DU,LT)) ===")
        print(format_table(
            ["policy", "mean_nodes", "stay_accuracy", "inconsistent"], rows))

    lenient_nodes = results["lenient"][0]
    strict_nodes = results["strict"][0]
    if strict_nodes:
        assert strict_nodes <= lenient_nodes + 1e-9, \
            "strict graphs can only drop end-of-window states"
