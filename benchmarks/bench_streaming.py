"""Bounded-memory streaming: eviction exactness, resume, kernel, shards.

Schema v2 measures and gates five claims about the streaming stack on a
long synthetic reading stream (full run: 100k steps, ``window=64``):

* **bounded memory** — the retained level count never exceeds the
  window and the per-level frontier never exceeds the workload's
  state-space bound, no matter how long the stream runs (the whole
  point of evicting settled prefix levels into the frontier summary);
* **eviction exactness** — ``filtered_distribution()`` is *bit-equal*
  (``==`` on floats, not approximate) at every step to an
  :class:`~repro.core.incremental.IncrementalCleaner` that retains the
  entire stream, over a long shared prefix;
* **resume exactness** — checkpointing mid-stream, resuming from the
  file and feeding the remainder yields bit-equal filtered estimates
  and a bit-identical ``finalize()`` graph versus the uninterrupted
  run;
* **kernel parity + speedup** — the vectorized frontier-advance kernel
  (``backend="numpy"``, :class:`~repro.core.kernels.FrontierKernel`)
  matches the python oracle (exact discrete structure, tolerance-gated
  floats, bit-exact numpy-vs-numpy checkpoint/resume) and, on
  non-smoke runs, ingests at least ``KERNEL_SPEEDUP_GATE``x faster;
* **shard-merge identity** — an in-process
  :class:`~repro.runtime.shards.StreamShardPool` over 2 worker
  processes emits byte-identical merged output to a single
  :class:`~repro.runtime.shards.ServeEngine`.

Emits a machine-readable ``BENCH_streaming.json``.  Usage::

    python benchmarks/bench_streaming.py                  # full run
    python benchmarks/bench_streaming.py --smoke          # CI-sized
    python benchmarks/bench_streaming.py --backend python # skip kernel
    python benchmarks/bench_streaming.py --check BENCH_streaming.json

``--check`` validates an existing result file and exits non-zero on
problems.  The parity flags, the memory bounds and the shard identity
are gated in every payload (they are correctness claims, not
performance numbers); throughput is reported, and the kernel speedup is
gated only on full (non-smoke) runs where the numpy backend actually
ran.  Without numpy the kernel block records ``available: false`` and a
null speedup — the pure-python leg still passes every gate.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import random
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from repro.core.algorithm import CleaningOptions
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.incremental import IncrementalCleaner
from repro.core.kernels import numpy_available
from repro.io.jsonio import save_constraints
from repro.runtime.sessions import StreamSessionManager
from repro.runtime.shards import ServeEngine, StreamShardPool
from repro.streaming import StreamingCleaner

SCHEMA_VERSION = 2

DURATION = 100_000
SMOKE_DURATION = 2_000
WINDOW = 64

#: Locations of the synthetic floor.  Full-support rows keep the
#: frontier alive (and maximally wide) at every step.
LOCATIONS = ("A", "B", "C", "D", "E", "F", "G", "H")

#: How far back the full-retention IncrementalCleaner shadows the
#: stream for the bit-equality check (it holds every level, so the
#: shadow is capped; the streaming side continues to the full horizon).
PARITY_PREFIX = 4_096

#: Minimum numpy-over-python ingest speedup on full runs.  The measured
#: headline is ~21x on the reference container; 4x leaves headroom for
#: slow CI hardware while still catching a de-vectorized regression.
KERNEL_SPEEDUP_GATE = 4.0

#: Readings fed through the shard-identity comparison (per leg).  The
#: guarantee is size-independent; this is enough to cross estimate
#: boundaries on every shard.
SHARD_READINGS = 2_000
SHARDS = 2
SHARD_OBJECTS = 4

SEED = 20140328  # EDBT 2014 in Athens


def stream_constraints() -> ConstraintSet:
    """Constraints that exercise every state dimension.

    ``Latency`` makes the frontier track stay counters, and
    ``TravelingTime`` makes it track departure logs — the two parts of
    the Markov state beyond the bare location — so the bound we gate is
    the bound of the *general* state space, not of a degenerate one.
    """
    return ConstraintSet([
        Unreachable("A", "E"),
        Unreachable("E", "A"),
        Unreachable("C", "G"),
        Latency("B", 3),
        TravelingTime("B", "F", 4),
    ])


def synthetic_row(rng: random.Random) -> Dict[str, float]:
    """One full-support candidate row with seeded random weights."""
    weights = [rng.random() + 0.05 for _ in LOCATIONS]
    total = sum(weights)
    return {name: weight / total
            for name, weight in zip(LOCATIONS, weights)}


def run_kernel_leg(rows: Sequence[Dict[str, float]], window: int,
                   python_seconds: float, backend: str) -> Dict[str, object]:
    """Time the numpy kernel over the same stream and gate its parity.

    Three sub-claims: (1) lockstep parity with the python oracle over
    the parity prefix — identical key order and floats within
    ``rel 1e-9 / abs 1e-12`` (``np.bincount`` reassociates the
    per-successor sums, so bit-equality is not promised cross-backend);
    (2) numpy-vs-numpy checkpoint/resume *is* bit-exact; (3) the
    full-stream ingest speedup over the already-timed python pass.
    """
    import math

    available = numpy_available()
    block: Dict[str, object] = {"backend": backend, "available": available}
    if backend != "numpy" or not available:
        block.update({"backend_resolved": "python", "ingest_seconds": None,
                      "readings_per_second": None, "kernel_speedup": None,
                      "parity": None})
        return block

    options = CleaningOptions(materialize="flat", backend="numpy")
    kernel = StreamingCleaner(stream_constraints(), window=window,
                              options=options)
    started = time.perf_counter()
    for row in rows:
        kernel.extend(row)
    elapsed = time.perf_counter() - started

    # -- lockstep parity over the prefix (untimed) ---------------------
    prefix = min(len(rows), PARITY_PREFIX)
    oracle = StreamingCleaner(stream_constraints(), window=window,
                              options=CleaningOptions(materialize="flat"))
    shadow = StreamingCleaner(stream_constraints(), window=window,
                              options=options)
    filtered_close = True
    for row in rows[:prefix]:
        oracle.extend(row)
        shadow.extend(row)
        expected = oracle.filtered_distribution()
        got = shadow.filtered_distribution()
        if list(expected) != list(got):
            filtered_close = False
            break
        if not all(math.isclose(got[loc], p, rel_tol=1e-9, abs_tol=1e-12)
                   for loc, p in expected.items()):
            filtered_close = False
            break

    # -- numpy-vs-numpy checkpoint/resume is bit-exact -----------------
    resume_at = max(1, len(rows) // 2)
    killed = StreamingCleaner(stream_constraints(), window=window,
                              options=options)
    for row in rows[:resume_at]:
        killed.extend(row)
    fd, path = tempfile.mkstemp(prefix="bench_kernel_", suffix=".ckpt")
    os.close(fd)
    try:
        killed.checkpoint(path)
        resumed = StreamingCleaner.resume(path)
        for row in rows[resume_at:]:
            resumed.extend(row)
        resume_bit_equal = (resumed.filtered_distribution()
                            == kernel.filtered_distribution()
                            and resumed.frontier_size()
                            == kernel.frontier_size())
    finally:
        os.unlink(path)

    block.update({
        "backend_resolved": "numpy",
        "ingest_seconds": elapsed,
        "readings_per_second": len(rows) / elapsed,
        "kernel_speedup": python_seconds / elapsed,
        "parity": {
            "filtered_close": filtered_close,
            "parity_prefix": prefix,
            "resume_bit_equal": resume_bit_equal,
        },
    })
    return block


def shard_stream_lines(readings: int) -> List[str]:
    """Object-tagged serve lines cycling a small fleet, seeded."""
    rng = random.Random(SEED + 1)
    lines = []
    for index in range(readings):
        row = synthetic_row(rng)
        lines.append(json.dumps({
            "object": f"tag-{index % SHARD_OBJECTS}",
            "candidates": row,
        }) + "\n")
    return lines


def run_shard_leg(window: int, backend: str,
                  readings: int) -> Dict[str, object]:
    """Merged shard-pool output vs a single engine, byte for byte."""
    lines = shard_stream_lines(readings)
    constraints = stream_constraints()

    manager = StreamSessionManager(
        constraints, window=window,
        options=CleaningOptions(backend=backend))
    engine = ServeEngine(manager, estimate_every=7)
    single = io.StringIO()
    started = time.perf_counter()
    for line in lines:
        payload = json.loads(line)
        _, out_lines, _ = engine.process(payload["object"],
                                         payload["candidates"])
        for rendered in out_lines:
            single.write(rendered + "\n")
    for _object_id, rendered in engine.final_entries():
        single.write(rendered + "\n")
    single_seconds = time.perf_counter() - started

    with tempfile.TemporaryDirectory(prefix="bench_shards_") as tmp:
        constraints_file = os.path.join(tmp, "constraints.json")
        save_constraints(constraints, constraints_file)
        merged, err = io.StringIO(), io.StringIO()
        started = time.perf_counter()
        with StreamShardPool(SHARDS, constraints_file=constraints_file,
                             window=window, estimate_every=7,
                             backend=backend) as pool:
            pool.serve(lines, merged, err)
            pool.finish(merged, err)
        pool_seconds = time.perf_counter() - started

    return {
        "shards": SHARDS,
        "objects": SHARD_OBJECTS,
        "readings": readings,
        "merged_identical": merged.getvalue() == single.getvalue(),
        "single_seconds": single_seconds,
        "pool_seconds": pool_seconds,
    }


def run(duration: int, window: int, smoke: bool,
        backend: str) -> Dict[str, object]:
    """Execute the streaming workload; returns the JSON payload."""
    constraints = stream_constraints()
    options = CleaningOptions(materialize="flat")
    rng = random.Random(SEED)
    rows = [synthetic_row(rng) for _ in range(duration)]

    prefix = min(duration, PARITY_PREFIX)
    resume_at = duration // 2

    streaming = StreamingCleaner(constraints, window=window,
                                 options=options)
    shadow = IncrementalCleaner(constraints, options=options)
    reference = StreamingCleaner(constraints, window=window,
                                 options=options)

    retained_max = 0
    frontier_max = 0
    filtered_bit_equal = True
    resume_bit_equal = True

    fd, ckpt_path = tempfile.mkstemp(prefix="bench_streaming_",
                                     suffix=".ckpt")
    os.close(fd)
    resumed: Optional[StreamingCleaner] = None
    try:
        started = time.perf_counter()
        for t, row in enumerate(rows):
            streaming.extend(row)
            retained_max = max(retained_max, streaming.retained_duration)
            frontier_max = max(frontier_max, streaming.frontier_size())
            if t < prefix:
                shadow.extend(row)
                if (streaming.filtered_distribution()
                        != shadow.filtered_distribution()):
                    filtered_bit_equal = False
        elapsed = time.perf_counter() - started

        # -- checkpoint/resume against the uninterrupted reference ------
        for row in rows[:resume_at]:
            reference.extend(row)
        reference.checkpoint(ckpt_path)
        resumed = StreamingCleaner.resume(ckpt_path)
        for row in rows[resume_at:]:
            reference.extend(row)
            resumed.extend(row)
            if (resumed.filtered_distribution()
                    != reference.filtered_distribution()):
                resume_bit_equal = False
        finalize_bit_equal = (resumed.finalize() == reference.finalize()
                              and resumed.base == reference.base)
    finally:
        os.unlink(ckpt_path)

    ckpt_bytes = streaming.checkpoint(ckpt_path + ".size")
    os.unlink(ckpt_path + ".size")

    kernel = run_kernel_leg(rows, window, elapsed, backend)
    shard = run_shard_leg(window, backend, min(duration, SHARD_READINGS))

    # The frontier is one state per (location, live stay counter, live
    # departure log); with L locations, one Latency(limit) and one
    # TravelingTime(ttime) the per-level state count is bounded by
    # L * (limit + 2) * (ttime + 2) regardless of stream length.
    frontier_gate = len(LOCATIONS) * (3 + 2) * (4 + 2)

    return {
        "benchmark": "bench_streaming",
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "cpu_count": os.cpu_count() or 1,
        "smoke": smoke,
        "workload": {
            "generator": "full-support seeded stream",
            "locations": len(LOCATIONS),
            "duration": duration,
            "window": window,
            "parity_prefix": prefix,
            "resume_at": resume_at,
        },
        "memory": {
            "retained_levels_max": retained_max,
            "frontier_states_max": frontier_max,
            "frontier_states_gate": frontier_gate,
            "checkpoint_bytes": ckpt_bytes,
        },
        "parity": {
            "filtered_bit_equal": filtered_bit_equal,
            "resume_bit_equal": resume_bit_equal,
            "finalize_bit_equal": finalize_bit_equal,
        },
        "throughput": {
            "ingest_seconds": elapsed,
            "readings_per_second": duration / elapsed,
        },
        "kernel": kernel,
        "shard": shard,
    }


def validate_payload(payload: Dict[str, object]) -> List[str]:
    """Schema + gate check of a ``BENCH_streaming.json`` payload."""
    problems: List[str] = []

    def expect(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    expect(payload.get("benchmark") == "bench_streaming",
           "benchmark name missing or wrong")
    expect(payload.get("schema_version") == SCHEMA_VERSION,
           f"schema_version must be {SCHEMA_VERSION}")
    expect(isinstance(payload.get("smoke"), bool), "smoke must be a bool")
    smoke = payload.get("smoke") is True

    workload = payload.get("workload")
    if not (isinstance(workload, dict)
            and isinstance(workload.get("duration"), int)
            and workload["duration"] > 0
            and isinstance(workload.get("window"), int)
            and workload["window"] > 0):
        problems.append("workload must describe duration/window")
        workload = None

    memory = payload.get("memory")
    if not (isinstance(memory, dict)
            and isinstance(memory.get("retained_levels_max"), int)
            and isinstance(memory.get("frontier_states_max"), int)
            and isinstance(memory.get("frontier_states_gate"), int)):
        problems.append("memory block missing or malformed")
        memory = None

    if workload is not None and memory is not None:
        expect(memory["retained_levels_max"] <= workload["window"],
               "memory is unbounded: retained levels "
               f"{memory['retained_levels_max']} exceed the window "
               f"{workload['window']}")
        expect(memory["frontier_states_max"]
               <= memory["frontier_states_gate"],
               "frontier grew past the state-space bound "
               f"({memory['frontier_states_max']} > "
               f"{memory['frontier_states_gate']})")
        expect(workload["duration"] > workload["window"],
               "workload never evicted — duration must exceed the window")

    parity = payload.get("parity")
    if not isinstance(parity, dict):
        problems.append("parity block missing")
    else:
        for flag in ("filtered_bit_equal", "resume_bit_equal",
                     "finalize_bit_equal"):
            expect(parity.get(flag) is True,
                   f"parity.{flag} must be true — the streaming path "
                   "diverged from the exact reference")

    throughput = payload.get("throughput")
    expect(isinstance(throughput, dict)
           and isinstance(throughput.get("ingest_seconds"), float)
           and throughput["ingest_seconds"] > 0.0
           and isinstance(throughput.get("readings_per_second"), float)
           and throughput["readings_per_second"] > 0.0,
           "throughput must record positive ingest timings")

    kernel = payload.get("kernel")
    if not (isinstance(kernel, dict)
            and isinstance(kernel.get("available"), bool)
            and isinstance(kernel.get("backend"), str)):
        problems.append("kernel block missing or malformed")
    elif kernel.get("backend_resolved") == "numpy":
        kernel_parity = kernel.get("parity")
        if not isinstance(kernel_parity, dict):
            problems.append("kernel.parity block missing")
        else:
            expect(kernel_parity.get("filtered_close") is True,
                   "kernel.parity.filtered_close must be true — the "
                   "vectorized frontier kernel diverged from the oracle")
            expect(kernel_parity.get("resume_bit_equal") is True,
                   "kernel.parity.resume_bit_equal must be true — a "
                   "numpy checkpoint/resume round-trip changed bits")
        speedup = kernel.get("kernel_speedup")
        expect(isinstance(speedup, float) and speedup > 0.0,
               "kernel_speedup must be a positive float on the numpy leg")
        if not smoke and isinstance(speedup, float):
            expect(speedup >= KERNEL_SPEEDUP_GATE,
                   f"kernel_speedup {speedup:.2f}x is below the "
                   f"{KERNEL_SPEEDUP_GATE:.0f}x gate — the vectorized "
                   "frontier advance regressed")
    else:
        expect(kernel.get("kernel_speedup") is None,
               "kernel_speedup must be null when the numpy kernel "
               "did not run")

    shard = payload.get("shard")
    if not (isinstance(shard, dict)
            and isinstance(shard.get("shards"), int)
            and shard["shards"] >= 2
            and isinstance(shard.get("readings"), int)
            and shard["readings"] > 0):
        problems.append("shard block missing or malformed")
    else:
        expect(shard.get("merged_identical") is True,
               "shard.merged_identical must be true — the sharded "
               "fleet's merged output diverged from a single engine")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=int, default=DURATION)
    parser.add_argument("--window", type=int, default=WINDOW)
    parser.add_argument("--backend", choices=("numpy", "python"),
                        default="numpy",
                        help="kernel leg: 'numpy' times the vectorized "
                             "frontier kernel (falling back gracefully "
                             "when numpy is absent), 'python' skips the "
                             "kernel timing entirely")
    parser.add_argument("--out", default="BENCH_streaming.json")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized stream (2k steps; same gates minus "
                             "the kernel speedup — the bounds and parity "
                             "are size-independent, the speedup is not)")
    parser.add_argument("--check", metavar="FILE",
                        help="validate an existing result file and exit")
    args = parser.parse_args(argv)

    if args.check:
        with open(args.check) as handle:
            payload = json.load(handle)
        problems = validate_payload(payload)
        for problem in problems:
            print(f"SCHEMA: {problem}", file=sys.stderr)
        if not problems:
            memory = payload["memory"]
            speedup = payload["kernel"].get("kernel_speedup")
            kernel_note = (f"kernel {speedup:.1f}x"
                           if isinstance(speedup, float)
                           else "kernel skipped")
            print(f"{args.check}: well-formed "
                  f"({payload['workload']['duration']} steps, retained "
                  f"<= {memory['retained_levels_max']} levels, frontier "
                  f"<= {memory['frontier_states_max']} states, "
                  f"parity ok, {kernel_note}, shards merged ok)")
        return 1 if problems else 0

    if args.smoke:
        args.duration = min(args.duration, SMOKE_DURATION)

    payload = run(args.duration, args.window, args.smoke, args.backend)
    problems = validate_payload(payload)
    if problems:
        for problem in problems:
            print(f"SELF-CHECK: {problem}", file=sys.stderr)
        return 1
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    workload, memory = payload["workload"], payload["memory"]
    throughput = payload["throughput"]
    kernel, shard = payload["kernel"], payload["shard"]
    print(f"workload: {workload['duration']} steps x "
          f"{workload['locations']} locations, window "
          f"{workload['window']}")
    print(f"memory: retained <= {memory['retained_levels_max']} levels "
          f"(window {workload['window']}), frontier <= "
          f"{memory['frontier_states_max']} states (gate "
          f"{memory['frontier_states_gate']}), checkpoint "
          f"{memory['checkpoint_bytes']} B")
    print(f"parity: filtered bit-equal over {workload['parity_prefix']} "
          f"steps, resume + finalize bit-equal from step "
          f"{workload['resume_at']}")
    print(f"throughput (python): "
          f"{throughput['readings_per_second']:,.0f} readings/s "
          f"({throughput['ingest_seconds']:.1f} s ingest)")
    if kernel["backend_resolved"] == "numpy":
        print(f"kernel (numpy): "
              f"{kernel['readings_per_second']:,.0f} readings/s, "
              f"{kernel['kernel_speedup']:.1f}x over python, parity ok")
    else:
        print("kernel: numpy unavailable or skipped — python fallback "
              "exercised")
    print(f"shards: {shard['shards']} workers x {shard['objects']} "
          f"objects over {shard['readings']} readings, merged output "
          f"{'identical' if shard['merged_identical'] else 'DIVERGED'}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
