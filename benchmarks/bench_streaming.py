"""Bounded-memory streaming: eviction exactness, resume, throughput.

Three claims about :class:`repro.streaming.StreamingCleaner` are
measured and gated on a long synthetic reading stream (full run:
100k steps, ``window=64``):

* **bounded memory** — the retained level count never exceeds the
  window and the per-level frontier never exceeds the workload's
  state-space bound, no matter how long the stream runs (the whole
  point of evicting settled prefix levels into the frontier summary);
* **eviction exactness** — ``filtered_distribution()`` is *bit-equal*
  (``==`` on floats, not approximate) at every step to an
  :class:`~repro.core.incremental.IncrementalCleaner` that retains the
  entire stream, over a long shared prefix;
* **resume exactness** — checkpointing mid-stream, resuming from the
  file and feeding the remainder yields bit-equal filtered estimates
  and a bit-identical ``finalize()`` graph versus the uninterrupted
  run.

Emits a machine-readable ``BENCH_streaming.json``.  Usage::

    python benchmarks/bench_streaming.py                  # full run
    python benchmarks/bench_streaming.py --smoke          # CI-sized
    python benchmarks/bench_streaming.py --check BENCH_streaming.json

``--check`` validates an existing result file and exits non-zero on
problems.  The parity flags and the memory bounds are gated in every
payload (they are correctness claims, not performance numbers); the
throughput is reported, not gated.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from repro.core.algorithm import CleaningOptions
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.incremental import IncrementalCleaner
from repro.streaming import StreamingCleaner

SCHEMA_VERSION = 1

DURATION = 100_000
SMOKE_DURATION = 2_000
WINDOW = 64

#: Locations of the synthetic floor.  Full-support rows keep the
#: frontier alive (and maximally wide) at every step.
LOCATIONS = ("A", "B", "C", "D", "E", "F", "G", "H")

#: How far back the full-retention IncrementalCleaner shadows the
#: stream for the bit-equality check (it holds every level, so the
#: shadow is capped; the streaming side continues to the full horizon).
PARITY_PREFIX = 4_096

SEED = 20140328  # EDBT 2014 in Athens


def stream_constraints() -> ConstraintSet:
    """Constraints that exercise every state dimension.

    ``Latency`` makes the frontier track stay counters, and
    ``TravelingTime`` makes it track departure logs — the two parts of
    the Markov state beyond the bare location — so the bound we gate is
    the bound of the *general* state space, not of a degenerate one.
    """
    return ConstraintSet([
        Unreachable("A", "E"),
        Unreachable("E", "A"),
        Unreachable("C", "G"),
        Latency("B", 3),
        TravelingTime("B", "F", 4),
    ])


def synthetic_row(rng: random.Random) -> Dict[str, float]:
    """One full-support candidate row with seeded random weights."""
    weights = [rng.random() + 0.05 for _ in LOCATIONS]
    total = sum(weights)
    return {name: weight / total
            for name, weight in zip(LOCATIONS, weights)}


def run(duration: int, window: int, smoke: bool) -> Dict[str, object]:
    """Execute the streaming workload; returns the JSON payload."""
    constraints = stream_constraints()
    options = CleaningOptions(materialize="flat")
    rng = random.Random(SEED)
    rows = [synthetic_row(rng) for _ in range(duration)]

    prefix = min(duration, PARITY_PREFIX)
    resume_at = duration // 2

    streaming = StreamingCleaner(constraints, window=window,
                                 options=options)
    shadow = IncrementalCleaner(constraints, options=options)
    reference = StreamingCleaner(constraints, window=window,
                                 options=options)

    retained_max = 0
    frontier_max = 0
    filtered_bit_equal = True
    resume_bit_equal = True

    fd, ckpt_path = tempfile.mkstemp(prefix="bench_streaming_",
                                     suffix=".ckpt")
    os.close(fd)
    resumed: Optional[StreamingCleaner] = None
    try:
        started = time.perf_counter()
        for t, row in enumerate(rows):
            streaming.extend(row)
            retained_max = max(retained_max, streaming.retained_duration)
            frontier_max = max(frontier_max, streaming.frontier_size())
            if t < prefix:
                shadow.extend(row)
                if (streaming.filtered_distribution()
                        != shadow.filtered_distribution()):
                    filtered_bit_equal = False
        elapsed = time.perf_counter() - started

        # -- checkpoint/resume against the uninterrupted reference ------
        for row in rows[:resume_at]:
            reference.extend(row)
        reference.checkpoint(ckpt_path)
        resumed = StreamingCleaner.resume(ckpt_path)
        for row in rows[resume_at:]:
            reference.extend(row)
            resumed.extend(row)
            if (resumed.filtered_distribution()
                    != reference.filtered_distribution()):
                resume_bit_equal = False
        finalize_bit_equal = (resumed.finalize() == reference.finalize()
                              and resumed.base == reference.base)
    finally:
        os.unlink(ckpt_path)

    ckpt_bytes = streaming.checkpoint(ckpt_path + ".size")
    os.unlink(ckpt_path + ".size")

    # The frontier is one state per (location, live stay counter, live
    # departure log); with L locations, one Latency(limit) and one
    # TravelingTime(ttime) the per-level state count is bounded by
    # L * (limit + 2) * (ttime + 2) regardless of stream length.
    frontier_gate = len(LOCATIONS) * (3 + 2) * (4 + 2)

    return {
        "benchmark": "bench_streaming",
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "cpu_count": os.cpu_count() or 1,
        "smoke": smoke,
        "workload": {
            "generator": "full-support seeded stream",
            "locations": len(LOCATIONS),
            "duration": duration,
            "window": window,
            "parity_prefix": prefix,
            "resume_at": resume_at,
        },
        "memory": {
            "retained_levels_max": retained_max,
            "frontier_states_max": frontier_max,
            "frontier_states_gate": frontier_gate,
            "checkpoint_bytes": ckpt_bytes,
        },
        "parity": {
            "filtered_bit_equal": filtered_bit_equal,
            "resume_bit_equal": resume_bit_equal,
            "finalize_bit_equal": finalize_bit_equal,
        },
        "throughput": {
            "ingest_seconds": elapsed,
            "readings_per_second": duration / elapsed,
        },
    }


def validate_payload(payload: Dict[str, object]) -> List[str]:
    """Schema + gate check of a ``BENCH_streaming.json`` payload."""
    problems: List[str] = []

    def expect(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    expect(payload.get("benchmark") == "bench_streaming",
           "benchmark name missing or wrong")
    expect(payload.get("schema_version") == SCHEMA_VERSION,
           f"schema_version must be {SCHEMA_VERSION}")
    expect(isinstance(payload.get("smoke"), bool), "smoke must be a bool")

    workload = payload.get("workload")
    if not (isinstance(workload, dict)
            and isinstance(workload.get("duration"), int)
            and workload["duration"] > 0
            and isinstance(workload.get("window"), int)
            and workload["window"] > 0):
        problems.append("workload must describe duration/window")
        workload = None

    memory = payload.get("memory")
    if not (isinstance(memory, dict)
            and isinstance(memory.get("retained_levels_max"), int)
            and isinstance(memory.get("frontier_states_max"), int)
            and isinstance(memory.get("frontier_states_gate"), int)):
        problems.append("memory block missing or malformed")
        memory = None

    if workload is not None and memory is not None:
        expect(memory["retained_levels_max"] <= workload["window"],
               "memory is unbounded: retained levels "
               f"{memory['retained_levels_max']} exceed the window "
               f"{workload['window']}")
        expect(memory["frontier_states_max"]
               <= memory["frontier_states_gate"],
               "frontier grew past the state-space bound "
               f"({memory['frontier_states_max']} > "
               f"{memory['frontier_states_gate']})")
        expect(workload["duration"] > workload["window"],
               "workload never evicted — duration must exceed the window")

    parity = payload.get("parity")
    if not isinstance(parity, dict):
        problems.append("parity block missing")
    else:
        for flag in ("filtered_bit_equal", "resume_bit_equal",
                     "finalize_bit_equal"):
            expect(parity.get(flag) is True,
                   f"parity.{flag} must be true — the streaming path "
                   "diverged from the exact reference")

    throughput = payload.get("throughput")
    expect(isinstance(throughput, dict)
           and isinstance(throughput.get("ingest_seconds"), float)
           and throughput["ingest_seconds"] > 0.0
           and isinstance(throughput.get("readings_per_second"), float)
           and throughput["readings_per_second"] > 0.0,
           "throughput must record positive ingest timings")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=int, default=DURATION)
    parser.add_argument("--window", type=int, default=WINDOW)
    parser.add_argument("--out", default="BENCH_streaming.json")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized stream (2k steps; same gates — "
                             "the bounds and parity are size-independent)")
    parser.add_argument("--check", metavar="FILE",
                        help="validate an existing result file and exit")
    args = parser.parse_args(argv)

    if args.check:
        with open(args.check) as handle:
            payload = json.load(handle)
        problems = validate_payload(payload)
        for problem in problems:
            print(f"SCHEMA: {problem}", file=sys.stderr)
        if not problems:
            memory = payload["memory"]
            print(f"{args.check}: well-formed "
                  f"({payload['workload']['duration']} steps, retained "
                  f"<= {memory['retained_levels_max']} levels, frontier "
                  f"<= {memory['frontier_states_max']} states, "
                  "parity ok)")
        return 1 if problems else 0

    if args.smoke:
        args.duration = min(args.duration, SMOKE_DURATION)

    payload = run(args.duration, args.window, args.smoke)
    problems = validate_payload(payload)
    if problems:
        for problem in problems:
            print(f"SELF-CHECK: {problem}", file=sys.stderr)
        return 1
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    workload, memory = payload["workload"], payload["memory"]
    throughput = payload["throughput"]
    print(f"workload: {workload['duration']} steps x "
          f"{workload['locations']} locations, window "
          f"{workload['window']}")
    print(f"memory: retained <= {memory['retained_levels_max']} levels "
          f"(window {workload['window']}), frontier <= "
          f"{memory['frontier_states_max']} states (gate "
          f"{memory['frontier_states_gate']}), checkpoint "
          f"{memory['checkpoint_bytes']} B")
    print(f"parity: filtered bit-equal over {workload['parity_prefix']} "
          f"steps, resume + finalize bit-equal from step "
          f"{workload['resume_at']}")
    print(f"throughput: {throughput['readings_per_second']:,.0f} "
          f"readings/s ({throughput['ingest_seconds']:.1f} s ingest)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
