"""Reference vs. compact cleaning engine: single-object speedup.

The compact engine (:mod:`repro.core.engine`) must be *bit-identical* to
the reference builder — this bench both asserts that (flat-form graph
equality, stats counters included) and records how much faster it is on
the long-duration periodic workloads of ``bench_scaling``:

* **reference** — ``CleaningOptions(engine="reference")``, the printed
  Algorithm 1 over :class:`~repro.core.ctgraph.CTNode` objects;
* **compact (cold)** — ``engine="compact"`` with a fresh transition
  cache per build, the single-object cost a CLI ``clean`` pays;
* **compact (warm)** — ``engine="compact"`` through one shared
  :class:`~repro.runtime.plan.SharedCleaningPlan`, the steady-state cost
  a ``clean_many`` worker pays after the first object of a batch.

Each duration also validates the C010 routing advice: the engine the
static advisor (:func:`repro.analysis.advisor.advise`) picks must never
be more than ``ROUTING_SLACK``× slower than the best of the measured
engines — recorded per entry as ``routing_ok`` and gated by ``--check``.

Since schema v3 the sweep carries a **backend axis** (``--backend``, the
flat-materialised build re-timed under ``CleaningOptions(backend=...)``)
and a **kernel block**: a wide periodic workload (``KERNEL_WIDTH``
locations, so each edge level carries thousands of edges) cleaned to
flat form under both sweep backends.  ``kernel_speedup`` is the ratio of
``CleaningStats.sweep_seconds`` — the backward survival sweep proper,
the slice the numpy kernels (:mod:`repro.core.kernels`) actually
replace; ``build_speedup`` is the honest whole-build ratio, which is
structurally capped by tuple materialisation (the flat graph stores
tuples, and converting ndarrays back is linear in edges).  The block's
``parity`` field asserts the two builds are *bit-identical* — flat-form
equality, stats counters included — and ``--check`` hard-gates it.

Emits a machine-readable ``BENCH_engine.json`` so successive commits can
be compared.  Usage::

    python benchmarks/bench_engine.py                    # full sweep
    python benchmarks/bench_engine.py --smoke            # CI-sized
    python benchmarks/bench_engine.py --smoke --backend numpy
    python benchmarks/bench_engine.py --check BENCH_engine.json

``--check`` validates an existing result file against the schema and
exits non-zero on problems — that (and only that) is what CI asserts:
the recorded speedups are hardware- and load-dependent numbers for
humans to judge, not gates for containers to flake on.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.analysis.advisor import advise
from repro.core import kernels
from repro.core.algorithm import BACKENDS, CleaningOptions, build_ct_graph
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.lsequence import LSequence
from repro.runtime.plan import SharedCleaningPlan

SCHEMA_VERSION = 3

#: How much slower than the best measured engine the statically advised
#: one may be before ``routing_ok`` flips false.  Generous enough to
#: absorb timing noise near the crossover, tight enough to catch the
#: advisor picking the wrong engine on a workload where it matters.
ROUTING_SLACK = 1.3

#: The ``bench_scaling`` workload: DU + LT + TT all bind, and the TT
#: constraints keep the departure filter (and so the mask-widened
#: transition keys) on the hot path.
CONSTRAINTS = ConstraintSet([
    Unreachable("A", "C"), Unreachable("C", "A"),
    Latency("B", 3),
    TravelingTime("A", "D", 4), TravelingTime("D", "A", 4),
])

_PHASES = (
    {"A": 0.4, "B": 0.4, "C": 0.2},
    {"B": 0.6, "D": 0.4},
    {"B": 0.5, "C": 0.3, "D": 0.2},
    {"A": 0.5, "B": 0.5},
)

DURATIONS = (400, 800, 1600)

#: The kernel block's wide workload: this many locations per level, all
#: candidates everywhere, so each edge level carries thousands of edges
#: and the level sweep (not the python interpreter's per-level overhead)
#: dominates.  96 locations at duration 1600 is ~9.2k edges per level.
KERNEL_WIDTH = 96
KERNEL_DURATION = 1600
KERNEL_SMOKE_DURATION = 96


def make_instance(duration: int) -> LSequence:
    """The periodic l-sequence ``bench_scaling`` sweeps."""
    return LSequence([dict(_PHASES[tau % len(_PHASES)])
                      for tau in range(duration)])


def make_wide_instance(duration: int,
                       width: int = KERNEL_WIDTH):
    """The kernel block's workload: wide levels, mild pruning.

    Weights vary deterministically with position and time so no two
    levels are trivially uniform; the two DU constraints prune a little
    without collapsing the level width.
    """
    names = [f"L{i:02d}" for i in range(width)]
    rows = []
    for tau in range(duration):
        weights = [1.0 + ((i * 7 + tau * 3) % 13) / 13.0
                   for i in range(width)]
        total = sum(weights)
        rows.append({name: w / total
                     for name, w in zip(names, weights)})
    constraints = ConstraintSet([Unreachable(names[0], names[1]),
                                 Unreachable(names[2], names[3])])
    return LSequence(rows), constraints


def _flat(graph) -> Dict[str, object]:
    """The graph's flat (pickle) form minus the stats/timing block."""
    state = graph.__getstate__()
    return {key: value for key, value in state.items() if key != "stats"}


def _best_of(repeats: int, build) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        build()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def _timed_builds(repeats: int, build):
    """Best-of wall/sweep seconds over ``repeats`` builds, plus a graph."""
    best_wall = float("inf")
    best_sweep = float("inf")
    graph = None
    for _ in range(repeats):
        started = time.perf_counter()
        graph = build()
        best_wall = min(best_wall, time.perf_counter() - started)
        best_sweep = min(best_sweep, graph.stats.sweep_seconds)
    return best_wall, best_sweep, graph


def run_kernel(duration: int, repeats: int) -> Dict[str, object]:
    """The kernel block: python vs numpy flat builds of the wide workload."""
    lsequence, constraints = make_wide_instance(duration)
    python_options = CleaningOptions(engine="compact", materialize="flat",
                                     backend="python")
    numpy_options = CleaningOptions(engine="compact", materialize="flat",
                                    backend="numpy")
    python_build, python_sweep, oracle = _timed_builds(
        repeats, lambda: build_ct_graph(lsequence, constraints,
                                        python_options))
    levels = max(1, duration - 1)
    block: Dict[str, object] = {
        "measured": False,
        "width": KERNEL_WIDTH,
        "duration": duration,
        "edges": oracle.num_edges,
        "edges_per_level": oracle.num_edges / levels,
        "python_build_seconds": python_build,
        "python_sweep_seconds": python_sweep,
        "numpy_build_seconds": None,
        "numpy_sweep_seconds": None,
        "build_speedup": None,
        "kernel_speedup": None,
        "parity": None,
    }
    if not kernels.numpy_available():
        return block
    numpy_build, numpy_sweep, vectorized = _timed_builds(
        repeats, lambda: build_ct_graph(lsequence, constraints,
                                        numpy_options))
    block.update({
        "measured": True,
        "numpy_build_seconds": numpy_build,
        "numpy_sweep_seconds": numpy_sweep,
        "build_speedup": python_build / numpy_build,
        "kernel_speedup": python_sweep / numpy_sweep,
        # Bit-identical flat forms, stats counters included (timing
        # fields are excluded from CleaningStats equality).
        "parity": (vectorized == oracle
                   and vectorized.stats == oracle.stats),
    })
    return block


def run(durations: Sequence[int], repeats: int, backend: str,
        kernel_duration: int, kernel_repeats: int) -> Dict[str, object]:
    reference_options = CleaningOptions(engine="reference")
    compact_options = CleaningOptions(engine="compact")
    flat_options = CleaningOptions(engine="compact", materialize="flat",
                                   backend=backend)
    results: List[Dict[str, object]] = []
    all_identical = True
    all_routing_ok = True
    for duration in durations:
        lsequence = make_instance(duration)

        reference_graph = build_ct_graph(lsequence, CONSTRAINTS,
                                         reference_options)
        compact_graph = build_ct_graph(lsequence, CONSTRAINTS,
                                       compact_options)
        flat_graph = build_ct_graph(lsequence, CONSTRAINTS, flat_options)
        identical = (_flat(reference_graph) == _flat(compact_graph)
                     and reference_graph.stats == compact_graph.stats
                     and flat_graph == compact_graph.to_flat())
        all_identical = all_identical and identical

        reference_seconds = _best_of(
            repeats, lambda: build_ct_graph(lsequence, CONSTRAINTS,
                                            reference_options))
        compact_seconds = _best_of(
            repeats, lambda: build_ct_graph(lsequence, CONSTRAINTS,
                                            compact_options))
        plan = SharedCleaningPlan(CONSTRAINTS)
        build_ct_graph(lsequence, CONSTRAINTS, compact_options, plan=plan)
        warm_seconds = _best_of(
            repeats, lambda: build_ct_graph(lsequence, CONSTRAINTS,
                                            compact_options, plan=plan))
        flat_seconds = _best_of(
            repeats, lambda: build_ct_graph(lsequence, CONSTRAINTS,
                                            flat_options))

        advice = advise(lsequence, CONSTRAINTS)
        timed = {"reference": reference_seconds,
                 "compact": compact_seconds}
        routing_ok = timed[advice.engine] <= ROUTING_SLACK * min(timed.values())
        if not routing_ok:
            # A low-repeat run on a loaded machine can spike one engine's
            # best-of; re-time both sides harder before calling the advice
            # wrong (best-of only improves with more samples).
            for engine, options in (("reference", reference_options),
                                    ("compact", compact_options)):
                timed[engine] = min(timed[engine], _best_of(
                    max(repeats * 3, 5),
                    lambda: build_ct_graph(lsequence, CONSTRAINTS, options)))
            routing_ok = (timed[advice.engine]
                          <= ROUTING_SLACK * min(timed.values()))
        advised_seconds = timed[advice.engine]
        best_seconds = min(timed.values())
        all_routing_ok = all_routing_ok and routing_ok
        reference_seconds = timed["reference"]
        compact_seconds = timed["compact"]

        stats = compact_graph.stats
        results.append({
            "duration": duration,
            "nodes": reference_graph.num_nodes,
            "edges": reference_graph.num_edges,
            "reference_seconds": reference_seconds,
            "compact_seconds": compact_seconds,
            "compact_warm_seconds": warm_seconds,
            "flat_seconds": flat_seconds,
            "backend": kernels.resolve_backend(
                backend, reference_graph.num_edges / max(1, duration - 1)),
            "speedup": reference_seconds / compact_seconds,
            "warm_speedup": reference_seconds / warm_seconds,
            "forward_seconds": stats.forward_seconds,
            "backward_seconds": stats.backward_seconds,
            "identical_output": identical,
            "advised_engine": advice.engine,
            "advised_states": advice.predicted_states,
            "advised_seconds": advised_seconds,
            "best_seconds": best_seconds,
            "routing_ok": routing_ok,
        })

    kernel = run_kernel(kernel_duration, kernel_repeats)
    all_identical = all_identical and kernel["parity"] is not False

    headline = results[-1]
    return {
        "benchmark": "bench_engine",
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "backend": backend,
        "workload": {
            "generator": "synthetic-phase4",
            "durations": list(durations),
            "constraints": [str(c) for c in CONSTRAINTS],
        },
        # The headline number: cold single-object speedup at the longest
        # duration of the sweep (best-of-``repeats`` on both sides).
        "speedup": headline["speedup"],
        "warm_speedup": headline["warm_speedup"],
        # The kernel headline: sweep-proper python/numpy ratio on the
        # wide workload (None when numpy is unavailable).
        "kernel_speedup": kernel["kernel_speedup"],
        "identical_output": all_identical,
        "routing_ok": all_routing_ok,
        "kernel": kernel,
        "results": results,
    }


def validate_payload(payload: Dict[str, object]) -> List[str]:
    """Schema check of a ``BENCH_engine.json`` payload; [] when valid."""
    problems: List[str] = []

    def expect(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    expect(payload.get("benchmark") == "bench_engine",
           "benchmark name missing or wrong")
    expect(payload.get("schema_version") == SCHEMA_VERSION,
           f"schema_version must be {SCHEMA_VERSION}")
    expect(isinstance(payload.get("cpu_count"), int),
           "cpu_count must be an int")
    expect(isinstance(payload.get("repeats"), int)
           and payload["repeats"] >= 1, "repeats must be an int >= 1")
    workload = payload.get("workload")
    expect(isinstance(workload, dict)
           and isinstance(workload.get("durations"), list)
           and workload["durations"]
           and isinstance(workload.get("constraints"), list),
           "workload must describe durations/constraints")
    for key in ("speedup", "warm_speedup"):
        expect(isinstance(payload.get(key), float) and payload[key] > 0.0,
               f"{key} must be a positive float")
    expect(payload.get("backend") in BACKENDS,
           f"backend must be one of {BACKENDS}")
    expect(payload.get("identical_output") is True,
           "identical_output must be true — the compact engine diverged "
           "from the reference builder")
    kernel = payload.get("kernel")
    if not isinstance(kernel, dict):
        problems.append("kernel block missing")
    else:
        expect(isinstance(kernel.get("width"), int) and kernel["width"] > 0
               and isinstance(kernel.get("duration"), int)
               and kernel["duration"] > 0
               and isinstance(kernel.get("edges"), int)
               and kernel["edges"] > 0
               and isinstance(kernel.get("edges_per_level"), float)
               and kernel["edges_per_level"] > 0.0
               and isinstance(kernel.get("python_build_seconds"), float)
               and kernel["python_build_seconds"] > 0.0
               and isinstance(kernel.get("python_sweep_seconds"), float)
               and kernel["python_sweep_seconds"] > 0.0
               and isinstance(kernel.get("measured"), bool),
               "kernel block malformed")
        if kernel.get("measured"):
            expect(isinstance(kernel.get("kernel_speedup"), float)
                   and kernel["kernel_speedup"] > 0.0
                   and isinstance(kernel.get("build_speedup"), float)
                   and kernel["build_speedup"] > 0.0
                   and isinstance(kernel.get("numpy_build_seconds"), float)
                   and kernel["numpy_build_seconds"] > 0.0
                   and isinstance(kernel.get("numpy_sweep_seconds"), float)
                   and kernel["numpy_sweep_seconds"] > 0.0,
                   "measured kernel block needs positive numpy timings "
                   "and speedups")
            expect(kernel.get("parity") is True,
                   "kernel parity must be true — the numpy flat build "
                   "diverged from the python oracle")
            expect(payload.get("kernel_speedup")
                   == kernel.get("kernel_speedup"),
                   "top-level kernel_speedup disagrees with the kernel "
                   "block")
        else:
            expect(payload.get("kernel_speedup") is None,
                   "kernel_speedup must be null when the kernel block "
                   "was not measured")
    expect(payload.get("routing_ok") is True,
           "routing_ok must be true — the C010 advisor picked an engine "
           f"more than {ROUTING_SLACK}x slower than the best one")
    results = payload.get("results")
    if isinstance(results, list) and results:
        if isinstance(workload, dict):
            expect(len(results) == len(workload.get("durations") or ()),
                   "results length disagrees with workload.durations")
        for entry in results:
            if not (isinstance(entry, dict)
                    and isinstance(entry.get("duration"), int)
                    and entry["duration"] > 0
                    and isinstance(entry.get("reference_seconds"), float)
                    and entry["reference_seconds"] > 0.0
                    and isinstance(entry.get("compact_seconds"), float)
                    and entry["compact_seconds"] > 0.0
                    and isinstance(entry.get("compact_warm_seconds"), float)
                    and entry["compact_warm_seconds"] > 0.0
                    and isinstance(entry.get("flat_seconds"), float)
                    and entry["flat_seconds"] > 0.0
                    and entry.get("backend") in ("python", "numpy")
                    and entry.get("identical_output") is True
                    and entry.get("advised_engine") in ("reference",
                                                        "compact")
                    and isinstance(entry.get("advised_states"), int)
                    and entry["advised_states"] > 0
                    and isinstance(entry.get("advised_seconds"), float)
                    and entry["advised_seconds"] > 0.0
                    and isinstance(entry.get("best_seconds"), float)
                    and entry["best_seconds"] > 0.0
                    and entry.get("routing_ok") is True):
                problems.append(f"malformed results entry: {entry!r}")
                break
    else:
        problems.append("results must be a non-empty list")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--durations", type=int, nargs="+",
                        default=list(DURATIONS))
    parser.add_argument("--repeats", type=int, default=7,
                        help="best-of-N timing repeats per engine")
    parser.add_argument("--backend", choices=BACKENDS, default="auto",
                        help="sweep backend for the flat-build axis "
                             "(the kernel block always compares python "
                             "vs numpy)")
    parser.add_argument("--kernel-duration", type=int,
                        default=KERNEL_DURATION,
                        help="duration of the kernel block's wide "
                             "workload")
    parser.add_argument("--kernel-repeats", type=int, default=3,
                        help="best-of-N builds per backend in the "
                             "kernel block")
    parser.add_argument("--out", default="BENCH_engine.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI workload (one 60-step object, "
                             "2 repeats, short kernel block)")
    parser.add_argument("--check", metavar="FILE",
                        help="validate an existing result file and exit")
    args = parser.parse_args(argv)

    if args.check:
        with open(args.check) as handle:
            payload = json.load(handle)
        problems = validate_payload(payload)
        for problem in problems:
            print(f"SCHEMA: {problem}", file=sys.stderr)
        if not problems:
            kernel = payload.get("kernel_speedup")
            kernel_text = (f", kernel {kernel:.2f}x" if kernel
                           else ", kernel not measured")
            print(f"{args.check}: well-formed (speedup "
                  f"{payload['speedup']:.2f}x cold, "
                  f"{payload['warm_speedup']:.2f}x warm"
                  f"{kernel_text})")
        return 1 if problems else 0

    if args.smoke:
        args.durations, args.repeats = [60], 2
        args.kernel_duration = KERNEL_SMOKE_DURATION
        args.kernel_repeats = 2

    payload = run(args.durations, args.repeats, args.backend,
                  args.kernel_duration, args.kernel_repeats)
    problems = validate_payload(payload)
    if problems:
        for problem in problems:
            print(f"SELF-CHECK: {problem}", file=sys.stderr)
        return 1
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    for entry in payload["results"]:
        print(f"duration {entry['duration']:>5}: "
              f"reference {entry['reference_seconds'] * 1000:7.1f} ms  "
              f"compact {entry['compact_seconds'] * 1000:7.1f} ms "
              f"({entry['speedup']:.2f}x)  "
              f"warm {entry['compact_warm_seconds'] * 1000:7.1f} ms "
              f"({entry['warm_speedup']:.2f}x)  "
              f"flat[{entry['backend']}] "
              f"{entry['flat_seconds'] * 1000:7.1f} ms  "
              f"advised {entry['advised_engine']}")
    kernel = payload["kernel"]
    if kernel["measured"]:
        print(f"kernel ({kernel['width']} locations x "
              f"{kernel['duration']} steps, "
              f"{kernel['edges_per_level']:.0f} edges/level): "
              f"sweep {kernel['python_sweep_seconds'] * 1000:7.1f} ms -> "
              f"{kernel['numpy_sweep_seconds'] * 1000:7.1f} ms "
              f"({kernel['kernel_speedup']:.2f}x), build "
              f"{kernel['python_build_seconds'] * 1000:7.1f} ms -> "
              f"{kernel['numpy_build_seconds'] * 1000:7.1f} ms "
              f"({kernel['build_speedup']:.2f}x), bit-identical")
    else:
        print("kernel: numpy unavailable, block not measured")
    print(f"headline: {payload['speedup']:.2f}x cold / "
          f"{payload['warm_speedup']:.2f}x warm, identical output, "
          f"routing ok")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
