"""Section 6.7: ct-graph size per constraint configuration.

The paper reports ~25 MB per 120-minute trajectory with DU+LT+TT versus
~640 kB with DU only — a factor of roughly 40.  The absolute bytes depend
on the representation (theirs vs CPython objects), but the shape — TT
constraints inflating the graph by orders of magnitude via the ``TL``
state — must reproduce.
"""

from __future__ import annotations

import pytest

from repro.core.algorithm import build_ct_graph
from repro.core.lsequence import LSequence
from repro.experiments.harness import CONSTRAINT_CONFIGS
from repro.experiments.report import format_table

_CONFIG_ITEMS = list(CONSTRAINT_CONFIGS.items())


@pytest.mark.parametrize("config_name,kinds", _CONFIG_ITEMS,
                         ids=[name for name, _ in _CONFIG_ITEMS])
def test_graph_size(benchmark, syn1, constraint_cache, config_name, kinds):
    duration = syn1.durations[-1]
    trajectory = syn1.trajectories[duration][0]
    lsequence = LSequence.from_readings(trajectory.readings, syn1.prior)
    constraints = constraint_cache(syn1, kinds)

    graph = benchmark.pedantic(
        build_ct_graph, args=(lsequence, constraints),
        rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["nodes"] = graph.num_nodes
    benchmark.extra_info["edges"] = graph.num_edges
    benchmark.extra_info["kilobytes"] = graph.estimate_size_bytes() // 1024


def test_size_report(benchmark, syn1, constraint_cache, capsys):
    duration = syn1.durations[-1]

    def measure():
        rows = []
        for config_name, kinds in _CONFIG_ITEMS:
            constraints = constraint_cache(syn1, kinds)
            sizes, nodes, edges = [], [], []
            for trajectory in syn1.trajectories[duration]:
                lsequence = LSequence.from_readings(trajectory.readings,
                                                    syn1.prior)
                graph = build_ct_graph(lsequence, constraints)
                sizes.append(graph.estimate_size_bytes())
                nodes.append(graph.num_nodes)
                edges.append(graph.num_edges)
            count = len(sizes)
            rows.append((config_name, duration,
                         sum(nodes) // count, sum(edges) // count,
                         sum(sizes) // count // 1024))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1,
                              warmup_rounds=0)
    with capsys.disabled():
        print()
        print("=== Section 6.7: average ct-graph size on SYN1, longest "
              "duration ===")
        print(format_table(
            ["config", "duration", "nodes", "edges", "size_kB"], rows))

    sizes = {row[0]: row[4] for row in rows}
    assert sizes["CTG(DU,LT,TT)"] >= sizes["CTG(DU)"], \
        "TT graphs must not be smaller than DU-only graphs"
