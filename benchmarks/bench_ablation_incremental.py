"""Ablation F: streaming vs batch cleaning.

The online cleaner pays two costs for liveness: per-reading frontier
maintenance (no lookahead ``TL`` pruning) and a full backward sweep at
``finalize``.  This ablation measures the total streaming cost against a
single batch run on the same readings, plus the live frontier size.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.algorithm import build_ct_graph
from repro.core.incremental import IncrementalCleaner
from repro.core.lsequence import LSequence
from repro.experiments.report import format_table
from repro.inference import infer_constraints


@pytest.fixture(scope="module")
def case(syn1, profile):
    constraints = infer_constraints(syn1.building, profile,
                                    kinds=("DU", "LT"),
                                    distances=syn1.distances)
    trajectory = syn1.all_trajectories()[0]
    return syn1, constraints, trajectory


def test_batch_cleaning(benchmark, case):
    dataset, constraints, trajectory = case
    lsequence = LSequence.from_readings(trajectory.readings, dataset.prior)
    benchmark.pedantic(build_ct_graph, args=(lsequence, constraints),
                       rounds=3, iterations=1, warmup_rounds=0)


def test_streaming_cleaning(benchmark, case):
    dataset, constraints, trajectory = case

    def run():
        cleaner = IncrementalCleaner(constraints, prior=dataset.prior)
        for reading in trajectory.readings:
            cleaner.extend_reading(reading.readers)
        return cleaner.finalize()

    graph = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    benchmark.extra_info["nodes"] = graph.num_nodes


def test_streaming_report(benchmark, case, capsys):
    dataset, constraints, trajectory = case
    lsequence = LSequence.from_readings(trajectory.readings, dataset.prior)

    def run():
        started = time.perf_counter()
        batch = build_ct_graph(lsequence, constraints)
        batch_seconds = time.perf_counter() - started

        cleaner = IncrementalCleaner(constraints, prior=dataset.prior)
        frontier_sizes = []
        started = time.perf_counter()
        for reading in trajectory.readings:
            cleaner.extend_reading(reading.readers)
            frontier_sizes.append(cleaner.frontier_size())
        extend_seconds = time.perf_counter() - started
        started = time.perf_counter()
        streamed = cleaner.finalize()
        finalize_seconds = time.perf_counter() - started
        return (batch, streamed, batch_seconds, extend_seconds,
                finalize_seconds, frontier_sizes)

    (batch, streamed, batch_seconds, extend_seconds, finalize_seconds,
     frontier_sizes) = benchmark.pedantic(run, rounds=1, iterations=1,
                                          warmup_rounds=0)
    rows = [
        ("batch", f"{batch_seconds * 1000:.1f}", "-", batch.num_nodes),
        ("streaming", f"{extend_seconds * 1000:.1f}",
         f"{finalize_seconds * 1000:.1f}", streamed.num_nodes),
    ]
    with capsys.disabled():
        print()
        print("=== Ablation F: streaming vs batch (SYN1, DU+LT) ===")
        print(format_table(["mode", "forward_ms", "finalize_ms", "nodes"],
                           rows))
        print(f"live frontier: mean={np.mean(frontier_sizes):.1f} states, "
              f"max={max(frontier_sizes)}")

    # Same conditioned distribution either way.
    assert streamed.num_valid_trajectories() == batch.num_valid_trajectories()
    for tau in range(0, batch.duration, max(1, batch.duration // 10)):
        expected = batch.location_marginal(tau)
        got = streamed.location_marginal(tau)
        for location, probability in expected.items():
            assert abs(got.get(location, 0.0) - probability) < 1e-9