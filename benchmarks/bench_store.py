"""The binary graph store vs pickle: write, cold load, warm queries.

Three claims about the ``.ctg`` format (``repro.store``) are measured
and — in a full run — gated, on the wide kernel workload the other
benches share (96 locations per level, thousands of edges per level):

* **write** — the compact engine's direct store sink
  (``CleaningOptions(output=...)``: the backward sweep's ndarrays are
  written straight into the ``.ctg`` layout) must beat the conventional
  persistence pipeline end-to-end (engine → flat tuple materialisation
  → ``pickle.dumps`` → file);
* **cold load** — ``load_ctg(path, mmap=True)`` serves a query-ready
  graph view from a cold start at least **5x** faster than unpickling
  the equivalent ``FlatCTGraph`` (the mmap load is O(header + section
  table); unpickling is O(nodes + edges) tuple construction);
* **warm queries** — a ``QuerySession`` over the mmap-backed view must
  answer a six-query analysis bundle *identically* to one over the
  in-memory graph (bit-identical on the python backend, floats within
  1e-12 relative on the numpy backend), at comparable latency
  (``mmap_query_penalty`` records the ratio; it is reported, not gated).

Emits a machine-readable ``BENCH_store.json``.  Usage::

    python benchmarks/bench_store.py                      # full run
    python benchmarks/bench_store.py --smoke              # CI-sized
    python benchmarks/bench_store.py --smoke --backend numpy
    python benchmarks/bench_store.py --check BENCH_store.json

``--check`` validates an existing result file and exits non-zero on
problems.  ``parity`` must be true in any payload; the write and
cold-load speedup gates apply to full (non-smoke) payloads only —
smoke workloads are too small for stable ratios, so CI asserts the
schema and parity there and the tracked ``BENCH_store.json`` carries
the gated full-size numbers.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pickle
import sys
import tempfile
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.algorithm import BACKENDS, CleaningOptions, build_ct_graph
from repro.queries.session import QuerySession
from repro.store import load_ctg

from bench_queries import KERNEL_WIDTH, make_wide_instance

SCHEMA_VERSION = 1

DURATION = 1600
SMOKE_DURATION = 96

#: The full-run gate: a cold mmap load must be at least this much
#: faster than ``pickle.loads`` of the equivalent flat graph.
COLD_LOAD_GATE = 5.0


def _best_of(repeats: int, build: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        build()
        best = min(best, time.perf_counter() - started)
    return best


def _bundle(session: QuerySession, names: Sequence[str],
            duration: int) -> Dict[str, object]:
    """The six-query warm analysis bundle (mirrors bench_queries)."""
    mid = duration // 2
    return {
        "entropy": session.entropy_profile(),
        "expected": session.expected_visit_counts(),
        "marginal": session.location_marginal(mid),
        "visit": session.visit_probability(names[5]),
        "span": session.span_probability(
            names[7], mid, min(mid + 40, duration - 1)),
        "first": session.first_visit_distribution(names[3]),
    }


def _values_agree(left: object, right: object, exact: bool) -> bool:
    if exact:
        return left == right
    if isinstance(left, float) and isinstance(right, float):
        return math.isclose(left, right, rel_tol=1e-12, abs_tol=1e-12)
    if isinstance(left, dict) and isinstance(right, dict):
        return (set(left) == set(right)
                and all(_values_agree(left[key], right[key], exact)
                        for key in left))
    if isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
        return (len(left) == len(right)
                and all(_values_agree(a, b, exact)
                        for a, b in zip(left, right)))
    return left == right


def run(duration: int, repeats: int, backend: str,
        smoke: bool) -> Dict[str, object]:
    """Execute the comparison; returns the JSON-serialisable payload."""
    lsequence, constraints, names = make_wide_instance(duration)
    with tempfile.TemporaryDirectory(prefix="bench_store_") as root:
        ctg_path = os.path.join(root, "graph.ctg")
        pickle_path = os.path.join(root, "graph.pickle")

        # -- write: engine -> tuples -> pickle  vs  engine -> .ctg ------
        def pickle_pipeline():
            graph = build_ct_graph(
                lsequence, constraints,
                CleaningOptions(engine="compact", materialize="flat",
                                backend=backend))
            with open(pickle_path, "wb") as handle:
                pickle.dump(graph, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            return graph

        def store_pipeline():
            view = build_ct_graph(
                lsequence, constraints,
                CleaningOptions(engine="compact", backend=backend,
                                output=ctg_path))
            view.close()

        flat = pickle_pipeline()
        store_pipeline()
        pickle_write_seconds = _best_of(repeats, pickle_pipeline)
        store_write_seconds = _best_of(repeats, store_pipeline)
        pickle_bytes = os.path.getsize(pickle_path)
        ctg_bytes = os.path.getsize(ctg_path)

        # -- cold load: pickle.loads  vs  load_ctg(mmap=True) -----------
        blob = open(pickle_path, "rb").read()
        pickle_load_seconds = _best_of(repeats,
                                       lambda: pickle.loads(blob))
        cold_views: List[object] = []

        def mmap_load():
            view = load_ctg(ctg_path, mmap=True)
            cold_views.append(view)  # keep alive; closed after timing
            return view

        mmap_load_seconds = _best_of(repeats, mmap_load)

        # -- warm queries off the mmap: parity + latency -----------------
        view = load_ctg(ctg_path, mmap=True)
        exact = backend == "python"
        memory_bundle = _bundle(QuerySession(flat, backend=backend),
                                names, duration)
        mapped_bundle = _bundle(QuerySession(view, backend=backend),
                                names, duration)
        parity = (view.materialize() == flat
                  and all(_values_agree(memory_bundle[key],
                                        mapped_bundle[key], exact)
                          for key in memory_bundle))
        memory_query_seconds = _best_of(
            repeats, lambda: _bundle(QuerySession(flat, backend=backend),
                                     names, duration))
        mmap_query_seconds = _best_of(
            repeats, lambda: _bundle(QuerySession(view, backend=backend),
                                     names, duration))
        view.close()
        for cold in cold_views:
            cold.close()

    return {
        "benchmark": "bench_store",
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "cpu_count": os.cpu_count() or 1,
        "repeats": repeats,
        "backend": backend,
        "smoke": smoke,
        "workload": {
            "generator": "wide periodic kernel workload",
            "width": KERNEL_WIDTH,
            "duration": duration,
            "nodes": flat.num_nodes,
            "edges": flat.num_edges,
        },
        "sizes": {
            "ctg_bytes": ctg_bytes,
            "pickle_bytes": pickle_bytes,
            "flat_estimate_bytes": flat.estimate_size_bytes(),
        },
        "write": {
            "pickle_seconds": pickle_write_seconds,
            "store_seconds": store_write_seconds,
            "speedup": pickle_write_seconds / store_write_seconds,
        },
        "cold_load": {
            "pickle_seconds": pickle_load_seconds,
            "mmap_seconds": mmap_load_seconds,
            "speedup": pickle_load_seconds / mmap_load_seconds,
        },
        "warm_queries": {
            "memory_seconds": memory_query_seconds,
            "mmap_seconds": mmap_query_seconds,
            "mmap_query_penalty": mmap_query_seconds / memory_query_seconds,
        },
        "parity": parity,
    }


def validate_payload(payload: Dict[str, object]) -> List[str]:
    """Schema + gate check of a ``BENCH_store.json`` payload."""
    problems: List[str] = []

    def expect(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    def timing_block(name: str, fields: Sequence[str]) -> Optional[Dict]:
        block = payload.get(name)
        if not isinstance(block, dict):
            problems.append(f"{name} block missing")
            return None
        for field in fields:
            value = block.get(field)
            if not (isinstance(value, float) and value > 0.0):
                problems.append(f"{name}.{field} must be a positive float")
                return None
        return block

    expect(payload.get("benchmark") == "bench_store",
           "benchmark name missing or wrong")
    expect(payload.get("schema_version") == SCHEMA_VERSION,
           f"schema_version must be {SCHEMA_VERSION}")
    expect(payload.get("backend") in BACKENDS,
           f"backend must be one of {BACKENDS}")
    expect(isinstance(payload.get("smoke"), bool), "smoke must be a bool")
    workload = payload.get("workload")
    expect(isinstance(workload, dict)
           and isinstance(workload.get("duration"), int)
           and workload["duration"] > 0
           and isinstance(workload.get("nodes"), int)
           and workload["nodes"] > 0
           and isinstance(workload.get("edges"), int)
           and workload["edges"] > 0,
           "workload must describe duration/nodes/edges")
    sizes = payload.get("sizes")
    expect(isinstance(sizes, dict)
           and isinstance(sizes.get("ctg_bytes"), int)
           and sizes["ctg_bytes"] > 0
           and isinstance(sizes.get("pickle_bytes"), int)
           and sizes["pickle_bytes"] > 0,
           "sizes must record positive ctg_bytes/pickle_bytes")
    write = timing_block("write", ("pickle_seconds", "store_seconds",
                                   "speedup"))
    cold = timing_block("cold_load", ("pickle_seconds", "mmap_seconds",
                                      "speedup"))
    timing_block("warm_queries", ("memory_seconds", "mmap_seconds",
                                  "mmap_query_penalty"))
    expect(payload.get("parity") is True,
           "parity must be true — the mmap-served QuerySession diverged "
           "from the in-memory answers")
    if payload.get("smoke") is False:
        if cold is not None:
            expect(cold["speedup"] >= COLD_LOAD_GATE,
                   f"cold mmap load must be >= {COLD_LOAD_GATE}x faster "
                   f"than unpickling (measured {cold['speedup']:.2f}x)")
        if write is not None:
            expect(write["speedup"] > 1.0,
                   "the engine's direct .ctg write must beat the "
                   "engine -> tuples -> pickle pipeline end-to-end "
                   f"(measured {write['speedup']:.2f}x)")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=int, default=DURATION)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats per path")
    parser.add_argument("--backend", choices=BACKENDS, default="python",
                        help="cleaning/query backend on both sides")
    parser.add_argument("--out", default="BENCH_store.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI workload (96 steps, 2 repeats; "
                             "perf gates off, schema + parity only)")
    parser.add_argument("--check", metavar="FILE",
                        help="validate an existing result file and exit")
    args = parser.parse_args(argv)

    if args.check:
        with open(args.check) as handle:
            payload = json.load(handle)
        problems = validate_payload(payload)
        for problem in problems:
            print(f"SCHEMA: {problem}", file=sys.stderr)
        if not problems:
            gates = ("smoke: schema + parity only"
                     if payload["smoke"] else "full gates")
            print(f"{args.check}: well-formed ({gates}; cold load "
                  f"{payload['cold_load']['speedup']:.2f}x, write "
                  f"{payload['write']['speedup']:.2f}x, parity ok)")
        return 1 if problems else 0

    if args.smoke:
        args.duration, args.repeats = SMOKE_DURATION, 2

    payload = run(args.duration, args.repeats, args.backend, args.smoke)
    problems = validate_payload(payload)
    if problems:
        for problem in problems:
            print(f"SELF-CHECK: {problem}", file=sys.stderr)
        return 1
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    sizes, write = payload["sizes"], payload["write"]
    cold, warm = payload["cold_load"], payload["warm_queries"]
    print(f"workload: {payload['workload']['duration']} steps x "
          f"{payload['workload']['width']} locations, "
          f"{payload['workload']['edges']} edges")
    print(f"sizes: .ctg {sizes['ctg_bytes']:>10} B   "
          f"pickle {sizes['pickle_bytes']:>10} B")
    print(f"write: pickle {write['pickle_seconds'] * 1000:8.1f} ms  "
          f".ctg {write['store_seconds'] * 1000:8.1f} ms "
          f"({write['speedup']:.2f}x)")
    print(f"cold load: pickle {cold['pickle_seconds'] * 1000:8.1f} ms  "
          f"mmap {cold['mmap_seconds'] * 1000:8.2f} ms "
          f"({cold['speedup']:.2f}x)")
    print(f"warm bundle: memory {warm['memory_seconds'] * 1000:8.1f} ms  "
          f"mmap {warm['mmap_seconds'] * 1000:8.1f} ms "
          f"(penalty {warm['mmap_query_penalty']:.2f}x), parity ok")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
