"""Ablation G: robustness to false positives (ghost reads).

The paper's noise model has only false negatives.  Real deployments also
see spurious detections (multipath, cross-talk).  This ablation re-reads
the SYN1 ground truth through generators with increasing ghost-read rates
and measures how stay-query accuracy degrades, for the raw prior and for
full cleaning — cleaning should degrade more gracefully, because ghosts
produce physically impossible interpretations that the constraints
discard.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithm import build_ct_graph
from repro.core.lsequence import LSequence
from repro.errors import InconsistentReadingsError
from repro.experiments.report import format_table
from repro.inference import infer_constraints
from repro.queries.accuracy import stay_accuracy
from repro.queries.stay import stay_query, stay_query_prior
from repro.rfid.priors import PriorModel
from repro.simulation.readings import ReadingGenerator

GHOST_RATES = (0.0, 0.02, 0.05)


def _score(truths, readings_per_truth, prior, constraints):
    raw_scores, cleaned_scores, failures = [], [], 0
    for truth, readings in zip(truths, readings_per_truth):
        lsequence = LSequence.from_readings(readings, prior)
        for tau in range(0, truth.duration, 3):
            raw_scores.append(stay_accuracy(
                stay_query_prior(lsequence, tau), truth.locations[tau]))
        try:
            graph = build_ct_graph(lsequence, constraints)
        except InconsistentReadingsError:
            failures += 1
            continue
        for tau in range(0, truth.duration, 3):
            cleaned_scores.append(stay_accuracy(
                stay_query(graph, tau), truth.locations[tau]))
    return (float(np.mean(raw_scores)),
            float(np.mean(cleaned_scores)) if cleaned_scores else float("nan"),
            failures)


def test_ghost_read_robustness(benchmark, syn1, profile, capsys):
    constraints = infer_constraints(syn1.building, profile,
                                    kinds=("DU", "LT"),
                                    distances=syn1.distances)
    truths = [t.truth for t in syn1.all_trajectories()[:4]]

    def run():
        rows = []
        for rate in GHOST_RATES:
            rng = np.random.default_rng(404)
            generator = ReadingGenerator(syn1.true_matrix, rng,
                                         ghost_read_rate=rate)
            readings = [generator.generate(truth) for truth in truths]
            # The paper's prior (assumes no false positives)...
            naive_raw, naive_cleaned, naive_failures = _score(
                truths, readings, syn1.prior, constraints)
            # ... vs a noise-aware prior that models the ghost rate.
            aware_prior = PriorModel(syn1.calibrated_matrix,
                                     ghost_read_rate=max(rate, 1e-6))
            aware_raw, aware_cleaned, aware_failures = _score(
                truths, readings, aware_prior, constraints)
            rows.append((rate, naive_raw, naive_cleaned, naive_failures,
                         aware_raw, aware_cleaned, aware_failures))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    rendered = [
        (f"{rate:.2f}", f"{nr:.3f}", f"{nc:.3f}", nf,
         f"{ar:.3f}", f"{ac:.3f}", af)
        for rate, nr, nc, nf, ar, ac, af in rows
    ]
    with capsys.disabled():
        print()
        print("=== Ablation G: ghost-read robustness "
              "(stay accuracy, SYN1, CTG(DU,LT)) ===")
        print(format_table(
            ["ghost_rate", "paper_raw", "paper_cleaned", "fail",
             "aware_raw", "aware_cleaned", "fail"], rendered))

    for rate, nr, nc, nf, ar, ac, af in rows:
        benchmark.extra_info[f"rate_{rate}"] = (nr, nc, ar, ac)
        # The noise-aware prior must hold up under noise...
        if rate > 0:
            assert ac > nc or np.isnan(nc), f"rate {rate}"
        # ...and cleaning must keep its edge whenever it runs.
        if not np.isnan(ac):
            assert ac >= ar - 0.05, f"rate {rate}"