"""Ablation D: ct-graph sampling vs rejection sampling (Section 7).

The paper argues a ct-graph is an efficient basis for "sampling under
constraints": every drawn trajectory is valid by construction.  This
ablation compares drawing N valid trajectories from a cleaned graph
against rejection sampling from the a-priori distribution, reporting the
wasted-draw factor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithm import build_ct_graph
from repro.core.lsequence import LSequence
from repro.core.sampling import TrajectorySampler, rejection_sample
from repro.experiments.report import format_table
from repro.inference import infer_constraints

SAMPLES = 50


@pytest.fixture(scope="module")
def case(syn1, profile):
    constraints = infer_constraints(syn1.building, profile,
                                    kinds=("DU", "LT"),
                                    distances=syn1.distances)
    trajectory = syn1.all_trajectories()[0]
    lsequence = LSequence.from_readings(trajectory.readings, syn1.prior)
    graph = build_ct_graph(lsequence, constraints)
    return lsequence, constraints, graph


def test_ct_graph_sampling(benchmark, case):
    _, _, graph = case
    sampler = TrajectorySampler(graph, np.random.default_rng(5))
    samples = benchmark.pedantic(
        lambda: list(sampler.sample_many(SAMPLES)),
        rounds=3, iterations=1, warmup_rounds=0)
    assert len(samples) == SAMPLES


def test_rejection_sampling(benchmark, case):
    lsequence, constraints, _ = case
    rng = np.random.default_rng(5)

    accepted, attempts = benchmark.pedantic(
        rejection_sample, args=(lsequence, constraints, SAMPLES, rng),
        kwargs={"max_attempts": 20000},
        rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["accepted"] = len(accepted)
    benchmark.extra_info["attempts"] = attempts


def test_sampling_report(benchmark, case, capsys):
    lsequence, constraints, graph = case

    def run():
        sampler = TrajectorySampler(graph, np.random.default_rng(9))
        graph_samples = list(sampler.sample_many(SAMPLES))
        accepted, attempts = rejection_sample(
            lsequence, constraints, SAMPLES,
            np.random.default_rng(9), max_attempts=20000)
        return graph_samples, accepted, attempts

    graph_samples, accepted, attempts = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0)
    rows = [
        ("ct-graph", len(graph_samples), len(graph_samples), "1.00"),
        ("rejection", len(accepted), attempts,
         f"{attempts / max(1, len(accepted)):.2f}"),
    ]
    with capsys.disabled():
        print()
        print("=== Ablation D: sampling valid trajectories "
              f"(N={SAMPLES}) ===")
        print(format_table(
            ["method", "valid_samples", "draws", "draws_per_sample"], rows))

    # The ct-graph sampler never wastes a draw.
    assert len(graph_samples) == SAMPLES
    assert attempts >= len(accepted)
