"""Figure 9(a): average stay-query accuracy on SYN1 and SYN2.

The paper reports average accuracy per dataset for the three cleaning
configurations; we additionally print the RAW (uncleaned prior) baseline.
Expected shape: RAW <= CTG(DU) <= CTG(DU,LT) ~= CTG(DU,LT,TT), accuracy on
the denser-instrumented SYN1 comparable to SYN2.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import run_stay_accuracy_experiment
from repro.experiments.report import accuracy_table


@pytest.mark.parametrize("dataset_name", ["syn1", "syn2"])
def test_fig9a_stay_accuracy(benchmark, dataset_name, request, capsys):
    dataset = request.getfixturevalue(dataset_name)
    measurements = benchmark.pedantic(
        run_stay_accuracy_experiment, args=(dataset,),
        kwargs={"queries_per_trajectory": 50},
        rounds=1, iterations=1, warmup_rounds=0)
    with capsys.disabled():
        print()
        print(f"=== Figure 9(a): stay-query accuracy on {dataset.name} ===")
        print(accuracy_table(measurements))

    scores = {m.config: m.accuracy for m in measurements}
    benchmark.extra_info.update(scores)
    # The paper's headline shape: cleaning with the full constraint set
    # beats the raw interpretation.
    assert scores["CTG(DU,LT,TT)"] > scores["RAW"]
    assert scores["CTG(DU,LT)"] >= scores["CTG(DU)"] - 0.02
