"""Complexity validation: Algorithm 1 is polynomial in trajectory length.

Section 5's claim ("Algorithm 1 works in polynomial time w.r.t. the length
of trajectories") against the naive approach's exponential blow-up.  This
bench sweeps durations on a fixed synthetic l-sequence with a constant
per-step candidate structure, so node counts per level are bounded and the
ct-graph cost should grow ~linearly.

Besides the printed table, the sweep lands in ``results/bench_scaling.json``
so successive commits can diff the numbers without scraping pytest output.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core.algorithm import build_ct_graph
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.lsequence import LSequence
from repro.experiments.report import format_table

CONSTRAINTS = ConstraintSet([
    Unreachable("A", "C"), Unreachable("C", "A"),
    Latency("B", 3),
    TravelingTime("A", "D", 4), TravelingTime("D", "A", 4),
])

DURATIONS = (100, 200, 400, 800, 1600)


def _instance(duration: int) -> LSequence:
    rows = []
    for tau in range(duration):
        phase = tau % 4
        if phase == 0:
            rows.append({"A": 0.4, "B": 0.4, "C": 0.2})
        elif phase == 1:
            rows.append({"B": 0.6, "D": 0.4})
        elif phase == 2:
            rows.append({"B": 0.5, "C": 0.3, "D": 0.2})
        else:
            rows.append({"A": 0.5, "B": 0.5})
    return LSequence(rows)


@pytest.mark.parametrize("duration", DURATIONS)
def test_scaling_point(benchmark, duration):
    lsequence = _instance(duration)
    graph = benchmark.pedantic(build_ct_graph,
                               args=(lsequence, CONSTRAINTS),
                               rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["nodes"] = graph.num_nodes
    benchmark.extra_info["duration"] = duration


def test_scaling_is_subquadratic(benchmark, capsys):
    def sweep():
        rows = []
        for duration in DURATIONS:
            lsequence = _instance(duration)
            started = time.perf_counter()
            graph = build_ct_graph(lsequence, CONSTRAINTS)
            elapsed = time.perf_counter() - started
            rows.append((duration, graph.num_nodes, elapsed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    rendered = [(duration, nodes, f"{elapsed * 1000:.1f}")
                for duration, nodes, elapsed in rows]
    with capsys.disabled():
        print()
        print("=== Scaling: ct-graph construction vs duration ===")
        print(format_table(["duration", "nodes", "ms"], rendered))

    out_dir = Path(__file__).resolve().parent.parent / "results"
    out_dir.mkdir(exist_ok=True)
    out_path = out_dir / "bench_scaling.json"
    with out_path.open("w") as handle:
        json.dump({
            "benchmark": "bench_scaling",
            "created_unix": time.time(),
            "constraints": [str(c) for c in CONSTRAINTS],
            "sweep": [{"duration": duration, "nodes": nodes,
                       "seconds": elapsed}
                      for duration, nodes, elapsed in rows],
        }, handle, indent=2)
        handle.write("\n")
    with capsys.disabled():
        print(f"wrote {out_path}")

    # Nodes per level stay bounded -> node count grows ~linearly.
    first_duration, first_nodes, first_time = rows[0]
    last_duration, last_nodes, last_time = rows[-1]
    growth = last_duration / first_duration
    assert last_nodes <= first_nodes * growth * 2.0, \
        "node count should grow ~linearly with duration"
    # Time is noisy; allow quadratic slack but catch exponential behaviour.
    if first_time > 0:
        assert last_time <= first_time * growth ** 2 * 8.0, \
            "construction time should stay polynomial (near-linear)"