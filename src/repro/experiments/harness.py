"""Experiment runners for the paper's evaluation (Section 6).

Every figure of the paper maps to one runner here:

* Fig. 8(a,b) — :func:`run_cleaning_experiment`: average ct-graph
  construction time per trajectory duration and constraint configuration
  (plus node/edge/size statistics, which also covers the Section 6.7
  graph-size discussion);
* Fig. 8(c) — :func:`run_query_time_experiment`: average query execution
  time over the cleaned graphs;
* Fig. 9(a) — :func:`run_stay_accuracy_experiment`;
* Fig. 9(b,c) — :func:`run_trajectory_accuracy_experiment` (overall and
  bucketed by query length).

All runners are deterministic given their ``seed`` and return flat lists of
measurement dataclasses; :mod:`repro.experiments.report` renders them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy environments
    from repro.optional import missing_dependency

    np = missing_dependency("numpy", "repro[numpy]")  # type: ignore[assignment]

from repro.core.algorithm import CleaningOptions, build_ct_graph
from repro.core.ctgraph import CTGraph
from repro.core.lsequence import LSequence
from repro.inference import MotilityProfile, infer_constraints
from repro.queries.stay import stay_query, stay_query_prior
from repro.queries.trajectory import TrajectoryQuery
from repro.queries.accuracy import stay_accuracy, trajectory_query_accuracy
from repro.simulation.datasets import Dataset, GeneratedTrajectory
from repro.experiments.workloads import (
    STAY_QUERIES_PER_TRAJECTORY,
    TRAJECTORY_QUERIES_PER_TRAJECTORY,
    random_stay_queries,
    random_trajectory_queries,
)

__all__ = [
    "CONSTRAINT_CONFIGS",
    "RAW_CONFIG",
    "BatchCleaningMeasurement",
    "CleaningMeasurement",
    "QueryTimeMeasurement",
    "AccuracyMeasurement",
    "clean_trajectory",
    "run_batch",
    "run_cleaning_experiment",
    "run_query_time_experiment",
    "run_stay_accuracy_experiment",
    "run_trajectory_accuracy_experiment",
]

#: The paper's three cleaning configurations (Fig. 8/9 legend).
CONSTRAINT_CONFIGS: Dict[str, Tuple[str, ...]] = {
    "CTG(DU)": ("DU",),
    "CTG(DU,LT)": ("DU", "LT"),
    "CTG(DU,LT,TT)": ("DU", "LT", "TT"),
}

#: The no-cleaning baseline label (raw a-priori interpretation).
RAW_CONFIG = "RAW"


@dataclass(frozen=True)
class CleaningMeasurement:
    """One (dataset, configuration, duration) cleaning aggregate."""

    dataset: str
    config: str
    duration: int
    trajectories: int
    mean_seconds: float
    mean_nodes: float
    mean_edges: float
    mean_bytes: float


@dataclass(frozen=True)
class BatchCleaningMeasurement:
    """One (dataset, configuration, duration) batch-cleaning aggregate.

    The batch counterpart of :class:`CleaningMeasurement`: the same
    node/edge means plus the runtime's wall-clock (what an operator waits
    for) next to the summed per-object compute (what the hardware paid).
    """

    dataset: str
    config: str
    duration: int
    trajectories: int
    workers: int
    chunk_size: int
    wall_seconds: float
    mean_seconds: float
    failures: int
    mean_nodes: float
    mean_edges: float


@dataclass(frozen=True)
class QueryTimeMeasurement:
    """One (dataset, configuration, duration) query-time aggregate."""

    dataset: str
    config: str
    duration: int
    queries: int
    mean_stay_seconds: float
    mean_trajectory_seconds: float

    @property
    def mean_seconds(self) -> float:
        """The blended per-query average (the paper reports one curve)."""
        return (self.mean_stay_seconds + self.mean_trajectory_seconds) / 2.0


@dataclass(frozen=True)
class AccuracyMeasurement:
    """One (dataset, configuration[, query length]) accuracy aggregate."""

    dataset: str
    config: str
    kind: str                       # "stay" | "trajectory"
    accuracy: float
    queries: int
    duration: Optional[int] = None
    query_length: Optional[int] = None


def _configured_constraints(dataset: Dataset, kinds: Sequence[str],
                            profile: MotilityProfile):
    return infer_constraints(dataset.building, profile, kinds=kinds,
                             distances=dataset.distances)


def clean_trajectory(dataset: Dataset, trajectory: GeneratedTrajectory,
                     kinds: Sequence[str],
                     profile: MotilityProfile = MotilityProfile(),
                     options: CleaningOptions = CleaningOptions(),
                     ) -> Tuple[CTGraph, LSequence, float]:
    """Clean one trajectory; returns (graph, l-sequence, build seconds)."""
    constraints = _configured_constraints(dataset, kinds, profile)
    lsequence = LSequence.from_readings(trajectory.readings, dataset.prior)
    started = time.perf_counter()
    graph = build_ct_graph(lsequence, constraints, options)
    elapsed = time.perf_counter() - started
    return graph, lsequence, elapsed


def run_cleaning_experiment(dataset: Dataset,
                            configs: Dict[str, Tuple[str, ...]] = CONSTRAINT_CONFIGS,
                            profile: MotilityProfile = MotilityProfile(),
                            durations: Optional[Sequence[int]] = None,
                            ) -> List[CleaningMeasurement]:
    """Fig. 8(a)/8(b): average cleaning cost per duration and configuration."""
    results: List[CleaningMeasurement] = []
    chosen = tuple(durations) if durations is not None else dataset.durations
    for config_name, kinds in configs.items():
        constraints = _configured_constraints(dataset, kinds, profile)
        for duration in chosen:
            group = dataset.trajectories[duration]
            seconds: List[float] = []
            nodes: List[int] = []
            edges: List[int] = []
            sizes: List[int] = []
            for trajectory in group:
                lsequence = LSequence.from_readings(trajectory.readings,
                                                    dataset.prior)
                started = time.perf_counter()
                graph = build_ct_graph(lsequence, constraints)
                seconds.append(time.perf_counter() - started)
                nodes.append(graph.num_nodes)
                edges.append(graph.num_edges)
                sizes.append(graph.estimate_size_bytes())
            results.append(CleaningMeasurement(
                dataset=dataset.name, config=config_name, duration=duration,
                trajectories=len(group),
                mean_seconds=float(np.mean(seconds)),
                mean_nodes=float(np.mean(nodes)),
                mean_edges=float(np.mean(edges)),
                mean_bytes=float(np.mean(sizes))))
    return results


def run_batch(dataset: Dataset,
              configs: Dict[str, Tuple[str, ...]] = CONSTRAINT_CONFIGS,
              profile: MotilityProfile = MotilityProfile(),
              durations: Optional[Sequence[int]] = None,
              workers: Optional[int] = 1,
              chunk_size: Optional[int] = None,
              options: CleaningOptions = CleaningOptions(),
              ) -> List[BatchCleaningMeasurement]:
    """Fig. 8(a)/8(b)-style cleaning sweep through the batch runtime.

    Covers the same (configuration, duration) grid as
    :func:`run_cleaning_experiment` but cleans each group with
    :func:`repro.runtime.clean_many`, so many-core machines pay one group's
    wall-clock instead of the summed per-object cost.  Per-object failures
    (zero-mass inputs) are counted, not fatal — exactly the semantics a
    server-side cleaning service needs.
    """
    from repro.runtime import clean_many

    results: List[BatchCleaningMeasurement] = []
    chosen = tuple(durations) if durations is not None else dataset.durations
    for config_name, kinds in configs.items():
        constraints = _configured_constraints(dataset, kinds, profile)
        for duration in chosen:
            group = dataset.trajectories[duration]
            lsequences = [LSequence.from_readings(t.readings, dataset.prior)
                          for t in group]
            batch = clean_many(lsequences, constraints, options=options,
                               workers=workers, chunk_size=chunk_size)
            graphs = [o.graph for o in batch if o.ok]
            results.append(BatchCleaningMeasurement(
                dataset=dataset.name, config=config_name, duration=duration,
                trajectories=len(group), workers=batch.workers,
                chunk_size=batch.chunk_size,
                wall_seconds=batch.wall_seconds,
                mean_seconds=float(np.mean([o.seconds for o in batch])),
                failures=len(batch.failures),
                mean_nodes=(float(np.mean([g.num_nodes for g in graphs]))
                            if graphs else 0.0),
                mean_edges=(float(np.mean([g.num_edges for g in graphs]))
                            if graphs else 0.0)))
    return results


def run_query_time_experiment(dataset: Dataset,
                              configs: Dict[str, Tuple[str, ...]] = CONSTRAINT_CONFIGS,
                              profile: MotilityProfile = MotilityProfile(),
                              durations: Optional[Sequence[int]] = None,
                              stay_queries: int = 20,
                              trajectory_queries: int = 10,
                              seed: int = 101,
                              ) -> List[QueryTimeMeasurement]:
    """Fig. 8(c): average query execution time over cleaned graphs."""
    rng = np.random.default_rng(seed)
    results: List[QueryTimeMeasurement] = []
    chosen = tuple(durations) if durations is not None else dataset.durations
    for config_name, kinds in configs.items():
        constraints = _configured_constraints(dataset, kinds, profile)
        for duration in chosen:
            stay_times: List[float] = []
            trajectory_times: List[float] = []
            total_queries = 0
            for trajectory in dataset.trajectories[duration]:
                lsequence = LSequence.from_readings(trajectory.readings,
                                                    dataset.prior)
                graph = build_ct_graph(lsequence, constraints)
                for tau in random_stay_queries(duration, stay_queries, rng):
                    started = time.perf_counter()
                    stay_query(graph, tau)
                    stay_times.append(time.perf_counter() - started)
                    # The forward pass is cached per graph; drop the cache
                    # so every stay query pays its real cost.
                    graph._node_marginals = None
                patterns = random_trajectory_queries(
                    dataset.building, trajectory_queries, rng)
                for pattern in patterns:
                    query = TrajectoryQuery(pattern)
                    started = time.perf_counter()
                    query.probability(graph)
                    trajectory_times.append(time.perf_counter() - started)
                total_queries += stay_queries + trajectory_queries
            results.append(QueryTimeMeasurement(
                dataset=dataset.name, config=config_name, duration=duration,
                queries=total_queries,
                mean_stay_seconds=float(np.mean(stay_times)),
                mean_trajectory_seconds=float(np.mean(trajectory_times))))
    return results


def run_stay_accuracy_experiment(dataset: Dataset,
                                 configs: Dict[str, Tuple[str, ...]] = CONSTRAINT_CONFIGS,
                                 profile: MotilityProfile = MotilityProfile(),
                                 durations: Optional[Sequence[int]] = None,
                                 queries_per_trajectory: int = STAY_QUERIES_PER_TRAJECTORY,
                                 include_raw: bool = True,
                                 seed: int = 202,
                                 ) -> List[AccuracyMeasurement]:
    """Fig. 9(a): average stay-query accuracy per configuration.

    ``include_raw`` adds the uncleaned a-priori baseline as config ``RAW``.
    """
    rng = np.random.default_rng(seed)
    chosen = tuple(durations) if durations is not None else dataset.durations
    per_config: Dict[str, List[float]] = {name: [] for name in configs}
    raw_scores: List[float] = []
    for duration in chosen:
        for trajectory in dataset.trajectories[duration]:
            truth = trajectory.truth.locations
            lsequence = LSequence.from_readings(trajectory.readings,
                                                dataset.prior)
            taus = random_stay_queries(duration, queries_per_trajectory, rng)
            if include_raw:
                raw_scores.extend(
                    stay_accuracy(stay_query_prior(lsequence, tau), truth[tau])
                    for tau in taus)
            for config_name, kinds in configs.items():
                constraints = _configured_constraints(dataset, kinds, profile)
                graph = build_ct_graph(lsequence, constraints)
                per_config[config_name].extend(
                    stay_accuracy(stay_query(graph, tau), truth[tau])
                    for tau in taus)
    results: List[AccuracyMeasurement] = []
    if include_raw and raw_scores:
        results.append(AccuracyMeasurement(
            dataset=dataset.name, config=RAW_CONFIG, kind="stay",
            accuracy=float(np.mean(raw_scores)), queries=len(raw_scores)))
    for config_name, scores in per_config.items():
        results.append(AccuracyMeasurement(
            dataset=dataset.name, config=config_name, kind="stay",
            accuracy=float(np.mean(scores)), queries=len(scores)))
    return results


def run_trajectory_accuracy_experiment(
        dataset: Dataset,
        configs: Dict[str, Tuple[str, ...]] = CONSTRAINT_CONFIGS,
        profile: MotilityProfile = MotilityProfile(),
        durations: Optional[Sequence[int]] = None,
        queries_per_trajectory: int = TRAJECTORY_QUERIES_PER_TRAJECTORY,
        include_raw: bool = True,
        by_query_length: bool = False,
        visited_bias: float = 0.0,
        seed: int = 303,
        ) -> List[AccuracyMeasurement]:
    """Fig. 9(b) (and 9(c) with ``by_query_length=True``).

    With ``by_query_length``, queries are generated with pinned lengths
    {2, 3, 4} and one measurement is emitted per (config, length) pair.
    ``visited_bias`` > 0 makes the workload harder (see
    :func:`repro.experiments.workloads.random_trajectory_query`); the
    paper's workload is 0.
    """
    rng = np.random.default_rng(seed)
    chosen = tuple(durations) if durations is not None else dataset.durations
    lengths: Tuple[Optional[int], ...] = (2, 3, 4) if by_query_length else (None,)
    scores: Dict[Tuple[str, Optional[int]], List[float]] = {}

    for duration in chosen:
        for trajectory in dataset.trajectories[duration]:
            truth = tuple(trajectory.truth.locations)
            lsequence = LSequence.from_readings(trajectory.readings,
                                                dataset.prior)
            graphs = {
                name: build_ct_graph(
                    lsequence, _configured_constraints(dataset, kinds, profile))
                for name, kinds in configs.items()}
            for length in lengths:
                count = (queries_per_trajectory if length is None
                         else max(1, queries_per_trajectory // len(lengths)))
                patterns = random_trajectory_queries(
                    dataset.building, count, rng, num_locations=length,
                    visited=trajectory.truth.visited_locations(),
                    visited_bias=visited_bias)
                for pattern in patterns:
                    query = TrajectoryQuery(pattern)
                    truth_matches = query.matches(truth)
                    if include_raw:
                        p = query.probability_prior(lsequence)
                        scores.setdefault((RAW_CONFIG, length), []).append(
                            trajectory_query_accuracy(p, truth_matches))
                    for name, graph in graphs.items():
                        p = query.probability(graph)
                        scores.setdefault((name, length), []).append(
                            trajectory_query_accuracy(p, truth_matches))

    order = ([RAW_CONFIG] if include_raw else []) + list(configs)
    results: List[AccuracyMeasurement] = []
    for name in order:
        for length in lengths:
            values = scores.get((name, length))
            if values:
                results.append(AccuracyMeasurement(
                    dataset=dataset.name, config=name, kind="trajectory",
                    accuracy=float(np.mean(values)), queries=len(values),
                    query_length=length))
    return results
