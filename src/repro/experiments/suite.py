"""The full evaluation in one call: run every experiment, write a report.

:func:`run_full_suite` regenerates all of the paper's Section 6 content
(Figs. 8a-c, 9a-c, the Section 6.7 size discussion) on the requested
datasets and renders one self-contained Markdown report — the programmatic
equivalent of running every ``benchmarks/bench_fig*.py`` module, minus
pytest.  The CLI exposes it as ``rfid-ctg report``.
"""

from __future__ import annotations

import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import (
    AccuracyMeasurement,
    CleaningMeasurement,
    QueryTimeMeasurement,
    run_cleaning_experiment,
    run_query_time_experiment,
    run_stay_accuracy_experiment,
    run_trajectory_accuracy_experiment,
)
from repro.experiments.report import (
    accuracy_table,
    cleaning_table,
    query_time_table,
)
from repro.simulation.datasets import Dataset

__all__ = ["SuiteResult", "run_full_suite", "render_report"]


@dataclass
class SuiteResult:
    """Every measurement of one full evaluation run."""

    scale: str
    cleaning: List[CleaningMeasurement] = field(default_factory=list)
    query_times: List[QueryTimeMeasurement] = field(default_factory=list)
    stay_accuracy: List[AccuracyMeasurement] = field(default_factory=list)
    trajectory_accuracy: List[AccuracyMeasurement] = field(default_factory=list)
    accuracy_by_length: List[AccuracyMeasurement] = field(default_factory=list)


def run_full_suite(datasets: Sequence[Dataset], *, scale: str = "custom",
                   stay_queries: int = 50, trajectory_queries: int = 25,
                   progress=None) -> SuiteResult:
    """Run the complete Section 6 evaluation over ``datasets``.

    ``progress`` is an optional callable receiving one status string per
    stage (the CLI passes ``print``).
    """
    def report(message: str) -> None:
        if progress is not None:
            progress(message)

    result = SuiteResult(scale=scale)
    for dataset in datasets:
        report(f"[{dataset.name}] cleaning sweep (Fig. 8a/8b + Sec. 6.7)")
        result.cleaning.extend(run_cleaning_experiment(dataset))
        report(f"[{dataset.name}] query-time sweep (Fig. 8c)")
        result.query_times.extend(run_query_time_experiment(
            dataset, stay_queries=10, trajectory_queries=5))
        report(f"[{dataset.name}] stay accuracy (Fig. 9a)")
        result.stay_accuracy.extend(run_stay_accuracy_experiment(
            dataset, queries_per_trajectory=stay_queries))
        report(f"[{dataset.name}] trajectory accuracy (Fig. 9b)")
        result.trajectory_accuracy.extend(run_trajectory_accuracy_experiment(
            dataset, queries_per_trajectory=trajectory_queries))
    if datasets:
        last = datasets[-1]
        report(f"[{last.name}] accuracy by query length (Fig. 9c)")
        result.accuracy_by_length.extend(run_trajectory_accuracy_experiment(
            last, queries_per_trajectory=trajectory_queries,
            by_query_length=True, visited_bias=0.5))
    return result


def render_report(result: SuiteResult) -> str:
    """The suite result as a self-contained Markdown document."""
    lines: List[str] = []
    lines.append("# rfid-ctg evaluation report")
    lines.append("")
    lines.append(f"- scale: `{result.scale}`")
    lines.append(f"- python: {sys.version.split()[0]} on "
                 f"{platform.system().lower()}")
    lines.append("")

    def section(title: str, body: str) -> None:
        lines.append(f"## {title}")
        lines.append("")
        lines.append("```")
        lines.append(body)
        lines.append("```")
        lines.append("")

    if result.cleaning:
        section("Cleaning cost (Fig. 8a/8b) and graph size (Sec. 6.7)",
                cleaning_table(result.cleaning))
    if result.query_times:
        section("Query time (Fig. 8c)", query_time_table(result.query_times))
    if result.stay_accuracy:
        section("Stay-query accuracy (Fig. 9a)",
                accuracy_table(result.stay_accuracy))
    if result.trajectory_accuracy:
        section("Trajectory-query accuracy (Fig. 9b)",
                accuracy_table(result.trajectory_accuracy))
    if result.accuracy_by_length:
        section("Accuracy by query length (Fig. 9c, hard workload)",
                accuracy_table(result.accuracy_by_length))

    lines.append("## Shape checklist")
    lines.append("")
    lines.extend(_shape_checklist(result))
    return "\n".join(lines)


def _shape_checklist(result: SuiteResult) -> List[str]:
    """Automated pass/fail lines for the paper's qualitative claims."""
    checks: List[str] = []

    def check(name: str, ok: Optional[bool]) -> None:
        if ok is None:
            checks.append(f"- {name}: n/a")
        else:
            checks.append(f"- {name}: {'PASS' if ok else 'FAIL'}")

    by_config: Dict[str, List[CleaningMeasurement]] = {}
    for m in result.cleaning:
        by_config.setdefault(m.config, []).append(m)
    if {"CTG(DU)", "CTG(DU,LT,TT)"} <= set(by_config):
        du = sum(m.mean_seconds for m in by_config["CTG(DU)"])
        full = sum(m.mean_seconds for m in by_config["CTG(DU,LT,TT)"])
        # Wall-clock shape, so it needs jitter slack: at small scales
        # both sums are a few milliseconds and scheduler noise can
        # invert them.  The paper's claim is the trend, not a
        # microsecond-exact ordering.
        check("cleaning cost DU <= DU+LT+TT (10% + 5ms slack)",
              du <= full * 1.10 + 0.005)
        du_size = sum(m.mean_bytes for m in by_config["CTG(DU)"])
        full_size = sum(m.mean_bytes for m in by_config["CTG(DU,LT,TT)"])
        check("graph size DU <= DU+LT+TT", du_size <= full_size)
    else:
        check("cleaning cost DU <= DU+LT+TT", None)

    stay: Dict[str, List[float]] = {}
    for m in result.stay_accuracy:
        stay.setdefault(m.config, []).append(m.accuracy)
    if {"RAW", "CTG(DU,LT,TT)"} <= set(stay):
        raw = sum(stay["RAW"]) / len(stay["RAW"])
        full = sum(stay["CTG(DU,LT,TT)"]) / len(stay["CTG(DU,LT,TT)"])
        check("stay accuracy RAW < CTG(DU,LT,TT)", raw < full)
    else:
        check("stay accuracy RAW < CTG(DU,LT,TT)", None)

    trajectory: Dict[str, List[float]] = {}
    for m in result.trajectory_accuracy:
        trajectory.setdefault(m.config, []).append(m.accuracy)
    if {"RAW", "CTG(DU,LT,TT)"} <= set(trajectory):
        raw = sum(trajectory["RAW"]) / len(trajectory["RAW"])
        full = (sum(trajectory["CTG(DU,LT,TT)"])
                / len(trajectory["CTG(DU,LT,TT)"]))
        check("trajectory accuracy RAW <= CTG(DU,LT,TT) (+0.02 slack)",
              raw <= full + 0.02)
    else:
        check("trajectory accuracy RAW <= CTG(DU,LT,TT)", None)
    return checks


def write_report(result: SuiteResult, path) -> None:
    """Render and write the Markdown report."""
    Path(path).write_text(render_report(result))
