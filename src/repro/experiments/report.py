"""Plain-text rendering of experiment results.

The benchmarks print the same rows/series as the paper's figures; these
helpers keep the formatting in one place (and out of the benchmark logic).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.experiments.harness import (
    AccuracyMeasurement,
    CleaningMeasurement,
    QueryTimeMeasurement,
)

__all__ = [
    "format_table",
    "cleaning_table",
    "query_time_table",
    "accuracy_table",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A minimal fixed-width table (no external dependencies)."""
    materialised = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = [line(list(headers)), line(["-" * w for w in widths])]
    parts.extend(line(row) for row in materialised)
    return "\n".join(parts)


def cleaning_table(measurements: Sequence[CleaningMeasurement]) -> str:
    """Fig. 8(a)/8(b)-style rows: cleaning time by duration and config."""
    rows = [
        (m.dataset, m.config, m.duration, m.trajectories,
         f"{m.mean_seconds * 1000:.1f}", f"{m.mean_nodes:.0f}",
         f"{m.mean_edges:.0f}", f"{m.mean_bytes / 1024:.0f}")
        for m in measurements
    ]
    return format_table(
        ["dataset", "config", "duration", "n", "clean_ms",
         "nodes", "edges", "size_kB"], rows)


def query_time_table(measurements: Sequence[QueryTimeMeasurement]) -> str:
    """Fig. 8(c)-style rows: query time by duration and config."""
    rows = [
        (m.dataset, m.config, m.duration, m.queries,
         f"{m.mean_stay_seconds * 1000:.2f}",
         f"{m.mean_trajectory_seconds * 1000:.2f}",
         f"{m.mean_seconds * 1000:.2f}")
        for m in measurements
    ]
    return format_table(
        ["dataset", "config", "duration", "queries", "stay_ms",
         "trajectory_ms", "mean_ms"], rows)


def accuracy_table(measurements: Sequence[AccuracyMeasurement]) -> str:
    """Fig. 9-style rows: accuracy by config (and query length if present)."""
    with_length = any(m.query_length is not None for m in measurements)
    headers = ["dataset", "config", "kind"]
    if with_length:
        headers.append("qlen")
    headers += ["queries", "accuracy"]
    rows: List[Sequence[object]] = []
    for m in measurements:
        row: List[object] = [m.dataset, m.config, m.kind]
        if with_length:
            row.append("-" if m.query_length is None else m.query_length)
        row += [m.queries, f"{m.accuracy:.3f}"]
        rows.append(row)
    return format_table(headers, rows)
