"""Query workload generators (Section 6.6).

The paper's workloads:

* **stay queries** — 100 per trajectory, each over a uniformly random
  timestep of the trajectory;
* **trajectory queries** — 50 per trajectory; each pattern is
  ``? l1[n1] ? l2[n2] ? ... ?`` with ``x`` locations, ``x`` uniform in
  {2, 3, 4}, each ``l_i`` uniform over the map's locations and each ``n_i``
  uniform in {-1, 3, 5, 7, 9} (``-1`` meaning the bare ``l`` condition).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy environments
    from repro.optional import missing_dependency

    np = missing_dependency("numpy", "repro[numpy]")  # type: ignore[assignment]

from repro.mapmodel.building import Building
from repro.queries.pattern import Pattern

__all__ = [
    "STAY_QUERIES_PER_TRAJECTORY",
    "TRAJECTORY_QUERIES_PER_TRAJECTORY",
    "random_stay_queries",
    "random_trajectory_queries",
]

#: The paper's workload sizes.
STAY_QUERIES_PER_TRAJECTORY = 100
TRAJECTORY_QUERIES_PER_TRAJECTORY = 50

#: The paper's run-length alternatives (-1 = bare ``l`` condition).
_RUN_LENGTHS = (-1, 3, 5, 7, 9)
_QUERY_LENGTHS = (2, 3, 4)


def random_stay_queries(duration: int,
                        count: int = STAY_QUERIES_PER_TRAJECTORY,
                        rng: Optional[np.random.Generator] = None) -> List[int]:
    """``count`` random timesteps within ``[0, duration)``."""
    if rng is None:
        rng = np.random.default_rng()
    return [int(t) for t in rng.integers(0, duration, size=count)]


def random_trajectory_query(building: Building,
                            rng: np.random.Generator,
                            num_locations: Optional[int] = None,
                            visited: Optional[Sequence[str]] = None,
                            visited_bias: float = 0.0) -> Pattern:
    """One paper-style pattern ``? l1[n1] ? ... ?``.

    ``num_locations`` pins the number of location conditions (the paper's
    query length) — Fig. 9(c) buckets accuracy by it; ``None`` draws it
    uniformly from {2, 3, 4}.

    ``visited``/``visited_bias`` build *harder* workloads: each location is
    drawn from ``visited`` (the trajectory's ground-truth locations) with
    probability ``visited_bias``, from the whole map otherwise.  The
    paper's workload is ``visited_bias = 0`` (uniform over the map); a bias
    makes "yes" answers common enough that accuracy becomes informative on
    large maps.
    """
    names = building.location_names
    if num_locations is None:
        num_locations = int(rng.choice(_QUERY_LENGTHS))
    picks = []
    for _ in range(num_locations):
        if visited and rng.random() < visited_bias:
            picks.append(visited[int(rng.integers(0, len(visited)))])
        else:
            picks.append(names[int(rng.integers(0, len(names)))])
    runs = [int(rng.choice(_RUN_LENGTHS)) for _ in range(num_locations)]
    return Pattern.visits(*picks, min_runs=[1 if n < 0 else n for n in runs])


def random_trajectory_queries(building: Building,
                              count: int = TRAJECTORY_QUERIES_PER_TRAJECTORY,
                              rng: Optional[np.random.Generator] = None,
                              num_locations: Optional[int] = None,
                              visited: Optional[Sequence[str]] = None,
                              visited_bias: float = 0.0,
                              ) -> List[Pattern]:
    """``count`` independent paper-style patterns."""
    if rng is None:
        rng = np.random.default_rng()
    return [random_trajectory_query(building, rng, num_locations,
                                    visited=visited,
                                    visited_bias=visited_bias)
            for _ in range(count)]
