"""The experiment harness: the paper's evaluation, reproducible end to end.

* :mod:`repro.experiments.workloads` — the Section 6.6 query workloads
  (100 random stay queries and 50 random pattern queries per trajectory);
* :mod:`repro.experiments.harness` — cleaning/query/accuracy/size runs over
  datasets, per constraint configuration;
* :mod:`repro.experiments.report` — plain-text tables for the figures.

Each benchmark under ``benchmarks/`` wires one figure or table of the paper
to these functions; ``EXPERIMENTS.md`` records the measured outcomes.
"""

from repro.experiments.harness import (
    CONSTRAINT_CONFIGS,
    AccuracyMeasurement,
    CleaningMeasurement,
    QueryTimeMeasurement,
    clean_trajectory,
    run_cleaning_experiment,
    run_query_time_experiment,
    run_stay_accuracy_experiment,
    run_trajectory_accuracy_experiment,
)
from repro.experiments.report import format_table
from repro.experiments.workloads import (
    random_stay_queries,
    random_trajectory_queries,
)

__all__ = [
    "CONSTRAINT_CONFIGS",
    "CleaningMeasurement",
    "AccuracyMeasurement",
    "QueryTimeMeasurement",
    "clean_trajectory",
    "run_cleaning_experiment",
    "run_query_time_experiment",
    "run_stay_accuracy_experiment",
    "run_trajectory_accuracy_experiment",
    "random_stay_queries",
    "random_trajectory_queries",
    "format_table",
]
