"""Readings and probabilistic location sequences (Section 2).

A :class:`Reading` is the raw RFID datum ``(timestamp, set of readers)``.
A :class:`ReadingSequence` is one reading per timestep of the monitoring
interval ``T = [0, n)``.  An :class:`LSequence` is the paper's *l-sequence*
``Gamma = (Lambda, p)``: for every timestep, the locations compatible with
the reading at that timestep together with their a-priori probabilities
(the PDF of the random variable ``X_theta``).

L-sequences are the input of the cleaning algorithm; they can be produced
from readings through a :class:`~repro.rfid.priors.PriorModel`
(:meth:`LSequence.from_readings`) or written directly in tests.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Sequence,
    Tuple,
)

from repro.errors import ReadingSequenceError

__all__ = ["Reading", "ReadingSequence", "LSequence", "Trajectory"]

#: A deterministic trajectory: one location name per timestep.
Trajectory = Tuple[str, ...]

#: Probabilities smaller than this are treated as zero when building
#: l-sequences (guards against float dust produced by the prior model).
_PROBABILITY_FLOOR = 1e-15


@dataclass(frozen=True)
class Reading:
    """One raw datum: at ``time``, the object was detected by exactly ``readers``."""

    time: int
    readers: FrozenSet[str]

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ReadingSequenceError(f"negative timestamp: {self.time}")
        if not isinstance(self.readers, frozenset):
            object.__setattr__(self, "readers", frozenset(self.readers))

    def __str__(self) -> str:
        names = ", ".join(sorted(self.readers)) or "-"
        return f"({self.time}, {{{names}}})"


class ReadingSequence:
    """One reading per timestep over ``T = [0, n)``."""

    def __init__(self, readings: Iterable[Reading]) -> None:
        ordered = sorted(readings, key=lambda r: r.time)
        if not ordered:
            raise ReadingSequenceError("a reading sequence cannot be empty")
        times = [reading.time for reading in ordered]
        if times[0] != 0 or times != list(range(len(times))):
            raise ReadingSequenceError(
                "readings must cover every timestep 0..n-1 exactly once, got "
                f"timestamps {times[:10]}{'...' if len(times) > 10 else ''}")
        self._readings: Tuple[Reading, ...] = tuple(ordered)

    @classmethod
    def from_reader_sets(cls, reader_sets: Sequence[Iterable[str]]) -> "ReadingSequence":
        """Build from a list of reader sets, one per timestep starting at 0."""
        return cls(Reading(time, frozenset(readers))
                   for time, readers in enumerate(reader_sets))

    def __len__(self) -> int:
        return len(self._readings)

    def __iter__(self) -> Iterator[Reading]:
        return iter(self._readings)

    def __getitem__(self, time: int) -> Reading:
        return self._readings[time]

    @property
    def duration(self) -> int:
        """The number of timesteps in the monitoring interval."""
        return len(self._readings)

    def __repr__(self) -> str:
        return f"ReadingSequence(duration={self.duration})"


class LSequence:
    """The probabilistic l-sequence ``Gamma = (Lambda, p)``.

    ``candidates[tau]`` maps every location compatible with the reading at
    ``tau`` to its a-priori probability; entries are strictly positive and
    each timestep's entries sum to 1 (validated at construction).
    """

    def __init__(self, candidates: Sequence[Mapping[str, float]], *,
                 _validate: bool = True) -> None:
        if not candidates:
            raise ReadingSequenceError("an l-sequence cannot be empty")
        cleaned: List[Dict[str, float]] = []
        for tau, row in enumerate(candidates):
            # Malformed probabilities are rejected even with
            # ``_validate=False`` (prior-model paths): NaN fails every
            # ``>`` test, so the positivity floor below would silently
            # swallow it instead of surfacing the bad input.  Each value
            # is coerced exactly once and the coerced float is reused for
            # the filter and the row, so numeric strings and numpy
            # scalars behave like the floats they denote.
            entries: Dict[str, float] = {}
            for loc, p in row.items():
                try:
                    value = float(p)
                except (TypeError, ValueError):
                    raise ReadingSequenceError(
                        f"timestep {tau}: probability of {loc!r} is "
                        f"{p!r}, which does not coerce to a float"
                    ) from None
                if not (value >= 0.0 and math.isfinite(value)):
                    raise ReadingSequenceError(
                        f"timestep {tau}: probability of {loc!r} is "
                        f"{value!r}; candidate probabilities must be "
                        "finite and non-negative")
                if value > _PROBABILITY_FLOOR:
                    entries[loc] = value
            if not entries:
                raise ReadingSequenceError(
                    f"timestep {tau}: no location has positive probability")
            if _validate:
                total = math.fsum(entries.values())
                if abs(total - 1.0) > 1e-6:
                    raise ReadingSequenceError(
                        f"timestep {tau}: probabilities sum to {total}, not 1")
                # Renormalise away the (tiny, already-validated) drift so the
                # cleaning arithmetic starts from an exact distribution.
                entries = {loc: p / total for loc, p in entries.items()}
            cleaned.append(entries)
        self._candidates: Tuple[Dict[str, float], ...] = tuple(cleaned)

    @classmethod
    def from_readings(cls, readings: ReadingSequence, prior) -> "LSequence":
        """Interpret a reading sequence through a prior model.

        ``prior`` is anything with a ``distribution(readers) -> dict`` method
        (normally a :class:`repro.rfid.priors.PriorModel`).
        """
        return cls([prior.distribution(reading.readers) for reading in readings],
                   _validate=False)

    # ------------------------------------------------------------------
    @property
    def duration(self) -> int:
        """The number of timesteps."""
        return len(self._candidates)

    def __len__(self) -> int:
        return len(self._candidates)

    def candidates(self, tau: int) -> Dict[str, float]:
        """Locations compatible with timestep ``tau`` and their priors.

        The returned dict is the internal one — callers must not mutate it.
        """
        try:
            return self._candidates[tau]
        except IndexError:
            raise ReadingSequenceError(
                f"timestep {tau} outside [0, {self.duration})") from None

    def support(self, tau: int) -> Tuple[str, ...]:
        """The locations with positive probability at ``tau``."""
        return tuple(self.candidates(tau))

    def probability(self, tau: int, location: str) -> float:
        """The a-priori probability of ``location`` at ``tau`` (0 if absent)."""
        return self.candidates(tau).get(location, 0.0)

    def num_trajectories(self) -> int:
        """How many trajectories the l-sequence admits (product of supports)."""
        count = 1
        for row in self._candidates:
            count *= len(row)
        return count

    def trajectories(self) -> Iterator[Tuple[Trajectory, float]]:
        """Every trajectory with its a-priori probability.

        Exponential in the duration — the naive baseline and the tests use
        this on tiny instances only.
        """
        supports = [sorted(row) for row in self._candidates]
        for combo in itertools.product(*supports):
            prob = 1.0
            for tau, loc in enumerate(combo):
                prob *= self._candidates[tau][loc]
            yield tuple(combo), prob

    def trajectory_prior(self, trajectory: Sequence[str]) -> float:
        """The a-priori probability of one trajectory (0 if incompatible)."""
        if len(trajectory) != self.duration:
            raise ReadingSequenceError(
                f"trajectory has {len(trajectory)} steps, expected {self.duration}")
        prob = 1.0
        for tau, loc in enumerate(trajectory):
            p = self._candidates[tau].get(loc, 0.0)
            if p == 0.0:
                return 0.0
            prob *= p
        return prob

    def __repr__(self) -> str:
        branching = max(len(row) for row in self._candidates)
        return f"LSequence(duration={self.duration}, max_branching={branching})"
