"""Integrity constraints over trajectories (Section 3).

Three constraint kinds, exactly as the paper defines them:

* :class:`Unreachable` — ``unreachable(l1, l2)``: no object reaches ``l2``
  from ``l1`` in one timestep (DU);
* :class:`TravelingTime` — ``travelingTime(l1, l2, v)``: moving from ``l1``
  to ``l2`` takes at least ``v`` timesteps (TT);
* :class:`Latency` — ``latency(l, d)``: every stay at ``l`` lasts at least
  ``d`` timesteps (LT).

:class:`ConstraintSet` is the indexed container the cleaning algorithm
queries: constant-time DU lookups, per-(source, destination) minimum travel
times, per-location latency bounds and the paper's
``maxTravelingTime(l)`` (the largest ``v`` of any TT constraint whose first
argument is ``l`` — the horizon after which a recorded departure from ``l``
can no longer invalidate anything).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.errors import ConstraintError

__all__ = ["Unreachable", "TravelingTime", "Latency", "Constraint", "ConstraintSet"]


@dataclass(frozen=True)
class Unreachable:
    """``unreachable(loc_a, loc_b)``: no direct step from ``loc_a`` to ``loc_b``.

    The constraint is directed; map inference emits both directions for
    physically unconnected pairs.  ``loc_a == loc_b`` is legal and forbids
    staying at the location for two consecutive timesteps.
    """

    loc_a: str
    loc_b: str

    def __str__(self) -> str:
        return f"unreachable({self.loc_a}, {self.loc_b})"


@dataclass(frozen=True)
class TravelingTime:
    """``travelingTime(loc_a, loc_b, steps)``: ``loc_a -> loc_b`` takes >= ``steps``.

    ``steps`` counts whole timesteps between the last timestep spent at
    ``loc_a`` and the first subsequent timestep spent at ``loc_b``.
    Constraints with ``steps <= 1`` are vacuous (every move takes at least
    one step) and are rejected to keep constraint sets canonical, as is
    ``loc_a == loc_b`` (which would contradict itself on any stay).
    """

    loc_a: str
    loc_b: str
    steps: int

    def __post_init__(self) -> None:
        if self.loc_a == self.loc_b:
            raise ConstraintError(
                f"travelingTime({self.loc_a}, {self.loc_b}, {self.steps}): "
                "source and destination must differ")
        if self.steps <= 1:
            raise ConstraintError(
                f"travelingTime({self.loc_a}, {self.loc_b}, {self.steps}): "
                "constraints with steps <= 1 are vacuous; do not state them")

    def __str__(self) -> str:
        return f"travelingTime({self.loc_a}, {self.loc_b}, {self.steps})"


@dataclass(frozen=True)
class Latency:
    """``latency(location, duration)``: every stay at ``location`` lasts >= ``duration``.

    ``duration`` is in timesteps.  ``duration <= 1`` is vacuous (every stay
    lasts at least one timestep) and rejected.
    """

    location: str
    duration: int

    def __post_init__(self) -> None:
        if self.duration <= 1:
            raise ConstraintError(
                f"latency({self.location}, {self.duration}): "
                "constraints with duration <= 1 are vacuous; do not state them")

    def __str__(self) -> str:
        return f"latency({self.location}, {self.duration})"


Constraint = Union[Unreachable, TravelingTime, Latency]


class ConstraintSet:
    """An immutable, indexed collection of integrity constraints."""

    def __init__(self, constraints: Iterable[Constraint] = ()) -> None:
        du: Set[Tuple[str, str]] = set()
        tt: Dict[Tuple[str, str], int] = {}
        lt: Dict[str, int] = {}
        items: List[Constraint] = []
        for constraint in constraints:
            items.append(constraint)
            if isinstance(constraint, Unreachable):
                du.add((constraint.loc_a, constraint.loc_b))
            elif isinstance(constraint, TravelingTime):
                key = (constraint.loc_a, constraint.loc_b)
                # Several TT constraints on the same pair: the largest binds.
                tt[key] = max(tt.get(key, 0), constraint.steps)
            elif isinstance(constraint, Latency):
                lt[constraint.location] = max(
                    lt.get(constraint.location, 0), constraint.duration)
            else:
                raise ConstraintError(
                    f"not an integrity constraint: {constraint!r}")
        self._items: Tuple[Constraint, ...] = tuple(items)
        self._item_set: FrozenSet[Constraint] = frozenset(items)
        self._du: FrozenSet[Tuple[str, str]] = frozenset(du)
        self._tt: Dict[Tuple[str, str], int] = tt
        self._lt: Dict[str, int] = lt
        # TT constraints indexed by destination: used when checking arrivals.
        self._tt_by_destination: Dict[str, Tuple[Tuple[str, int], ...]] = {}
        by_dest: Dict[str, List[Tuple[str, int]]] = {}
        for (source, dest), steps in tt.items():
            by_dest.setdefault(dest, []).append((source, steps))
        self._tt_by_destination = {dest: tuple(pairs)
                                   for dest, pairs in by_dest.items()}
        # maxTravelingTime(l): the TT horizon of departures from l.
        self._max_tt: Dict[str, int] = {}
        for (source, _dest), steps in tt.items():
            self._max_tt[source] = max(self._max_tt.get(source, 0), steps)
        self._tt_sources: FrozenSet[str] = frozenset(self._max_tt)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, constraint: object) -> bool:
        return constraint in self._item_set

    def __or__(self, other: "ConstraintSet") -> "ConstraintSet":
        """The union of two constraint sets.

        Constraints stated by both operands appear once (the frozen
        constraint dataclasses are hashable, so duplicates are detected by
        value); the left operand's statement order is preserved.
        """
        merged = dict.fromkeys(tuple(self) + tuple(other))
        return ConstraintSet(merged)

    def __eq__(self, other: object) -> bool:
        """Two constraint sets are equal iff they state the same constraints.

        Statement order and duplicate statements do not matter — equality
        compares the *sets* of constraints, which is what determines the
        cleaning semantics.
        """
        if not isinstance(other, ConstraintSet):
            return NotImplemented
        return self._item_set == other._item_set

    def __hash__(self) -> int:
        return hash(self._item_set)

    def __repr__(self) -> str:
        return (f"ConstraintSet(du={len(self._du)}, tt={len(self._tt)}, "
                f"lt={len(self._lt)})")

    # ------------------------------------------------------------------
    # the queries the cleaning algorithm needs
    # ------------------------------------------------------------------
    def forbids_step(self, loc_a: str, loc_b: str) -> bool:
        """Whether ``unreachable(loc_a, loc_b)`` is stated."""
        return (loc_a, loc_b) in self._du

    def latency_of(self, location: str) -> Optional[int]:
        """The latency bound for ``location`` (``None`` if unconstrained)."""
        return self._lt.get(location)

    def traveling_time(self, loc_a: str, loc_b: str) -> Optional[int]:
        """The minimum travel time ``loc_a -> loc_b`` (``None`` if unconstrained)."""
        return self._tt.get((loc_a, loc_b))

    def traveling_times_into(self, destination: str) -> Tuple[Tuple[str, int], ...]:
        """All ``(source, steps)`` TT constraints ending at ``destination``."""
        return self._tt_by_destination.get(destination, ())

    def max_traveling_time(self, location: str) -> int:
        """The paper's ``maxTravelingTime(l)``: max ``v`` over TT with source ``l``.

        0 when ``location`` sources no TT constraint — recorded departures
        from it are never needed.
        """
        return self._max_tt.get(location, 0)

    @property
    def tt_sources(self) -> FrozenSet[str]:
        """Locations appearing as the source of at least one TT constraint."""
        return self._tt_sources

    @property
    def unreachable_pairs(self) -> FrozenSet[Tuple[str, str]]:
        return self._du

    @property
    def latency_bounds(self) -> Dict[str, int]:
        """A copy of the per-location latency bounds."""
        return dict(self._lt)

    @property
    def traveling_time_bounds(self) -> Dict[Tuple[str, str], int]:
        """A copy of the per-pair minimum travel times."""
        return dict(self._tt)

    def only(self, *kinds: type) -> "ConstraintSet":
        """The sub-set containing only constraints of the given classes.

        Used by the experiment harness to derive CTG(DU), CTG(DU, LT), ...
        from one full constraint set.
        """
        return ConstraintSet(c for c in self._items if isinstance(c, tuple(kinds)))
