"""Online (streaming) cleaning: ingest readings one at a time.

The batch Algorithm 1 needs the whole reading sequence before it can
condition.  Deployments, however, receive readings as a stream and want a
live position estimate.  :class:`IncrementalCleaner` maintains the forward
frontier of node states under the Definition 3 successor relation:

* :meth:`extend` appends one timestep's candidate distribution (or one
  reading, via a prior model) and advances the frontier;
* :meth:`filtered_distribution` returns the *filtered* estimate
  ``P(X_now | readings so far, constraints held so far)`` — the standard
  online quantity (it conditions on validity of the prefix only, so it
  will generally differ from the final smoothed marginal);
* :meth:`finalize` runs the full backward conditioning and returns the
  exact ct-graph — identical, path for path and probability for
  probability, to the batch algorithm run on the whole sequence (a
  property the tests assert).

One caveat: the exact ``TL`` pruning of the batch algorithm
(:class:`repro.core.nodes.DepartureFilter`) needs the *future* support and
is therefore unavailable online; the live frontier can carry more node
states than the batch forward phase would.  Probabilities are unaffected.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping

from repro.core.algorithm import CleaningOptions, build_ct_graph
from repro.core.constraints import ConstraintSet
from repro.core.ctgraph import CTGraph
from repro.core.lsequence import LSequence
from repro.core.nodes import NodeState, source_states, successor_state
from repro.errors import InconsistentReadingsError, ReadingSequenceError

__all__ = ["IncrementalCleaner"]

_PROBABILITY_FLOOR = 1e-15


class IncrementalCleaner:
    """Streaming cleaning: a live frontier plus exact on-demand conditioning."""

    def __init__(self, constraints: ConstraintSet,
                 options: CleaningOptions = CleaningOptions(),
                 prior=None) -> None:
        self.constraints = constraints
        self.options = options
        self.prior = prior
        self._rows: List[Dict[str, float]] = []
        # Unnormalised filtered mass per frontier node state.
        self._frontier: Dict[NodeState, float] = {}

    # ------------------------------------------------------------------
    @property
    def duration(self) -> int:
        """How many timesteps have been ingested."""
        return len(self._rows)

    def extend_reading(self, readers) -> None:
        """Append one raw reading (requires a ``prior`` at construction)."""
        if self.prior is None:
            raise ReadingSequenceError(
                "extend_reading needs a prior model; pass prior= to the "
                "constructor or use extend() with a distribution")
        self.extend(self.prior.distribution(readers))

    def extend(self, candidates: Mapping[str, float]) -> None:
        """Append one timestep's location distribution and advance.

        Raises :class:`InconsistentReadingsError` when no valid
        continuation exists (the stream contradicts the constraints), and
        :class:`ReadingSequenceError` when a candidate probability is
        NaN, infinite, or negative — malformed input is rejected, never
        silently dropped (NaN fails every ``>`` test, so the floor filter
        alone would swallow it).  The cleaner's state is unchanged in
        either case, so the caller may drop the offending reading and
        continue.
        """
        for location, p in candidates.items():
            value = float(p)
            if not (value >= 0.0 and math.isfinite(value)):
                raise ReadingSequenceError(
                    f"timestep {self.duration}: probability of "
                    f"{location!r} is {value!r}; candidate probabilities "
                    "must be finite and non-negative")
        row = {location: float(p) for location, p in candidates.items()
               if p > _PROBABILITY_FLOOR}
        if not row:
            raise ReadingSequenceError(
                f"timestep {self.duration}: no location has positive "
                "probability")
        total = math.fsum(row.values())
        row = {location: p / total for location, p in row.items()}

        tau = self.duration
        frontier: Dict[NodeState, float] = {}
        if tau == 0:
            for location, state in source_states(row, self.constraints).items():
                frontier[state] = row[location]
        else:
            for state, mass in self._frontier.items():
                for destination, probability in row.items():
                    successor = successor_state(tau - 1, state, destination,
                                                self.constraints)
                    if successor is not None:
                        frontier[successor] = (frontier.get(successor, 0.0)
                                               + mass * probability)
            # Rescale to ward off underflow on long streams (only ratios
            # matter for the filtered distribution).
            peak = max(frontier.values(), default=0.0)
            if peak > 0.0:
                frontier = {state: mass / peak
                            for state, mass in frontier.items()}
        if not frontier:
            raise InconsistentReadingsError(
                f"no valid continuation at timestep {tau}")
        self._rows.append(row)
        self._frontier = frontier

    # ------------------------------------------------------------------
    def filtered_distribution(self) -> Dict[str, float]:
        """``P(X_now | readings so far, prefix validity)`` — the live estimate."""
        if not self._rows:
            raise ReadingSequenceError("no readings ingested yet")
        raw: Dict[str, float] = {}
        for (location, _stay, _departures), mass in self._frontier.items():
            raw[location] = raw.get(location, 0.0) + mass
        total = math.fsum(raw.values())
        return {location: mass / total for location, mass in raw.items()}

    def frontier_size(self) -> int:
        """How many node states the live frontier carries."""
        return len(self._frontier)

    def lsequence(self) -> LSequence:
        """The l-sequence accumulated so far (a copy)."""
        if not self._rows:
            raise ReadingSequenceError("no readings ingested yet")
        return LSequence([dict(row) for row in self._rows], _validate=False)

    def finalize(self) -> CTGraph:
        """Close the stream: run the exact conditioning, return the ct-graph.

        Equals the batch algorithm's output on the accumulated sequence.
        The cleaner keeps its state — more readings can be appended after
        this call and :meth:`finalize` called again.
        """
        return build_ct_graph(self.lsequence(), self.constraints,
                              self.options)
