"""Online (streaming) cleaning: ingest readings one at a time.

The batch Algorithm 1 needs the whole reading sequence before it can
condition.  Deployments, however, receive readings as a stream and want a
live position estimate.  :class:`IncrementalCleaner` maintains the forward
frontier of node states under the Definition 3 successor relation:

* :meth:`extend` appends one timestep's candidate distribution (or one
  reading, via a prior model) and advances the frontier;
* :meth:`filtered_distribution` returns the *filtered* estimate
  ``P(X_now | readings so far, constraints held so far)`` — the standard
  online quantity (it conditions on validity of the prefix only, so it
  will generally differ from the final smoothed marginal);
* :meth:`finalize` runs the full backward conditioning and returns the
  exact ct-graph — identical, path for path and probability for
  probability, to the batch algorithm run on the whole sequence (a
  property the tests assert).

The cleaner keeps every ingested row, so its memory grows with the stream;
for unbounded streams use :class:`repro.streaming.StreamingCleaner`, which
shares this module's frontier arithmetic (:func:`advance_frontier`) but
evicts settled prefix levels and stays O(window).

One caveat: the exact ``TL`` pruning of the batch algorithm
(:class:`repro.core.nodes.DepartureFilter`) needs the *future* support and
is therefore unavailable online; the live frontier can carry more node
states than the batch forward phase would.  Probabilities are unaffected.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.algorithm import CleaningOptions, build_ct_graph
from repro.core.constraints import ConstraintSet
from repro.core.ctgraph import CTGraph
from repro.core.flatgraph import FlatCTGraph
from repro.core.lsequence import LSequence
from repro.core.nodes import (
    NodeState,
    source_states,
    state_location,
    successor_state,
)
from repro.errors import InconsistentReadingsError, ReadingSequenceError

if TYPE_CHECKING:
    from repro.store.format import MappedCTGraph

__all__ = [
    "IncrementalCleaner",
    "FinalizedGraph",
    "Frontier",
    "advance_frontier",
    "advance_frontier_routed",
    "coerce_candidate_row",
    "frontier_to_dict",
    "resolve_finalize_options",
]

_PROBABILITY_FLOOR = 1e-15

#: What :meth:`IncrementalCleaner.finalize` actually returns — the shape
#: follows ``options.materialize`` exactly as in :func:`build_ct_graph`:
#: ``"nodes"``/``"auto"`` yield a :class:`CTGraph`, ``"flat"`` a
#: :class:`FlatCTGraph`, ``"store"`` an mmap-backed
#: :class:`~repro.store.format.MappedCTGraph` view of the written file.
FinalizedGraph = Union[CTGraph, FlatCTGraph, "MappedCTGraph"]


def coerce_candidate_row(candidates: Mapping[str, float],
                         timestep: int) -> Dict[str, float]:
    """One timestep's candidate distribution, validated and normalised.

    Every probability is coerced through ``float`` exactly once and the
    *coerced* value is reused for the positivity filter and the row — an
    int, a numpy scalar or a numeric string therefore behaves like the
    float it denotes instead of crashing with a bare ``TypeError`` deep
    in a comparison.  Raises :class:`ReadingSequenceError` when a value
    does not coerce, is NaN/infinite/negative (NaN fails every ``>``
    test, so the floor filter alone would silently swallow it), or when
    no location keeps positive mass.  Entry order is preserved — it
    determines downstream dict iteration, hence bit-exact results.
    """
    coerced: Dict[str, float] = {}
    for location, p in candidates.items():
        try:
            value = float(p)
        except (TypeError, ValueError):
            raise ReadingSequenceError(
                f"timestep {timestep}: probability of {location!r} is "
                f"{p!r}, which does not coerce to a float") from None
        if not (value >= 0.0 and math.isfinite(value)):
            raise ReadingSequenceError(
                f"timestep {timestep}: probability of "
                f"{location!r} is {value!r}; candidate probabilities "
                "must be finite and non-negative")
        if value > _PROBABILITY_FLOOR:
            coerced[location] = value
    if not coerced:
        raise ReadingSequenceError(
            f"timestep {timestep}: no location has positive "
            "probability")
    total = math.fsum(coerced.values())
    return {location: p / total for location, p in coerced.items()}


def advance_frontier(frontier: Dict[NodeState, float],
                     row: Mapping[str, float], tau: int,
                     constraints: ConstraintSet) -> Dict[NodeState, float]:
    """One step of the filtered-forward recursion.

    Returns the unnormalised (peak-rescaled) forward mass over the node
    states of timestep ``tau`` given the mass over timestep ``tau - 1``
    (``tau == 0`` seeds from :func:`source_states` instead).  This is the
    single shared implementation of the recursion — the unbounded
    :class:`IncrementalCleaner` and the windowed
    :class:`repro.streaming.StreamingCleaner` both call it, which is what
    makes their filtered estimates bit-identical.  Returns an empty dict
    when no valid continuation exists; the input ``frontier`` is never
    mutated.
    """
    advanced: Dict[NodeState, float] = {}
    if tau == 0:
        for location, state in source_states(row, constraints).items():
            advanced[state] = row[location]
        return advanced
    # Successor tuples are interned per step: a successor equal to one of
    # the *input* frontier's states reuses that exact tuple object, so
    # long streams (and the retained levels of StreamingCleaner) share
    # state tuples across levels instead of holding equal copies.
    interned: Dict[NodeState, NodeState] = {state: state
                                            for state in frontier}
    for state, mass in frontier.items():
        for destination, probability in row.items():
            successor = successor_state(tau - 1, state, destination,
                                        constraints)
            if successor is not None:
                successor = interned.setdefault(successor, successor)
                advanced[successor] = (advanced.get(successor, 0.0)
                                       + mass * probability)
    # Rescale to ward off underflow on long streams (only ratios matter
    # for the filtered distribution).  A peak of exactly 1.0 makes the
    # rescale the identity, so the dict rebuild is skipped.
    peak = max(advanced.values(), default=0.0)
    if peak > 0.0 and peak != 1.0:
        advanced = {state: mass / peak
                    for state, mass in advanced.items()}
    return advanced


#: A live forward frontier in either representation: the python oracle's
#: ``Dict[NodeState, float]`` or the vectorized
#: :class:`~repro.core.kernels.KernelFrontier` (signature node + float64
#: mass array).  Both are falsy exactly when no valid continuation exists
#: and ``len()`` is the state count.
Frontier = Union[Dict[NodeState, float], "KernelFrontier"]

if TYPE_CHECKING:
    from repro.core.kernels import FrontierKernel, KernelFrontier


def frontier_to_dict(frontier: "Frontier") -> Dict[NodeState, float]:
    """The oracle-form dict of either frontier representation.

    For a kernel frontier this materialises absolute node states in the
    oracle's key order with the kernel's float bits unchanged — the
    bridge that lets checkpoints, window conditioning and backend
    switches treat both representations uniformly.
    """
    if isinstance(frontier, dict):
        return frontier
    return frontier.to_dict()


def advance_frontier_routed(frontier: "Frontier", row: Mapping[str, float],
                            tau: int, constraints: ConstraintSet, *,
                            backend: str = "python",
                            kernel: Optional["FrontierKernel"] = None,
                            ) -> Tuple["Frontier",
                                       Optional["FrontierKernel"]]:
    """One ingest step, routed to the oracle or the vectorized kernel.

    The routing mirrors PR 7's sweep kernels: ``backend="python"`` always
    runs :func:`advance_frontier`; ``"numpy"`` runs the compiled
    transition tables of :class:`~repro.core.kernels.FrontierKernel` when
    numpy is available (falling back silently otherwise); ``"auto"``
    engages them only from
    :data:`~repro.core.kernels.KERNEL_MIN_LEVEL_EDGES` predicted
    transitions per step.  Returns ``(new_frontier, kernel)`` — the
    kernel is created lazily on first numpy use and must be threaded back
    in by the caller so its table cache persists across steps (and may be
    shared across a fleet's sessions).  Representation switches are
    handled here: a dict frontier entering the kernel path is adopted
    bit-exactly, a kernel frontier falling back to python is materialised
    first.
    """
    from repro.core import kernels as _kernels

    if backend == "python":
        resolved = "python"
    else:
        predicted_edges = max(1, len(frontier)) * len(row)
        resolved = _kernels.resolve_backend(backend,
                                            level_edges=predicted_edges)
    if resolved == "numpy":
        if kernel is None:
            kernel = _kernels.FrontierKernel(constraints)
        if tau == 0:
            return kernel.seed(row), kernel
        if isinstance(frontier, dict):
            live = kernel.enter(frontier, tau - 1)
        else:
            live = frontier
        return kernel.advance(live, row), kernel
    return (advance_frontier(frontier_to_dict(frontier), row, tau,
                             constraints), kernel)


def resolve_finalize_options(options: CleaningOptions,
                             output: Optional[str],
                             output_consumed: bool,
                             ) -> Tuple[CleaningOptions, bool]:
    """The effective options of one ``finalize()`` call.

    Returns ``(effective_options, consumed_configured_output)``.  An
    explicit ``output=`` always wins (and forces ``materialize="store"``,
    which must not contradict an explicit non-store materialisation).
    The *configured* ``options.output`` may be written exactly once per
    cleaner — a repeat ``finalize()`` without a fresh explicit path
    raises :class:`ReadingSequenceError` instead of silently overwriting
    the previous result.
    """
    if output is not None:
        if options.materialize not in ("auto", "store"):
            raise ReadingSequenceError(
                f"finalize(output=...) writes a .ctg file, which requires "
                f"materialize='store' (or 'auto'), "
                f"not {options.materialize!r}")
        return (replace(options, materialize="store", output=str(output)),
                False)
    if not options.store_materialize:
        return options, False
    if output_consumed:
        raise ReadingSequenceError(
            f"finalize() already wrote {options.output!r}; calling it "
            "again would silently overwrite that file — pass "
            "finalize(output=...) with a fresh path (or re-use the old "
            "one explicitly)")
    return options, True


class IncrementalCleaner:
    """Streaming cleaning: a live frontier plus exact on-demand conditioning."""

    def __init__(self, constraints: ConstraintSet,
                 options: CleaningOptions = CleaningOptions(),
                 prior=None, *,
                 frontier_kernel: Optional["FrontierKernel"] = None) -> None:
        self.constraints = constraints
        self.options = options
        self.prior = prior
        self._rows: List[Dict[str, float]] = []
        # Unnormalised filtered mass per frontier node state — dict form
        # under the python backend, KernelFrontier under numpy.
        self._frontier: Frontier = {}
        # The vectorized backend's transition-table cache; pass one in to
        # share compiled tables across cleaners (created lazily when the
        # numpy path first engages otherwise).
        self._kernel = frontier_kernel
        # Whether finalize() already wrote the *configured* options.output
        # (an explicit finalize(output=...) never sets this).
        self._output_consumed = False

    # ------------------------------------------------------------------
    @property
    def duration(self) -> int:
        """How many timesteps have been ingested."""
        return len(self._rows)

    def extend_reading(self, readers) -> None:
        """Append one raw reading (requires a ``prior`` at construction)."""
        if self.prior is None:
            raise ReadingSequenceError(
                "extend_reading needs a prior model; pass prior= to the "
                "constructor or use extend() with a distribution")
        self.extend(self.prior.distribution(readers))

    def extend(self, candidates: Mapping[str, float]) -> None:
        """Append one timestep's location distribution and advance.

        Raises :class:`InconsistentReadingsError` when no valid
        continuation exists (the stream contradicts the constraints), and
        :class:`ReadingSequenceError` when a candidate probability does
        not coerce to a float or is NaN, infinite, or negative —
        malformed input is rejected, never silently dropped.  The
        cleaner's state is unchanged in either case, so the caller may
        drop the offending reading and continue.
        """
        row = coerce_candidate_row(candidates, self.duration)
        tau = self.duration
        frontier, self._kernel = advance_frontier_routed(
            self._frontier, row, tau, self.constraints,
            backend=self.options.backend, kernel=self._kernel)
        if not frontier:
            raise InconsistentReadingsError(
                f"no valid continuation at timestep {tau}")
        self._rows.append(row)
        self._frontier = frontier

    # ------------------------------------------------------------------
    def filtered_distribution(self) -> Dict[str, float]:
        """``P(X_now | readings so far, prefix validity)`` — the live estimate."""
        if not self._rows:
            raise ReadingSequenceError("no readings ingested yet")
        frontier = self._frontier
        if isinstance(frontier, dict):
            raw: Dict[str, float] = {}
            for state, mass in frontier.items():
                location = state_location(state)
                raw[location] = raw.get(location, 0.0) + mass
        else:
            raw = frontier.location_masses()
        total = math.fsum(raw.values())
        return {location: mass / total for location, mass in raw.items()}

    def frontier_size(self) -> int:
        """How many node states the live frontier carries."""
        return len(self._frontier)

    def lsequence(self) -> LSequence:
        """The l-sequence accumulated so far (an independent copy)."""
        if not self._rows:
            raise ReadingSequenceError("no readings ingested yet")
        return LSequence([dict(row) for row in self._rows], _validate=False)

    def finalize(self, *, output: Optional[str] = None) -> FinalizedGraph:
        """Close the stream: run the exact conditioning, return the ct-graph.

        Equals the batch algorithm's output on the accumulated sequence,
        in the shape ``options.materialize`` selects (see
        :data:`FinalizedGraph`): a :class:`CTGraph` for ``"nodes"`` /
        ``"auto"``, a :class:`FlatCTGraph` for ``"flat"``, an mmap-backed
        :class:`~repro.store.format.MappedCTGraph` for ``"store"``.

        The cleaner keeps its state — more readings can be appended after
        this call and :meth:`finalize` called again.  With ``"store"``
        materialisation each call writes one file: the constructor-
        configured ``options.output`` is honoured for the *first* call
        only, and every further call must name a fresh path via
        ``output=`` (raising :class:`ReadingSequenceError` otherwise)
        instead of silently overwriting the earlier result.  An explicit
        ``output=`` also works with ``materialize="auto"`` options — the
        call then behaves exactly like ``build_ct_graph`` with
        ``output=`` set, returning the mapped view.
        """
        lsequence = self.lsequence()
        options, consumed = resolve_finalize_options(
            self.options, output, self._output_consumed)
        graph = build_ct_graph(lsequence, self.constraints, options)
        if consumed:
            self._output_consumed = True
        return graph
