"""The flat (columnar) form of a conditioned-trajectory graph.

A :class:`FlatCTGraph` stores exactly the information queries consume —
interned location ids, per-level ``location``/``stay`` arrays, per-level
CSR edge arrays and the conditioned source distribution — without one
Python object per node.  It is the query substrate of
:class:`repro.queries.session.QuerySession`: every query DP becomes index
arithmetic over tuples instead of attribute access over a ``CTNode`` web.

Two producers, one representation:

* :meth:`repro.core.ctgraph.CTGraph.to_flat` converts a materialised node
  graph;
* ``CleaningOptions(materialize="flat")`` makes both cleaning engines emit
  the flat form directly — the compact engine skips ``CTNode``
  materialisation entirely (its backward sweep already lives on flat
  arrays).

A third form shares the representation without owning it: the binary
``.ctg`` store (:mod:`repro.store`) serialises exactly these columns, and
:class:`repro.store.format.MappedCTGraph` serves them back as zero-copy
slices over one mmap behind the same duck surface — consumers written
against ``FlatCTGraph`` (``QuerySession``, the kernels' ``GraphViews``,
the exporters) accept either interchangeably.

The two routes are **bit-identical**: same interning order (first
appearance, level-major), same per-level node order (the order the
reference builder files surviving nodes), same CSR edge order (edge
insertion order) and the same conditioned floats.  The hypothesis suite
in ``tests/test_queries_flat.py`` pins this.

What the flat form deliberately drops: the ``departures`` (``TL``)
tuples and the parent lists — construction bookkeeping no query reads.
That, plus replacing per-node dicts with shared tuples, is where the
memory win of ``estimate_size_bytes`` comes from (``docs/perf.md``).

CSR layout, per edge level ``tau`` (levels ``0 .. duration - 2``)::

    edge_offsets[tau]        len(level tau) + 1 monotone ints
    edge_children[tau]       child indices, local to level tau + 1
    edge_probabilities[tau]  conditioned edge probabilities

The edges of node ``i`` of level ``tau`` are the slice
``edge_offsets[tau][i] : edge_offsets[tau][i + 1]`` of the two parallel
arrays, in the same order the node-graph ``edges`` dict iterates.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import GraphInvariantError, QueryError

if TYPE_CHECKING:
    from repro.core.algorithm import CleaningStats

__all__ = ["FlatCTGraph"]


@dataclass(frozen=True)
class FlatCTGraph:
    """A finished ct-graph as interned, columnar arrays (module docstring).

    Equality compares the full structure — names, levels, CSR arrays and
    source distribution — but not ``stats`` (timings never repeat), so two
    bit-identical cleanings compare equal however they were produced.
    The dataclass is frozen and all fields are plain tuples: instances
    pickle cheaply (the batch runtime ships them between processes) and
    are safe to share across threads.
    """

    #: Interned location names; array entries hold indices into this.
    location_names: Tuple[str, ...]
    #: Per level, the location id of every node.
    locations: Tuple[Tuple[int, ...], ...]
    #: Per level, every node's latency stay counter (``None`` = no bound).
    stays: Tuple[Tuple[Optional[int], ...], ...]
    #: Per edge level, the CSR row offsets (``len(level) + 1`` entries).
    edge_offsets: Tuple[Tuple[int, ...], ...]
    #: Per edge level, child indices local to the next level.
    edge_children: Tuple[Tuple[int, ...], ...]
    #: Per edge level, the conditioned edge probabilities.
    edge_probabilities: Tuple[Tuple[float, ...], ...]
    #: The conditioned source distribution (level-0 node order).
    source_probabilities: Tuple[float, ...]
    #: Construction counters, ``None`` for hand-built graphs.
    stats: Optional["CleaningStats"] = field(default=None, compare=False)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def duration(self) -> int:
        """The number of timesteps (levels)."""
        return len(self.locations)

    def level_size(self, tau: int) -> int:
        """How many nodes level ``tau`` holds."""
        if not 0 <= tau < len(self.locations):
            raise QueryError(
                f"timestep {tau} outside [0, {len(self.locations)})")
        return len(self.locations[tau])

    @property
    def num_nodes(self) -> int:
        return sum(len(level) for level in self.locations)

    @property
    def num_edges(self) -> int:
        return sum(len(children) for children in self.edge_children)

    def location_name(self, lid: int) -> str:
        return self.location_names[lid]

    def locations_at(self, tau: int) -> Tuple[str, ...]:
        """Distinct locations present at timestep ``tau`` (sorted)."""
        if not 0 <= tau < len(self.locations):
            raise QueryError(
                f"timestep {tau} outside [0, {len(self.locations)})")
        names = self.location_names
        return tuple(sorted({names[lid] for lid in self.locations[tau]}))

    # ------------------------------------------------------------------
    # trajectories
    # ------------------------------------------------------------------
    def num_valid_trajectories(self) -> int:
        """How many source->target paths (= valid trajectories) exist."""
        counts = [1] * len(self.locations[-1])
        for tau in range(self.duration - 2, -1, -1):
            offsets = self.edge_offsets[tau]
            children = self.edge_children[tau]
            counts = [sum(counts[children[e]]
                          for e in range(offsets[i], offsets[i + 1]))
                      for i in range(len(self.locations[tau]))]
        return sum(counts)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def validate(self, tolerance: float = 1e-6) -> None:
        """Check the Definition 4 invariants on the flat arrays.

        The columnar mirror of :meth:`CTGraph.validate`: consistent array
        lengths, a normalised source distribution, normalised outgoing
        rows for every non-target node, in-range child indices.
        """
        duration = self.duration
        if duration == 0:
            raise GraphInvariantError("a ct-graph needs at least one level")
        if not (len(self.stays) == duration
                and len(self.edge_offsets) == duration - 1
                and len(self.edge_children) == duration - 1
                and len(self.edge_probabilities) == duration - 1):
            raise GraphInvariantError("level array lengths disagree")
        if len(self.source_probabilities) != len(self.locations[0]):
            raise GraphInvariantError(
                "source distribution length disagrees with level 0")
        total = math.fsum(self.source_probabilities)
        if abs(total - 1.0) > tolerance:
            raise GraphInvariantError(
                f"source probabilities sum to {total}")
        for tau in range(duration):
            count = len(self.locations[tau])
            if len(self.stays[tau]) != count:
                raise GraphInvariantError(f"stay row {tau} length disagrees")
            for lid in self.locations[tau]:
                if not 0 <= lid < len(self.location_names):
                    raise GraphInvariantError(
                        f"level {tau} holds unknown location id {lid}")
            if tau == duration - 1:
                continue
            offsets = self.edge_offsets[tau]
            children = self.edge_children[tau]
            probabilities = self.edge_probabilities[tau]
            if len(offsets) != count + 1 or offsets[0] != 0 \
                    or offsets[-1] != len(children) \
                    or len(children) != len(probabilities):
                raise GraphInvariantError(f"CSR arrays of level {tau} "
                                          "are inconsistent")
            next_count = len(self.locations[tau + 1])
            for child in children:
                if not 0 <= child < next_count:
                    raise GraphInvariantError(
                        f"level {tau} edge points at child {child} outside "
                        f"level {tau + 1}")
            for i in range(count):
                start, end = offsets[i], offsets[i + 1]
                if end <= start:
                    raise GraphInvariantError(
                        f"non-target node {i} of level {tau} has no "
                        "successors")
                row_total = math.fsum(probabilities[start:end])
                if abs(row_total - 1.0) > tolerance:
                    raise GraphInvariantError(
                        f"outgoing probabilities of node {i} at level "
                        f"{tau} sum to {row_total}")

    def estimate_size_bytes(self) -> int:
        """A size estimate of the flat graph (compare with the node form).

        Counts the tuples actually held (8 bytes per slot included in
        ``sys.getsizeof``) plus 24 bytes per boxed edge/source float.
        Small ints (location ids, most offsets) are interpreter-cached,
        so slots dominate their cost.  Like
        :meth:`CTGraph.estimate_size_bytes`, only ratios are meaningful.
        """
        total = sys.getsizeof(self.location_names)
        total += sum(sys.getsizeof(name) for name in self.location_names)
        for group in (self.locations, self.stays, self.edge_offsets,
                      self.edge_children, self.edge_probabilities):
            total += sys.getsizeof(group)
            total += sum(sys.getsizeof(row) for row in group)
        total += 24 * sum(len(row) for row in self.edge_probabilities)
        total += sys.getsizeof(self.source_probabilities)
        total += 24 * len(self.source_probabilities)
        return total

    def __repr__(self) -> str:
        return (f"FlatCTGraph(duration={self.duration}, "
                f"nodes={self.num_nodes}, edges={self.num_edges}, "
                f"locations={len(self.location_names)})")


def _intern(name: str, ids: Dict[str, int], names: List[str]) -> int:
    lid = ids.get(name)
    if lid is None:
        lid = len(names)
        ids[name] = lid
        names.append(name)
    return lid
