"""Algorithm 1: building the conditioned-trajectory graph (Section 5).

The construction has two phases.

**Forward** — level by level, every node of timestep ``tau`` is expanded
with its successors among the prior-compatible locations of ``tau + 1``
(Definition 3 permitting).  Each created edge carries the a-priori
probability of its destination's ``(timestep, location)`` pair.  Prior mass
of next-step locations a node cannot legally reach is simply not covered by
its outgoing edges — it is the paper's initial ``loss``.

**Backward** — levels are swept from the last timestep down to the sources.
For every node ``n`` the sweep computes its *survival*::

    S(n) = sum over surviving edges (n, n') of  p_edge * S(n')

(targets have ``S = 1``).  ``S(n)`` is exactly ``1 - loss(n)`` of the
paper's queue-driven formulation: the fraction of the prior mass of ``n``'s
continuations that yields valid trajectories.  Nodes with ``S = 0`` are
deleted (they are the paper's ``loss = 1`` leaves and their ancestors-only-
of-dead-nodes); every surviving edge is conditioned to
``p_edge * S(n') / S(n)``, and finally source probabilities are conditioned
to ``p_prior(n) * S(n) / sum over sources``.

Two deliberate deviations from the printed pseudo-code, both pinned by the
property tests against the naive enumerator (DESIGN.md §3):

* the printed line 31 normalises ``p_N`` without first damping each source
  by its own survival ``1 - loss``; the damping is required for path
  probabilities to equal the conditioned trajectory probabilities (the
  paper's running example cannot tell the difference because a single
  source survives there);
* the backward pass propagates *relative* survivals, rescaled per level so
  that each level's maximum is 1, instead of the paper's absolute losses.
  The two are mathematically identical (conditioning only uses survival
  ratios within a node), but absolute survivals are products over the
  remaining duration and underflow float64 around a few hundred timesteps,
  silently turning every node into a ``loss = 1`` casualty.  The rescaled
  sweep is robust at any duration.

Complexity: with ``S`` the number of node states per timestep and ``L`` the
per-timestep branching of the l-sequence, the forward phase performs
``O(duration * S * L)`` state expansions and the backward sweep touches
every edge exactly once — polynomial in the trajectory length, as the
paper claims.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Union

from repro.core.constraints import ConstraintSet
from repro.core.ctgraph import CTGraph, CTNode
from repro.core.flatgraph import FlatCTGraph
from repro.core.kernels import BACKENDS as _kernel_backends
from repro.core.lsequence import LSequence, ReadingSequence
from repro.core.nodes import (
    DepartureFilter,
    NodeState,
    _unchecked_successor,
    source_states,
)
from repro.errors import ReadingSequenceError, ZeroMassError

__all__ = ["CleaningOptions", "CleaningStats", "build_ct_graph", "clean"]

#: Policies for stays cut short by the end of the monitoring window.
TRUNCATED_STAY_POLICIES = ("lenient", "strict")

#: Pre-flight static-analysis modes (see ``repro.analysis``).
PRECHECK_MODES = ("off", "warn", "error")

#: The interchangeable Algorithm 1 implementations (see ``docs/perf.md``).
ENGINES = ("auto", "reference", "compact")

#: What :func:`build_ct_graph` materialises: ``CTNode`` objects
#: (``"nodes"``; ``"auto"`` currently resolves to the same), the
#: columnar :class:`~repro.core.flatgraph.FlatCTGraph` (``"flat"``), or
#: a ``.ctg`` file written straight from the flat arrays (``"store"``,
#: which requires ``output=`` and returns a zero-copy
#: :class:`~repro.store.format.MappedCTGraph` view of the file).
MATERIALIZE_MODES = ("auto", "nodes", "flat", "store")

#: The sweep backends (see :mod:`repro.core.kernels`): pure-python loops
#: (default, the parity oracle), optional numpy level kernels, or
#: advisor-routed ``"auto"``.
BACKENDS = _kernel_backends

#: Fallback duration threshold for ``engine="auto"``: below it the
#: reference builder's lower fixed cost wins, above it the memoised
#: transition rows dominate.  :func:`build_ct_graph` now routes ``auto``
#: through the static advisor's predicted state count
#: (:func:`repro.analysis.advisor.advise`); this duration knob remains the
#: documented fallback for callers that resolve an engine without an
#: l-sequence in hand.  Both engines are bit-exact, so either threshold is
#: purely a performance knob (calibrated by ``benchmarks/bench_engine``).
AUTO_COMPACT_MIN_DURATION = 48


def _resolve_engine(engine: str, duration: int) -> str:
    """The fallback engine resolution: ``auto`` picks by duration only."""
    if engine == "auto":
        if duration >= AUTO_COMPACT_MIN_DURATION:
            return "compact"
        return "reference"
    return engine


def _route_options(options: "CleaningOptions", lsequence: LSequence,
                   constraints: ConstraintSet,
                   plan=None) -> "CleaningOptions":
    """The concrete options for one :func:`build_ct_graph` run.

    Explicit ``engine`` and ``backend`` choices pass through.  ``auto``
    in either field asks the static advisor
    (:func:`repro.analysis.advisor.recommend_options`) — engine routed by
    the predicted state count, backend by the predicted mean edges per
    level — through the plan's advice cache when a
    :class:`~repro.runtime.plan.SharedCleaningPlan` is supplied, so
    periodic batch workloads pay for one envelope per support signature
    rather than one per object.  The two fields resolve independently:
    an explicit choice in one never blocks advice for the other.
    Duck-typed plans without an ``advice_for`` method fall back to the
    direct path.
    """
    if options.engine != "auto" and options.backend != "auto":
        return options
    if plan is not None:
        advice_for = getattr(plan, "advice_for", None)
        if advice_for is not None:
            advice = advice_for(lsequence, options)
            return replace(
                options,
                engine=(options.engine if options.engine != "auto"
                        else advice.engine),
                backend=(options.backend if options.backend != "auto"
                         else advice.backend))
    # Imported lazily: repro.analysis depends on this module.
    from repro.analysis.advisor import recommend_options

    return recommend_options(lsequence, constraints, options)


@dataclass(frozen=True)
class CleaningOptions:
    """Tunable semantics of the cleaning run.

    ``truncated_stay_policy`` — what to do with a latency-constrained stay
    that reaches the final timestep before meeting its bound: ``"lenient"``
    (default, the printed algorithm's behaviour) keeps it, ``"strict"``
    (Definition 2 read literally) discards it.

    ``precheck`` — whether to run the static constraint/map analyzer
    (``repro.analysis``) before the forward pass: ``"off"`` (default)
    skips it, ``"warn"`` emits a :class:`UserWarning` per ERROR diagnostic,
    ``"error"`` additionally refuses inputs whose pre-check *proves* the
    valid prior mass is zero (rule C005) by raising
    :class:`~repro.errors.ZeroMassError` up front — same outcome as
    running Algorithm 1, minus the cost of the doomed run.

    ``engine`` — which Algorithm 1 implementation runs: ``"reference"``
    (the direct builder above), ``"compact"`` (the interned engine of
    :mod:`repro.core.engine` — memoised transition rows, columnar backward
    sweep), or ``"auto"`` (default: routed per instance by the static
    advisor's predicted state count, see
    :func:`repro.analysis.advisor.recommend_options`).  The engines are
    bit-exact with each other — same graph, same probabilities, same
    stats counters — so the choice is purely about speed; see
    ``docs/perf.md``.

    ``materialize`` — the shape of the returned graph: ``"nodes"``
    builds the :class:`~repro.core.ctgraph.CTGraph` object web (the
    historical behaviour), ``"flat"`` returns the columnar
    :class:`~repro.core.flatgraph.FlatCTGraph` instead — the compact
    engine then never materialises ``CTNode`` objects at all, which is
    both faster and smaller when the caller only runs queries (through
    :class:`repro.queries.session.QuerySession`).  ``"store"`` goes one
    step further: the flat columns are written straight into the
    ``output=`` path as a ``rfid-ctg/ctg@1`` binary file (on the numpy
    route the engine's ndarrays go to disk without ever becoming Python
    tuples) and the call returns a zero-copy
    :class:`~repro.store.format.MappedCTGraph` view of that file.
    ``"auto"`` (default) behaves like ``"nodes"``; it resolves to
    ``"store"`` when ``output=`` is given, and the batch runtime
    resolves it to ``"flat"`` when a
    :class:`~repro.runtime.plan.QueryPlan` discards graphs.  All shapes
    carry the same information for queries and are bit-identical with
    each other (``CTGraph.to_flat``, ``MappedCTGraph.materialize``); see
    ``docs/perf.md`` and ``docs/store.md``.

    ``output`` — the ``.ctg`` path ``materialize="store"`` writes;
    setting it with ``materialize="auto"`` selects ``"store"``
    implicitly, and any other explicit materialisation alongside
    ``output`` is a configuration error.

    ``backend`` — how the compact engine's backward survival sweep and
    flat materialisation run: ``"python"`` (default) uses the pure-python
    loops, which remain the parity oracle; ``"numpy"`` runs the
    whole-level ndarray kernels of :mod:`repro.core.kernels` when numpy
    is importable (silently falling back otherwise); ``"auto"`` lets the
    static advisor engage the kernels only above the calibrated
    edges-per-level threshold.  Kernel results are pinned to the oracle
    by the tolerance gate documented in ``docs/perf.md``: identical graph
    structure and tie-breaks, floats equal to 1e-12 relative.  The
    backend only affects flat-materialised compact builds (and
    :class:`~repro.queries.session.QuerySession` sweeps, which take
    their own ``backend`` argument); node-materialised and reference
    builds always run in python.
    """

    truncated_stay_policy: str = "lenient"
    precheck: str = "off"
    engine: str = "auto"
    materialize: str = "auto"
    backend: str = "python"
    output: Optional[str] = None

    def __post_init__(self) -> None:
        if self.truncated_stay_policy not in TRUNCATED_STAY_POLICIES:
            raise ReadingSequenceError(
                f"unknown truncated_stay_policy "
                f"{self.truncated_stay_policy!r}; "
                f"expected one of {TRUNCATED_STAY_POLICIES}")
        if self.precheck not in PRECHECK_MODES:
            raise ReadingSequenceError(
                f"unknown precheck mode {self.precheck!r}; "
                f"expected one of {PRECHECK_MODES}")
        if self.engine not in ENGINES:
            raise ReadingSequenceError(
                f"unknown engine {self.engine!r}; "
                f"expected one of {ENGINES}")
        if self.materialize not in MATERIALIZE_MODES:
            raise ReadingSequenceError(
                f"unknown materialize mode {self.materialize!r}; "
                f"expected one of {MATERIALIZE_MODES}")
        if self.backend not in BACKENDS:
            raise ReadingSequenceError(
                f"unknown backend {self.backend!r}; "
                f"expected one of {BACKENDS}")
        if self.output is not None and self.materialize == "auto":
            object.__setattr__(self, "materialize", "store")
        if self.materialize == "store" and self.output is None:
            raise ReadingSequenceError(
                "materialize='store' writes a .ctg file and needs "
                "output=... (the path to write)")
        if self.output is not None and self.materialize != "store":
            raise ReadingSequenceError(
                f"output= writes a .ctg file, which requires "
                f"materialize='store' (or 'auto'), "
                f"not {self.materialize!r}")

    @property
    def strict_truncation(self) -> bool:
        return self.truncated_stay_policy == "strict"

    @property
    def flat_materialize(self) -> bool:
        return self.materialize == "flat"

    @property
    def columnar_materialize(self) -> bool:
        """Flat-array materialisation — in memory (``"flat"``) or written
        straight to a ``.ctg`` file (``"store"``).  This is the knob the
        engines route on: both modes share the columnar build and skip
        ``CTNode`` construction entirely."""
        return self.materialize in ("flat", "store")

    @property
    def store_materialize(self) -> bool:
        return self.materialize == "store"


@dataclass
class CleaningStats:
    """Counters filled in by :func:`build_ct_graph` (attached to the graph)."""

    nodes_created: int = 0
    nodes_removed: int = 0
    edges_created: int = 0
    edges_removed: int = 0
    #: Wall-clock seconds of the forward expansion and of the backward
    #: survival sweep (conditioning and materialisation included), filled
    #: by both engines so wins are attributable per phase.  Excluded from
    #: equality — two identical cleanings never time identically.
    forward_seconds: float = field(default=0.0, compare=False)
    backward_seconds: float = field(default=0.0, compare=False)
    #: Wall-clock seconds of the backward survival sweep *proper* (edge
    #: weights, per-node masses, rescaled survivals — everything before
    #: materialisation starts).  Filled by the compact engine only, for
    #: both backends: this is the slice the optional numpy kernels
    #: replace, so ``benchmarks/bench_engine``'s ``kernel_speedup`` is
    #: the ratio of these.  ``backward_seconds`` still covers sweep plus
    #: materialisation.
    sweep_seconds: float = field(default=0.0, compare=False)

    @property
    def nodes_kept(self) -> int:
        return self.nodes_created - self.nodes_removed

    @property
    def edges_kept(self) -> int:
        return self.edges_created - self.edges_removed


def build_ct_graph(lsequence: LSequence, constraints: ConstraintSet,
                   options: CleaningOptions = CleaningOptions(), *,
                   plan=None) -> Union[CTGraph, FlatCTGraph]:
    """Run Algorithm 1: the ct-graph of ``lsequence`` under ``constraints``.

    Raises :class:`InconsistentReadingsError` when no trajectory compatible
    with the l-sequence satisfies the constraints (conditioning undefined).
    The returned graph carries its :class:`CleaningStats` as ``graph.stats``.
    With ``CleaningOptions(materialize="flat")`` the result is the
    columnar :class:`~repro.core.flatgraph.FlatCTGraph` instead of the
    ``CTNode`` web — bit-identical to ``.to_flat()`` of the node graph.
    With ``materialize="store"`` (or ``output=...``) the columns are
    written to a ``.ctg`` file instead and the returned graph is a
    zero-copy :class:`~repro.store.format.MappedCTGraph` view of it.

    ``plan`` is an optional
    :class:`repro.runtime.SharedCleaningPlan` (or any object with the same
    ``constraints``/``du_row``/``precheck`` surface) holding precomputation
    shared across the many objects of a batch: cached DU-reachability rows
    and a run-once analyzer pre-check.  Passing a plan never changes the
    result — only where the bookkeeping lives.  The plan must be built for
    this very constraint set.
    """
    if plan is not None and plan.constraints != constraints:
        raise ReadingSequenceError(
            "the shared cleaning plan was built for a different "
            "constraint set")
    routed = _route_options(options, lsequence, constraints, plan)
    if routed.engine == "compact":
        # The compact engine owns the whole contract (plan validation,
        # pre-check, stats); imported lazily to keep the module DAG simple.
        from repro.core.engine import build_ct_graph_compact

        return build_ct_graph_compact(lsequence, constraints, routed,
                                      plan=plan)
    if plan is not None:
        plan.precheck(lsequence, options)
    elif options.precheck != "off":
        _run_precheck(lsequence, constraints, options)

    stats = CleaningStats()
    forward_started = time.perf_counter()
    duration = lsequence.duration
    last = duration - 1

    # ------------------------------------------------------------------
    # initialisation: source nodes from the timestep-0 candidates
    # ------------------------------------------------------------------
    levels: List[Dict[NodeState, CTNode]] = [{} for _ in range(duration)]
    prior_source_probability: Dict[CTNode, float] = {}
    for location, state in source_states(lsequence.support(0), constraints).items():
        if options.strict_truncation and last == 0 and state[1] is not None:
            continue
        node = CTNode(0, *state)
        levels[0][state] = node
        prior_source_probability[node] = lsequence.probability(0, location)
        stats.nodes_created += 1
    if not levels[0]:
        raise ZeroMassError(
            "no source location satisfies the constraints at timestep 0")

    # ------------------------------------------------------------------
    # forward phase
    # ------------------------------------------------------------------
    departure_filter = (DepartureFilter(lsequence, constraints)
                        if constraints.tt_sources else None)
    for tau in range(duration - 1):
        frontier = levels[tau]
        next_level = levels[tau + 1]
        candidates = lsequence.candidates(tau + 1)
        # The plan's row cache is keyed on the *sorted* support: the same
        # location set listed in different orders across levels (or
        # objects) must hit one row, so the key is canonicalised once per
        # level and the row is a set filtered through ``candidates`` order.
        support = tuple(sorted(candidates)) if plan is not None else ()
        filter_binding = options.strict_truncation and tau + 1 == last
        # Rule 2 (DU) is hoisted: the reachable candidates are shared by
        # every node at the same location of this level.  With a shared
        # plan the (location, support) -> destinations row is additionally
        # cached across levels and across the objects of a batch.
        reachable: Dict[str, list] = {}
        for node in frontier.values():
            location = node.location
            allowed = reachable.get(location)
            if allowed is None:
                if plan is not None:
                    row = plan.du_row(location, support)
                    allowed = [(destination, probability)
                               for destination, probability
                               in candidates.items()
                               if destination in row]
                else:
                    allowed = [(destination, probability)
                               for destination, probability
                               in candidates.items()
                               if not constraints.forbids_step(location,
                                                               destination)]
                reachable[location] = allowed
            state = (location, node.stay, node.departures)
            for destination, probability in allowed:
                successor = _unchecked_successor(tau, state, destination,
                                                 constraints,
                                                 departure_filter)
                if successor is None:
                    continue
                if filter_binding and successor[1] is not None:
                    continue
                child = next_level.get(successor)
                if child is None:
                    child = CTNode(tau + 1, *successor)
                    next_level[successor] = child
                    stats.nodes_created += 1
                node.edges[child] = probability
                child.parents.append(node)
                stats.edges_created += 1
        if not next_level:
            raise ZeroMassError(
                f"no trajectory can legally continue past timestep {tau}")

    # ------------------------------------------------------------------
    # backward phase: survival sweep with per-level rescaling
    # ------------------------------------------------------------------
    backward_started = time.perf_counter()
    stats.forward_seconds = backward_started - forward_started
    survival: Dict[CTNode, float] = {node: 1.0 for node in levels[last].values()}
    for tau in range(last - 1, -1, -1):
        level = levels[tau]
        dead: List[NodeState] = []
        level_max = 0.0
        for state, node in level.items():
            mass = 0.0
            surviving_edges: Dict[CTNode, float] = {}
            for child, probability in node.edges.items():
                child_survival = survival.get(child, 0.0)
                if child_survival > 0.0:
                    weight = probability * child_survival
                    surviving_edges[child] = weight
                    mass += weight
            if mass <= 0.0:
                dead.append(state)
                stats.edges_removed += len(node.edges)
                node.edges.clear()
                continue
            # Condition: each edge's probability becomes its share of the
            # surviving mass (this is p_edge * S(child) / S(node)).
            stats.edges_removed += len(node.edges) - len(surviving_edges)
            node.edges = {child: weight / mass
                          for child, weight in surviving_edges.items()}
            survival[node] = mass
            if mass > level_max:
                level_max = mass
        for state in dead:
            node = level.pop(state)
            stats.nodes_removed += 1
        if not level:
            raise ZeroMassError(
                "no trajectory compatible with the readings satisfies "
                "the constraints")
        # Rescale so the level's largest survival is 1 — conditioning only
        # ever uses survival ratios, and this keeps float64 from
        # underflowing on long sequences.
        if level_max > 0.0:
            for node in level.values():
                survival[node] /= level_max

    # Drop now-unreachable bookkeeping: parents entries of removed nodes.
    for tau in range(1, duration):
        for node in levels[tau].values():
            node.parents = [parent for parent in node.parents if parent.edges]
    # A level-(tau+1) node none of whose parents survived cannot happen:
    # an alive child forces every parent's survival to be positive through
    # the connecting edge.  The graph validation in the tests asserts this.

    # ------------------------------------------------------------------
    # source conditioning (with the survival damping — DESIGN.md §3)
    # ------------------------------------------------------------------
    source_probabilities: Dict[CTNode, float] = {}
    for node in levels[0].values():
        source_probabilities[node] = (
            prior_source_probability[node] * survival.get(node, 1.0))
    total = math.fsum(source_probabilities.values())
    if total <= 0.0:
        raise ZeroMassError(
            "the valid trajectories have zero total prior probability")
    for node in source_probabilities:
        source_probabilities[node] /= total

    stats.backward_seconds = time.perf_counter() - backward_started
    graph = CTGraph([tuple(level.values()) for level in levels],
                    source_probabilities, stats=stats)
    if options.columnar_materialize:
        # The reference builder always materialises nodes; the flat form
        # is a conversion here (the compact engine emits it natively).
        flat = graph.to_flat()
        if options.store_materialize:
            from repro.store.format import load_ctg, save_ctg

            save_ctg(flat, options.output)
            return load_ctg(options.output, mmap=True)
        return flat
    return graph


def _run_precheck(lsequence: LSequence, constraints: ConstraintSet,
                  options: CleaningOptions) -> None:
    """The opt-in pre-flight hook: static analysis before the forward pass.

    Imported lazily so the core algorithm has no hard dependency on the
    analyzer.  ``"warn"`` surfaces every ERROR diagnostic as a
    :class:`UserWarning`; ``"error"`` additionally raises
    :class:`~repro.errors.ZeroMassError` when rule C005 *proves* the valid
    prior mass is zero (other ERROR diagnostics — e.g. a C001
    contradiction on a location the readings never touch — do not imply
    zero mass, so they only ever warn; the pre-check never rejects an
    input Algorithm 1 could clean).
    """
    import warnings

    from repro.analysis import ZERO_MASS_RULE, analyze

    report = analyze(constraints, readings=lsequence,
                     strict_truncation=options.strict_truncation)
    for diagnostic in report.errors:
        if options.precheck == "error" and diagnostic.code == ZERO_MASS_RULE:
            raise ZeroMassError(f"pre-check {diagnostic.code}: "
                                f"{diagnostic.message}")
        warnings.warn(f"pre-check {diagnostic.code}: {diagnostic.message}",
                      stacklevel=3)


def clean(readings: ReadingSequence, prior, constraints: ConstraintSet,
          options: CleaningOptions = CleaningOptions()
          ) -> Union[CTGraph, FlatCTGraph]:
    """End-to-end cleaning: readings -> l-sequence -> conditioned ct-graph.

    ``prior`` is anything with a ``distribution(readers)`` method, normally
    a :class:`repro.rfid.priors.PriorModel`.
    """
    lsequence = LSequence.from_readings(readings, prior)
    return build_ct_graph(lsequence, constraints, options)
