"""Drawing valid trajectories from a ct-graph.

Section 7 of the paper points out that a ct-graph makes *sampling under
constraints* trivial: every source->target walk is a valid trajectory, so
no rejection machinery is needed.  :class:`TrajectorySampler` implements
exactly that ancestral walk; the sampling ablation benchmark compares it
against rejection sampling from the a-priori distribution.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy environments
    from repro.optional import missing_dependency

    np = missing_dependency("numpy", "repro[numpy]")  # type: ignore[assignment]

from repro.core.constraints import ConstraintSet
from repro.core.ctgraph import CTGraph, CTNode
from repro.core.lsequence import LSequence, Trajectory
from repro.core.validity import is_valid_trajectory

__all__ = ["TrajectorySampler", "rejection_sample"]


class TrajectorySampler:
    """Ancestral sampling of trajectories from a conditioned ct-graph.

    Every draw is i.i.d. from the conditioned distribution
    ``p*(t | Theta ∧ IC)`` — by construction of the graph, the walk picks a
    source by ``p_N`` and then follows outgoing-edge distributions.
    """

    def __init__(self, graph: CTGraph,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.graph = graph
        self.rng = rng if rng is not None else np.random.default_rng()
        sources = graph.sources
        self._sources: Tuple[CTNode, ...] = sources
        self._source_probs = np.array(
            [graph.source_probability(node) for node in sources])

    def sample(self) -> Trajectory:
        """One trajectory drawn from the conditioned distribution."""
        index = int(self.rng.choice(len(self._sources), p=self._source_probs))
        node = self._sources[index]
        steps: List[str] = [node.location]
        while node.edges:
            children = list(node.edges.items())
            probabilities = np.array([p for _, p in children])
            # Guard against float drift: renormalise locally.
            probabilities = probabilities / probabilities.sum()
            pick = int(self.rng.choice(len(children), p=probabilities))
            node = children[pick][0]
            steps.append(node.location)
        return tuple(steps)

    def sample_many(self, count: int) -> Iterator[Trajectory]:
        """``count`` i.i.d. trajectory draws."""
        for _ in range(count):
            yield self.sample()


def rejection_sample(lsequence: LSequence, constraints: ConstraintSet,
                     count: int, rng: Optional[np.random.Generator] = None, *,
                     strict_truncation: bool = False,
                     max_attempts: Optional[int] = None,
                     ) -> Tuple[List[Trajectory], int]:
    """The comparator: sample from the prior, reject invalid trajectories.

    Draws trajectories from the independent a-priori distribution and keeps
    the ones satisfying the constraints, stopping after ``count`` accepts
    or ``max_attempts`` draws (default ``1000 * count``).  Returns the
    accepted trajectories and the number of attempts — the attempt count is
    the efficiency figure the ablation benchmark reports.
    """
    if rng is None:
        rng = np.random.default_rng()
    if max_attempts is None:
        max_attempts = 1000 * count

    per_step: List[Tuple[List[str], np.ndarray]] = []
    for tau in range(lsequence.duration):
        row = lsequence.candidates(tau)
        names = list(row)
        per_step.append((names, np.array([row[name] for name in names])))

    accepted: List[Trajectory] = []
    attempts = 0
    while len(accepted) < count and attempts < max_attempts:
        attempts += 1
        draw = tuple(
            names[int(rng.choice(len(names), p=probs))]
            for names, probs in per_step)
        if is_valid_trajectory(draw, constraints,
                               strict_truncation=strict_truncation):
            accepted.append(draw)
    return accepted, attempts
