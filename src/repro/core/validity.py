"""Trajectory validity under integrity constraints (Definition 2).

This is the ground-truth semantics: a direct, readable implementation used
by the naive conditioner, the tests (which pin Algorithm 1 against it) and
by callers who want to check a single concrete trajectory.

The same two interpretation choices as :mod:`repro.core.nodes` apply
(DESIGN.md §3): TT constraints bind between the *last* timestep spent at
the source and the *first* subsequent timestep spent at the destination
(which is exactly Definition 2 read literally), and the treatment of
latency-constrained stays cut short by the end of the monitoring window is
selected by the ``truncated_stay_policy``.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.core.constraints import ConstraintSet

__all__ = ["is_valid_trajectory", "violations", "stays_of"]


def stays_of(trajectory: Sequence[str]) -> Iterator[Tuple[int, str, int]]:
    """The maximal stays of a trajectory as ``(start, location, length)``."""
    if not trajectory:
        return
    start = 0
    for tau in range(1, len(trajectory)):
        if trajectory[tau] != trajectory[start]:
            yield start, trajectory[start], tau - start
            start = tau
    yield start, trajectory[start], len(trajectory) - start


def violations(trajectory: Sequence[str], constraints: ConstraintSet,
               *, strict_truncation: bool = False) -> List[str]:
    """Every constraint violation of ``trajectory``, as human-readable strings.

    An empty list means the trajectory is valid.  ``strict_truncation``
    selects the literal Definition 2 reading for final stays cut short by
    the window end (see DESIGN.md §3).
    """
    found: List[str] = []
    n = len(trajectory)

    # DU: consecutive steps.
    for tau in range(n - 1):
        here, there = trajectory[tau], trajectory[tau + 1]
        if constraints.forbids_step(here, there):
            found.append(
                f"unreachable({here}, {there}) violated at step {tau}->{tau + 1}")

    # LT: every maximal stay must meet its location's bound.
    for start, location, length in stays_of(trajectory):
        bound = constraints.latency_of(location)
        if bound is None or length >= bound:
            continue
        runs_to_end = start + length == n
        if runs_to_end and not strict_truncation:
            continue
        found.append(
            f"latency({location}, {bound}) violated by the {length}-step "
            f"stay starting at {start}")

    # TT: for every arrival, look back at the last stay at each constrained
    # source.  Definition 2 quantifies over all pairs of timesteps, but the
    # binding pair is always (last timestep at source, first timestep at
    # destination), which is what this scan checks.
    last_seen = {}
    previous = None
    for tau, location in enumerate(trajectory):
        if previous is not None and previous != location:
            last_seen[previous] = tau - 1
        if location != previous:
            for source, steps in constraints.traveling_times_into(location):
                departed = last_seen.get(source)
                if departed is not None and tau - departed < steps:
                    found.append(
                        f"travelingTime({source}, {location}, {steps}) "
                        f"violated: left {source} at {departed}, reached "
                        f"{location} at {tau}")
        previous = location
    return found


def is_valid_trajectory(trajectory: Sequence[str], constraints: ConstraintSet,
                        *, strict_truncation: bool = False) -> bool:
    """Whether ``trajectory`` satisfies every constraint (Definition 2)."""
    n = len(trajectory)

    for tau in range(n - 1):
        if constraints.forbids_step(trajectory[tau], trajectory[tau + 1]):
            return False

    if constraints.latency_bounds:
        for start, location, length in stays_of(trajectory):
            bound = constraints.latency_of(location)
            if bound is None or length >= bound:
                continue
            if start + length == n and not strict_truncation:
                continue
            return False

    last_seen = {}
    previous = None
    for tau, location in enumerate(trajectory):
        if previous is not None and previous != location:
            last_seen[previous] = tau - 1
        if location != previous:
            for source, steps in constraints.traveling_times_into(location):
                departed = last_seen.get(source)
                if departed is not None and tau - departed < steps:
                    return False
        previous = location
    return True
