"""Trajectory validity under integrity constraints (Definition 2).

This is the ground-truth semantics: a direct, readable implementation used
by the naive conditioner, the tests (which pin Algorithm 1 against it) and
by callers who want to check a single concrete trajectory.

The same two interpretation choices as :mod:`repro.core.nodes` apply
(DESIGN.md §3): TT constraints bind between the *last* timestep spent at
the source and the *first* subsequent timestep spent at the destination
(which is exactly Definition 2 read literally), and the treatment of
latency-constrained stays cut short by the end of the monitoring window is
selected by the ``truncated_stay_policy``.

One generator — :func:`scan_violations` — performs the DU, LT and TT scans
and yields structured :class:`Violation` records; :func:`violations`
renders them as the human-readable strings (the single message-producing
surface) and :func:`is_valid_trajectory` merely asks whether the generator
yields anything, so the two surfaces cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.constraints import ConstraintSet

__all__ = [
    "Violation",
    "is_valid_trajectory",
    "scan_violations",
    "stays_of",
    "violations",
]


def stays_of(trajectory: Sequence[str]) -> Iterator[Tuple[int, str, int]]:
    """The maximal stays of a trajectory as ``(start, location, length)``."""
    if not trajectory:
        return
    start = 0
    for tau in range(1, len(trajectory)):
        if trajectory[tau] != trajectory[start]:
            yield start, trajectory[start], tau - start
            start = tau
    yield start, trajectory[start], len(trajectory) - start


@dataclass(frozen=True)
class Violation:
    """One constraint violation, in machine-readable form.

    ``kind`` is ``"DU"``, ``"LT"`` or ``"TT"``.  The remaining fields are
    the violated constraint's arguments plus where the violation happened:

    * DU — ``loc_a -> loc_b`` attempted at step ``time -> time + 1``;
    * LT — the ``length``-step stay at ``loc_a`` starting at ``time`` is
      shorter than ``bound``;
    * TT — left ``loc_a`` at ``time``, reached ``loc_b`` at ``arrival``
      with fewer than ``bound`` steps in between.
    """

    kind: str
    loc_a: str
    time: int
    loc_b: Optional[str] = None
    bound: Optional[int] = None
    length: Optional[int] = None
    arrival: Optional[int] = None


def scan_violations(trajectory: Sequence[str], constraints: ConstraintSet,
                    *, strict_truncation: bool = False) -> Iterator[Violation]:
    """Yield every constraint violation of ``trajectory`` (Definition 2).

    The shared scan behind :func:`violations` and
    :func:`is_valid_trajectory`: DU on consecutive steps, LT on maximal
    stays, TT between each departure and the next arrival at a constrained
    destination.  ``strict_truncation`` selects the literal Definition 2
    reading for final stays cut short by the window end (DESIGN.md §3).
    """
    n = len(trajectory)

    # DU: consecutive steps.
    for tau in range(n - 1):
        here, there = trajectory[tau], trajectory[tau + 1]
        if constraints.forbids_step(here, there):
            yield Violation("DU", here, tau, loc_b=there)

    # LT: every maximal stay must meet its location's bound.
    if constraints.latency_bounds:
        for start, location, length in stays_of(trajectory):
            bound = constraints.latency_of(location)
            if bound is None or length >= bound:
                continue
            if start + length == n and not strict_truncation:
                continue
            yield Violation("LT", location, start, bound=bound, length=length)

    # TT: for every arrival, look back at the last stay at each constrained
    # source.  Definition 2 quantifies over all pairs of timesteps, but the
    # binding pair is always (last timestep at source, first timestep at
    # destination), which is what this scan checks.
    last_seen: Dict[str, int] = {}
    previous = None
    for tau, location in enumerate(trajectory):
        if previous is not None and previous != location:
            last_seen[previous] = tau - 1
        if location != previous:
            for source, steps in constraints.traveling_times_into(location):
                departed = last_seen.get(source)
                if departed is not None and tau - departed < steps:
                    yield Violation("TT", source, departed, loc_b=location,
                                    bound=steps, arrival=tau)
        previous = location


def violations(trajectory: Sequence[str], constraints: ConstraintSet,
               *, strict_truncation: bool = False) -> List[str]:
    """Every constraint violation of ``trajectory``, as human-readable strings.

    An empty list means the trajectory is valid.  ``strict_truncation``
    selects the literal Definition 2 reading for final stays cut short by
    the window end (see DESIGN.md §3).
    """
    found: List[str] = []
    for v in scan_violations(trajectory, constraints,
                             strict_truncation=strict_truncation):
        if v.kind == "DU":
            found.append(
                f"unreachable({v.loc_a}, {v.loc_b}) violated at step "
                f"{v.time}->{v.time + 1}")
        elif v.kind == "LT":
            found.append(
                f"latency({v.loc_a}, {v.bound}) violated by the "
                f"{v.length}-step stay starting at {v.time}")
        else:
            found.append(
                f"travelingTime({v.loc_a}, {v.loc_b}, {v.bound}) "
                f"violated: left {v.loc_a} at {v.time}, reached "
                f"{v.loc_b} at {v.arrival}")
    return found


def is_valid_trajectory(trajectory: Sequence[str], constraints: ConstraintSet,
                        *, strict_truncation: bool = False) -> bool:
    """Whether ``trajectory`` satisfies every constraint (Definition 2)."""
    scan = scan_violations(trajectory, constraints,
                           strict_truncation=strict_truncation)
    return next(iter(scan), None) is None
