"""Exact conditioning by enumeration — the baseline Algorithm 1 must match.

The naive approach the paper describes (and dismisses as infeasible at
scale): enumerate every trajectory compatible with the l-sequence, discard
the invalid ones (Definition 2), and renormalise the survivors' a-priori
probabilities.  Exponential in the duration, but exact — it is the oracle
for the correctness tests and the comparator for the crossover ablation
benchmark.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.core.constraints import ConstraintSet
from repro.core.lsequence import LSequence, Trajectory
from repro.core.validity import is_valid_trajectory
from repro.errors import ReadingSequenceError, ZeroMassError

__all__ = ["NaiveConditioner"]

#: Refuse to enumerate more than this many trajectories by default.
DEFAULT_ENUMERATION_LIMIT = 2_000_000


class NaiveConditioner:
    """Exact conditioned distribution over valid trajectories, by enumeration.

    Parameters mirror :class:`repro.core.algorithm.CleaningOptions` where
    they affect semantics (the truncated-stay policy).
    """

    def __init__(self, lsequence: LSequence, constraints: ConstraintSet, *,
                 strict_truncation: bool = False,
                 enumeration_limit: Optional[int] = DEFAULT_ENUMERATION_LIMIT) -> None:
        size = lsequence.num_trajectories()
        if enumeration_limit is not None and size > enumeration_limit:
            raise ReadingSequenceError(
                f"l-sequence admits {size} trajectories, more than the "
                f"enumeration limit {enumeration_limit}; use the ct-graph "
                "algorithm instead")
        self.lsequence = lsequence
        self.constraints = constraints
        self.strict_truncation = strict_truncation
        self._conditioned: Optional[Dict[Trajectory, float]] = None

    def valid_trajectories(self) -> Iterator[Tuple[Trajectory, float]]:
        """Valid trajectories with their *a-priori* probabilities."""
        for trajectory, prior in self.lsequence.trajectories():
            if is_valid_trajectory(trajectory, self.constraints,
                                   strict_truncation=self.strict_truncation):
                yield trajectory, prior

    def conditioned_distribution(self) -> Dict[Trajectory, float]:
        """Trajectory -> conditioned probability ``p*(t | IC)`` (cached).

        Raises :class:`ZeroMassError` (an
        :class:`~repro.errors.InconsistentReadingsError`) when no valid
        trajectory exists, matching the ct-graph algorithm.
        """
        if self._conditioned is None:
            priors = dict(self.valid_trajectories())
            total = sum(priors.values())
            if not priors or total <= 0.0:
                raise ZeroMassError(
                    "no trajectory compatible with the readings satisfies "
                    "the constraints")
            self._conditioned = {t: p / total for t, p in priors.items()}
        return self._conditioned

    def probability(self, trajectory: Trajectory) -> float:
        """The conditioned probability of one trajectory (0 if invalid)."""
        return self.conditioned_distribution().get(tuple(trajectory), 0.0)

    def location_marginal(self, tau: int) -> Dict[str, float]:
        """The conditioned distribution of the location at timestep ``tau``."""
        marginal: Dict[str, float] = {}
        for trajectory, probability in self.conditioned_distribution().items():
            location = trajectory[tau]
            marginal[location] = marginal.get(location, 0.0) + probability
        return marginal
