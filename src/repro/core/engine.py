"""The compact cleaning engine: Algorithm 1 over interned, columnar state.

:func:`build_ct_graph` re-derives every successor state with
``_unchecked_successor`` at every level — ``O(duration * S * L)`` calls,
each rebuilding stay counters and ``TL`` tuples — even though reader
patterns, and therefore frontier expansions, repeat heavily along a
trajectory.  This module exploits that repetition without changing a
single bit of the output:

* **Interning** — locations and node states become small ints.  States are
  stored in *relative* form ``(location, stay, ((age, location), ...))``
  with ``age = tau - departure_time`` (see
  :func:`repro.core.nodes.relative_departures`): two nodes at different
  timesteps whose ``TL`` entries are equally old share one interned state.

* **Memoised transitions** — Definition 3's rules 3–6 compare departure
  times only through differences ``arrival - time``, which relative ages
  express directly, so the full successor row of a state under an ordered
  candidate support is a pure function of ``(state, support)`` — except
  where the :class:`~repro.core.nodes.DepartureFilter` prunes ``TL``
  entries by *absolute* support windows.  Those per-entry keep decisions
  are folded into a bitmask (:func:`repro.core.nodes.departure_keep_mask`)
  that widens the cache key: rows are keyed ``(state, support, mask)`` and
  stay exact — the engine never approximates, it only caches more finely
  where the filter makes transitions time-dependent.  The cache lives in
  an :class:`EngineCache`, which a
  :class:`~repro.runtime.plan.SharedCleaningPlan` carries across the
  objects of a batch (rows depend on the constraint set, not the object).

* **Columnar sweep** — the forward phase records each level's edges as
  flat parallel arrays ``(parent index, child index, probability)`` in
  parent-major order; the backward survival sweep then runs over arrays
  instead of per-node dicts, and only the *surviving* nodes and edges are
  materialised as :class:`~repro.core.ctgraph.CTNode` objects at the end.

The result is **bit-exact** with the reference builder: same nodes in the
same order, same edges in the same insertion order, and identical
floating-point arithmetic (per-parent mass accumulated in edge order,
``weight / mass`` conditioning before the per-level rescale, ``math.fsum``
for the source total).  The property tests pin graphs *and* stats counters
against :func:`~repro.core.algorithm.build_ct_graph` over random map
plans; see ``docs/perf.md`` for the argument and the benchmark numbers.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Tuple

from repro.core import kernels
from repro.core.algorithm import CleaningOptions, CleaningStats, _run_precheck
from repro.core.constraints import ConstraintSet
from repro.core.ctgraph import CTGraph, CTNode
from repro.core.flatgraph import FlatCTGraph
from repro.core.lsequence import LSequence
from repro.core.nodes import _advance_stay, initial_stay
from repro.errors import ReadingSequenceError, ZeroMassError

__all__ = ["EngineCache", "build_ct_graph_compact"]

#: An interned node state in relative form:
#: ``(location id, stay, ((age, location id), ...))``.
RelState = Tuple[int, Optional[int], Tuple[Tuple[int, int], ...]]

#: A memoised successor row: per legal destination, its position in the
#: ordered candidate support and the interned state of the successor.
Row = Tuple[Tuple[int, int], ...]


class EngineCache:
    """Interning tables plus the memoised transition rows, per constraint set.

    The cache is keyed content: rows depend on the constraint set and on
    the interned ``(state, ordered support, departure-filter mask)`` triple
    only, never on the individual l-sequence — all of the filter's
    time-dependence is captured by the mask.  One cache therefore serves
    every object cleaned under the same constraints;
    :meth:`repro.runtime.plan.SharedCleaningPlan.engine_cache` hands one to
    each object of a batch.  Not thread-safe (plain dicts), like the plan.
    """

    __slots__ = ("constraints", "_location_ids", "_location_names",
                 "_state_ids", "_states", "_support_ids", "_supports",
                 "_support_names", "_du_rows", "_rows", "_levels")

    def __init__(self, constraints: ConstraintSet) -> None:
        self.constraints = constraints
        self._location_ids: Dict[str, int] = {}
        self._location_names: List[str] = []
        self._state_ids: Dict[RelState, int] = {}
        self._states: List[RelState] = []
        self._support_ids: Dict[Tuple[int, ...], int] = {}
        self._supports: List[Tuple[int, ...]] = []
        #: Fast path for the hot loop: ordered location-*name* tuples map
        #: straight to their interned support id (skips per-level
        #: name -> id translation on repeated reader patterns).
        self._support_names: Dict[Tuple[str, ...], int] = {}
        self._du_rows: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._rows: Dict[Tuple[int, int, int], Row] = {}
        #: Whole-level memo: periodic workloads repeat entire frontiers,
        #: so the expansion of a full ``(frontier, support[, masks])``
        #: level — next sids, CSR offsets, child indices and support
        #: positions — is cached as one unit.  Derived purely from
        #: :attr:`_rows` entries, hence exact wherever they are.
        self._levels: Dict[Tuple, Tuple] = {}

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def location_id(self, name: str) -> int:
        lid = self._location_ids.get(name)
        if lid is None:
            lid = len(self._location_names)
            self._location_ids[name] = lid
            self._location_names.append(name)
        return lid

    def state_id(self, state: RelState) -> int:
        sid = self._state_ids.get(state)
        if sid is None:
            sid = len(self._states)
            self._state_ids[state] = sid
            self._states.append(state)
        return sid

    def support_id(self, support: Tuple[int, ...]) -> int:
        """Intern an *ordered* tuple of candidate location ids.

        Order matters: edge insertion order — and with it the float
        accumulation order of the backward sweep — follows the
        l-sequence's candidate order, so two supports with equal sets but
        different orders are deliberately distinct keys.
        """
        uid = self._support_ids.get(support)
        if uid is None:
            uid = len(self._supports)
            self._support_ids[support] = uid
            self._supports.append(support)
        return uid

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def cached_transitions(self) -> int:
        """How many memoised ``(state, support, mask)`` rows exist."""
        return len(self._rows)

    @property
    def interned_states(self) -> int:
        return len(self._states)

    def __repr__(self) -> str:
        return (f"EngineCache(states={len(self._states)}, "
                f"rows={len(self._rows)})")

    # ------------------------------------------------------------------
    # the memoised transition relation
    # ------------------------------------------------------------------
    def _compute_row(self, sid: int, support_id: int, mask: int) -> Row:
        """Definition 3 rules 2–6 for one ``(state, support, mask)`` key.

        The mirror of ``_unchecked_successor`` in relative terms: rule 5
        reads ``arrival - time`` as ``age + 1``, and the rule-3/6 ``TL``
        keep decisions come from ``mask`` (bit ``k`` = entry ``k``
        survives; the bit past the last entry = record the new departure).
        When no :class:`DepartureFilter` exists the constraint set has no
        TT sources, every ``TL`` is empty and the mask is uniformly 0, so
        the mask-driven reading is exact in both regimes.  States produced
        here keep the canonical invariants of the reference builder: at
        most one entry per location, never the state's own location,
        sorted by ``(-age, location name)`` — the relative image of the
        absolute ``(time, location)`` order.
        """
        constraints = self.constraints
        names = self._location_names
        location_id, stay, rel_deps = self._states[sid]
        location = names[location_id]
        support = self._supports[support_id]

        du_key = (location_id, support_id)
        positions = self._du_rows.get(du_key)
        if positions is None:
            forbids = constraints.forbids_step
            positions = tuple(pos for pos, dest_id in enumerate(support)
                              if not forbids(location, names[dest_id]))
            self._du_rows[du_key] = positions

        traveling_time = constraints.traveling_time
        in_tt_sources = location in constraints.tt_sources
        new_departure = bool(mask >> len(rel_deps) & 1)
        row: List[Tuple[int, int]] = []
        for pos in positions:
            dest_id = support[pos]
            if dest_id == location_id:
                # Rule 3 — staying: bump the stay, age the departures.
                kept = tuple((age + 1, dlid)
                             for bit, (age, dlid) in enumerate(rel_deps)
                             if mask >> bit & 1)
                child = (location_id,
                         _advance_stay(stay, location, constraints), kept)
            else:
                # Rule 4 — leaving before the latency bound is met.
                if stay is not None:
                    continue
                # Rule 5 — traveling-time checks, including the implicit
                # departure of this very move (arrival - tau == 1).
                destination = names[dest_id]
                direct = traveling_time(location, destination)
                if direct is not None and direct > 1:
                    continue
                blocked = False
                for age, dlid in rel_deps:
                    steps = traveling_time(names[dlid], destination)
                    if steps is not None and age + 1 < steps:
                        blocked = True
                        break
                if blocked:
                    continue
                # Rule 6 — the successor's TL: surviving entries age by
                # one, entries about the destination itself are dropped,
                # and this move's own departure is recorded when it can
                # still matter (the mask's extra bit).
                entries = [(age + 1, dlid)
                           for bit, (age, dlid) in enumerate(rel_deps)
                           if dlid != dest_id and mask >> bit & 1]
                if in_tt_sources and new_departure:
                    entries.append((1, location_id))
                if len(entries) > 1:
                    entries.sort(key=lambda entry: (-entry[0],
                                                    names[entry[1]]))
                child = (dest_id, initial_stay(destination, constraints),
                         tuple(entries))
            row.append((pos, self.state_id(child)))
        return tuple(row)


def build_ct_graph_compact(lsequence: LSequence, constraints: ConstraintSet,
                           options: CleaningOptions = CleaningOptions(), *,
                           plan=None) -> CTGraph:
    """Algorithm 1 through the compact engine (see the module docstring).

    Drop-in for :func:`~repro.core.algorithm.build_ct_graph` — same
    contract, same plan/pre-check semantics, bit-exact output.  Normally
    reached via ``CleaningOptions(engine=...)``; calling it directly skips
    the ``engine`` option entirely.
    """
    if plan is not None:
        if plan.constraints != constraints:
            raise ReadingSequenceError(
                "the shared cleaning plan was built for a different "
                "constraint set")
        plan.precheck(lsequence, options)
        cache = plan.engine_cache()
        if cache.constraints != constraints:
            raise ReadingSequenceError(
                "the plan's engine cache was built for a different "
                "constraint set")
    else:
        if options.precheck != "off":
            _run_precheck(lsequence, constraints, options)
        cache = EngineCache(constraints)

    stats = CleaningStats()
    forward_started = time.perf_counter()
    duration = lsequence.duration
    last = duration - 1
    strict = options.strict_truncation

    location_id = cache.location_id
    states = cache._states
    names = cache._location_names
    rows = cache._rows

    # ------------------------------------------------------------------
    # initialisation: source states from the timestep-0 candidates
    # ------------------------------------------------------------------
    source_sids: List[int] = []
    prior_probabilities: List[float] = []
    for location in lsequence.support(0):
        stay = initial_stay(location, constraints)
        if strict and last == 0 and stay is not None:
            continue
        source_sids.append(cache.state_id((location_id(location), stay, ())))
        prior_probabilities.append(lsequence.probability(0, location))
        stats.nodes_created += 1
    if not source_sids:
        raise ZeroMassError(
            "no source location satisfies the constraints at timestep 0")

    # ------------------------------------------------------------------
    # forward phase: columnar levels, memoised successor rows
    # ------------------------------------------------------------------
    # The DepartureFilter keep test ``arrival <= alive_until(t, l)`` is
    # re-derived here as pure integer compares: the maxTravelingTime
    # horizon becomes ``age <= maxtt(l) - 2`` (tau cancels), and the
    # binding part becomes "some destination of ``l`` has prior support
    # inside the constraint window", answered by per-destination
    # next-support-at-or-after arrays.  ``alive_until`` caches by the
    # *absolute* departure timestep, which never repeats across levels,
    # so calling it from the hot loop would recompute every level.
    tt_sources = constraints.tt_sources
    use_filter = bool(tt_sources)
    tt_source_ids = frozenset(location_id(name) for name in tt_sources)
    horizon_age: Dict[int, int] = {}
    bindings: Dict[int, Tuple[Tuple[List[int], int], ...]] = {}
    if use_filter:
        support_times: Dict[str, List[int]] = {}
        for t in range(duration):
            for name in lsequence.candidates(t):
                support_times.setdefault(name, []).append(t)
        by_source: Dict[str, List[Tuple[str, int]]] = {}
        for (source, dest), steps in \
                constraints.traveling_time_bounds.items():
            by_source.setdefault(source, []).append((dest, steps))
        # Sentinel for "no support left": must exceed every binding
        # window ``departed_at + steps - 1`` (bounded by duration plus
        # the largest TT bound), or an empty lookup would pass the test.
        never = duration + max(
            constraints.traveling_time_bounds.values(), default=0) + 2
        for name in tt_sources:
            lid = location_id(name)
            horizon_age[lid] = constraints.max_traveling_time(name) - 2
            pairs: List[Tuple[List[int], int]] = []
            for dest, steps in by_source.get(name, ()):
                times = support_times.get(dest)
                if not times:
                    continue
                # next_support[t] = the earliest timestep >= t where
                # ``dest`` has prior support (``never`` when none left).
                next_support = [0] * (duration + 2)
                current = never
                j = len(times) - 1
                for t in range(duration + 1, -1, -1):
                    while j >= 0 and times[j] >= t:
                        current = times[j]
                        j -= 1
                    next_support[t] = current
                pairs.append((next_support, steps))
            bindings[lid] = tuple(pairs)
    level_sids: List[Tuple[int, ...]] = [tuple(source_sids)]
    # The run's edges live in two flat arrays shared by every level; level
    # ``tau`` owns the slice described by its (absolute) CSR offsets —
    # ``level_offsets[tau][i]:level_offsets[tau][i+1]`` are the edges of
    # the i-th frontier node, child indices *local to level tau + 1*, in
    # the insertion order the reference builder would use.
    all_children: List[int] = []
    all_probabilities: List[float] = []
    extend_children = all_children.extend
    extend_probabilities = all_probabilities.extend
    level_offsets: List[List[int]] = []
    # Per-level references to the cached expansion (children, support
    # positions, relative offsets — shared objects for memo-hit levels)
    # plus the level's candidate probabilities: the numpy backend keys
    # its one-time ndarray conversion on these identities, so periodic
    # workloads convert each *distinct* level shape once, not per level.
    level_refs: List[Tuple[List[int], List[int], List[int],
                           List[float]]] = []
    # Candidate-probability rows interned per (support, values) pair so
    # periodic workloads hand ``level_refs`` the *same* list object for
    # repeated levels — the identity key the numpy backend's one-time
    # gather cache relies on.
    probability_lists: Dict[Tuple[int, Tuple[float, ...]], List[float]] = {}
    compute_row = cache._compute_row
    row_get = rows.get
    support_names = cache._support_names
    level_rows = cache._levels
    level_get = level_rows.get
    frontier: Tuple[int, ...] = level_sids[0]
    for tau in range(duration - 1):
        candidates = lsequence.candidates(tau + 1)
        names_key = tuple(candidates)
        support_id = support_names.get(names_key)
        if support_id is None:
            support_id = cache.support_id(
                tuple([location_id(name) for name in names_key]))
            support_names[names_key] = support_id
        values = tuple(candidates.values())
        probability_key = (support_id, values)
        probabilities = probability_lists.get(probability_key)
        if probabilities is None:
            probabilities = list(values)
            probability_lists[probability_key] = probabilities
        filter_binding = strict and tau + 1 == last

        # Periodic workloads repeat whole frontiers, so the expansion of
        # the full level is memoised as one unit: with a departure filter
        # the per-node masks join the key (they capture all of the
        # filter's time-dependence); the strict last level bypasses the
        # memo (its rows are post-filtered).
        if use_filter:
            # Entry (age, l) survives to arrival tau + 1 iff the horizon
            # holds (age <= maxtt(l) - 2) and some destination of ``l``
            # has support in [tau + 2, departed_at + steps - 1] — the
            # exact ``arrival <= alive_until`` test, tau folded away.
            next_index = tau + 2
            window_base = tau - 1
            masks: List[int] = []
            append_mask = masks.append
            for sid in frontier:
                lid, _stay, rel_deps = states[sid]
                mask = 0
                bit = 1
                for age, dlid in rel_deps:
                    if age <= horizon_age[dlid]:
                        cutoff = window_base - age
                        for next_support, steps in bindings[dlid]:
                            if next_support[next_index] <= cutoff + steps:
                                mask |= bit
                                break
                    bit <<= 1
                if lid in tt_source_ids and horizon_age[lid] >= 0:
                    for next_support, steps in bindings[lid]:
                        if next_support[next_index] <= window_base + steps:
                            mask |= bit
                            break
                append_mask(mask)
            level_key = (frontier, support_id, tuple(masks))
        else:
            masks = []
            level_key = (frontier, support_id)
        cached_level = None if filter_binding else level_get(level_key)

        if cached_level is None:
            next_sids: List[int] = []
            next_index: Dict[int, int] = {}
            next_get = next_index.get
            relative_offsets: List[int] = [0]
            children: List[int] = []
            positions: List[int] = []
            append_offset = relative_offsets.append
            append_child = children.append
            append_position = positions.append
            for i, sid in enumerate(frontier):
                key = (sid, support_id, masks[i] if masks else 0)
                row = row_get(key)
                if row is None:
                    row = compute_row(sid, support_id, key[2])
                    rows[key] = row
                for pos, child_sid in row:
                    if filter_binding and states[child_sid][1] is not None:
                        continue
                    child_index = next_get(child_sid)
                    if child_index is None:
                        child_index = len(next_sids)
                        next_index[child_sid] = child_index
                        next_sids.append(child_sid)
                    append_child(child_index)
                    append_position(pos)
                append_offset(len(children))
            cached_level = (tuple(next_sids), relative_offsets,
                            children, positions)
            if not filter_binding:
                level_rows[level_key] = cached_level

        next_frontier, relative_offsets, children, positions = cached_level
        level_refs.append((children, positions, relative_offsets,
                           probabilities))
        stats.nodes_created += len(next_frontier)
        stats.edges_created += len(children)
        if not next_frontier:
            raise ZeroMassError(
                f"no trajectory can legally continue past timestep {tau}")
        level_sids.append(next_frontier)
        frontier = next_frontier

    # Kernel routing happens *here*, after the expansion loop, because
    # the backend only affects what follows (the backward sweep and the
    # materialisation) and the actual edge counts are now known — "auto"
    # resolves on the measured mean edges per level, not a prediction.
    # Only the flat path vectorises: the node path interleaves CTNode
    # construction with the sweep and always runs in python.
    route_numpy = options.columnar_materialize and kernels.resolve_backend(
        options.backend,
        stats.edges_created / last if last else 0.0) == "numpy"
    if not route_numpy:
        # The python sweep walks the run's edges through two flat arrays
        # with absolute CSR offsets; gathering them is forward-phase
        # materialisation work, skipped entirely on the numpy route
        # (whose kernels consume the per-level ``level_refs`` directly).
        for children, positions, relative_offsets, probabilities \
                in level_refs:
            base = len(all_children)
            extend_children(children)
            extend_probabilities([probabilities[pos] for pos in positions])
            level_offsets.append(
                [base + offset for offset in relative_offsets])

    # ------------------------------------------------------------------
    # backward phase: survival sweep over the flat edge arrays
    # ------------------------------------------------------------------
    backward_started = time.perf_counter()
    stats.forward_seconds = backward_started - forward_started
    if route_numpy:
        return _build_flat_numpy(duration, level_sids, states, names,
                                 level_refs, prior_probabilities,
                                 stats, backward_started,
                                 output=options.output)
    survivals: List[List[float]] = [[] for _ in range(duration)]
    survivals[last] = [1.0] * len(level_sids[last])
    level_masses: List[List[float]] = [[] for _ in range(max(0, last))]
    weights: List[float] = [0.0] * len(all_children)
    nodes_removed = 0
    edges_removed = 0
    for tau in range(last - 1, -1, -1):
        edge_offsets = level_offsets[tau]
        child_survival = survivals[tau + 1]
        count = len(level_sids[tau])
        mass_row = [0.0] * count
        survival_row = [0.0] * count
        level_max = 0.0
        removed = 0
        start = edge_offsets[0]
        if 0.0 not in child_survival:
            # Fast path — every child is alive, so every edge survives
            # and the per-parent mass is the plain sum of its weight
            # slice.  ``sum`` adds left to right exactly like the
            # reference's ``mass += weight`` loop (starting from 0 adds
            # nothing to the first float), so this is bit-identical.
            level_end = edge_offsets[count]
            weights[start:level_end] = [
                all_probabilities[e] * child_survival[all_children[e]]
                for e in range(start, level_end)]
            for i in range(count):
                end = edge_offsets[i + 1]
                mass = sum(weights[start:end])
                if mass <= 0.0:
                    edges_removed += end - start
                    removed += 1
                else:
                    mass_row[i] = mass
                    survival_row[i] = mass
                    if mass > level_max:
                        level_max = mass
                start = end
        else:
            for i in range(count):
                end = edge_offsets[i + 1]
                mass = 0.0
                alive_edges = 0
                for e in range(start, end):
                    survival = child_survival[all_children[e]]
                    if survival > 0.0:
                        # Per-parent mass accumulates in edge insertion
                        # order — the float-sum order the reference
                        # builder uses.
                        weight = all_probabilities[e] * survival
                        weights[e] = weight
                        mass += weight
                        alive_edges += 1
                if mass <= 0.0:
                    edges_removed += end - start
                    removed += 1
                else:
                    edges_removed += end - start - alive_edges
                    mass_row[i] = mass
                    survival_row[i] = mass
                    if mass > level_max:
                        level_max = mass
                start = end
        nodes_removed += removed
        if removed == count:
            stats.nodes_removed = nodes_removed
            stats.edges_removed = edges_removed
            raise ZeroMassError(
                "no trajectory compatible with the readings satisfies "
                "the constraints")
        # Rescale so the level's largest survival is 1 (underflow guard);
        # conditioning below divides by the *unrescaled* mass, exactly as
        # the reference does before its rescale.
        if level_max > 0.0:
            for i in range(count):
                if survival_row[i] > 0.0:
                    survival_row[i] /= level_max
        survivals[tau] = survival_row
        level_masses[tau] = mass_row
    stats.nodes_removed = nodes_removed
    stats.edges_removed = edges_removed
    stats.sweep_seconds = time.perf_counter() - backward_started

    if options.columnar_materialize:
        # ------------------------------------------------------------------
        # flat materialisation: the backward sweep's arrays become the
        # FlatCTGraph directly — no CTNode is ever created.  Interning,
        # node order, edge order and every conditioned float mirror the
        # node path + ``to_flat()`` exactly (pinned by the parity suite).
        # ------------------------------------------------------------------
        flat_ids: Dict[int, int] = {}
        flat_names: List[str] = []
        flat_locations: List[Tuple[int, ...]] = []
        flat_stays: List[Tuple[Optional[int], ...]] = []
        index_maps: List[List[int]] = []
        for tau in range(duration):
            sids = level_sids[tau]
            # A node is dead iff its *pre-rescale* mass was <= 0 — the
            # criterion the node path uses too.
            mass_row = level_masses[tau] if tau != last else None
            loc_row: List[int] = []
            stay_row: List[Optional[int]] = []
            index_map = [-1] * len(sids)
            for i, sid in enumerate(sids):
                if mass_row is not None and mass_row[i] <= 0.0:
                    continue
                lid, stay, _rel_deps = states[sid]
                fid = flat_ids.get(lid)
                if fid is None:
                    fid = len(flat_names)
                    flat_ids[lid] = fid
                    flat_names.append(names[lid])
                index_map[i] = len(loc_row)
                loc_row.append(fid)
                stay_row.append(stay)
            flat_locations.append(tuple(loc_row))
            flat_stays.append(tuple(stay_row))
            index_maps.append(index_map)
        flat_offsets: List[Tuple[int, ...]] = []
        flat_children: List[Tuple[int, ...]] = []
        flat_probabilities: List[Tuple[float, ...]] = []
        for tau in range(duration - 1):
            edge_offsets = level_offsets[tau]
            mass_row = level_masses[tau]
            child_map = index_maps[tau + 1]
            child_survival = survivals[tau + 1]
            offsets: List[int] = [0]
            children: List[int] = []
            probabilities: List[float] = []
            for i in range(len(level_sids[tau])):
                mass = mass_row[i]
                if mass <= 0.0:
                    continue
                for e in range(edge_offsets[i], edge_offsets[i + 1]):
                    child_index = all_children[e]
                    # An edge survives with its (alive) parent iff the
                    # child is alive, even when the conditioned weight
                    # underflows to 0.0.
                    if child_survival[child_index] > 0.0:
                        children.append(child_map[child_index])
                        probabilities.append(weights[e] / mass)
                offsets.append(len(children))
            flat_offsets.append(tuple(offsets))
            flat_children.append(tuple(children))
            flat_probabilities.append(tuple(probabilities))
        survival_row = survivals[0]
        source_row = [prior_probabilities[i] * survival_row[i]
                      for i in range(len(level_sids[0]))
                      if index_maps[0][i] >= 0]
        total = math.fsum(source_row)
        if total <= 0.0:
            raise ZeroMassError(
                "the valid trajectories have zero total prior probability")
        stats.backward_seconds = time.perf_counter() - backward_started
        flat = FlatCTGraph(
            location_names=tuple(flat_names),
            locations=tuple(flat_locations),
            stays=tuple(flat_stays),
            edge_offsets=tuple(flat_offsets),
            edge_children=tuple(flat_children),
            edge_probabilities=tuple(flat_probabilities),
            source_probabilities=tuple(p / total for p in source_row),
            stats=stats)
        if options.store_materialize:
            # The python backend still builds the tuples (they *are* its
            # sweep output); the store write + reload gives callers the
            # same mmap-view contract as the numpy direct-write route.
            from repro.store.format import load_ctg, save_ctg

            save_ctg(flat, options.output)
            return load_ctg(options.output, mmap=True)
        return flat

    # ------------------------------------------------------------------
    # materialisation: surviving nodes and edges, reference order
    # ------------------------------------------------------------------
    node_table: List[List[Optional[CTNode]]] = []
    for tau in range(duration):
        sids = level_sids[tau]
        row_nodes: List[Optional[CTNode]] = [None] * len(sids)
        # A node is dead iff its *pre-rescale* mass was <= 0 — the exact
        # criterion the reference uses to pop it (the rescaled survival
        # can in principle underflow to 0.0 on an alive node).
        mass = level_masses[tau] if tau != last else None
        for i, sid in enumerate(sids):
            if mass is not None and mass[i] <= 0.0:
                continue
            lid, stay, rel_deps = states[sid]
            if not rel_deps:
                row_nodes[i] = CTNode(tau, names[lid], stay, ())
            elif len(rel_deps) == 1:
                age, dlid = rel_deps[0]
                row_nodes[i] = CTNode(tau, names[lid], stay,
                                      ((tau - age, names[dlid]),))
            else:
                row_nodes[i] = CTNode(
                    tau, names[lid], stay,
                    tuple([(tau - age, names[dlid])
                           for age, dlid in rel_deps]))
        node_table.append(row_nodes)
    for tau in range(duration - 1):
        edge_offsets = level_offsets[tau]
        mass_row = level_masses[tau]
        parent_nodes = node_table[tau]
        child_nodes = node_table[tau + 1]
        child_survival = survivals[tau + 1]
        for i, parent in enumerate(parent_nodes):
            if parent is None:
                continue
            mass = mass_row[i]
            edges = parent.edges
            for e in range(edge_offsets[i], edge_offsets[i + 1]):
                child_index = all_children[e]
                # An edge survives with its (alive) parent iff the child
                # is alive — even when the conditioned weight underflows
                # to 0.0.
                if child_survival[child_index] > 0.0:
                    child = child_nodes[child_index]
                    edges[child] = weights[e] / mass
                    child.parents.append(parent)

    # ------------------------------------------------------------------
    # source conditioning (with the survival damping — DESIGN.md §3)
    # ------------------------------------------------------------------
    source_probabilities: Dict[CTNode, float] = {}
    survival_row = survivals[0]
    for i, node in enumerate(node_table[0]):
        if node is None:
            continue
        source_probabilities[node] = prior_probabilities[i] * survival_row[i]
    total = math.fsum(source_probabilities.values())
    if total <= 0.0:
        raise ZeroMassError(
            "the valid trajectories have zero total prior probability")
    for node in source_probabilities:
        source_probabilities[node] /= total

    stats.backward_seconds = time.perf_counter() - backward_started
    return CTGraph([tuple([node for node in row if node is not None])
                    for row in node_table],
                   source_probabilities, stats=stats)


def _build_flat_numpy(duration: int, level_sids, states, names,
                      level_refs, prior_probabilities, stats,
                      backward_started: float,
                      output: Optional[str] = None):
    """The backward sweep + flat materialisation as whole-level kernels.

    With ``output`` set (``materialize="store"``), the kept edge columns
    are written to that ``.ctg`` path as ndarrays — no ``tolist()``, no
    tuples — and the return value is the
    :class:`~repro.store.format.MappedCTGraph` view of the file instead
    of an in-memory :class:`FlatCTGraph`.

    The numpy half of ``backend="numpy"``: each level's survival sweep
    is a gather + ``np.bincount`` segment sum and the surviving edges are
    materialised with one boolean mask per level instead of a per-edge
    python loop.  The int columns convert to ndarrays **once per
    distinct cached level** (keyed by object identity — the forward
    phase's whole-level memo hands repeated levels the same list
    objects), so on periodic workloads the conversion cost is a handful
    of levels, not the full duration.  Semantics mirror the python path
    statement for statement — same dead-node criterion (pre-rescale mass
    ``<= 0``), same kept-edge criterion (alive parent, alive child),
    same ``ZeroMassError`` messages, exact
    ``nodes_removed``/``edges_removed`` counters, and the source
    conditioning reuses the python-float ``math.fsum`` expression
    verbatim.  Floats are pinned to the python oracle by the tolerance
    gate of ``docs/perf.md`` (structure exact, values to 1e-12
    relative); in practice ``bincount`` accumulates in edge order like
    the reference loops, and the parity suite routinely observes
    bit-equality.
    """
    np = kernels.require_numpy()
    last = duration - 1
    arange = np.arange
    asarray = np.asarray
    converted: Dict[int, tuple] = {}
    gathered: Dict[Tuple[int, int], object] = {}

    def arrays_for(tau: int) -> tuple:
        children, positions, relative_offsets, probabilities = \
            level_refs[tau]
        # Identity is a safe key: the referenced lists are pinned by
        # ``level_refs`` (and the engine cache) for this whole build.
        entry = converted.get(id(children))
        if entry is None:
            offsets = asarray(relative_offsets, dtype=np.int64)
            entry = (asarray(children, dtype=np.int32),
                     asarray(positions, dtype=np.int32),
                     np.repeat(arange(len(offsets) - 1, dtype=np.int32),
                               np.diff(offsets)))
            converted[id(children)] = entry
        child_arr, position_arr, parent_arr = entry
        # The float column converts + gathers once per distinct
        # (structure, weights) pair too — list-to-ndarray conversion is
        # the single most expensive per-level op, and on periodic
        # workloads the memoised forward phase repeats both lists.
        key = (id(children), id(probabilities))
        probability_arr = gathered.get(key)
        if probability_arr is None:
            probability_arr = asarray(probabilities,
                                      dtype=np.float64)[position_arr]
            gathered[key] = probability_arr
        return child_arr, probability_arr, parent_arr

    # Per edge level: (children, weights, parents, mass, alive) — kept
    # for the materialisation stage below.
    level_arrays: List[Optional[tuple]] = [None] * max(0, last)
    survivals: List[Optional[object]] = [None] * duration
    survivals[last] = np.ones(len(level_sids[last]), dtype=np.float64)
    nodes_removed = 0
    edges_removed = 0
    for tau in range(last - 1, -1, -1):
        children, probabilities, parents = arrays_for(tau)
        count = len(level_sids[tau])
        child_survival = survivals[tau + 1]
        gathered_survival = child_survival[children]
        # Dead-child edges contribute exactly 0.0 here where the python
        # path skips them — identical sums, since x + 0.0 == x for the
        # nonnegative weights involved.
        weights = probabilities * gathered_survival
        mass = np.bincount(parents, weights=weights, minlength=count)
        alive = mass > 0.0
        removed = count - int(np.count_nonzero(alive))
        kept = int(np.count_nonzero((gathered_survival > 0.0)
                                    & alive[parents]))
        nodes_removed += removed
        edges_removed += len(children) - kept
        if removed == count:
            stats.nodes_removed = nodes_removed
            stats.edges_removed = edges_removed
            raise ZeroMassError(
                "no trajectory compatible with the readings satisfies "
                "the constraints")
        # Dead masses are exactly 0.0, so the all-entries max equals the
        # python path's alive-only max; conditioning divides by the
        # *unrescaled* mass below, exactly like the reference.
        survivals[tau] = np.where(alive, mass / mass.max(), 0.0)
        level_arrays[tau] = (children, weights, parents, mass, alive)
    stats.nodes_removed = nodes_removed
    stats.edges_removed = edges_removed
    stats.sweep_seconds = time.perf_counter() - backward_started

    # Node interning stays python (dict-driven first-encounter order, a
    # handful of ops per *surviving node*); the per-*edge* work below it
    # is where the volume lives and is fully vectorised.
    flat_ids: Dict[int, int] = {}
    flat_names: List[str] = []
    flat_locations: List[Tuple[int, ...]] = []
    flat_stays: List[Tuple[Optional[int], ...]] = []
    index_maps: List[List[int]] = []
    for tau in range(duration):
        sids = level_sids[tau]
        alive_row = (level_arrays[tau][4].tolist() if tau != last
                     else [True] * len(sids))
        loc_row: List[int] = []
        stay_row: List[Optional[int]] = []
        index_map = [-1] * len(sids)
        for i, sid in enumerate(sids):
            if not alive_row[i]:
                continue
            lid, stay, _rel_deps = states[sid]
            fid = flat_ids.get(lid)
            if fid is None:
                fid = len(flat_names)
                flat_ids[lid] = fid
                flat_names.append(names[lid])
            index_map[i] = len(loc_row)
            loc_row.append(fid)
            stay_row.append(stay)
        flat_locations.append(tuple(loc_row))
        flat_stays.append(tuple(stay_row))
        index_maps.append(index_map)

    kept_offset_arrays: List[object] = []
    kept_child_arrays: List[object] = []
    kept_probability_arrays: List[object] = []
    for tau in range(last):
        children, weights, parents, mass, alive = level_arrays[tau]
        child_survival = survivals[tau + 1]
        # An edge survives iff its parent and child are both alive, even
        # when the conditioned weight underflows to 0.0; the keep mask
        # preserves global edge order, so the kept columns come out in
        # the reference's (parent, insertion) order.
        keep = (child_survival[children] > 0.0) & alive[parents]
        kept_parents = parents[keep]
        child_map = np.asarray(index_maps[tau + 1], dtype=np.int64)
        kept_children = child_map[children[keep]]
        kept_probabilities = weights[keep] / mass[kept_parents]
        counts = np.bincount(kept_parents, minlength=len(mass))[alive]
        offsets = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        kept_offset_arrays.append(offsets)
        kept_child_arrays.append(kept_children)
        kept_probability_arrays.append(kept_probabilities)

    # Source conditioning in python floats, verbatim from the python
    # path — ``.tolist()`` round-trips float64 exactly.
    survival_row = survivals[0].tolist()
    index_map = index_maps[0]
    source_row = [prior_probabilities[i] * survival_row[i]
                  for i in range(len(level_sids[0]))
                  if index_map[i] >= 0]
    total = math.fsum(source_row)
    if total <= 0.0:
        raise ZeroMassError(
            "the valid trajectories have zero total prior probability")
    stats.backward_seconds = time.perf_counter() - backward_started
    if output is not None:
        # The store route: the per-level ndarrays stream straight into
        # the .ctg section layout (the writer narrows them to the
        # little-endian int32/float64 on-disk dtypes) — no edge column is
        # ever boxed into Python tuples, which is the whole build-side
        # win of ``materialize="store"``.  The returned view mmaps the
        # freshly written file, so downstream QuerySessions read the
        # same bytes a later cold load would.
        from repro.store.format import load_ctg, write_ctg

        write_ctg(output,
                  location_names=flat_names,
                  locations=flat_locations,
                  stays=flat_stays,
                  edge_offsets=kept_offset_arrays,
                  edge_children=kept_child_arrays,
                  edge_probabilities=kept_probability_arrays,
                  source_probabilities=[p / total for p in source_row],
                  stats=stats)
        return load_ctg(output, mmap=True)
    return FlatCTGraph(
        location_names=tuple(flat_names),
        locations=tuple(flat_locations),
        stays=tuple(flat_stays),
        edge_offsets=tuple(tuple(offsets.tolist())
                           for offsets in kept_offset_arrays),
        edge_children=tuple(tuple(children.tolist())
                            for children in kept_child_arrays),
        edge_probabilities=tuple(tuple(probabilities.tolist())
                                 for probabilities in kept_probability_arrays),
        source_probabilities=tuple(p / total for p in source_row),
        stats=stats)
