"""Group correlations: objects known to move together (Section 8).

The paper's future work: "other forms of correlations, such as those
holding in groups of objects moving together, which typically characterize
supply-chain scenarios".  This module implements the core case: two
monitored objects (say, a pallet and its carrier) known to be at the
*same location at every timestep*.

Given each object's cleaned ct-graph, :func:`condition_on_meeting` builds
the product graph restricted to equal-location pairs and renormalises —
i.e. it conditions the independent product distribution on the "moving
together" event.  The result supports the same marginal / path /
probability queries as a ct-graph.  Larger groups fold pairwise:
``condition_on_meeting(a, b)`` produces a :class:`JointGraph` whose
``location_marginal`` already reflects both objects' evidence.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.core.ctgraph import CTGraph, CTNode
from repro.core.lsequence import Trajectory
from repro.errors import InconsistentReadingsError, QueryError

__all__ = ["JointNode", "JointGraph", "condition_on_meeting",
           "condition_group"]


class JointNode:
    """A pair of same-location node states at one timestep."""

    __slots__ = ("tau", "location", "node_a", "node_b", "edges", "parents")

    def __init__(self, tau: int, location: str,
                 node_a, node_b) -> None:
        self.tau = tau
        self.location = location
        self.node_a = node_a
        self.node_b = node_b
        self.edges: Dict["JointNode", float] = {}
        self.parents: List["JointNode"] = []

    def __repr__(self) -> str:
        return (f"JointNode(tau={self.tau}, loc={self.location!r}, "
                f"out={len(self.edges)})")


class JointGraph:
    """The conditioned joint distribution of two objects moving together."""

    def __init__(self, levels: Sequence[Sequence[JointNode]],
                 source_probabilities: Dict[JointNode, float]) -> None:
        self._levels: Tuple[Tuple[JointNode, ...], ...] = tuple(
            tuple(level) for level in levels)
        self._source_probabilities = dict(source_probabilities)

    @property
    def duration(self) -> int:
        return len(self._levels)

    @property
    def num_nodes(self) -> int:
        return sum(len(level) for level in self._levels)

    def level(self, tau: int) -> Tuple[JointNode, ...]:
        if not 0 <= tau < self.duration:
            raise QueryError(f"timestep {tau} outside [0, {self.duration})")
        return self._levels[tau]

    @property
    def sources(self) -> Tuple[JointNode, ...]:
        return self._levels[0]

    def source_probability(self, node: JointNode) -> float:
        return self._source_probabilities.get(node, 0.0)

    def paths(self) -> Iterator[Tuple[Trajectory, float]]:
        """Every joint trajectory with its conditioned probability."""
        def walk(node: JointNode, prefix: List[str], probability: float):
            prefix.append(node.location)
            if node.tau == self.duration - 1:
                yield tuple(prefix), probability
            else:
                for child, p in node.edges.items():
                    yield from walk(child, prefix, probability * p)
            prefix.pop()

        for source in self.sources:
            yield from walk(source, [], self.source_probability(source))

    def location_marginal(self, tau: int) -> Dict[str, float]:
        """Where the group is at ``tau`` (both objects, by construction)."""
        alphas: Dict[JointNode, float] = {
            node: self.source_probability(node) for node in self.sources}
        for level in self._levels[:tau]:
            for node in level:
                mass = alphas.get(node, 0.0)
                if mass <= 0.0:
                    continue
                for child, probability in node.edges.items():
                    alphas[child] = alphas.get(child, 0.0) + mass * probability
        marginal: Dict[str, float] = {}
        for node in self.level(tau):
            mass = alphas.get(node, 0.0)
            if mass > 0.0:
                marginal[node.location] = (marginal.get(node.location, 0.0)
                                           + mass)
        return marginal

    def trajectory_probability(self, trajectory: Sequence[str]) -> float:
        """The conditioned probability that *both* objects follow
        ``trajectory``.

        Unlike a plain ct-graph, several joint nodes can share a location
        at a timestep (different pairings of the two objects' states), so
        this walks a weighted frontier instead of a single node chain.
        """
        if len(trajectory) != self.duration:
            raise QueryError(
                f"trajectory has {len(trajectory)} steps, expected "
                f"{self.duration}")
        frontier: Dict[JointNode, float] = {
            node: self.source_probability(node)
            for node in self.sources if node.location == trajectory[0]}
        for location in trajectory[1:]:
            step: Dict[JointNode, float] = {}
            for node, mass in frontier.items():
                for child, probability in node.edges.items():
                    if child.location == location:
                        step[child] = step.get(child, 0.0) + mass * probability
            frontier = step
            if not frontier:
                return 0.0
        return sum(frontier.values())

    def __repr__(self) -> str:
        return f"JointGraph(duration={self.duration}, nodes={self.num_nodes})"


def condition_on_meeting(graph_a, graph_b) -> JointGraph:
    """Condition two cleaned trajectories on "same location at every step".

    Both graphs must cover the same monitoring interval; each may be a
    :class:`~repro.core.ctgraph.CTGraph` or a :class:`JointGraph` (which
    is how :func:`condition_group` folds larger groups).  Raises
    :class:`InconsistentReadingsError` when the objects cannot have been
    together (no common valid trajectory).
    """
    if graph_a.duration != graph_b.duration:
        raise QueryError(
            f"graphs cover different intervals: {graph_a.duration} vs "
            f"{graph_b.duration} steps")
    duration = graph_a.duration

    # Forward product construction over same-location pairs.
    levels: List[Dict[Tuple[CTNode, CTNode], JointNode]] = [
        {} for _ in range(duration)]
    prior: Dict[JointNode, float] = {}
    for source_a in graph_a.sources:
        pa = graph_a.source_probability(source_a)
        if pa <= 0.0:
            continue
        for source_b in graph_b.sources:
            if source_b.location != source_a.location:
                continue
            pb = graph_b.source_probability(source_b)
            if pb <= 0.0:
                continue
            node = JointNode(0, source_a.location, source_a, source_b)
            levels[0][(source_a, source_b)] = node
            prior[node] = pa * pb
    if not levels[0]:
        raise InconsistentReadingsError(
            "the objects cannot start at a common location")

    for tau in range(duration - 1):
        next_level = levels[tau + 1]
        for node in levels[tau].values():
            # All equal-location pairs of successors.  A CTGraph node has
            # at most one successor per location, but JointGraph inputs
            # (group folding) can have several — hence the generic loop.
            for child_a, pa in node.node_a.edges.items():
                for child_b, pb in node.node_b.edges.items():
                    if child_b.location != child_a.location:
                        continue
                    key = (child_a, child_b)
                    child = next_level.get(key)
                    if child is None:
                        child = JointNode(tau + 1, child_a.location,
                                          child_a, child_b)
                        next_level[key] = child
                    node.edges[child] = pa * pb
                    child.parents.append(node)
        if not next_level:
            raise InconsistentReadingsError(
                f"the objects cannot stay together past timestep {tau}")

    # Backward survival sweep (same scheme as Algorithm 1's backward phase).
    survival: Dict[JointNode, float] = {
        node: 1.0 for node in levels[duration - 1].values()}
    for tau in range(duration - 2, -1, -1):
        level = levels[tau]
        dead: List[Tuple[CTNode, CTNode]] = []
        level_max = 0.0
        for key, node in level.items():
            mass = 0.0
            surviving: Dict[JointNode, float] = {}
            for child, weight in node.edges.items():
                s = survival.get(child, 0.0)
                if s > 0.0:
                    surviving[child] = weight * s
                    mass += weight * s
            if mass <= 0.0:
                dead.append(key)
                node.edges.clear()
                continue
            node.edges = {child: weight / mass
                          for child, weight in surviving.items()}
            survival[node] = mass
            level_max = max(level_max, mass)
        for key in dead:
            del level[key]
        if not level:
            raise InconsistentReadingsError(
                "no joint trajectory satisfies the together constraint")
        if level_max > 0.0:
            for node in level.values():
                survival[node] /= level_max

    source_probabilities: Dict[JointNode, float] = {}
    for node in levels[0].values():
        source_probabilities[node] = prior[node] * survival.get(node, 1.0)
    total = math.fsum(source_probabilities.values())
    if total <= 0.0:
        raise InconsistentReadingsError(
            "the joint trajectories have zero total prior probability")
    for node in source_probabilities:
        source_probabilities[node] /= total

    return JointGraph([tuple(level.values()) for level in levels],
                      source_probabilities)


def condition_group(graphs: Sequence) -> JointGraph:
    """Condition *k* cleaned trajectories on all moving together.

    Folds :func:`condition_on_meeting` left to right; the fold is exact
    because "all pairwise equal" factorises — conditioning the normalised
    pair product against the next object re-scales but never re-weights
    (the resulting distribution is proportional to
    ``p_1(t) * p_2(t) * ... * p_k(t)`` over common trajectories).
    """
    if len(graphs) < 2:
        raise QueryError("condition_group needs at least two graphs")
    joint = condition_on_meeting(graphs[0], graphs[1])
    for graph in graphs[2:]:
        joint = condition_on_meeting(joint, graph)
    return joint
