"""Diagnosing inconsistent readings: *why* did cleaning fail?

When no trajectory compatible with the readings satisfies the constraints,
:class:`~repro.errors.InconsistentReadingsError` tells the user nothing
about *where* the data and the constraints collide.  :func:`diagnose`
replays the forward phase and reports the first timestep at which every
interpretation dies, together with a per-constraint-kind account of what
blocked each frontier state's candidate moves — the difference between
"your data is broken" and "reader r7's detections at 14:02 imply a wall
was crossed".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.algorithm import CleaningOptions
from repro.core.constraints import ConstraintSet
from repro.core.lsequence import LSequence
from repro.core.nodes import NodeState, source_states, successor_state

__all__ = ["BlockedMove", "InconsistencyReport", "diagnose"]


@dataclass(frozen=True)
class BlockedMove:
    """One candidate step that the constraints rejected."""

    origin: str
    destination: str
    reason: str          # "unreachable" | "latency" | "travelingTime"
    detail: str

    def __str__(self) -> str:
        return f"{self.origin} -> {self.destination}: {self.detail}"


@dataclass
class InconsistencyReport:
    """Where and why the readings became uncleanable."""

    failed_at: Optional[int]                 # None = the data is consistent
    frontier_locations: Tuple[str, ...] = ()
    candidate_locations: Tuple[str, ...] = ()
    blocked: List[BlockedMove] = field(default_factory=list)

    @property
    def is_consistent(self) -> bool:
        return self.failed_at is None

    def summary(self) -> str:
        """A human-readable account (one paragraph)."""
        if self.is_consistent:
            return "the readings are consistent with the constraints"
        reasons: Dict[str, int] = {}
        for move in self.blocked:
            reasons[move.reason] = reasons.get(move.reason, 0) + 1
        reason_text = ", ".join(f"{count} by {reason}"
                                for reason, count in sorted(reasons.items()))
        return (
            f"no valid interpretation survives timestep {self.failed_at}: "
            f"the object could be at {{{', '.join(self.frontier_locations)}}} "
            f"but the readings then require "
            f"{{{', '.join(self.candidate_locations)}}}; "
            f"every move is blocked ({reason_text})")


def _explain_block(tau: int, state: NodeState, destination: str,
                   constraints: ConstraintSet) -> Optional[BlockedMove]:
    """Which rule of Definition 3 rejects ``state -> destination``."""
    location, stay, departures = state
    arrival = tau + 1
    if constraints.forbids_step(location, destination):
        return BlockedMove(location, destination, "unreachable",
                           f"unreachable({location}, {destination})")
    if destination != location and stay is not None:
        bound = constraints.latency_of(location)
        return BlockedMove(
            location, destination, "latency",
            f"latency({location}, {bound}): the stay is only "
            f"{stay} step(s) old")
    if destination != location:
        direct = constraints.traveling_time(location, destination)
        if direct is not None and arrival - tau < direct:
            return BlockedMove(
                location, destination, "travelingTime",
                f"travelingTime({location}, {destination}, {direct}) "
                "forbids a direct step")
        for departed_at, departed_loc in departures:
            steps = constraints.traveling_time(departed_loc, destination)
            if steps is not None and arrival - departed_at < steps:
                return BlockedMove(
                    location, destination, "travelingTime",
                    f"travelingTime({departed_loc}, {destination}, {steps}):"
                    f" left {departed_loc} at {departed_at}, arriving at "
                    f"{arrival} is too soon")
    return None


def diagnose(lsequence: LSequence, constraints: ConstraintSet,
             options: CleaningOptions = CleaningOptions(),
             max_blocked: int = 20) -> InconsistencyReport:
    """Replay the forward phase; report the first total dead-end.

    Note this reports *forward* inconsistency (some prefix admits no valid
    continuation), which is exactly when the cleaning algorithm gives up.
    ``max_blocked`` caps the per-report blocked-move list.
    """
    frontier: Dict[NodeState, None] = {
        state: None
        for state in source_states(lsequence.support(0), constraints).values()
        if not (options.strict_truncation and lsequence.duration == 1
                and state[1] is not None)
    }
    if not frontier:
        return InconsistencyReport(
            failed_at=0,
            frontier_locations=(),
            candidate_locations=tuple(sorted(lsequence.support(0))))

    for tau in range(lsequence.duration - 1):
        candidates = lsequence.candidates(tau + 1)
        filter_binding = (options.strict_truncation
                          and tau + 1 == lsequence.duration - 1)
        next_frontier: Dict[NodeState, None] = {}
        blocked: List[BlockedMove] = []
        for state in frontier:
            for destination in candidates:
                successor = successor_state(tau, state, destination,
                                            constraints)
                if successor is None:
                    if len(blocked) < max_blocked:
                        move = _explain_block(tau, state, destination,
                                              constraints)
                        if move is not None:
                            blocked.append(move)
                    continue
                if filter_binding and successor[1] is not None:
                    continue
                next_frontier[successor] = None
        if not next_frontier:
            return InconsistencyReport(
                failed_at=tau + 1,
                frontier_locations=tuple(sorted(
                    {state[0] for state in frontier})),
                candidate_locations=tuple(sorted(candidates)),
                blocked=blocked)
        frontier = next_frontier
    return InconsistencyReport(failed_at=None)
