"""Optional-numpy level-sweep kernels over the flat (columnar) ct-graph form.

Every hot loop of this system — Algorithm 1's backward survival sweep and
the :class:`~repro.queries.session.QuerySession` DPs — is a *level-major*
sweep: per timestep, a gather along the CSR ``children`` column, an
elementwise multiply by the ``probabilities`` column, and a segment
reduction (sum or max) back onto the level's nodes.  Those are exactly the
shapes ndarray kernels excel at, so this module re-expresses the sweeps as
whole-level array ops:

* gathers are fancy indexing over cached ``int32`` children/parent views
  (for an mmap-served :class:`~repro.store.format.MappedCTGraph` the
  columns are already little-endian ``int32``/``float64`` slices of the
  ``.ctg`` file, so the ``asarray`` conversions are no-ops — only the
  derived ``parents`` expansion is allocated);
* per-node segment *sums* are ``np.bincount(parents, weights=...)`` —
  unlike ``np.add.reduceat`` it is well-defined on empty segments (a node
  with no surviving edges just gets ``0.0``);
* per-node segment *maxima* are ``np.maximum.at`` scatter (max is
  order-independent, so the max-product suffix pass stays bit-exact with
  the python loop).

The streaming ingest hot path — one :func:`repro.core.incremental.
advance_frontier` step per reading — is the third such sweep and gets the
same treatment through :class:`FrontierKernel`: the Definition 3 successor
relation is *compiled*, per (frontier signature, row support) pair, into a
dense transition table of int32 index arrays, making one ingest step a
gather + multiply + ``np.bincount`` scatter-add over the frontier masses
instead of a python dict-of-dicts loop.  Signatures use relative departure
ages (:func:`repro.core.nodes.relative_departures`), so the same table
serves every timestep at which the frontier shape recurs, and one kernel
instance is shared across a whole fleet's sessions (the way
``SharedCleaningPlan`` shares DU rows) — see
:class:`repro.runtime.StreamSessionManager`.

numpy is an **optional** dependency (the ``repro[numpy]`` extra).  When it
is missing — or disabled through the ``REPRO_NO_NUMPY`` environment
variable, which the no-numpy CI leg and the fallback tests use — every
entry point degrades to the pure-python implementations, which remain the
default and the parity oracle.  Selection is
``CleaningOptions(backend="auto"|"python"|"numpy")`` /
``QuerySession(graph, backend=...)``: ``"python"`` always runs the oracle,
``"numpy"`` runs the kernels when numpy is importable (silently falling
back otherwise), and ``"auto"`` engages them only above
:data:`KERNEL_MIN_LEVEL_EDGES` mean edges per level, the calibrated
break-even below which per-level ndarray overhead loses to the plain
loops.

Accuracy contract (``docs/perf.md``): segment sums reassociate float
additions, so kernel results are pinned to the oracle by a *tolerance
gate* — ``math.isclose(rel_tol=1e-12)`` per float — while everything
discrete (which nodes/edges survive, dict key sets, tie-breaks, top-k
order) is pinned *exactly*.  The exact-structure half is sound because
every mass in these sweeps is nonnegative: a sum is zero iff every term
is zero, so reassociation can never flip a ``> 0.0`` test.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ReproError

try:  # pragma: no cover - exercised by the no-numpy CI leg
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _numpy = None  # type: ignore[assignment]

__all__ = [
    "BACKENDS",
    "KERNEL_MIN_LEVEL_EDGES",
    "FrontierKernel",
    "GraphViews",
    "KernelFrontier",
    "alphas",
    "avoidance_mass",
    "best_suffixes",
    "entropy_bits",
    "masses_by_location",
    "numpy_available",
    "require_numpy",
    "resolve_backend",
    "span_mass",
]

#: The selectable sweep backends (``CleaningOptions.backend`` /
#: ``QuerySession(backend=...)``).
BACKENDS = ("auto", "python", "numpy")

#: Mean edges per edge level at and above which ``backend="auto"``
#: engages the numpy kernels.  Calibrated on duration-400 periodic
#: instances (best-of-5, alphas + suffix sweeps): the break-even sits
#: near ~30 edges/level, python wins clearly at ~15 (0.66x) and numpy
#: wins from ~60 up (1.8x at 63, 3x at 143, 5x+ from ~1000).  64 keeps a
#: comfortable margin over the noisy break-even band.
KERNEL_MIN_LEVEL_EDGES = 64


def numpy_available() -> bool:
    """Whether the numpy backend can run right now.

    False when numpy is not importable *or* the ``REPRO_NO_NUMPY``
    environment variable is set (read dynamically so tests and the
    no-numpy CI leg can gate the fallback without uninstalling anything).
    """
    return _numpy is not None and not os.environ.get("REPRO_NO_NUMPY")


def require_numpy() -> Any:
    """The numpy module, or a typed error when the backend cannot run.

    Internal guard for code paths that already resolved to the numpy
    backend; user-facing selection goes through :func:`resolve_backend`,
    which falls back instead of raising.
    """
    if not numpy_available():
        raise ReproError(
            "the numpy kernel backend is unavailable (numpy not installed "
            "or REPRO_NO_NUMPY set); use backend='python' or install the "
            "repro[numpy] extra")
    return _numpy


def resolve_backend(backend: str,
                    level_edges: Optional[float] = None) -> str:
    """Resolve a requested backend to a concrete one (never ``"auto"``).

    ``"python"`` passes through.  ``"numpy"`` resolves to itself when
    :func:`numpy_available`, else gracefully to ``"python"``.  ``"auto"``
    engages numpy only when it is available *and* ``level_edges`` (the
    instance's mean edge count per edge level — measured or predicted)
    reaches :data:`KERNEL_MIN_LEVEL_EDGES`; with no width information it
    stays on python.  Unknown names raise :class:`ReproError`.
    """
    if backend == "python":
        return "python"
    if backend == "numpy":
        return "numpy" if numpy_available() else "python"
    if backend == "auto":
        if (numpy_available() and level_edges is not None
                and level_edges >= KERNEL_MIN_LEVEL_EDGES):
            return "numpy"
        return "python"
    raise ReproError(
        f"unknown kernel backend {backend!r}; expected one of {BACKENDS}")


class GraphViews:
    """Cached ndarray views of one :class:`FlatCTGraph`'s columns.

    The flat graph stores tuples (frozen, picklable); the kernels want
    contiguous arrays.  This wrapper converts each level **once**, on
    first touch, and caches the result: ``int32`` children/parents,
    ``float64`` probabilities, plus the per-edge ``parents`` expansion of
    the CSR offsets (``np.repeat`` over the row lengths) that turns
    per-node slice loops into one whole-level gather.  A
    :class:`~repro.queries.session.QuerySession` keeps one ``GraphViews``
    per graph, so the conversion cost amortises across every query and
    re-sweep of the session.
    """

    __slots__ = ("graph", "_source", "_levels", "_lids")

    def __init__(self, graph: Any) -> None:
        require_numpy()
        self.graph = graph
        self._source: Optional[Any] = None
        self._levels: List[Optional[Tuple[Any, Any, Any, int, int]]] = \
            [None] * max(0, graph.duration - 1)
        self._lids: List[Optional[Any]] = [None] * graph.duration

    @property
    def source(self) -> Any:
        """The conditioned source distribution as a float64 array."""
        if self._source is None:
            np = require_numpy()
            self._source = np.asarray(self.graph.source_probabilities,
                                      dtype=np.float64)
        return self._source

    def level_lids(self, tau: int) -> Any:
        """Level ``tau``'s per-node location ids as an int32 array."""
        cached = self._lids[tau]
        if cached is None:
            np = require_numpy()
            cached = np.asarray(self.graph.locations[tau], dtype=np.int32)
            self._lids[tau] = cached
        return cached

    def edge_level(self, tau: int) -> Tuple[Any, Any, Any, int, int]:
        """Edge level ``tau`` as ``(children, probabilities, parents,
        count, next_count)`` arrays (children/parents int32,
        probabilities float64)."""
        cached = self._levels[tau]
        if cached is None:
            np = require_numpy()
            graph = self.graph
            offsets = np.asarray(graph.edge_offsets[tau], dtype=np.int32)
            children = np.asarray(graph.edge_children[tau], dtype=np.int32)
            probabilities = np.asarray(graph.edge_probabilities[tau],
                                       dtype=np.float64)
            parents = np.repeat(
                np.arange(len(offsets) - 1, dtype=np.int32),
                np.diff(offsets))
            cached = (children, probabilities, parents,
                      len(offsets) - 1, len(graph.locations[tau + 1]))
            self._levels[tau] = cached
        return cached


# ----------------------------------------------------------------------
# QuerySession sweeps
# ----------------------------------------------------------------------
def alphas(views: GraphViews) -> List[Any]:
    """The forward (alpha) pass as whole-level array ops.

    Mirrors ``QuerySession.alphas``: the python loop's ``mass == 0.0``
    skip is subsumed by the arithmetic (a zero-mass parent contributes
    exactly ``0.0`` to every child, and ``x + 0.0 == x`` for the
    nonnegative masses involved).
    """
    np = require_numpy()
    rows: List[Any] = [views.source]
    for tau in range(views.graph.duration - 1):
        children, probabilities, parents, _count, next_count = \
            views.edge_level(tau)
        edge_mass = rows[tau][parents] * probabilities
        rows.append(np.bincount(children, weights=edge_mass,
                                minlength=next_count))
    return rows


def best_suffixes(views: GraphViews) -> List[Any]:
    """The max-product backward pass as whole-level array ops.

    Bit-exact with ``QuerySession._best_suffixes``: both sides take the
    maximum of the *same* pairwise products, and max is associative and
    commutative over floats, so reassociation cannot change the result.
    """
    np = require_numpy()
    graph = views.graph
    rows: List[Any] = [None] * graph.duration
    rows[-1] = np.ones(len(graph.locations[-1]), dtype=np.float64)
    for tau in range(graph.duration - 2, -1, -1):
        children, probabilities, parents, count, _next_count = \
            views.edge_level(tau)
        values = probabilities * rows[tau + 1][children]
        row = np.zeros(count, dtype=np.float64)
        np.maximum.at(row, parents, values)
        rows[tau] = row
    return rows


def masses_by_location(views: GraphViews, tau: int, alpha_row: Any) -> Any:
    """Level ``tau``'s alpha masses reduced onto location ids.

    Returns a float64 array indexed by location id; an id's entry is
    positive iff some node at that location carries positive mass (the
    sums are nonnegative, so reassociation cannot zero a positive entry),
    which keeps the marginal dicts' key sets exactly equal to the python
    oracle's.
    """
    np = require_numpy()
    return np.bincount(views.level_lids(tau), weights=alpha_row,
                       minlength=len(views.graph.location_names))


def entropy_bits(masses: Any) -> float:
    """Shannon entropy (bits) of a nonnegative mass vector."""
    np = require_numpy()
    positive = masses[masses > 0.0]
    if not len(positive):
        return 0.0
    return float(-np.sum(positive * np.log2(positive)))


def avoidance_mass(views: GraphViews, lid: int) -> float:
    """The surviving flow of the visit-avoidance sweep.

    Mirrors ``QuerySession.visit_probability``'s restricted forward pass:
    source mass at ``lid`` is dropped, and per level all flow *into*
    ``lid`` nodes is zeroed — zeroing after the scatter equals never
    scattering into them, because a zeroed node re-emits nothing.  Pass
    ``lid < 0`` for a location absent from the graph (nothing is avoided).
    Returns the final row's total mass.
    """
    np = require_numpy()
    graph = views.graph
    row = np.where((views.level_lids(0) != lid) & (views.source > 0.0),
                   views.source, 0.0)
    for tau in range(graph.duration - 1):
        children, probabilities, parents, _count, next_count = \
            views.edge_level(tau)
        edge_mass = row[parents] * probabilities
        row = np.bincount(children, weights=edge_mass,
                          minlength=next_count)
        row[views.level_lids(tau + 1) == lid] = 0.0
    return float(row.sum())


# ----------------------------------------------------------------------
# Streaming frontier-advance kernel
# ----------------------------------------------------------------------
#: A node state with its TL rebased to *relative ages* — the
#: timestep-invariant form the transition tables are keyed on:
#: ``(location, stay, ((age, location), ...))``.
_RelativeState = Tuple[str, Optional[int], Tuple[Tuple[int, str], ...]]


class _SignatureNode:
    """One interned frontier signature plus its outgoing transition tables.

    A *signature* is the ordered tuple of relative node states a frontier
    carries — the part of the frontier that determines which successors
    exist (the masses do not).  Each node caches, per candidate-row
    support, the compiled :class:`_Transition` leading to the successor
    signature, so a steady-state stream pays one dict lookup per step.
    """

    __slots__ = ("signature", "locations", "transitions")

    def __init__(self, signature: Tuple[_RelativeState, ...]) -> None:
        from repro.core.nodes import state_location

        self.signature = signature
        #: Per-state location names, for the filtered-marginal fast path.
        self.locations: Tuple[str, ...] = tuple(state_location(state)
                                                for state in signature)
        self.transitions: Dict[Tuple[str, ...], "_Transition"] = {}


class _Transition:
    """One compiled ``(signature, support)`` frontier-advance step.

    ``parent_index[k]`` / ``destination_index[k]`` / ``successor_index[k]``
    describe the ``k``-th legal Definition 3 transition: frontier state
    ``parent_index[k]`` moving to support location ``destination_index[k]``
    lands on successor state ``successor_index[k]`` of ``target``'s
    signature.  Advancing is then one gather + multiply + ``np.bincount``
    scatter-add — no per-edge python at all.
    """

    __slots__ = ("parent_index", "destination_index", "successor_index",
                 "target")

    def __init__(self, parent_index: Any, destination_index: Any,
                 successor_index: Any, target: _SignatureNode) -> None:
        self.parent_index = parent_index
        self.destination_index = destination_index
        self.successor_index = successor_index
        self.target = target


class KernelFrontier:
    """A live forward frontier in kernel form: signature node + mass array.

    The vectorized twin of the oracle's ``Dict[NodeState, float]``: the
    states live (interned, in the oracle's insertion order) on the
    signature node, the masses in a float64 ndarray, and ``tau`` is the
    timestep the frontier describes — needed to rebase the relative
    departure ages back to the absolute times the dict form carries.
    :meth:`to_dict` materialises exactly the dict the python oracle's key
    order would produce, with the kernel's float values bit-preserved, so
    checkpoints round-trip through the ``rfid-ctg/ckpt@1`` codec unchanged.
    """

    __slots__ = ("node", "masses", "tau")

    def __init__(self, node: _SignatureNode, masses: Any, tau: int) -> None:
        self.node = node
        self.masses = masses
        self.tau = tau

    def __len__(self) -> int:
        return len(self.node.signature)

    def __bool__(self) -> bool:
        return len(self.node.signature) > 0

    def to_dict(self) -> Dict[Tuple, float]:
        """The frontier as the oracle's absolute-state dict (new floats
        are plain python; the bits are the ndarray's, unchanged)."""
        from repro.core.nodes import (
            absolute_departures,
            state_departures,
            state_location,
            state_stay,
        )

        tau = self.tau
        result: Dict[Tuple, float] = {}
        for state, mass in zip(self.node.signature, self.masses.tolist()):
            result[(state_location(state), state_stay(state),
                    absolute_departures(state_departures(state),
                                        tau))] = mass
        return result

    def location_masses(self) -> Dict[str, float]:
        """Unnormalised mass per location, in the oracle's key order."""
        raw: Dict[str, float] = {}
        for location, mass in zip(self.node.locations,
                                  self.masses.tolist()):
            raw[location] = raw.get(location, 0.0) + mass
        return raw


class FrontierKernel:
    """Compile-and-cache vectorized frontier advances for one constraint set.

    The cache is sharable: a fleet of sessions under the same constraints
    (one :class:`~repro.runtime.StreamSessionManager`) passes one kernel
    to every cleaner, so a signature compiled for one object serves them
    all.  Tables are compiled *through the python oracle's own*
    :func:`~repro.core.nodes.successor_state`, which is what makes the
    kernel's reachable-state structure exact by construction; only the
    float sums reassociate (``np.bincount``), pinned by the tolerance
    gate in ``docs/perf.md``.

    ``max_tables`` bounds the cache (adversarial streams could keep
    minting fresh signatures); past the cap, steps still run — their
    tables are simply compiled transiently instead of cached.
    """

    def __init__(self, constraints: Any, *, max_tables: int = 4096) -> None:
        require_numpy()
        self.constraints = constraints
        self.max_tables = max_tables
        self._states: Dict[_RelativeState, _RelativeState] = {}
        self._nodes: Dict[Tuple[_RelativeState, ...], _SignatureNode] = {}
        self._seeds: Dict[Tuple[str, ...], _SignatureNode] = {}
        self._tables = 0

    # ------------------------------------------------------------------
    @property
    def cached_tables(self) -> int:
        """How many transition tables the cache currently holds."""
        return self._tables

    def _intern_state(self, state: _RelativeState) -> _RelativeState:
        return self._states.setdefault(state, state)

    def _node_for(self, signature: Tuple[_RelativeState, ...],
                  ) -> _SignatureNode:
        node = self._nodes.get(signature)
        if node is None:
            node = _SignatureNode(signature)
            if len(self._nodes) < self.max_tables:
                self._nodes[signature] = node
        return node

    # ------------------------------------------------------------------
    def seed(self, row: Mapping[str, float]) -> KernelFrontier:
        """The timestep-0 frontier (mirrors ``advance_frontier`` at tau 0)."""
        from repro.core.nodes import initial_stay

        np = require_numpy()
        support = tuple(row)
        node = self._seeds.get(support)
        if node is None:
            signature = tuple(
                self._intern_state(
                    (location, initial_stay(location, self.constraints), ()))
                for location in support)
            node = self._node_for(signature)
            if len(self._seeds) < self.max_tables:
                self._seeds[support] = node
        masses = np.fromiter(row.values(), dtype=np.float64,
                             count=len(support))
        return KernelFrontier(node, masses, 0)

    def enter(self, frontier: Mapping[Tuple, float],
              tau: int) -> KernelFrontier:
        """Adopt an oracle-form frontier (dict of absolute node states at
        timestep ``tau``) into kernel form — the resume/backend-switch
        entry point.  Float bits and state order are preserved exactly."""
        from repro.core.nodes import (
            relative_departures,
            state_departures,
            state_location,
            state_stay,
        )

        np = require_numpy()
        signature = tuple(
            self._intern_state(
                (state_location(state), state_stay(state),
                 relative_departures(state_departures(state), tau)))
            for state in frontier)
        node = self._node_for(signature)
        masses = np.fromiter(frontier.values(), dtype=np.float64,
                             count=len(signature))
        return KernelFrontier(node, masses, tau)

    def advance(self, frontier: KernelFrontier,
                row: Mapping[str, float]) -> KernelFrontier:
        """One vectorized step of the filtered-forward recursion.

        Semantically identical to
        :func:`repro.core.incremental.advance_frontier` — same surviving
        states in the same order, same peak-rescale policy — with the
        per-successor sums reassociated by ``np.bincount``.  An empty
        result (no valid continuation) comes back as a zero-length
        frontier, which is falsy like the oracle's empty dict.
        """
        np = require_numpy()
        support = tuple(row)
        transition = frontier.node.transitions.get(support)
        if transition is None:
            transition = self._compile(frontier.node, support)
        target = transition.target
        count = len(target.signature)
        tau = frontier.tau + 1
        if count == 0:
            return KernelFrontier(target,
                                  np.empty(0, dtype=np.float64), tau)
        probabilities = np.fromiter(row.values(), dtype=np.float64,
                                    count=len(support))
        weights = (frontier.masses[transition.parent_index]
                   * probabilities[transition.destination_index])
        masses = np.bincount(transition.successor_index, weights=weights,
                             minlength=count)
        peak = masses.max()
        if peak > 0.0 and peak != 1.0:
            masses /= peak
        return KernelFrontier(target, masses, tau)

    # ------------------------------------------------------------------
    def _compile(self, node: _SignatureNode,
                 support: Tuple[str, ...]) -> _Transition:
        """Build the transition table for ``(node.signature, support)``.

        Runs the oracle's successor relation once per (state, destination)
        pair at a symbolic timestep (relative ages make the result valid
        at every timestep), recording the surviving transitions as index
        arrays.  Successor order is first-encounter order — exactly the
        oracle's dict-insertion order.
        """
        from repro.core.nodes import (
            absolute_departures,
            relative_departures,
            state_departures,
            state_location,
            state_stay,
            successor_state,
        )

        np = require_numpy()
        constraints = self.constraints
        order: Dict[_RelativeState, int] = {}
        parents: List[int] = []
        destinations: List[int] = []
        successors: List[int] = []
        for parent_position, state in enumerate(node.signature):
            absolute = (state_location(state), state_stay(state),
                        absolute_departures(state_departures(state), 0))
            for destination_position, destination in enumerate(support):
                successor = successor_state(0, absolute, destination,
                                            constraints)
                if successor is None:
                    continue
                relative = self._intern_state(
                    (state_location(successor), state_stay(successor),
                     relative_departures(state_departures(successor), 1)))
                index = order.setdefault(relative, len(order))
                parents.append(parent_position)
                destinations.append(destination_position)
                successors.append(index)
        transition = _Transition(
            np.asarray(parents, dtype=np.int32),
            np.asarray(destinations, dtype=np.int32),
            np.asarray(successors, dtype=np.int32),
            self._node_for(tuple(order)))
        if self._tables < self.max_tables:
            node.transitions[support] = transition
            self._tables += 1
        return transition


def span_mass(views: GraphViews, lid: int, start: int, end: int,
              alpha_row: Any) -> float:
    """The mass staying at location ``lid`` throughout ``[start, end]``.

    Mirrors ``QuerySession.span_probability``'s restricted flow:
    ``alpha_row`` is the alpha row of level ``start``; flow is masked to
    ``lid`` nodes at every step of the window.
    """
    np = require_numpy()
    row = np.where(views.level_lids(start) == lid, alpha_row, 0.0)
    for tau in range(start, end):
        children, probabilities, parents, _count, next_count = \
            views.edge_level(tau)
        edge_mass = row[parents] * probabilities
        row = np.bincount(children, weights=edge_mass,
                          minlength=next_count)
        row = np.where(views.level_lids(tau + 1) == lid, row, 0.0)
        if not row.any():
            return 0.0
    return float(row.sum())
