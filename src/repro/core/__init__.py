"""The paper's contribution: conditioning trajectory data under constraints.

* :mod:`repro.core.constraints` — DU / TT / LT integrity constraints;
* :mod:`repro.core.lsequence` — readings and probabilistic l-sequences;
* :mod:`repro.core.nodes` — location nodes ``(tau, l, delta, TL)`` and the
  successor relation (Definition 3);
* :mod:`repro.core.ctgraph` — the conditioned-trajectory graph;
* :mod:`repro.core.algorithm` — Algorithm 1 (forward + backward phases);
* :mod:`repro.core.engine` — the compact engine: interned states, memoised
  transition rows, columnar backward sweep (bit-exact, faster);
* :mod:`repro.core.validity` — Definition 2 trajectory validity;
* :mod:`repro.core.naive` — exact conditioning by enumeration (baseline);
* :mod:`repro.core.sampling` — drawing valid trajectories from a ct-graph.
"""

from repro.core.algorithm import (
    CleaningOptions,
    CleaningStats,
    build_ct_graph,
    clean,
)
from repro.core.engine import EngineCache, build_ct_graph_compact
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.core.ctgraph import CTGraph, CTNode
from repro.core.lsequence import LSequence, Reading, ReadingSequence
from repro.core.naive import NaiveConditioner
from repro.core.sampling import TrajectorySampler
from repro.core.validity import is_valid_trajectory

__all__ = [
    "ConstraintSet",
    "Unreachable",
    "TravelingTime",
    "Latency",
    "Reading",
    "ReadingSequence",
    "LSequence",
    "CTGraph",
    "CTNode",
    "CleaningOptions",
    "CleaningStats",
    "build_ct_graph",
    "build_ct_graph_compact",
    "EngineCache",
    "clean",
    "NaiveConditioner",
    "TrajectorySampler",
    "is_valid_trajectory",
]
