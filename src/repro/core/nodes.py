"""Location-node state and the successor relation (Section 4, Definition 3).

A location node carries ``(tau, location, stay, departures)``:

* ``stay`` is the paper's ``delta``, normalised as described in DESIGN.md:
  the length (in timesteps, >= 1) of the object's current stay at
  ``location``, tracked only while it is still *binding* — i.e. while a
  latency constraint exists on ``location`` and the stay is still shorter
  than its bound.  Once the bound is met (or when the location has no
  latency constraint) the value is ``None`` (the paper's ``⊥``), which
  merges states that behave identically in the future.

* ``departures`` is the paper's ``TL``: a tuple of ``(time, location)``
  pairs recording, for each location that (a) the object left in the recent
  past and (b) sources at least one TT constraint, the last timestep spent
  there.  Entries expire as soon as ``now - time >= maxTravelingTime(loc)``
  and only the latest departure per location is kept (an older departure is
  strictly weaker), so states stay canonical and finite.

Given the node state, validity of any *future* is independent of how the
state was reached — the Markov property that makes the ct-graph's per-node
``loss`` well-defined and Algorithm 1 exact.

Two interpretation choices (see DESIGN.md §3) are encoded here:

* a move ``l1 -> l2`` also checks ``travelingTime(l1, l2, v)`` directly
  (the implicit departure ``(tau1, l1)``), which Definition 2 requires even
  though the paper's printed rule 5 only inspects ``TL``;
* the stay counter follows Definition 2's bound (a stay must span at least
  ``d`` timesteps), resolving the paper's off-by-one between Definition 2
  and rule 4.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.constraints import ConstraintSet

__all__ = [
    "NodeState",
    "RelativeDepartures",
    "DepartureFilter",
    "initial_stay",
    "successor_state",
    "source_states",
    "relative_departures",
    "absolute_departures",
    "departure_keep_mask",
    "state_location",
    "state_stay",
    "state_departures",
]

#: The TL component: ``((time, location), ...)`` sorted for canonical hashing.
Departures = Tuple[Tuple[int, str], ...]

#: The TL component rebased to *relative ages*: ``((age, location), ...)``
#: with ``age = tau - time >= 0``, in the same entry order as the absolute
#: tuple it was derived from.  Two nodes at different timesteps share one
#: relative tuple exactly when their TL entries are the same number of
#: timesteps old — the key property the compact engine's transition cache
#: is built on (see :mod:`repro.core.engine`).
RelativeDepartures = Tuple[Tuple[int, str], ...]

#: The hashable node state used as a dict key during graph construction:
#: ``(location, stay, departures)`` — ``tau`` is implicit in the level.
NodeState = Tuple[str, Optional[int], Departures]


def state_location(state: NodeState) -> str:
    """The location component of a node state.

    Callers outside this module must read node-state components through
    these accessors instead of destructuring the tuple — a shape change of
    the ``NodeState`` alias then breaks here, loudly and in one place,
    rather than silently misassigning fields at every unpacking site.
    """
    return state[0]


def state_stay(state: NodeState) -> Optional[int]:
    """The stay (``delta``) component of a node state (see module docs)."""
    return state[1]


def state_departures(state: NodeState) -> Departures:
    """The ``TL`` departures component of a node state (see module docs)."""
    return state[2]


class DepartureFilter:
    """Exact, l-sequence-aware pruning of ``TL`` entries.

    A departure entry ``(t, l)`` can only ever invalidate an *arrival* at
    some TT destination ``d`` of ``l`` at a timestep ``ta`` with
    ``ta - t < v`` — and an arrival at ``d`` at ``ta`` can only happen if
    ``d`` is in the l-sequence's support at ``ta``.  Given the l-sequence,
    an entry whose every destination is absent from every support in its
    remaining binding window is dead weight: dropping it merges node states
    without changing the set of valid trajectories or their probabilities
    (the property tests against the naive enumerator cover this).

    This pruning is what keeps the ``TL`` state space tractable on long
    ambiguous stretches; it is an optimisation over the paper's printed
    rule 6, which only expires entries by the global ``maxTravelingTime``
    horizon.
    """

    def __init__(self, lsequence, constraints: ConstraintSet) -> None:
        self._constraints = constraints
        # Per destination location: the sorted timesteps where it has
        # positive prior support.
        support_times: Dict[str, List[int]] = {}
        for tau in range(lsequence.duration):
            for location in lsequence.candidates(tau):
                support_times.setdefault(location, []).append(tau)
        self._support_times = support_times
        # Per TT source: its (destination, min steps) constraints.
        self._destinations: Dict[str, Tuple[Tuple[str, int], ...]] = {}
        by_source: Dict[str, List[Tuple[str, int]]] = {}
        for (source, dest), steps in constraints.traveling_time_bounds.items():
            by_source.setdefault(source, []).append((dest, steps))
        self._destinations = {s: tuple(pairs) for s, pairs in by_source.items()}
        self._last_binding: Dict[Tuple[int, str], int] = {}
        self._alive_until: Dict[Tuple[int, str], int] = {}

    def last_binding(self, departed_at: int, location: str) -> int:
        """The last node timestep at which entry ``(departed_at, location)``
        can still matter (-1 if it never can)."""
        key = (departed_at, location)
        cached = self._last_binding.get(key)
        if cached is not None:
            return cached
        best = -1
        for destination, steps in self._destinations.get(location, ()):
            times = self._support_times.get(destination)
            if not times:
                continue
            # The latest support time of ``destination`` not beyond the
            # constraint's binding window [.., departed_at + steps - 1].
            index = bisect_right(times, departed_at + steps - 1)
            if index:
                best = max(best, times[index - 1] - 1)
        self._last_binding[key] = best
        return best

    def alive_until(self, departed_at: int, location: str) -> int:
        """The last node timestep at which the entry must be carried.

        Combines the ``maxTravelingTime`` horizon (entry expires once every
        constraint window closed) with :meth:`last_binding` (no reachable
        destination left).  Cached — the hot loop pays one dict lookup.
        """
        key = (departed_at, location)
        cached = self._alive_until.get(key)
        if cached is None:
            horizon = (departed_at
                       + self._constraints.max_traveling_time(location) - 1)
            cached = min(horizon, self.last_binding(departed_at, location))
            self._alive_until[key] = cached
        return cached

    def keep(self, node_time: int, departed_at: int, location: str) -> bool:
        """Whether a node at ``node_time`` still needs this entry."""
        return node_time <= self.alive_until(departed_at, location)


def initial_stay(location: str, constraints: ConstraintSet) -> Optional[int]:
    """The stay counter right after arriving at ``location``.

    ``None`` when no latency constraint binds (no constraint, or a bound of
    1 which any stay satisfies); otherwise 1 (the arrival timestep counts).
    """
    bound = constraints.latency_of(location)
    if bound is None or bound <= 1:
        return None
    return 1


def _advance_stay(stay: Optional[int], location: str,
                  constraints: ConstraintSet) -> Optional[int]:
    """The stay counter after one more timestep at ``location``."""
    if stay is None:
        return None
    bound = constraints.latency_of(location)
    new_stay = stay + 1
    if bound is None or new_stay >= bound:
        return None
    return new_stay


def _keep_entry(arrival: int, departed_at: int, location: str,
                constraints: ConstraintSet,
                departure_filter: Optional[DepartureFilter]) -> bool:
    """Whether a ``TL`` entry is still worth carrying at ``arrival``.

    An entry ``(t, l)`` is alive while ``arrival - t < maxTravelingTime(l)``
    (some TT constraint sourced at ``l`` could still forbid an arrival);
    with a :class:`DepartureFilter` it must additionally have a reachable
    destination left in its binding window.
    """
    if departure_filter is not None:
        return departure_filter.keep(arrival, departed_at, location)
    return arrival - departed_at < constraints.max_traveling_time(location)


def _aged_departures(departures: Departures, arrival: int,
                     constraints: ConstraintSet,
                     departure_filter: Optional[DepartureFilter],
                     ) -> Departures:
    """``TL`` after one timestep of ageing; reuses the tuple if unchanged."""
    if departure_filter is not None:
        alive_until = departure_filter.alive_until
        for t, l in departures:
            if arrival > alive_until(t, l):
                return tuple(entry for entry in departures
                             if arrival <= alive_until(*entry))
        return departures
    max_tt = constraints.max_traveling_time
    for t, l in departures:
        if arrival - t >= max_tt(l):
            return tuple((t, l) for (t, l) in departures
                         if arrival - t < max_tt(l))
    return departures


def _unchecked_successor(tau: int, state: NodeState, destination: str,
                         constraints: ConstraintSet,
                         departure_filter: Optional[DepartureFilter],
                         ) -> Optional[NodeState]:
    """Definition 3 rules 3-6, with rule 2 (DU) assumed already checked.

    The forward phase pre-filters destinations by direct reachability per
    (level, location), so rule 2 is hoisted out of this hot path; use
    :func:`successor_state` everywhere else.
    """
    location, stay, departures = state
    arrival = tau + 1

    if destination == location:
        # Rule 3 — staying: bump the stay counter, age the departures.
        new_stay = _advance_stay(stay, location, constraints)
        new_departures = _aged_departures(departures, arrival, constraints,
                                          departure_filter)
        return (destination, new_stay, new_departures)

    # Rule 4 — leaving is only legal once the latency bound is met.
    if stay is not None:
        return None

    # Rule 5 — traveling-time checks for the arrival at ``destination``,
    # including the implicit departure (tau, location) of this very move.
    direct = constraints.traveling_time(location, destination)
    if direct is not None and arrival - tau < direct:
        return None
    for departed_at, departed_loc in departures:
        steps = constraints.traveling_time(departed_loc, destination)
        if steps is not None and arrival - departed_at < steps:
            return None

    # Rule 6 — the new TL: record this departure if it can ever matter,
    # age out expired/pointless entries, drop entries about the destination
    # itself, and keep only the latest departure per location.
    if departures or location in constraints.tt_sources:
        entries: Dict[str, int] = {}
        for departed_at, departed_loc in departures:
            entries[departed_loc] = max(
                entries.get(departed_loc, departed_at), departed_at)
        if location in constraints.tt_sources:
            entries[location] = tau
        if departure_filter is not None:
            alive_until = departure_filter.alive_until
            kept = [(t, l) for l, t in entries.items()
                    if l != destination and arrival <= alive_until(t, l)]
        else:
            max_tt = constraints.max_traveling_time
            kept = [(t, l) for l, t in entries.items()
                    if l != destination and arrival - t < max_tt(l)]
        if len(kept) > 1:
            kept.sort()
        new_departures = tuple(kept)
    else:
        new_departures = ()
    return (destination, initial_stay(destination, constraints), new_departures)


def successor_state(tau: int, state: NodeState, destination: str,
                    constraints: ConstraintSet,
                    departure_filter: Optional[DepartureFilter] = None,
                    ) -> Optional[NodeState]:
    """The successor of ``state`` (at timestep ``tau``) that is at
    ``destination`` at ``tau + 1`` — or ``None`` if no legal successor exists.

    Implements Definition 3: at most one successor state exists per
    destination location, because ``stay`` and ``departures`` of the
    successor are functions of the predecessor state.  The optional
    ``departure_filter`` enables the exact l-sequence-aware ``TL`` pruning
    (see :class:`DepartureFilter`).
    """
    # Rule 2 — direct unreachability.
    if constraints.forbids_step(state[0], destination):
        return None
    return _unchecked_successor(tau, state, destination, constraints,
                                departure_filter)


def relative_departures(departures: Departures, tau: int) -> RelativeDepartures:
    """``TL`` rebased to ages relative to ``tau``: ``(t, l) -> (tau - t, l)``.

    Entry order is preserved, so the absolute canonical order (sorted by
    ``(time, location)``) maps to the relative canonical order (sorted by
    ``(-age, location)``) and :func:`absolute_departures` is an exact
    inverse at the same ``tau``.  This is the key helper of the compact
    engine's transition cache: rules 3, 5 and 6 of Definition 3 compare
    departure times only through differences ``arrival - time``, which ages
    express directly, making memoised successor rows reusable across
    timesteps.
    """
    return tuple((tau - time, location) for time, location in departures)


def absolute_departures(relative: RelativeDepartures, tau: int) -> Departures:
    """The inverse of :func:`relative_departures` at node timestep ``tau``."""
    return tuple((tau - age, location) for age, location in relative)


def departure_keep_mask(relative: RelativeDepartures, location: str, tau: int,
                        constraints: ConstraintSet,
                        departure_filter: Optional[DepartureFilter]) -> int:
    """The rule-3/6 ``TL`` keep decisions at ``tau`` as a bitmask.

    Bit ``k`` is set when the ``k``-th entry of ``relative`` survives ageing
    to ``arrival = tau + 1``; the bit after the last entry describes the
    *implicit new departure* ``(tau, location)`` and is meaningful only when
    ``location`` sources a TT constraint.  With a :class:`DepartureFilter`
    these decisions depend on absolute time (the filter prunes by the
    l-sequence's remaining support windows), so they cannot be derived from
    relative ages alone — the compact engine widens its transition-cache
    keys by this mask, keeping memoisation exact instead of approximating.
    Without a filter the decisions are pure functions of the ages and the
    mask is uniformly 0 (no widening needed).
    """
    if departure_filter is None:
        return 0
    arrival = tau + 1
    alive_until = departure_filter.alive_until
    mask = 0
    bit = 1
    for age, departed_loc in relative:
        if arrival <= alive_until(tau - age, departed_loc):
            mask |= bit
        bit <<= 1
    if location in constraints.tt_sources and \
            arrival <= alive_until(tau, location):
        mask |= bit
    return mask


def source_states(locations: Iterable[str],
                  constraints: ConstraintSet) -> Dict[str, NodeState]:
    """The source-node states (timestep 0) for the given candidate locations.

    At timestep 0 nothing is known about the past: ``TL`` is empty and every
    stay starts fresh (Definition 2 treats timestep 0 as the start of a
    stay, so latency bounds apply in full).
    """
    return {location: (location, initial_stay(location, constraints), ())
            for location in locations}
