"""The conditioned-trajectory graph (Section 4, Definition 4).

A :class:`CTGraph` is a levelled DAG: level ``tau`` holds the location nodes
of timestep ``tau``; edges only connect consecutive levels and only pairs
``(n, n')`` where ``n'`` is a successor of ``n`` (Definition 3).  After
Algorithm 1 finishes:

* source->target paths correspond one-to-one to the valid trajectories;
* each non-target node's outgoing edge probabilities form a distribution;
* the source-node probabilities form a distribution;
* the probability of a path — source probability times the product of its
  edge probabilities — equals the conditioned probability
  ``p*(t | Theta ∧ IC)`` of the corresponding trajectory.

The graph doubles as the query substrate: stay and trajectory queries are
dynamic programs over the levels (see :mod:`repro.queries`).
"""

from __future__ import annotations

import math
import sys
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.flatgraph import FlatCTGraph, _intern
from repro.core.lsequence import Trajectory
from repro.core.nodes import Departures
from repro.errors import GraphInvariantError, QueryError

if TYPE_CHECKING:
    from repro.core.algorithm import CleaningStats

__all__ = ["CTNode", "CTGraph"]


class CTNode:
    """One location node ``(tau, location, stay, departures)`` of a ct-graph.

    ``edges`` maps each successor node to the (conditioned) probability of
    taking that edge; ``parents`` lists the predecessor nodes.  Mutable by
    design — Algorithm 1 builds the graph in place; user code should treat
    finished nodes as read-only.
    """

    __slots__ = ("tau", "location", "stay", "departures", "edges", "parents",
                 "_location_index")

    def __init__(self, tau: int, location: str, stay: Optional[int],
                 departures: Departures) -> None:
        self.tau = tau
        self.location = location
        self.stay = stay
        self.departures = departures
        self.edges: Dict["CTNode", float] = {}
        self.parents: List["CTNode"] = []
        # Lazily built query index: location -> (child, probability).  Holds
        # the edges dict it was built from so a *replaced* edges dict (the
        # backward pass swaps it wholesale) invalidates the cache.
        self._location_index: Optional[
            Tuple[Dict["CTNode", float],
                  Dict[str, Tuple["CTNode", float]]]] = None

    def _edges_by_location(self) -> Dict[str, Tuple["CTNode", float]]:
        """The per-location edge index, built on first query.

        Definition 3 guarantees at most one successor per (node, location),
        so the index is lossless.  Nodes of a finished graph are read-only
        by contract; the index only auto-invalidates when ``edges`` is
        rebound to a new dict.
        """
        cached = self._location_index
        if cached is None or cached[0] is not self.edges:
            index = {child.location: (child, probability)
                     for child, probability in self.edges.items()}
            cached = (self.edges, index)
            self._location_index = cached
        return cached[1]

    def successor_for(self, location: str) -> Optional["CTNode"]:
        """The unique successor at ``location``, if the edge exists."""
        entry = self._edges_by_location().get(location)
        return entry[0] if entry is not None else None

    def __repr__(self) -> str:
        stay = "⊥" if self.stay is None else str(self.stay)
        return (f"CTNode(tau={self.tau}, loc={self.location!r}, stay={stay}, "
                f"tl={list(self.departures)}, out={len(self.edges)})")


class CTGraph:
    """A finished conditioned-trajectory graph."""

    def __init__(self, levels: Sequence[Sequence[CTNode]],
                 source_probabilities: Dict[CTNode, float],
                 stats: Optional["CleaningStats"] = None) -> None:
        self._levels: Tuple[Tuple[CTNode, ...], ...] = tuple(
            tuple(level) for level in levels)
        self._source_probabilities = dict(source_probabilities)
        self._node_marginals: Optional[Dict[CTNode, float]] = None
        #: The construction counters of Algorithm 1, ``None`` for graphs
        #: built by hand or loaded from disk (declared here so every graph
        #: has the attribute — not just the ones ``build_ct_graph`` returns).
        self.stats: Optional["CleaningStats"] = stats

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def duration(self) -> int:
        """The number of timesteps (levels)."""
        return len(self._levels)

    def level(self, tau: int) -> Tuple[CTNode, ...]:
        """The nodes of timestep ``tau``."""
        if not 0 <= tau < len(self._levels):
            raise QueryError(f"timestep {tau} outside [0, {len(self._levels)})")
        return self._levels[tau]

    @property
    def sources(self) -> Tuple[CTNode, ...]:
        return self._levels[0]

    @property
    def targets(self) -> Tuple[CTNode, ...]:
        return self._levels[-1]

    def source_probability(self, node: CTNode) -> float:
        """The conditioned probability of starting at source ``node``."""
        return self._source_probabilities.get(node, 0.0)

    @property
    def num_nodes(self) -> int:
        return sum(len(level) for level in self._levels)

    @property
    def num_edges(self) -> int:
        return sum(len(node.edges) for level in self._levels for node in level)

    def nodes(self) -> Iterator[CTNode]:
        """All nodes, level by level."""
        for level in self._levels:
            yield from level

    def locations_at(self, tau: int) -> Tuple[str, ...]:
        """Distinct locations present at timestep ``tau`` (sorted)."""
        return tuple(sorted({node.location for node in self.level(tau)}))

    # ------------------------------------------------------------------
    # trajectories and probabilities
    # ------------------------------------------------------------------
    def num_valid_trajectories(self) -> int:
        """How many source->target paths (= valid trajectories) exist."""
        counts: Dict[CTNode, int] = {node: 1 for node in self.targets}
        for level in reversed(self._levels[:-1]):
            for node in level:
                counts[node] = sum(counts[child] for child in node.edges)
        return sum(counts[node] for node in self.sources)

    def paths(self) -> Iterator[Tuple[Trajectory, float]]:
        """Every valid trajectory with its conditioned probability.

        Exponential in general — meant for tests and small graphs.
        """
        def walk(node: CTNode, prefix: List[str], probability: float
                 ) -> Iterator[Tuple[Trajectory, float]]:
            prefix.append(node.location)
            if node.tau == self.duration - 1:
                yield tuple(prefix), probability
            else:
                for child, p in node.edges.items():
                    yield from walk(child, prefix, probability * p)
            prefix.pop()

        for source in self.sources:
            yield from walk(source, [], self.source_probability(source))

    def trajectory_probability(self, trajectory: Sequence[str]) -> float:
        """The conditioned probability of one trajectory (0 if invalid).

        The walk is deterministic: at most one source node per location and
        at most one successor per (node, location).
        """
        if len(trajectory) != self.duration:
            raise QueryError(
                f"trajectory has {len(trajectory)} steps, expected {self.duration}")
        node = None
        for source in self.sources:
            if source.location == trajectory[0]:
                node = source
                break
        if node is None:
            return 0.0
        probability = self.source_probability(node)
        for location in trajectory[1:]:
            step = node._edges_by_location().get(location)
            if step is None:
                return 0.0
            node, p = step
            probability *= p
        return probability

    def node_marginals(self) -> Dict[CTNode, float]:
        """For every node, the probability that the object's trajectory
        passes through it (the forward pass; cached)."""
        if self._node_marginals is None:
            alphas: Dict[CTNode, float] = {}
            for source in self.sources:
                alphas[source] = self.source_probability(source)
            for level in self._levels[:-1]:
                for node in level:
                    mass = alphas.get(node, 0.0)
                    if mass == 0.0:
                        continue
                    for child, p in node.edges.items():
                        alphas[child] = alphas.get(child, 0.0) + mass * p
            self._node_marginals = alphas
        return self._node_marginals

    def location_marginal(self, tau: int) -> Dict[str, float]:
        """The distribution of the object's location at timestep ``tau``."""
        alphas = self.node_marginals()
        result: Dict[str, float] = {}
        for node in self.level(tau):
            mass = alphas.get(node, 0.0)
            if mass > 0.0:
                result[node.location] = result.get(node.location, 0.0) + mass
        return result

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def validate(self, tolerance: float = 1e-6) -> None:
        """Check the Definition 4 invariants; raises
        :class:`~repro.errors.GraphInvariantError` on the first violation.

        Used by tests and available to cautious callers; O(nodes + edges).
        The checks are explicit ``raise`` statements — not ``assert`` — so
        they still run under ``python -O`` / ``PYTHONOPTIMIZE``.  The error
        type subclasses :class:`AssertionError`, keeping the historical
        contract for callers that caught assertion failures.
        """
        total_sources = math.fsum(self._source_probabilities.values())
        if abs(total_sources - 1.0) > tolerance:
            raise GraphInvariantError(
                f"source probabilities sum to {total_sources}")
        for tau, level in enumerate(self._levels):
            for node in level:
                if node.tau != tau:
                    raise GraphInvariantError(
                        f"node {node!r} filed at level {tau}")
                if tau < self.duration - 1:
                    if not node.edges:
                        raise GraphInvariantError(
                            f"non-target node {node!r} has no successors")
                    total = math.fsum(node.edges.values())
                    if abs(total - 1.0) > tolerance:
                        raise GraphInvariantError(
                            f"outgoing probabilities of {node!r} sum to {total}")
                elif node.edges:
                    raise GraphInvariantError(
                        f"target node {node!r} has successors")
                if tau > 0 and not node.parents:
                    raise GraphInvariantError(
                        f"non-source node {node!r} is unreachable")

    # ------------------------------------------------------------------
    # pickling (the batch runtime ships graphs between processes)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        """Flatten the node web into id-indexed lists.

        Default pickling would recurse through the ``edges``/``parents``
        object graph — one stack frame chain per timestep — and overflow
        the interpreter recursion limit on long durations.  The flat form
        is also smaller: parent lists are derivable and are rebuilt on
        load rather than stored.
        """
        ids: Dict[CTNode, int] = {}
        for node in self.nodes():
            ids[node] = len(ids)
        return {
            "levels": [[(node.location, node.stay, node.departures)
                        for node in level] for level in self._levels],
            "edges": [[(ids[child], probability)
                       for child, probability in node.edges.items()]
                      for node in self.nodes()],
            "sources": [(ids[node], probability)
                        for node, probability
                        in self._source_probabilities.items()],
            "stats": self.stats,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        nodes: List[CTNode] = []
        levels: List[Tuple[CTNode, ...]] = []
        for tau, level_state in enumerate(state["levels"]):
            level_nodes = tuple(CTNode(tau, location, stay, departures)
                                for location, stay, departures in level_state)
            levels.append(level_nodes)
            nodes.extend(level_nodes)
        # Edge insertion order is preserved, so ``paths()`` and the edge
        # dicts of a round-tripped graph iterate exactly like the original;
        # parents are rebuilt in the same (level-major) order Algorithm 1
        # appends them.
        for node, edge_state in zip(nodes, state["edges"]):
            for child_id, probability in edge_state:
                child = nodes[child_id]
                node.edges[child] = probability
                child.parents.append(node)
        self._levels = tuple(levels)
        self._source_probabilities = {nodes[index]: probability
                                      for index, probability
                                      in state["sources"]}
        self._node_marginals = None
        self.stats = state["stats"]

    def to_flat(self) -> FlatCTGraph:
        """The graph as a :class:`~repro.core.flatgraph.FlatCTGraph`.

        Location ids are interned in first-appearance order (level-major,
        node order) and every per-level array follows this graph's node
        and edge-insertion order, so the conversion is bit-identical to
        the flat form ``CleaningOptions(materialize="flat")`` emits
        directly.  The ``departures`` tuples and parent lists are not
        carried over — queries never read them.  ``stats`` rides along.
        """
        location_ids: Dict[str, int] = {}
        names: List[str] = []
        locations: List[Tuple[int, ...]] = []
        stays: List[Tuple[Optional[int], ...]] = []
        for level in self._levels:
            locations.append(tuple(_intern(node.location, location_ids,
                                           names) for node in level))
            stays.append(tuple(node.stay for node in level))
        edge_offsets: List[Tuple[int, ...]] = []
        edge_children: List[Tuple[int, ...]] = []
        edge_probabilities: List[Tuple[float, ...]] = []
        for tau in range(len(self._levels) - 1):
            index = {node: i
                     for i, node in enumerate(self._levels[tau + 1])}
            offsets: List[int] = [0]
            children: List[int] = []
            probabilities: List[float] = []
            for node in self._levels[tau]:
                for child, probability in node.edges.items():
                    children.append(index[child])
                    probabilities.append(probability)
                offsets.append(len(children))
            edge_offsets.append(tuple(offsets))
            edge_children.append(tuple(children))
            edge_probabilities.append(tuple(probabilities))
        return FlatCTGraph(
            location_names=tuple(names),
            locations=tuple(locations),
            stays=tuple(stays),
            edge_offsets=tuple(edge_offsets),
            edge_children=tuple(edge_children),
            edge_probabilities=tuple(edge_probabilities),
            source_probabilities=tuple(self.source_probability(node)
                                       for node in self._levels[0]),
            stats=self.stats)

    def to_networkx(self):
        """The graph as a ``networkx.DiGraph`` for external tooling.

        Nodes are dense integer ids with ``tau``/``location``/``stay``/
        ``departures``/``source_probability`` attributes; edges carry the
        conditioned ``probability``.  The conversion is read-only —
        mutating the result does not touch this graph.
        """
        import networkx as nx

        ids = {node: index for index, node in enumerate(self.nodes())}
        digraph = nx.DiGraph(duration=self.duration)
        for node, index in ids.items():
            digraph.add_node(
                index, tau=node.tau, location=node.location,
                stay=node.stay, departures=list(node.departures),
                source_probability=self.source_probability(node))
        for node, index in ids.items():
            for child, probability in node.edges.items():
                digraph.add_edge(index, ids[child], probability=probability)
        return digraph

    def estimate_size_bytes(self) -> int:
        """A size estimate of the materialised graph (Section 6.7).

        Counts the Python objects actually held: nodes (including their TL
        tuples), edge-map entries and parent-list slots.  The absolute
        number is interpreter-specific; benchmarks only compare ratios.
        """
        total = 0
        for level in self._levels:
            total += sys.getsizeof(level)
            for node in level:
                total += object.__sizeof__(node)
                total += sys.getsizeof(node.departures)
                total += 64 * len(node.departures)  # tuple entries + ints
                total += sys.getsizeof(node.edges) + 16 * len(node.edges)
                total += sys.getsizeof(node.parents)
        return total

    def __repr__(self) -> str:
        return (f"CTGraph(duration={self.duration}, nodes={self.num_nodes}, "
                f"edges={self.num_edges})")
