"""Markovian-stream view of cleaned data (the Section 5 remark).

The paper notes that ct-graphs "can be seen as Markovian streams", making
cleaned data directly consumable by Markovian-stream warehousing systems
(the Lahar project).  :class:`~repro.markov.stream.MarkovianStream` is that
export: per-timestep location marginals plus per-timestep transition
matrices.
"""

from repro.markov.stream import MarkovianStream

__all__ = ["MarkovianStream"]
