"""Exporting a ct-graph as a Markovian stream.

A Markovian stream (Lahar; [18, 19, 22] in the paper) is a sequence of
random variables with explicit per-step transition probabilities:
``P(X_0)`` and ``P(X_{tau+1} | X_tau)`` for every ``tau``.

Two granularities are offered:

* **node-level** (exact): the states of step ``tau`` are the ct-graph nodes
  of level ``tau``.  Because node states make the future Markov (see
  :mod:`repro.core.nodes`), this chain reproduces the conditioned
  trajectory distribution exactly — it *is* the ct-graph, re-packaged.
* **location-level** (lossy): states are location names; transitions are
  marginalised over the nodes sharing a location.  This is the view a
  location-granularity warehouse would store; it loses the cross-timestep
  correlations carried by ``stay``/``TL`` (the paper's Section 7 point
  about marginal-only representations), and
  :meth:`MarkovianStream.trajectory_probability` is therefore only an
  approximation of the true conditioned probability.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy environments
    from repro.optional import missing_dependency

    np = missing_dependency("numpy", "repro[numpy]")  # type: ignore[assignment]

from repro.core.ctgraph import CTGraph
from repro.errors import QueryError

__all__ = ["MarkovianStream"]


class MarkovianStream:
    """The location-level Markovian stream of a ct-graph.

    ``initial`` is ``P(X_0)``; ``transitions[tau]`` maps a location at step
    ``tau`` to the conditional distribution of the location at ``tau + 1``.
    """

    def __init__(self, initial: Dict[str, float],
                 transitions: Sequence[Dict[str, Dict[str, float]]]) -> None:
        self.initial = dict(initial)
        self.transitions: Tuple[Dict[str, Dict[str, float]], ...] = tuple(
            {src: dict(dst) for src, dst in step.items()}
            for step in transitions)

    @classmethod
    def from_ct_graph(cls, graph: CTGraph) -> "MarkovianStream":
        """Marginalise a ct-graph to location granularity."""
        alphas = graph.node_marginals()
        initial = graph.location_marginal(0)
        transitions: List[Dict[str, Dict[str, float]]] = []
        for tau in range(graph.duration - 1):
            # joint[src][dst] = P(X_tau = src, X_tau+1 = dst)
            joint: Dict[str, Dict[str, float]] = {}
            for node in graph.level(tau):
                mass = alphas.get(node, 0.0)
                if mass <= 0.0:
                    continue
                row = joint.setdefault(node.location, {})
                for child, probability in node.edges.items():
                    row[child.location] = (row.get(child.location, 0.0)
                                           + mass * probability)
            conditional: Dict[str, Dict[str, float]] = {}
            for src, row in joint.items():
                total = sum(row.values())
                if total > 0.0:
                    conditional[src] = {dst: p / total for dst, p in row.items()}
            transitions.append(conditional)
        return cls(initial, transitions)

    # ------------------------------------------------------------------
    @property
    def duration(self) -> int:
        return len(self.transitions) + 1

    def marginal(self, tau: int) -> Dict[str, float]:
        """``P(X_tau)`` obtained by pushing the initial distribution forward.

        Mass can *leak*: a state reachable at step ``t`` whose transition
        row is absent (or empty) at step ``t`` carries its mass nowhere,
        so the returned dict may sum to **less than 1** — the deficit is
        exactly the leaked mass.  Streams exported by
        :meth:`from_ct_graph` are leak-free (every positive-mass node has
        outgoing edges), but hand-built or warehouse-loaded chains need
        not be; callers wanting a proper distribution must renormalise.
        """
        if not 0 <= tau < self.duration:
            raise QueryError(f"timestep {tau} outside [0, {self.duration})")
        current = dict(self.initial)
        for step in self.transitions[:tau]:
            following: Dict[str, float] = {}
            for src, mass in current.items():
                for dst, probability in step.get(src, {}).items():
                    following[dst] = following.get(dst, 0.0) + mass * probability
            current = following
        return current

    def trajectory_probability(self, trajectory: Sequence[str]) -> float:
        """The chain's probability of a trajectory.

        Exact for the location-level chain; an *approximation* of the
        ct-graph's conditioned probability whenever several node states
        share a location (see the module docstring).
        """
        if len(trajectory) != self.duration:
            raise QueryError(
                f"trajectory has {len(trajectory)} steps, expected {self.duration}")
        probability = self.initial.get(trajectory[0], 0.0)
        for tau in range(len(trajectory) - 1):
            if probability == 0.0:
                return 0.0
            row = self.transitions[tau].get(trajectory[tau], {})
            probability *= row.get(trajectory[tau + 1], 0.0)
        return probability

    def sample(self, rng: Optional[np.random.Generator] = None) -> Tuple[str, ...]:
        """One trajectory drawn from the chain.

        Raises :class:`~repro.errors.QueryError` (naming the offending
        timestep and state) when the walk reaches a state with no outgoing
        transition row, or one whose row's mass sums to zero — the two
        faces of leaked mass (see :meth:`marginal`), from which no next
        step can be drawn.
        """
        if rng is None:
            rng = np.random.default_rng()

        def draw(distribution: Dict[str, float], tau: int,
                 state: Optional[str]) -> str:
            where = (f"state {state!r} at timestep {tau}"
                     if state is not None
                     else f"the initial distribution (timestep {tau})")
            if not distribution:
                raise QueryError(
                    f"cannot sample: {where} has no outgoing transition "
                    "row — the chain leaked its mass there")
            names = list(distribution)
            probabilities = np.array([distribution[name] for name in names],
                                     dtype=float)
            total = probabilities.sum()
            if not total > 0.0:
                raise QueryError(
                    f"cannot sample: the outgoing mass of {where} sums "
                    f"to {total}, not a positive value")
            return names[int(rng.choice(len(names), p=probabilities / total))]

        steps = [draw(self.initial, 0, None)]
        for tau, transition in enumerate(self.transitions):
            state = steps[-1]
            steps.append(draw(transition.get(state, {}), tau, state))
        return tuple(steps)

    def __repr__(self) -> str:
        return f"MarkovianStream(duration={self.duration})"
