"""rfid-ctg: cleaning RFID trajectory data by conditioning under constraints.

A faithful reproduction of Fazzinga, Flesca, Furfaro and Parisi,
*"Cleaning trajectory data of RFID-monitored objects through conditioning
under integrity constraints"*, EDBT 2014.

Quickstart::

    from repro import (
        two_room_map, infer_constraints,
        LSequence, build_ct_graph, stay_query,
    )

    building = two_room_map()
    constraints = infer_constraints(building)
    lsequence = LSequence([{"A": 0.5, "B": 0.5}, {"A": 1.0}])
    graph = build_ct_graph(lsequence, constraints)
    print(stay_query(graph, 0))

See ``examples/`` for end-to-end scenarios and ``DESIGN.md`` for the system
inventory.
"""

from repro.analysis import AnalysisReport, Diagnostic, Severity, analyze
from repro.core.algorithm import CleaningOptions, CleaningStats, build_ct_graph, clean
from repro.core.constraints import (
    ConstraintSet,
    Latency,
    TravelingTime,
    Unreachable,
)
from repro.baselines import BeamCleaner, ParticleFilter, SmoothingFilter
from repro.core.ctgraph import CTGraph, CTNode
from repro.core.flatgraph import FlatCTGraph
from repro.core.diagnostics import InconsistencyReport, diagnose
from repro.core.groups import JointGraph, condition_group, condition_on_meeting
from repro.core.incremental import IncrementalCleaner
from repro.core.lsequence import LSequence, Reading, ReadingSequence
from repro.core.naive import NaiveConditioner
from repro.core.sampling import TrajectorySampler, rejection_sample
from repro.core.validity import is_valid_trajectory, violations
from repro.errors import (
    ConstraintError,
    GraphExportError,
    GraphInvariantError,
    InconsistentReadingsError,
    MapModelError,
    PatternSyntaxError,
    QueryError,
    ReadingSequenceError,
    ReproError,
    StoreChecksumError,
    StoreError,
    StoreFormatError,
    ZeroMassError,
)
from repro.runtime import (
    BatchCleaner,
    BatchOutcome,
    BatchResult,
    QueryPlan,
    SharedCleaningPlan,
    StreamSessionManager,
    clean_many,
)
from repro.streaming import StreamingCleaner
from repro.geometry import Point, Rect, Segment
from repro.inference import (
    MotilityProfile,
    infer_constraints,
    infer_du_constraints,
    infer_lt_constraints,
    infer_tt_constraints,
)
from repro.mapmodel import (
    Building,
    Cell,
    Door,
    Grid,
    Location,
    WalkingDistances,
    corridor_map,
    multi_floor_building,
    paper_floor,
    syn1_building,
    syn2_building,
    two_room_map,
)
from repro.markov import MarkovianStream
from repro.queries import (
    Pattern,
    PatternAtom,
    QuerySession,
    TrajectoryQuery,
    colocation_profile,
    entropy_profile,
    entropy_profile_prior,
    expected_visit_counts,
    first_visit_distribution,
    meeting_probability,
    meeting_time_distribution,
    most_likely_trajectory,
    span_probability,
    stay_accuracy,
    stay_query,
    stay_query_prior,
    time_at_location_distribution,
    top_k_trajectories,
    trajectory_query_accuracy,
    uncertainty_reduction,
    visit_probability,
)
from repro.store import (
    GraphStore,
    MappedCTGraph,
    content_key,
    load_ctg,
    save_ctg,
    write_ctg,
)
from repro.rfid import (
    DetectionMatrix,
    PriorModel,
    Reader,
    ReaderModel,
    calibrate,
    exact_matrix,
    place_default_readers,
)
from repro.simulation import (
    Dataset,
    GeneratedTrajectory,
    GroundTruthTrajectory,
    MovementParameters,
    ReadingGenerator,
    TrajectoryGenerator,
    build_dataset,
    syn1_dataset,
    syn2_dataset,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError", "MapModelError", "ConstraintError", "ReadingSequenceError",
    "InconsistentReadingsError", "ZeroMassError", "PatternSyntaxError",
    "QueryError", "StoreError", "StoreFormatError", "StoreChecksumError",
    "GraphExportError",
    # static analysis
    "AnalysisReport", "Diagnostic", "Severity", "analyze",
    # geometry + map
    "Point", "Rect", "Segment",
    "Building", "Location", "Door", "Grid", "Cell", "WalkingDistances",
    "two_room_map", "corridor_map", "paper_floor", "multi_floor_building",
    "syn1_building", "syn2_building",
    # rfid substrate
    "Reader", "ReaderModel", "place_default_readers",
    "DetectionMatrix", "calibrate", "exact_matrix", "PriorModel",
    # constraints + inference
    "Unreachable", "TravelingTime", "Latency", "ConstraintSet",
    "MotilityProfile", "infer_constraints", "infer_du_constraints",
    "infer_tt_constraints", "infer_lt_constraints",
    # core cleaning
    "Reading", "ReadingSequence", "LSequence",
    "CTGraph", "CTNode", "FlatCTGraph", "CleaningOptions", "CleaningStats",
    "build_ct_graph", "clean", "NaiveConditioner",
    "TrajectorySampler", "rejection_sample",
    "is_valid_trajectory", "violations",
    "IncrementalCleaner", "JointGraph", "condition_on_meeting",
    "condition_group",
    # streaming
    "StreamingCleaner", "StreamSessionManager",
    "MarkovianStream",
    "SmoothingFilter", "ParticleFilter", "BeamCleaner",
    "diagnose", "InconsistencyReport",
    # binary store
    "GraphStore", "MappedCTGraph", "content_key",
    "load_ctg", "save_ctg", "write_ctg",
    # queries
    "Pattern", "PatternAtom", "TrajectoryQuery", "QuerySession",
    "stay_query", "stay_query_prior",
    "stay_accuracy", "trajectory_query_accuracy",
    "most_likely_trajectory", "top_k_trajectories",
    "entropy_profile", "entropy_profile_prior", "uncertainty_reduction",
    "expected_visit_counts", "visit_probability",
    "span_probability", "time_at_location_distribution",
    "first_visit_distribution",
    "meeting_probability", "meeting_time_distribution",
    "colocation_profile",
    # simulation
    "MovementParameters", "TrajectoryGenerator", "GroundTruthTrajectory",
    "ReadingGenerator", "GeneratedTrajectory", "Dataset",
    "build_dataset", "syn1_dataset", "syn2_dataset",
    "__version__",
]
