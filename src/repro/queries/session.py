"""Shared-pass query sessions over the flat (columnar) ct-graph form.

Every function in :mod:`repro.queries.analytics` walks the ``CTNode`` web
independently, and most begin with the same forward pass.  A
:class:`QuerySession` wraps a :class:`~repro.core.flatgraph.FlatCTGraph`
— or any flat-shaped view, such as the mmap-served
:class:`~repro.store.format.MappedCTGraph` a ``.ctg`` file loads to,
whose columns feed the same DPs zero-copy — and computes the shared
sweeps **once** as flat arrays:

* the forward (alpha) pass — per-level node-marginal arrays feeding
  :meth:`~QuerySession.location_marginal`,
  :meth:`~QuerySession.entropy_profile`,
  :meth:`~QuerySession.expected_visit_counts` and
  :meth:`~QuerySession.span_probability`;
* the backward max-product (best-suffix) pass feeding
  :meth:`~QuerySession.top_k_trajectories`.  (The *sum-product* betas of a
  conditioned ct-graph are identically 1 — every outgoing row is a
  distribution — so max-product is the backward sweep worth sharing.)

Each query is then index arithmetic over tuples instead of dict lookups
over node objects.  Results are **bit-exact** with the object-path
implementations: the DPs replicate the reference iteration order (level
order, edge insertion order), its skip criteria (``mass == 0.0`` forward
skips, ``> 0.0`` emission filters) and its accumulation patterns
(``get(key, 0.0) + flow`` chains start at ``0.0`` exactly like fresh
array slots), so every float comes out identical.  Where presence of an
underflowed ``0.0`` entry affects a result dict's keys
(:meth:`first_visit_distribution`, :meth:`span_probability`,
:meth:`time_at_location_distribution`, the meeting DPs), the session keeps
the DP frontier in dicts keyed by node *index*, preserving insertion-order
semantics.  The hypothesis suite in ``tests/test_queries_flat.py`` pins
the parity query-by-query.

``most_likely_trajectory`` and ``top_k_trajectories`` share the
deterministic lexicographic tie-break with the object path (see
:func:`repro.queries.analytics.most_likely_trajectory`).

**Backends** — the shared sweeps (alphas, max-product suffixes, the
marginal/entropy/expected-visit reductions and the visit/span restricted
flows) optionally run as whole-level ndarray kernels
(:mod:`repro.core.kernels`) over cached ``GraphViews``:
``QuerySession(graph, backend="numpy")`` opts in, ``"auto"`` engages them
above the calibrated width threshold, and ``"python"`` (the default)
always runs the loops above, which remain the parity oracle.  Kernel
sweeps are pinned to the oracle by the documented tolerance gate
(``docs/perf.md``): discrete structure — dict key sets, tie-breaks,
top-k order — stays exact; floats agree to 1e-12 relative.  The
trajectory-extraction and histogram DPs (:meth:`most_likely_trajectory`,
:meth:`top_k_trajectories`, :meth:`first_visit_distribution`,
:meth:`time_at_location_distribution`) always run in python — their
per-path bookkeeping does not vectorise and their tie-breaks must stay
bit-exact — but they consume the kernel suffix rows, which are exact.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core import kernels
from repro.core.ctgraph import CTGraph
from repro.core.flatgraph import FlatCTGraph
from repro.core.lsequence import Trajectory
from repro.errors import QueryError
from repro.queries.pattern import Pattern
from repro.queries.trajectory import TrajectoryQuery

__all__ = ["QuerySession"]


class QuerySession:
    """Cached query evaluation over one flat ct-graph.

    Construct it from a :class:`FlatCTGraph` (free) or a :class:`CTGraph`
    (converted via :meth:`~repro.core.ctgraph.CTGraph.to_flat`).  The
    session is cheap to build — sweeps run lazily on first use and are
    cached, so asking eight queries costs one forward pass, not eight.
    Sessions are not thread-safe (caches are plain dicts).
    """

    def __init__(self, graph: Union[CTGraph, FlatCTGraph],
                 backend: str = "python") -> None:
        if isinstance(graph, CTGraph):
            graph = graph.to_flat()
        self.graph = graph
        edge_levels = graph.duration - 1
        #: The *resolved* sweep backend ("python" or "numpy"); "auto"
        #: resolves here from the graph's measured mean edges per level.
        self.backend = kernels.resolve_backend(
            backend,
            graph.num_edges / edge_levels if edge_levels else 0.0)
        self._views: Optional[kernels.GraphViews] = None
        self._alphas: Optional[List[List[float]]] = None
        self._alpha_rows: Optional[List[Sequence[float]]] = None
        self._suffixes: Optional[List[Sequence[float]]] = None
        self._marginals: Dict[int, Dict[str, float]] = {}
        self._entropies: Optional[List[float]] = None
        self._visit_counts: Optional[Dict[str, float]] = None
        self._map: Optional[Tuple[Trajectory, float]] = None

    @classmethod
    def ensure(cls, graph: Union[CTGraph, FlatCTGraph,
                                 "QuerySession"]) -> "QuerySession":
        """``graph`` as a session, wrapping it if necessary."""
        if isinstance(graph, QuerySession):
            return graph
        return cls(graph)

    # ------------------------------------------------------------------
    # shared sweeps
    # ------------------------------------------------------------------
    @property
    def duration(self) -> int:
        return self.graph.duration

    def _level_views(self) -> kernels.GraphViews:
        """The session's cached ndarray views (numpy backend only)."""
        if self._views is None:
            self._views = kernels.GraphViews(self.graph)
        return self._views

    def _alpha_levels(self) -> List[Sequence[float]]:
        """The alpha rows in backend-native form (lists or ndarrays)."""
        if self._alpha_rows is None:
            if self.backend == "numpy":
                self._alpha_rows = kernels.alphas(self._level_views())
            else:
                graph = self.graph
                rows: List[List[float]] = [list(graph.source_probabilities)]
                for tau in range(graph.duration - 1):
                    offsets = graph.edge_offsets[tau]
                    children = graph.edge_children[tau]
                    probabilities = graph.edge_probabilities[tau]
                    row = rows[tau]
                    next_row = [0.0] * len(graph.locations[tau + 1])
                    for i in range(len(row)):
                        mass = row[i]
                        if mass == 0.0:
                            continue
                        for e in range(offsets[i], offsets[i + 1]):
                            next_row[children[e]] += mass * probabilities[e]
                    rows.append(next_row)
                self._alpha_rows = rows
        return self._alpha_rows

    def alphas(self) -> List[List[float]]:
        """The forward pass: P(trajectory passes through node), per level.

        The flat mirror of :meth:`CTGraph.node_marginals` — same skip
        criterion (``mass == 0.0``), same accumulation order.  Always a
        list of plain float lists, whichever backend computed it.
        """
        if self._alphas is None:
            rows = self._alpha_levels()
            if self.backend == "numpy":
                self._alphas = [row.tolist() for row in rows]  # type: ignore[union-attr]
            else:
                self._alphas = rows  # type: ignore[assignment]
        return self._alphas

    def _best_suffixes(self) -> List[Sequence[float]]:
        """Max-product backward pass: each node's best completion value.

        Backend-native rows: plain lists on python, float64 arrays on
        numpy — *bit-exact* either way (max of the same products), which
        keeps :meth:`top_k_trajectories`'s expansion order identical.
        """
        if self._suffixes is None:
            if self.backend == "numpy":
                self._suffixes = kernels.best_suffixes(self._level_views())
            else:
                graph = self.graph
                rows: List[Sequence[float]] = \
                    [[] for _ in range(graph.duration)]
                rows[-1] = [1.0] * len(graph.locations[-1])
                for tau in range(graph.duration - 2, -1, -1):
                    offsets = graph.edge_offsets[tau]
                    children = graph.edge_children[tau]
                    probabilities = graph.edge_probabilities[tau]
                    next_row = rows[tau + 1]
                    row = [0.0] * len(graph.locations[tau])
                    for i in range(len(row)):
                        best = 0.0
                        for e in range(offsets[i], offsets[i + 1]):
                            value = probabilities[e] * next_row[children[e]]
                            if value > best:
                                best = value
                        row[i] = best
                    rows[tau] = row
                self._suffixes = rows
        return self._suffixes

    # ------------------------------------------------------------------
    # marginal family (all off the shared alphas)
    # ------------------------------------------------------------------
    def location_marginal(self, tau: int) -> Dict[str, float]:
        """The distribution of the object's location at timestep ``tau``."""
        cached = self._marginals.get(tau)
        if cached is not None:
            return cached
        graph = self.graph
        if not 0 <= tau < graph.duration:
            raise QueryError(f"timestep {tau} outside [0, {graph.duration})")
        names = graph.location_names
        result: Dict[str, float] = {}
        if self.backend == "numpy":
            masses = kernels.masses_by_location(
                self._level_views(), tau, self._alpha_levels()[tau])
            for lid in range(len(names)):
                if masses[lid] > 0.0:
                    result[names[lid]] = float(masses[lid])
        else:
            lids = graph.locations[tau]
            row = self.alphas()[tau]
            for i in range(len(lids)):
                mass = row[i]
                if mass > 0.0:
                    name = names[lids[i]]
                    result[name] = result.get(name, 0.0) + mass
        self._marginals[tau] = result
        return result

    def entropy_profile(self) -> List[float]:
        """Shannon entropy (bits) of the location marginal, per step."""
        if self._entropies is None:
            if self.backend == "numpy":
                views = self._level_views()
                rows = self._alpha_levels()
                self._entropies = [
                    kernels.entropy_bits(
                        kernels.masses_by_location(views, tau, rows[tau]))
                    for tau in range(self.duration)]
            else:
                self._entropies = [_entropy(self.location_marginal(tau))
                                   for tau in range(self.duration)]
        return self._entropies

    def expected_visit_counts(self) -> Dict[str, float]:
        """Expected number of timesteps spent at each location."""
        if self._visit_counts is None:
            totals: Dict[str, float] = {}
            if self.backend == "numpy":
                views = self._level_views()
                rows = self._alpha_levels()
                names = self.graph.location_names
                total = kernels.masses_by_location(views, 0, rows[0])
                for tau in range(1, self.duration):
                    total = total + kernels.masses_by_location(
                        views, tau, rows[tau])
                for lid in range(len(names)):
                    if total[lid] > 0.0:
                        totals[names[lid]] = float(total[lid])
            else:
                for tau in range(self.duration):
                    for location, probability in \
                            self.location_marginal(tau).items():
                        totals[location] = (totals.get(location, 0.0)
                                            + probability)
            self._visit_counts = totals
        return self._visit_counts

    # ------------------------------------------------------------------
    # visit statistics
    # ------------------------------------------------------------------
    def visit_probability(self, location: str) -> float:
        """P(the object is at ``location`` at some timestep)."""
        graph = self.graph
        names = graph.location_names
        if self.backend == "numpy":
            try:
                lid = names.index(location)
            except ValueError:
                lid = -1
            total = kernels.avoidance_mass(self._level_views(), lid)
            return min(1.0, max(0.0, 1.0 - total))
        lids = graph.locations[0]
        # Avoidance flow never goes negative, so dropping the reference's
        # explicit 0.0-mass dict entries cannot change any float
        # (x + 0.0 == x and 0.0 * p == 0.0 for the values involved).
        row = [graph.source_probabilities[i]
               if (names[lids[i]] != location
                   and graph.source_probabilities[i] > 0.0) else 0.0
               for i in range(len(lids))]
        for tau in range(graph.duration - 1):
            offsets = graph.edge_offsets[tau]
            children = graph.edge_children[tau]
            probabilities = graph.edge_probabilities[tau]
            next_lids = graph.locations[tau + 1]
            next_row = [0.0] * len(next_lids)
            for i in range(len(row)):
                mass = row[i]
                if mass == 0.0:
                    continue
                for e in range(offsets[i], offsets[i + 1]):
                    child = children[e]
                    if names[next_lids[child]] == location:
                        continue
                    next_row[child] += mass * probabilities[e]
            row = next_row
        return min(1.0, max(0.0, 1.0 - sum(row)))

    def span_probability(self, location: str, start: int, end: int) -> float:
        """P(the object is at ``location`` throughout ``[start, end]``)."""
        graph = self.graph
        if not 0 <= start <= end < graph.duration:
            raise QueryError(
                f"window [{start}, {end}] outside the graph's [0, "
                f"{graph.duration})")
        names = graph.location_names
        if self.backend == "numpy":
            try:
                lid = names.index(location)
            except ValueError:
                return 0.0
            mass = kernels.span_mass(self._level_views(), lid, start, end,
                                     self._alpha_levels()[start])
            return min(1.0, mass)
        alphas = self.alphas()[start]
        lids = graph.locations[start]
        inside: Dict[int, float] = {}
        for i in range(len(lids)):
            if names[lids[i]] == location:
                mass = alphas[i]
                if mass > 0.0:
                    inside[i] = mass
        for tau in range(start, end):
            offsets = graph.edge_offsets[tau]
            children = graph.edge_children[tau]
            probabilities = graph.edge_probabilities[tau]
            next_lids = graph.locations[tau + 1]
            step: Dict[int, float] = {}
            for i, mass in inside.items():
                for e in range(offsets[i], offsets[i + 1]):
                    child = children[e]
                    if names[next_lids[child]] == location:
                        step[child] = (step.get(child, 0.0)
                                       + mass * probabilities[e])
            inside = step
            if not inside:
                return 0.0
        return min(1.0, sum(inside.values()))

    def time_at_location_distribution(self,
                                      location: str) -> Dict[int, float]:
        """The distribution of the *total* time spent at ``location``."""
        graph = self.graph
        names = graph.location_names
        lids = graph.locations[0]
        histograms: Dict[int, Dict[int, float]] = {}
        for i in range(len(lids)):
            mass = graph.source_probabilities[i]
            if mass <= 0.0:
                continue
            count = 1 if names[lids[i]] == location else 0
            histograms[i] = {count: mass}
        for tau in range(graph.duration - 1):
            offsets = graph.edge_offsets[tau]
            children = graph.edge_children[tau]
            probabilities = graph.edge_probabilities[tau]
            next_lids = graph.locations[tau + 1]
            step: Dict[int, Dict[int, float]] = {}
            for i in range(len(graph.locations[tau])):
                histogram = histograms.get(i)
                if not histogram:
                    continue
                for e in range(offsets[i], offsets[i + 1]):
                    child = children[e]
                    probability = probabilities[e]
                    bump = 1 if names[next_lids[child]] == location else 0
                    target = step.setdefault(child, {})
                    for count, mass in histogram.items():
                        key = count + bump
                        target[key] = (target.get(key, 0.0)
                                       + mass * probability)
            histograms = step
        result: Dict[int, float] = {}
        for i in range(len(graph.locations[-1])):
            for count, mass in histograms.get(i, {}).items():
                result[count] = result.get(count, 0.0) + mass
        return result

    def first_visit_distribution(self, location: str) -> Dict[int, float]:
        """P(first visit to ``location`` happens at timestep ``tau``)."""
        graph = self.graph
        names = graph.location_names
        lids = graph.locations[0]
        first: Dict[int, float] = {}
        pending: Dict[int, float] = {}
        for i in range(len(lids)):
            mass = graph.source_probabilities[i]
            if mass <= 0.0:
                continue
            if names[lids[i]] == location:
                first[0] = first.get(0, 0.0) + mass
            else:
                pending[i] = mass
        for tau in range(graph.duration - 1):
            offsets = graph.edge_offsets[tau]
            children = graph.edge_children[tau]
            probabilities = graph.edge_probabilities[tau]
            next_lids = graph.locations[tau + 1]
            step: Dict[int, float] = {}
            for i in range(len(graph.locations[tau])):
                mass = pending.get(i)
                if mass is None:
                    continue
                for e in range(offsets[i], offsets[i + 1]):
                    child = children[e]
                    flow = mass * probabilities[e]
                    if names[next_lids[child]] == location:
                        first[tau + 1] = first.get(tau + 1, 0.0) + flow
                    else:
                        step[child] = step.get(child, 0.0) + flow
            pending = step
        return first

    # ------------------------------------------------------------------
    # trajectory extraction
    # ------------------------------------------------------------------
    def most_likely_trajectory(self) -> Tuple[Trajectory, float]:
        """The MAP trajectory, ties broken lexicographically.

        The flat mirror of
        :func:`repro.queries.analytics.most_likely_trajectory` — identical
        probabilities and identical tie-breaks, pinned by the parity
        suite.
        """
        if self._map is not None:
            return self._map
        graph = self.graph
        names = graph.location_names
        # Lexicographic keys are packed into small ints: with ``name_rank``
        # a dense rank order-isomorphic to the name strings and per-level
        # prefix ranks dense in [0, level size), the tuple key
        # ``(prefix_rank, name)`` maps to ``prefix_rank * L + name_rank``
        # order-preservingly — int compares instead of tuple/str compares.
        width = len(names)
        name_rank = [0] * width
        for rank, lid in enumerate(sorted(range(width),
                                          key=names.__getitem__)):
            name_rank[lid] = rank
        lids = graph.locations[0]
        count = len(lids)
        value = [0.0] * count
        parent = [-1] * count
        present = [False] * count
        keys = [-1] * count
        for i in range(count):
            probability = graph.source_probabilities[i]
            if probability > 0.0:
                value[i] = probability
                present[i] = True
                keys[i] = name_rank[lids[i]]
        ranks = _lex_ranks(present, keys)
        values: List[List[float]] = [value]
        parents: List[List[int]] = [parent]
        presents: List[List[bool]] = [present]
        for tau in range(graph.duration - 1):
            offsets = graph.edge_offsets[tau]
            children = graph.edge_children[tau]
            probabilities = graph.edge_probabilities[tau]
            next_lids = graph.locations[tau + 1]
            next_count = len(next_lids)
            value = [0.0] * next_count
            parent = [-1] * next_count
            next_present = [False] * next_count
            keys = [-1] * next_count
            row = values[tau]
            row_present = presents[tau]
            for i in range(len(row)):
                if not row_present[i]:
                    continue
                mass = row[i]
                base = ranks[i] * width
                for e in range(offsets[i], offsets[i + 1]):
                    child = children[e]
                    candidate = mass * probabilities[e]
                    key = base + name_rank[next_lids[child]]
                    if (not next_present[child]
                            or candidate > value[child]
                            or (candidate == value[child]
                                and key < keys[child])):
                        value[child] = candidate
                        parent[child] = i
                        next_present[child] = True
                        keys[child] = key
            ranks = _lex_ranks(next_present, keys)
            values.append(value)
            parents.append(parent)
            presents.append(next_present)
        terminal = -1
        last_values = values[-1]
        last_present = presents[-1]
        for i in range(len(last_values)):
            if not last_present[i]:
                continue
            if (terminal < 0 or last_values[i] > last_values[terminal]
                    or (last_values[i] == last_values[terminal]
                        and ranks[i] < ranks[terminal])):
                terminal = i
        if terminal < 0:
            raise QueryError("graph has no positive-probability path")
        steps: List[str] = []
        index = terminal
        for tau in range(graph.duration - 1, -1, -1):
            steps.append(names[graph.locations[tau][index]])
            index = parents[tau][index]
        steps.reverse()
        self._map = (tuple(steps), last_values[terminal])
        return self._map

    def top_k_trajectories(self, k: int) -> List[Tuple[Trajectory, float]]:
        """The ``min(k, num_valid_trajectories())`` most probable valid
        trajectories, most probable first.

        Flat mirror of :func:`repro.queries.analytics.top_k_trajectories`
        — same best-first expansion order (bounds, then insertion order),
        same per-node pop cap, identical results.  Partial trajectories
        live on the heap as cons chains ``(name, parent_chain)`` rather
        than tuples, so a push costs O(1) instead of O(duration); the
        heap never compares chains (``counter`` is unique), and only the
        ``min(k, ...)`` emitted results pay the unwind.
        """
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        graph = self.graph
        names = graph.location_names
        suffixes = self._best_suffixes()
        last = graph.duration - 1
        all_offsets = graph.edge_offsets
        all_children = graph.edge_children
        all_probabilities = graph.edge_probabilities
        all_locations = graph.locations
        push = heapq.heappush
        pop = heapq.heappop
        # Node identity ``tau * width + index`` packed into one int — used
        # both as the heap entry's node field and the pop-cap key.
        width = max(len(level) for level in all_locations)
        # Entries are (-bound, counter, node_key, chain, mass).
        heap: List[Tuple[float, int, int, tuple, float]] = []
        counter = 0
        lids = all_locations[0]
        suffix_row = suffixes[0]
        for i in range(len(lids)):
            mass = graph.source_probabilities[i]
            if mass <= 0.0:
                continue
            bound = mass * suffix_row[i]
            push(heap, (-bound, counter, i, (names[lids[i]], None), mass))
            counter += 1
        results: List[Tuple[Trajectory, float]] = []
        pops: Dict[int, int] = {}
        pops_get = pops.get
        remaining = k
        while heap and remaining:
            _, _, node_key, chain, mass = pop(heap)
            popped = pops_get(node_key, 0)
            if popped >= k:
                continue
            pops[node_key] = popped + 1
            tau, index = divmod(node_key, width)
            if tau == last:
                reversed_path: List[str] = []
                link: Optional[tuple] = chain
                while link is not None:
                    reversed_path.append(link[0])
                    link = link[1]
                results.append((tuple(reversed(reversed_path)), mass))
                remaining -= 1
                continue
            offsets = all_offsets[tau]
            children = all_children[tau]
            probabilities = all_probabilities[tau]
            next_lids = all_locations[tau + 1]
            next_suffixes = suffixes[tau + 1]
            next_base = (tau + 1) * width
            for e in range(offsets[index], offsets[index + 1]):
                child = children[e]
                child_mass = mass * probabilities[e]
                bound = child_mass * next_suffixes[child]
                if bound <= 0.0:
                    continue
                push(heap, (-bound, counter, next_base + child,
                            (names[next_lids[child]], chain), child_mass))
                counter += 1
        return results

    # ------------------------------------------------------------------
    # pattern matching
    # ------------------------------------------------------------------
    def match_probability(self, pattern: Union[Pattern, str,
                                               TrajectoryQuery]) -> float:
        """P(the cleaned trajectory matches the pattern)."""
        query = (pattern if isinstance(pattern, TrajectoryQuery)
                 else TrajectoryQuery(pattern))
        return query.probability(self.graph)

    def __repr__(self) -> str:
        return f"QuerySession({self.graph!r})"


def _entropy(distribution: Dict[str, float]) -> float:
    # Same expression as repro.queries.analytics._entropy (kept local to
    # avoid an import cycle); identical floats by construction.
    return -sum(p * math.log2(p) for p in distribution.values() if p > 0.0)


def _lex_ranks(present: List[bool], keys: List[object]) -> List[int]:
    """Dense lexicographic ranks of the present nodes' prefix keys.

    Rank order ≡ lexicographic order of the full best prefixes, because
    every level's keys are (parent rank, location) pairs and all prefixes
    at a level share a length.
    """
    order = {key: rank for rank, key in enumerate(
        sorted({keys[i] for i in range(len(keys)) if present[i]}))}  # type: ignore[type-var]
    return [order[keys[i]] if present[i] else -1
            for i in range(len(keys))]
