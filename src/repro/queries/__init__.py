"""Queries over cleaned data (Section 6.6).

* **Stay queries** — "where was the object at timestep ``tau``?" —
  :func:`repro.queries.stay.stay_query`;
* **Trajectory queries** — "does the trajectory match the pattern
  ``? l1[n1] ? ... ?``?" — :class:`repro.queries.trajectory.TrajectoryQuery`;
* **Accuracy metrics** against ground truth —
  :mod:`repro.queries.accuracy`.

Both query kinds run on ct-graphs as exact dynamic programs; they can also
be evaluated against the raw (unconditioned) l-sequence, which is the
"no cleaning" baseline of the accuracy experiments.
"""

from repro.queries.accuracy import (
    stay_accuracy,
    trajectory_query_accuracy,
)
from repro.queries.analytics import (
    entropy_profile,
    entropy_profile_prior,
    expected_visit_counts,
    first_visit_distribution,
    most_likely_trajectory,
    span_probability,
    time_at_location_distribution,
    top_k_trajectories,
    uncertainty_reduction,
    visit_probability,
)
from repro.queries.meeting import (
    colocation_profile,
    meeting_probability,
    meeting_time_distribution,
)
from repro.queries.pattern import Pattern, PatternAtom
from repro.queries.ql import QueryResult, execute
from repro.queries.session import QuerySession
from repro.queries.stay import stay_query, stay_query_prior
from repro.queries.trajectory import TrajectoryQuery

__all__ = [
    "Pattern",
    "PatternAtom",
    "QueryResult",
    "QuerySession",
    "execute",
    "stay_query",
    "stay_query_prior",
    "TrajectoryQuery",
    "stay_accuracy",
    "trajectory_query_accuracy",
    "most_likely_trajectory",
    "top_k_trajectories",
    "entropy_profile",
    "entropy_profile_prior",
    "uncertainty_reduction",
    "expected_visit_counts",
    "visit_probability",
    "span_probability",
    "time_at_location_distribution",
    "first_visit_distribution",
    "meeting_probability",
    "meeting_time_distribution",
    "colocation_profile",
]
