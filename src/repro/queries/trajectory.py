"""Trajectory queries: probabilistic pattern matching (Section 6.6).

The answer to a trajectory query over a ct-graph is *yes* with probability
``p`` = total conditioned mass of the source->target paths whose location
sequence matches the pattern.  The evaluator runs the pattern's DFA in
lock-step with a forward pass over the levelled graph: the DP state is a
probability per ``(graph node, DFA state)`` pair.  Determinism of the DFA
makes the sum exact — each trajectory is counted through exactly one DFA
run.

The same DP over the raw l-sequence (states are ``(location, DFA state)``
pairs) yields the uncleaned baseline probability under the independence
assumption.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple, Union

from repro.core.ctgraph import CTGraph, CTNode
from repro.core.flatgraph import FlatCTGraph
from repro.core.lsequence import LSequence
from repro.queries.pattern import Pattern

__all__ = ["TrajectoryQuery"]


class TrajectoryQuery:
    """A compiled trajectory query, evaluatable on graphs and l-sequences."""

    def __init__(self, pattern: Union[Pattern, str]) -> None:
        self.pattern = (Pattern.parse(pattern) if isinstance(pattern, str)
                        else pattern)
        self._dfa = self.pattern.dfa()

    # ------------------------------------------------------------------
    def probability(self, graph: Union[CTGraph, FlatCTGraph]) -> float:
        """P(the cleaned trajectory matches the pattern).

        Accepts the node form or the flat form (including duck-typed
        column views like :class:`~repro.store.format.MappedCTGraph` —
        anything exposing the CSR ``edge_offsets`` columns runs the flat
        DP; node-like graphs such as ``JointGraph`` run the object DP);
        the two DPs visit ``(node, DFA state)`` pairs in the same order
        and produce bit-identical probabilities.
        """
        if hasattr(graph, "edge_offsets"):
            return self._probability_flat(graph)
        dfa = self._dfa
        # forward[(node, dfa_state)] = accumulated probability mass.
        forward: Dict[Tuple[CTNode, int], float] = {}
        for source in graph.sources:
            mass = graph.source_probability(source)
            if mass <= 0.0:
                continue
            state = dfa.step(dfa.start, source.location)
            key = (source, state)
            forward[key] = forward.get(key, 0.0) + mass

        for tau in range(graph.duration - 1):
            step: Dict[Tuple[CTNode, int], float] = {}
            for (node, state), mass in forward.items():
                if node.tau != tau:
                    continue
                for child, probability in node.edges.items():
                    next_state = dfa.step(state, child.location)
                    key = (child, next_state)
                    step[key] = step.get(key, 0.0) + mass * probability
            forward = step

        return sum(mass for (node, state), mass in forward.items()
                   if state in dfa.accepting)

    def _probability_flat(self, graph: FlatCTGraph) -> float:
        dfa = self._dfa
        # The DFA transition per interned location id, computed once, and
        # ``(node index, dfa state)`` frontier keys packed into one int
        # (``index * num_states + state``) — the packing is a bijection,
        # so insertion order and float accumulation match the tuple-keyed
        # object path exactly.
        symbols = [dfa.symbol(name) for name in graph.location_names]
        transitions = dfa.transitions
        num_states = len(transitions)
        lids = graph.locations[0]
        forward: Dict[int, float] = {}
        for i in range(len(lids)):
            mass = graph.source_probabilities[i]
            if mass <= 0.0:
                continue
            state = transitions[dfa.start][symbols[lids[i]]]
            key = i * num_states + state
            forward[key] = forward.get(key, 0.0) + mass

        for tau in range(graph.duration - 1):
            offsets = graph.edge_offsets[tau]
            children = graph.edge_children[tau]
            probabilities = graph.edge_probabilities[tau]
            next_lids = graph.locations[tau + 1]
            step: Dict[int, float] = {}
            step_get = step.get
            for key, mass in forward.items():
                i, state = divmod(key, num_states)
                row = transitions[state]
                for e in range(offsets[i], offsets[i + 1]):
                    child = children[e]
                    next_key = (child * num_states
                                + row[symbols[next_lids[child]]])
                    step[next_key] = (step_get(next_key, 0.0)
                                      + mass * probabilities[e])
            forward = step

        return sum(mass for key, mass in forward.items()
                   if key % num_states in dfa.accepting)

    def probability_prior(self, lsequence: LSequence) -> float:
        """P(match) under the raw independence-assumption interpretation."""
        dfa = self._dfa
        forward: Dict[int, float] = {}
        for location, probability in lsequence.candidates(0).items():
            state = dfa.step(dfa.start, location)
            forward[state] = forward.get(state, 0.0) + probability
        for tau in range(1, lsequence.duration):
            step: Dict[int, float] = {}
            candidates = lsequence.candidates(tau)
            for state, mass in forward.items():
                for location, probability in candidates.items():
                    next_state = dfa.step(state, location)
                    step[next_state] = (step.get(next_state, 0.0)
                                        + mass * probability)
            forward = step
        return sum(mass for state, mass in forward.items()
                   if state in dfa.accepting)

    def matches(self, trajectory: Sequence[str]) -> bool:
        """Deterministic evaluation on a concrete trajectory."""
        return self.pattern.matches(trajectory)

    def __repr__(self) -> str:
        return f"TrajectoryQuery({str(self.pattern)!r})"
