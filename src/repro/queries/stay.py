"""Stay queries: "where was the object at timestep tau?" (Section 6.6).

Over a ct-graph the answer is exact: the probability of location ``l`` at
``tau`` is the total conditioned mass of the source->target paths whose
``tau``-th step is ``l`` — computed by the cached forward pass of
:meth:`repro.core.ctgraph.CTGraph.location_marginal`.

:func:`stay_query_prior` answers the same question from the raw l-sequence
(the independence-assumption interpretation) — the "no cleaning" baseline
of the accuracy experiments.
"""

from __future__ import annotations

from typing import Dict

from repro.core.ctgraph import CTGraph
from repro.core.lsequence import LSequence

__all__ = ["stay_query", "stay_query_prior"]


def stay_query(graph: CTGraph, tau: int) -> Dict[str, float]:
    """The conditioned distribution of the object's location at ``tau``.

    Raises :class:`repro.errors.QueryError` for out-of-range timesteps.
    """
    return graph.location_marginal(tau)


def stay_query_prior(lsequence: LSequence, tau: int) -> Dict[str, float]:
    """The a-priori (uncleaned) distribution of the location at ``tau``."""
    return dict(lsequence.candidates(tau))
