"""Accuracy of query answers against ground truth (Section 6.6).

The paper's metrics:

* **stay queries** — the accuracy of an answer is the probability it
  assigns to the location the object actually was at (evaluated on the
  ground-truth trajectory);
* **trajectory queries** — the accuracy is the probability assigned to the
  *correct* boolean answer: ``p`` when the ground truth matches the
  pattern, ``1 - p`` otherwise.

Both helpers accept any probabilistic answerer; harness code passes either
a cleaned ct-graph or the raw-prior baseline.
"""

from __future__ import annotations

from typing import Dict, Sequence, Union

from repro.core.ctgraph import CTGraph
from repro.core.lsequence import LSequence
from repro.errors import QueryError
from repro.queries.pattern import Pattern
from repro.queries.stay import stay_query, stay_query_prior
from repro.queries.trajectory import TrajectoryQuery

__all__ = ["stay_accuracy", "trajectory_query_accuracy"]


def stay_accuracy(answer: Dict[str, float], true_location: str) -> float:
    """The probability the stay answer assigns to the true location."""
    return answer.get(true_location, 0.0)


def trajectory_query_accuracy(probability_yes: float, truth_matches: bool) -> float:
    """The probability assigned to the correct yes/no answer."""
    if not 0.0 <= probability_yes <= 1.0 + 1e-9:
        raise QueryError(f"not a probability: {probability_yes}")
    probability_yes = min(1.0, probability_yes)
    return probability_yes if truth_matches else 1.0 - probability_yes


def stay_accuracy_on(source: Union[CTGraph, LSequence], tau: int,
                     true_trajectory: Sequence[str]) -> float:
    """Convenience: answer a stay query on ``source`` and score it."""
    if isinstance(source, CTGraph):
        answer = stay_query(source, tau)
    else:
        answer = stay_query_prior(source, tau)
    return stay_accuracy(answer, true_trajectory[tau])


def trajectory_accuracy_on(source: Union[CTGraph, LSequence],
                           pattern: Union[Pattern, str],
                           true_trajectory: Sequence[str]) -> float:
    """Convenience: answer a trajectory query on ``source`` and score it."""
    query = TrajectoryQuery(pattern)
    if isinstance(source, CTGraph):
        probability = query.probability(source)
    else:
        probability = query.probability_prior(source)
    return trajectory_query_accuracy(probability,
                                     query.matches(true_trajectory))
