"""Analytics over cleaned trajectories: MAP paths, top-k, uncertainty,
visit statistics.

Everything here is an exact dynamic program over the levelled ct-graph:

* :func:`most_likely_trajectory` — the Viterbi (maximum a-posteriori) path;
* :func:`top_k_trajectories` — the k most probable valid trajectories
  (best-first search over path prefixes);
* :func:`entropy_profile` / :func:`uncertainty_reduction` — per-timestep
  Shannon entropy of the location marginal, quantifying the paper's
  headline ("reducing the inherent uncertainty of trajectory data");
* :func:`expected_visit_counts` — expected number of timesteps per
  location;
* :func:`visit_probability` — P(the object ever visits a location);
* :func:`first_visit_distribution` — when the first visit happens.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.ctgraph import CTGraph, CTNode
from repro.core.lsequence import LSequence, Trajectory
from repro.errors import QueryError

__all__ = [
    "most_likely_trajectory",
    "top_k_trajectories",
    "entropy_profile",
    "entropy_profile_prior",
    "uncertainty_reduction",
    "expected_visit_counts",
    "visit_probability",
    "span_probability",
    "first_visit_distribution",
    "time_at_location_distribution",
]


# ----------------------------------------------------------------------
# MAP trajectory and top-k
# ----------------------------------------------------------------------

def _lex_ranks(keys: Dict[CTNode, object]) -> Dict[CTNode, int]:
    """Dense lexicographic ranks of each node's best prefix key.

    Rank order ≡ lexicographic order of the full best prefixes: a level's
    keys are ``(parent rank, location)`` pairs (plain locations at level
    0) and all prefixes at a level share a length, so comparing keys
    compares the prefixes themselves.
    """
    order = {key: rank
             for rank, key in enumerate(sorted(set(keys.values())))}  # type: ignore[type-var]
    return {node: order[key] for node, key in keys.items()}


def most_likely_trajectory(graph: CTGraph) -> Tuple[Trajectory, float]:
    """The maximum-probability valid trajectory (Viterbi over the graph).

    Ties are broken deterministically: among equal-probability MAP paths
    the lexicographically smallest location sequence wins, independent of
    node/dict iteration order.  The flat path
    (:meth:`repro.queries.session.QuerySession.most_likely_trajectory`)
    breaks ties identically.
    """
    best: Dict[CTNode, Tuple[float, Optional[CTNode]]] = {}
    keys: Dict[CTNode, object] = {}
    for source in graph.sources:
        probability = graph.source_probability(source)
        if probability > 0.0:
            best[source] = (probability, None)
            keys[source] = source.location
    ranks = _lex_ranks(keys)
    for tau in range(graph.duration - 1):
        next_keys: Dict[CTNode, object] = {}
        for node in graph.level(tau):
            entry = best.get(node)
            if entry is None:
                continue
            mass = entry[0]
            rank = ranks[node]
            for child, probability in node.edges.items():
                candidate = mass * probability
                key = (rank, child.location)
                current = best.get(child)
                if (current is None or candidate > current[0]
                        or (candidate == current[0]
                            and key < next_keys[child])):  # type: ignore[operator]
                    best[child] = (candidate, node)
                    next_keys[child] = key
        ranks = _lex_ranks(next_keys)

    terminal: Optional[CTNode] = None
    for node in graph.targets:
        entry = best.get(node)
        if entry is None:
            continue
        if (terminal is None or entry[0] > best[terminal][0]
                or (entry[0] == best[terminal][0]
                    and ranks[node] < ranks[terminal])):
            terminal = node
    if terminal is None:
        raise QueryError("graph has no positive-probability path")
    steps: List[str] = []
    node: Optional[CTNode] = terminal
    while node is not None:
        steps.append(node.location)
        node = best[node][1]
    steps.reverse()
    return tuple(steps), best[terminal][0]


def top_k_trajectories(graph: CTGraph, k: int) -> List[Tuple[Trajectory, float]]:
    """The most probable valid trajectories, most probable first.

    Contract: returns exactly ``min(k, graph.num_valid_trajectories())``
    entries — a graph with fewer than ``k`` valid trajectories yields them
    all, never an error and never padding.  Equal-probability trajectories
    are returned in discovery order (level order, then edge insertion
    order), which is identical in the object and flat paths.

    Best-first search over path prefixes, guided by the exact
    probability-to-go upper bound ``best_suffix`` (the Viterbi value of
    each node's best completion) — so only prefixes that can still reach
    the frontier of the answer set are expanded.  Each node is expanded at
    most ``k`` times: the ``i``-th pop of a node carries its ``i``-th best
    prefix, so once ``k`` prefixes have reached a node, every later prefix
    through it is dominated by ``k`` earlier-ordered completions and can
    be discarded.  That bounds the heap at ``O(k * edges)`` entries
    regardless of how many valid trajectories exist.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")

    # Exact best-completion value per node (max-product backward pass).
    best_suffix: Dict[CTNode, float] = {node: 1.0 for node in graph.targets}
    for tau in range(graph.duration - 2, -1, -1):
        for node in graph.level(tau):
            best_suffix[node] = max(
                (probability * best_suffix.get(child, 0.0)
                 for child, probability in node.edges.items()),
                default=0.0)

    # Best-first expansion: entries are (-bound, counter, node, prefix, mass).
    heap: List = []
    counter = 0
    for source in graph.sources:
        mass = graph.source_probability(source)
        if mass <= 0.0:
            continue
        bound = mass * best_suffix.get(source, 0.0)
        heapq.heappush(heap, (-bound, counter, source, (source.location,), mass))
        counter += 1

    results: List[Tuple[Trajectory, float]] = []
    pops: Dict[CTNode, int] = {}
    while heap and len(results) < k:
        negative_bound, _, node, prefix, mass = heapq.heappop(heap)
        popped = pops.get(node, 0)
        if popped >= k:
            continue
        pops[node] = popped + 1
        if not node.edges:
            if node.tau == graph.duration - 1:
                results.append((prefix, mass))
            continue
        for child, probability in node.edges.items():
            child_mass = mass * probability
            bound = child_mass * best_suffix.get(child, 0.0)
            if bound <= 0.0:
                continue
            heapq.heappush(heap, (-bound, counter, child,
                                  prefix + (child.location,), child_mass))
            counter += 1
    return results


# ----------------------------------------------------------------------
# uncertainty
# ----------------------------------------------------------------------

def _entropy(distribution: Dict[str, float]) -> float:
    return -sum(p * math.log2(p) for p in distribution.values() if p > 0.0)


def entropy_profile(graph: CTGraph) -> List[float]:
    """Shannon entropy (bits) of the cleaned location marginal, per step."""
    return [_entropy(graph.location_marginal(tau))
            for tau in range(graph.duration)]


def entropy_profile_prior(lsequence: LSequence) -> List[float]:
    """Shannon entropy (bits) of the raw a-priori marginal, per step."""
    return [_entropy(lsequence.candidates(tau))
            for tau in range(lsequence.duration)]


def uncertainty_reduction(lsequence: LSequence, graph: CTGraph) -> float:
    """Average per-step entropy drop (bits) achieved by conditioning.

    Positive values mean cleaning made positions more certain on average —
    the quantified version of the paper's title claim.
    """
    if lsequence.duration != graph.duration:
        raise QueryError("l-sequence and graph have different durations")
    before = entropy_profile_prior(lsequence)
    after = entropy_profile(graph)
    return sum(b - a for b, a in zip(before, after)) / graph.duration


# ----------------------------------------------------------------------
# visit statistics
# ----------------------------------------------------------------------

def expected_visit_counts(graph: CTGraph) -> Dict[str, float]:
    """Expected number of timesteps spent at each location."""
    totals: Dict[str, float] = {}
    for tau in range(graph.duration):
        for location, probability in graph.location_marginal(tau).items():
            totals[location] = totals.get(location, 0.0) + probability
    return totals


def visit_probability(graph: CTGraph, location: str) -> float:
    """P(the object is at ``location`` at some timestep).

    Computed as 1 minus the total mass of paths that avoid the location —
    a forward pass restricted to non-``location`` nodes.
    """
    avoiding: Dict[CTNode, float] = {}
    for source in graph.sources:
        if source.location != location:
            mass = graph.source_probability(source)
            if mass > 0.0:
                avoiding[source] = mass
    for tau in range(graph.duration - 1):
        for node in graph.level(tau):
            mass = avoiding.get(node)
            if mass is None:
                continue
            for child, probability in node.edges.items():
                if child.location == location:
                    continue
                avoiding[child] = avoiding.get(child, 0.0) + mass * probability
    avoided = sum(avoiding.get(node, 0.0) for node in graph.targets)
    return min(1.0, max(0.0, 1.0 - avoided))


def span_probability(graph: CTGraph, location: str,
                     start: int, end: int) -> float:
    """P(the object is at ``location`` throughout ``[start, end]``).

    Both bounds are inclusive timesteps.  A forward pass whose flow is
    restricted to ``location`` nodes inside the window — the probabilistic
    version of "was the patient in the isolation room the whole hour?".
    """
    if not 0 <= start <= end < graph.duration:
        raise QueryError(
            f"window [{start}, {end}] outside the graph's [0, "
            f"{graph.duration})")
    alphas = graph.node_marginals()
    inside: Dict[CTNode, float] = {}
    for node in graph.level(start):
        if node.location == location:
            mass = alphas.get(node, 0.0)
            if mass > 0.0:
                inside[node] = mass
    for tau in range(start, end):
        step: Dict[CTNode, float] = {}
        for node, mass in inside.items():
            for child, probability in node.edges.items():
                if child.location == location:
                    step[child] = step.get(child, 0.0) + mass * probability
        inside = step
        if not inside:
            return 0.0
    return min(1.0, sum(inside.values()))


def time_at_location_distribution(graph: CTGraph,
                                  location: str) -> Dict[int, float]:
    """The distribution of the *total* time spent at ``location``.

    Returns ``{k: P(exactly k timesteps at location)}`` including ``k=0``.
    The DP carries a per-node count histogram, so cost is
    ``O(nodes * duration)`` in the worst case — fine for DU/LT graphs,
    potentially heavy on huge TT graphs (expected value via
    :func:`expected_visit_counts` is always cheap).
    """
    histograms: Dict[CTNode, Dict[int, float]] = {}
    for source in graph.sources:
        mass = graph.source_probability(source)
        if mass <= 0.0:
            continue
        count = 1 if source.location == location else 0
        histograms[source] = {count: mass}
    for tau in range(graph.duration - 1):
        for node in graph.level(tau):
            histogram = histograms.get(node)
            if not histogram:
                continue
            for child, probability in node.edges.items():
                bump = 1 if child.location == location else 0
                target = histograms.setdefault(child, {})
                for count, mass in histogram.items():
                    key = count + bump
                    target[key] = target.get(key, 0.0) + mass * probability
    result: Dict[int, float] = {}
    for node in graph.targets:
        for count, mass in histograms.get(node, {}).items():
            result[count] = result.get(count, 0.0) + mass
    return result


def first_visit_distribution(graph: CTGraph, location: str) -> Dict[int, float]:
    """P(first visit to ``location`` happens at timestep ``tau``).

    The returned dict maps timesteps to probabilities; mass missing from
    the dict is the probability of never visiting.  Forward pass over
    "not visited yet" prefixes, emitting mass on first entry.
    """
    first: Dict[int, float] = {}
    pending: Dict[CTNode, float] = {}
    for source in graph.sources:
        mass = graph.source_probability(source)
        if mass <= 0.0:
            continue
        if source.location == location:
            first[0] = first.get(0, 0.0) + mass
        else:
            pending[source] = mass
    for tau in range(graph.duration - 1):
        for node in graph.level(tau):
            mass = pending.get(node)
            if mass is None:
                continue
            for child, probability in node.edges.items():
                flow = mass * probability
                if child.location == location:
                    first[tau + 1] = first.get(tau + 1, 0.0) + flow
                else:
                    pending[child] = pending.get(child, 0.0) + flow
    return first
