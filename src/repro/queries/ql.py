"""A miniature query language over cleaned trajectory data.

The paper positions ct-graphs as the storage format that query engines
(Lahar-style warehouses) consume.  This module provides the thin end of
that wedge: a line-oriented query language so cleaned data can be explored
without writing Python — used by the ``rfid-ctg ql`` CLI command and handy
in notebooks.

Statements (case-insensitive keywords; one statement per call)::

    STAY <tau>                where was the object at timestep <tau>
    MATCH <pattern>           P(trajectory matches '? l[n] ?' pattern)
    VISIT <location>          P(the object ever visits <location>)
    SPAN <location> <t1> <t2> P(at <location> throughout [t1, t2])
    DWELL <location>          distribution of total time at <location>
    FIRST <location>          distribution of the first visit time
    EXPECTED                  expected timesteps per location
    BEST                      the most likely trajectory
    TOP <k>                   the k most likely trajectories
    ENTROPY                   per-timestep position entropy (bits)

Results are returned as :class:`QueryResult` (typed payload + a
``format()`` that renders a terminal-friendly table/line).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Union

from repro.core.ctgraph import CTGraph
from repro.core.flatgraph import FlatCTGraph
from repro.errors import PatternSyntaxError, QueryError
from repro.queries.analytics import (
    entropy_profile,
    expected_visit_counts,
    first_visit_distribution,
    most_likely_trajectory,
    span_probability,
    time_at_location_distribution,
    top_k_trajectories,
    visit_probability,
)
from repro.queries.session import QuerySession
from repro.queries.stay import stay_query
from repro.queries.trajectory import TrajectoryQuery

__all__ = ["QueryResult", "execute"]

QueryTarget = Union[CTGraph, FlatCTGraph, QuerySession]


@dataclass(frozen=True)
class QueryResult:
    """A typed query outcome: the statement kind, the payload, a renderer."""

    kind: str
    value: Any

    def format(self, limit: int = 10) -> str:
        """A terminal-friendly rendering of the payload."""
        if self.kind == "stay":
            rows = sorted(self.value.items(), key=lambda kv: -kv[1])[:limit]
            return "\n".join(f"{location:20s} {p:.4f}" for location, p in rows)
        if self.kind in ("match", "visit"):
            return f"{self.value:.4f}"
        if self.kind == "first":
            rows = sorted(self.value.items())[:limit]
            never = 1.0 - sum(self.value.values())
            lines = [f"t={tau:<6d} {p:.4f}" for tau, p in rows]
            lines.append(f"never    {max(0.0, never):.4f}")
            return "\n".join(lines)
        if self.kind == "dwell":
            rows = sorted(self.value.items())[:limit]
            return "\n".join(f"{count:4d} steps  {p:.4f}"
                             for count, p in rows)
        if self.kind == "expected":
            rows = sorted(self.value.items(), key=lambda kv: -kv[1])[:limit]
            return "\n".join(f"{location:20s} {steps:8.1f}"
                             for location, steps in rows)
        if self.kind == "best":
            trajectory, probability = self.value
            return f"p={probability:.4e}  {_compact(trajectory)}"
        if self.kind == "top":
            return "\n".join(
                f"#{rank} p={probability:.4e}  {_compact(trajectory)}"
                for rank, (trajectory, probability)
                in enumerate(self.value, start=1))
        if self.kind == "entropy":
            from repro.viz import render_entropy_sparkline
            return render_entropy_sparkline(self.value)
        raise QueryError(f"unknown result kind {self.kind!r}")


def _compact(trajectory) -> str:
    """A trajectory as its stay sequence: 'A x3 -> B x2 -> ...'."""
    parts: List[str] = []
    run_location, run_length = trajectory[0], 1
    for location in trajectory[1:]:
        if location == run_location:
            run_length += 1
        else:
            parts.append(f"{run_location} x{run_length}")
            run_location, run_length = location, 1
    parts.append(f"{run_location} x{run_length}")
    return " -> ".join(parts)


def execute(graph: QueryTarget, statement: str) -> QueryResult:
    """Run one statement against a cleaned ct-graph.

    ``graph`` may be a :class:`CTGraph` (object-path evaluation), a
    :class:`FlatCTGraph` (wrapped in a fresh :class:`QuerySession`) or a
    prebuilt :class:`QuerySession` — pass the session when running many
    statements so the shared sweeps are computed once.  Results are
    bit-identical across the three forms.

    Raises :class:`QueryError` for syntax errors, unknown statements or
    out-of-range arguments, and :class:`PatternSyntaxError` for malformed
    ``MATCH`` patterns.
    """
    session = None if isinstance(graph, CTGraph) else QuerySession.ensure(graph)
    tokens = statement.strip().split(None, 1)
    if not tokens:
        raise QueryError("empty query")
    keyword = tokens[0].upper()
    argument = tokens[1].strip() if len(tokens) > 1 else ""

    if keyword == "STAY":
        tau = _parse_int(argument, "STAY expects a timestep")
        if session is not None:
            return QueryResult("stay", session.location_marginal(tau))
        return QueryResult("stay", stay_query(graph, tau))
    if keyword == "MATCH":
        if not argument:
            raise QueryError("MATCH expects a pattern")
        if session is not None:
            return QueryResult("match", session.match_probability(argument))
        query = TrajectoryQuery(argument)
        return QueryResult("match", query.probability(graph))
    if keyword == "VISIT":
        if not argument:
            raise QueryError("VISIT expects a location name")
        if session is not None:
            return QueryResult("visit", session.visit_probability(argument))
        return QueryResult("visit", visit_probability(graph, argument))
    if keyword == "SPAN":
        parts = argument.split()
        if len(parts) != 3:
            raise QueryError("SPAN expects: SPAN <location> <start> <end>")
        location = parts[0]
        start = _parse_int(parts[1], "SPAN expects integer bounds")
        end = _parse_int(parts[2], "SPAN expects integer bounds")
        if session is not None:
            return QueryResult(
                "visit", session.span_probability(location, start, end))
        return QueryResult("visit",
                           span_probability(graph, location, start, end))
    if keyword == "DWELL":
        if not argument:
            raise QueryError("DWELL expects a location name")
        if session is not None:
            return QueryResult(
                "dwell", session.time_at_location_distribution(argument))
        return QueryResult(
            "dwell", time_at_location_distribution(graph, argument))
    if keyword == "FIRST":
        if not argument:
            raise QueryError("FIRST expects a location name")
        if session is not None:
            return QueryResult(
                "first", session.first_visit_distribution(argument))
        return QueryResult("first", first_visit_distribution(graph, argument))
    if keyword == "EXPECTED":
        _reject_argument(argument, "EXPECTED")
        if session is not None:
            return QueryResult("expected", session.expected_visit_counts())
        return QueryResult("expected", expected_visit_counts(graph))
    if keyword == "BEST":
        _reject_argument(argument, "BEST")
        if session is not None:
            return QueryResult("best", session.most_likely_trajectory())
        return QueryResult("best", most_likely_trajectory(graph))
    if keyword == "TOP":
        k = _parse_int(argument, "TOP expects a count")
        if session is not None:
            return QueryResult("top", session.top_k_trajectories(k))
        return QueryResult("top", top_k_trajectories(graph, k))
    if keyword == "ENTROPY":
        _reject_argument(argument, "ENTROPY")
        if session is not None:
            return QueryResult("entropy", session.entropy_profile())
        return QueryResult("entropy", entropy_profile(graph))
    raise QueryError(f"unknown statement {keyword!r}; see repro.queries.ql")


def _parse_int(text: str, message: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise QueryError(f"{message}, got {text!r}") from None


def _reject_argument(argument: str, keyword: str) -> None:
    if argument:
        raise QueryError(f"{keyword} takes no argument, got {argument!r}")
