"""Trajectory-query patterns: parsing and compilation to automata.

A pattern (Section 6.6) is a sequence of *location conditions*:

* ``?``      — any (possibly empty) sequence of locations;
* ``l``      — a run of location ``l`` of length at least 1;
* ``l[n]``   — a run of location ``l`` of length at least ``n``.

A trajectory matches iff its location string can be obtained by expanding
the conditions left to right.  Patterns are parsed from strings such as
``"? F0_R1[3] ? F0_R2[2] ?"`` (whitespace-separated conditions; location
names may contain anything but whitespace, ``[`` and ``?``).

Compilation goes pattern -> NFA (one state chain per run condition, a
self-looping state per wildcard) -> DFA by subset construction over the
reduced alphabet {mentioned locations} ∪ {OTHER}.  The DFA is what the
query evaluator uses: determinism guarantees each trajectory contributes
its probability exactly once to the match mass (an NFA would double count
trajectories reachable along several accepting runs).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import PatternSyntaxError

__all__ = ["PatternAtom", "Pattern", "PatternDFA", "OTHER"]

#: The catch-all alphabet symbol for locations the pattern does not mention.
OTHER = "\x00OTHER"

_ATOM_RE = re.compile(r"^(?P<name>[^\s\[\]?]+)(?:\[(?P<count>-?\d+)\])?$")


@dataclass(frozen=True)
class PatternAtom:
    """One location condition: ``location`` repeated at least ``min_run`` times.

    ``None`` as ``location`` denotes the wildcard ``?``.  The paper's query
    generator uses ``n = -1`` to mean "use the bare ``l`` condition"; the
    parser normalises that to ``min_run = 1``.
    """

    location: Optional[str]
    min_run: int = 1

    def __post_init__(self) -> None:
        if self.location is None:
            return
        if self.min_run < 1:
            raise PatternSyntaxError(
                f"condition on {self.location!r}: run length must be >= 1, "
                f"got {self.min_run}")

    @property
    def is_wildcard(self) -> bool:
        return self.location is None

    def __str__(self) -> str:
        if self.location is None:
            return "?"
        if self.min_run == 1:
            return self.location
        return f"{self.location}[{self.min_run}]"


class Pattern:
    """A parsed trajectory-query pattern."""

    def __init__(self, atoms: Sequence[PatternAtom]) -> None:
        if not atoms:
            raise PatternSyntaxError("a pattern needs at least one condition")
        self.atoms: Tuple[PatternAtom, ...] = tuple(atoms)
        self._dfa: Optional[PatternDFA] = None

    @classmethod
    def parse(cls, text: str) -> "Pattern":
        """Parse ``"? A[3] ? B ?"``-style pattern strings."""
        tokens = text.split()
        if not tokens:
            raise PatternSyntaxError(f"empty pattern: {text!r}")
        atoms: List[PatternAtom] = []
        for token in tokens:
            if token == "?":
                atoms.append(PatternAtom(None))
                continue
            match = _ATOM_RE.match(token)
            if match is None:
                raise PatternSyntaxError(f"cannot parse condition {token!r}")
            count = match.group("count")
            min_run = 1 if count is None or int(count) < 1 else int(count)
            atoms.append(PatternAtom(match.group("name"), min_run))
        return cls(atoms)

    @classmethod
    def visits(cls, *locations: str, min_runs: Optional[Sequence[int]] = None
               ) -> "Pattern":
        """The paper's workload shape: ``? l1[n1] ? l2[n2] ? ... ?``."""
        if not locations:
            raise PatternSyntaxError("Pattern.visits needs at least one location")
        runs = list(min_runs) if min_runs is not None else [1] * len(locations)
        if len(runs) != len(locations):
            raise PatternSyntaxError(
                f"{len(locations)} locations but {len(runs)} run lengths")
        atoms: List[PatternAtom] = [PatternAtom(None)]
        for location, run in zip(locations, runs):
            atoms.append(PatternAtom(location, max(1, run)))
            atoms.append(PatternAtom(None))
        return cls(atoms)

    # ------------------------------------------------------------------
    @property
    def mentioned_locations(self) -> Tuple[str, ...]:
        """Distinct location names the pattern refers to, in order."""
        seen: List[str] = []
        for atom in self.atoms:
            if atom.location is not None and atom.location not in seen:
                seen.append(atom.location)
        return tuple(seen)

    @property
    def num_conditions(self) -> int:
        """The number of non-wildcard conditions (the paper's query length)."""
        return sum(1 for atom in self.atoms if not atom.is_wildcard)

    def matches(self, trajectory: Sequence[str]) -> bool:
        """Deterministic semantics: does the location sequence match?"""
        dfa = self.dfa()
        state = dfa.start
        for location in trajectory:
            state = dfa.step(state, location)
        return state in dfa.accepting

    def dfa(self) -> "PatternDFA":
        """The compiled DFA (cached)."""
        if self._dfa is None:
            self._dfa = _compile(self)
        return self._dfa

    def __str__(self) -> str:
        return " ".join(str(atom) for atom in self.atoms)

    def __repr__(self) -> str:
        return f"Pattern({str(self)!r})"


class PatternDFA:
    """A deterministic automaton over {mentioned locations} ∪ {OTHER}.

    States are dense integers; ``step`` maps unmentioned locations to the
    ``OTHER`` symbol internally, so callers feed raw location names.
    """

    def __init__(self, start: int,
                 transitions: Sequence[Dict[str, int]],
                 accepting: FrozenSet[int],
                 alphabet: FrozenSet[str]) -> None:
        self.start = start
        self.transitions = tuple(transitions)
        self.accepting = accepting
        self.alphabet = alphabet

    @property
    def num_states(self) -> int:
        return len(self.transitions)

    def symbol(self, location: str) -> str:
        """The alphabet symbol a location maps to."""
        return location if location in self.alphabet else OTHER

    def step(self, state: int, location: str) -> int:
        """The successor state after reading ``location``."""
        return self.transitions[state][self.symbol(location)]


# ----------------------------------------------------------------------
# compilation: pattern -> epsilon-NFA -> DFA
# ----------------------------------------------------------------------

def _compile(pattern: Pattern) -> PatternDFA:
    nfa_transitions: List[Dict[str, Set[int]]] = []
    epsilon: List[Set[int]] = []

    def new_state() -> int:
        nfa_transitions.append({})
        epsilon.append(set())
        return len(nfa_transitions) - 1

    def add_edge(src: int, symbol: str, dst: int) -> None:
        nfa_transitions[src].setdefault(symbol, set()).add(dst)

    alphabet = frozenset(pattern.mentioned_locations)
    symbols = tuple(alphabet) + (OTHER,)

    # Build a chain of fragments; ``current`` is the fragment's exit state.
    start = new_state()
    current = start
    for atom in pattern.atoms:
        if atom.is_wildcard:
            # A single state with a self-loop on every symbol, entered by
            # epsilon (the wildcard may be empty).
            loop = new_state()
            epsilon[current].add(loop)
            for symbol in symbols:
                add_edge(loop, symbol, loop)
            current = loop
        else:
            # min_run consuming states, the last self-looping on the symbol
            # (a run may be longer than its minimum).
            for _ in range(atom.min_run):
                nxt = new_state()
                add_edge(current, atom.location, nxt)
                current = nxt
            add_edge(current, atom.location, current)
    accept_state = current

    def closure(states: FrozenSet[int]) -> FrozenSet[int]:
        stack = list(states)
        seen = set(states)
        while stack:
            state = stack.pop()
            for nxt in epsilon[state]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return frozenset(seen)

    # Subset construction.
    start_set = closure(frozenset({start}))
    subset_ids: Dict[FrozenSet[int], int] = {start_set: 0}
    dfa_transitions: List[Dict[str, int]] = [{}]
    worklist = [start_set]
    while worklist:
        subset = worklist.pop()
        sid = subset_ids[subset]
        for symbol in symbols:
            targets: Set[int] = set()
            for state in subset:
                targets |= nfa_transitions[state].get(symbol, set())
            target_set = closure(frozenset(targets))
            tid = subset_ids.get(target_set)
            if tid is None:
                tid = len(dfa_transitions)
                subset_ids[target_set] = tid
                dfa_transitions.append({})
                worklist.append(target_set)
            dfa_transitions[sid][symbol] = tid

    accepting = frozenset(sid for subset, sid in subset_ids.items()
                          if accept_state in subset)
    return PatternDFA(0, dfa_transitions, accepting, alphabet)
