"""Contact queries over two independently tracked objects.

Where :mod:`repro.core.groups` *conditions* on two objects always moving
together, the functions here *measure* co-location of two independently
cleaned trajectories:

* :func:`meeting_probability` — P(the objects share a location at some
  timestep);
* :func:`meeting_time_distribution` — P(the first co-location happens at
  timestep ``tau``);
* :func:`colocation_profile` — P(co-located at ``tau``) for every ``tau``.

The classic application is contact tracing: given the cleaned graphs of a
known carrier and a visitor, how likely did they meet, and when?

All three are exact dynamic programs over the product of the two graphs'
levels; the objects' trajectories are treated as independent given their
readings (the cleaned distributions factorise).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.ctgraph import CTGraph, CTNode
from repro.errors import QueryError

__all__ = [
    "meeting_probability",
    "meeting_time_distribution",
    "colocation_profile",
]


def _check_durations(graph_a: CTGraph, graph_b: CTGraph) -> None:
    if graph_a.duration != graph_b.duration:
        raise QueryError(
            f"graphs cover different intervals: {graph_a.duration} vs "
            f"{graph_b.duration} steps")


def colocation_profile(graph_a: CTGraph, graph_b: CTGraph) -> List[float]:
    """P(the two objects are at the same location) per timestep.

    Marginals factorise across independent objects, so each timestep is
    just a dot product of the two location marginals.
    """
    _check_durations(graph_a, graph_b)
    profile: List[float] = []
    for tau in range(graph_a.duration):
        marginal_a = graph_a.location_marginal(tau)
        marginal_b = graph_b.location_marginal(tau)
        profile.append(sum(p * marginal_b.get(location, 0.0)
                           for location, p in marginal_a.items()))
    return profile


def meeting_time_distribution(graph_a: CTGraph,
                              graph_b: CTGraph) -> Dict[int, float]:
    """P(the objects are first co-located at timestep ``tau``).

    Mass missing from the returned dict is the probability they never
    meet.  Joint forward pass over "never met yet" pairs of node states —
    unlike :func:`colocation_profile`, first-meeting needs the joint DP
    because avoiding-so-far correlates the two trajectories.
    """
    _check_durations(graph_a, graph_b)
    first: Dict[int, float] = {}
    # pending[(a, b)] = P(prefixes end at (a, b), never co-located yet).
    pending: Dict[Tuple[CTNode, CTNode], float] = {}
    for source_a in graph_a.sources:
        pa = graph_a.source_probability(source_a)
        if pa <= 0.0:
            continue
        for source_b in graph_b.sources:
            pb = graph_b.source_probability(source_b)
            if pb <= 0.0:
                continue
            mass = pa * pb
            if source_a.location == source_b.location:
                first[0] = first.get(0, 0.0) + mass
            else:
                pending[(source_a, source_b)] = mass

    for tau in range(graph_a.duration - 1):
        step: Dict[Tuple[CTNode, CTNode], float] = {}
        emitted = 0.0
        for (node_a, node_b), mass in pending.items():
            for child_a, pa in node_a.edges.items():
                for child_b, pb in node_b.edges.items():
                    flow = mass * pa * pb
                    if child_a.location == child_b.location:
                        emitted += flow
                    else:
                        key = (child_a, child_b)
                        step[key] = step.get(key, 0.0) + flow
        if emitted > 0.0:
            first[tau + 1] = first.get(tau + 1, 0.0) + emitted
        pending = step
        if not pending:
            break
    return first


def meeting_probability(graph_a: CTGraph, graph_b: CTGraph) -> float:
    """P(the two objects share a location at some timestep)."""
    return min(1.0, sum(meeting_time_distribution(graph_a, graph_b).values()))
