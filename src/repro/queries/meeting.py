"""Contact queries over two independently tracked objects.

Where :mod:`repro.core.groups` *conditions* on two objects always moving
together, the functions here *measure* co-location of two independently
cleaned trajectories:

* :func:`meeting_probability` — P(the objects share a location at some
  timestep);
* :func:`meeting_time_distribution` — P(the first co-location happens at
  timestep ``tau``);
* :func:`colocation_profile` — P(co-located at ``tau``) for every ``tau``.

The classic application is contact tracing: given the cleaned graphs of a
known carrier and a visitor, how likely did they meet, and when?

All three are exact dynamic programs over the product of the two graphs'
levels; the objects' trajectories are treated as independent given their
readings (the cleaned distributions factorise).

Each function accepts :class:`~repro.core.ctgraph.CTGraph`,
:class:`~repro.core.flatgraph.FlatCTGraph` or a prebuilt
:class:`~repro.queries.session.QuerySession` for either argument.  Pass
sessions when querying the same pair repeatedly (the experiments harness
does): the marginal sweeps are computed once per object instead of once
per call.  Mixed inputs run on the flat path; results are bit-identical
either way (pinned by ``tests/test_queries_flat.py``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro.core.ctgraph import CTGraph, CTNode
from repro.core.flatgraph import FlatCTGraph
from repro.errors import QueryError
from repro.queries.session import QuerySession

__all__ = [
    "meeting_probability",
    "meeting_time_distribution",
    "colocation_profile",
]

MeetingOperand = Union[CTGraph, FlatCTGraph, QuerySession]


def _check_durations(duration_a: int, duration_b: int) -> None:
    if duration_a != duration_b:
        raise QueryError(
            f"graphs cover different intervals: {duration_a} vs "
            f"{duration_b} steps")


def colocation_profile(graph_a: MeetingOperand,
                       graph_b: MeetingOperand) -> List[float]:
    """P(the two objects are at the same location) per timestep.

    Marginals factorise across independent objects, so each timestep is
    just a dot product of the two location marginals.
    """
    if isinstance(graph_a, CTGraph) and isinstance(graph_b, CTGraph):
        _check_durations(graph_a.duration, graph_b.duration)
        profile: List[float] = []
        for tau in range(graph_a.duration):
            marginal_a = graph_a.location_marginal(tau)
            marginal_b = graph_b.location_marginal(tau)
            profile.append(sum(p * marginal_b.get(location, 0.0)
                               for location, p in marginal_a.items()))
        return profile
    session_a = QuerySession.ensure(graph_a)
    session_b = QuerySession.ensure(graph_b)
    _check_durations(session_a.duration, session_b.duration)
    profile = []
    for tau in range(session_a.duration):
        marginal_a = session_a.location_marginal(tau)
        marginal_b = session_b.location_marginal(tau)
        profile.append(sum(p * marginal_b.get(location, 0.0)
                           for location, p in marginal_a.items()))
    return profile


def meeting_time_distribution(graph_a: MeetingOperand,
                              graph_b: MeetingOperand) -> Dict[int, float]:
    """P(the objects are first co-located at timestep ``tau``).

    Mass missing from the returned dict is the probability they never
    meet.  Joint forward pass over "never met yet" pairs of node states —
    unlike :func:`colocation_profile`, first-meeting needs the joint DP
    because avoiding-so-far correlates the two trajectories.
    """
    if not (isinstance(graph_a, CTGraph) and isinstance(graph_b, CTGraph)):
        return _meeting_time_flat(QuerySession.ensure(graph_a).graph,
                                  QuerySession.ensure(graph_b).graph)
    _check_durations(graph_a.duration, graph_b.duration)
    first: Dict[int, float] = {}
    # pending[(a, b)] = P(prefixes end at (a, b), never co-located yet).
    pending: Dict[Tuple[CTNode, CTNode], float] = {}
    for source_a in graph_a.sources:
        pa = graph_a.source_probability(source_a)
        if pa <= 0.0:
            continue
        for source_b in graph_b.sources:
            pb = graph_b.source_probability(source_b)
            if pb <= 0.0:
                continue
            mass = pa * pb
            if source_a.location == source_b.location:
                first[0] = first.get(0, 0.0) + mass
            else:
                pending[(source_a, source_b)] = mass

    for tau in range(graph_a.duration - 1):
        step: Dict[Tuple[CTNode, CTNode], float] = {}
        emitted = 0.0
        for (node_a, node_b), mass in pending.items():
            for child_a, pa in node_a.edges.items():
                for child_b, pb in node_b.edges.items():
                    flow = mass * pa * pb
                    if child_a.location == child_b.location:
                        emitted += flow
                    else:
                        key = (child_a, child_b)
                        step[key] = step.get(key, 0.0) + flow
        if emitted > 0.0:
            first[tau + 1] = first.get(tau + 1, 0.0) + emitted
        pending = step
        if not pending:
            break
    return first


def _meeting_time_flat(graph_a: FlatCTGraph,
                       graph_b: FlatCTGraph) -> Dict[int, float]:
    """The joint first-meeting DP over two flat graphs.

    Mirrors the object path pair-for-pair: same source nesting (a outer,
    b inner), same edge nesting, same dict insertion order — identical
    floats.  Location equality crosses the two graphs' intern tables, so
    it compares names, not ids.
    """
    _check_durations(graph_a.duration, graph_b.duration)
    names_a = graph_a.location_names
    names_b = graph_b.location_names
    first: Dict[int, float] = {}
    pending: Dict[Tuple[int, int], float] = {}
    lids_a = graph_a.locations[0]
    lids_b = graph_b.locations[0]
    for ia in range(len(lids_a)):
        pa = graph_a.source_probabilities[ia]
        if pa <= 0.0:
            continue
        for ib in range(len(lids_b)):
            pb = graph_b.source_probabilities[ib]
            if pb <= 0.0:
                continue
            mass = pa * pb
            if names_a[lids_a[ia]] == names_b[lids_b[ib]]:
                first[0] = first.get(0, 0.0) + mass
            else:
                pending[(ia, ib)] = mass

    for tau in range(graph_a.duration - 1):
        offsets_a = graph_a.edge_offsets[tau]
        children_a = graph_a.edge_children[tau]
        probs_a = graph_a.edge_probabilities[tau]
        next_a = graph_a.locations[tau + 1]
        offsets_b = graph_b.edge_offsets[tau]
        children_b = graph_b.edge_children[tau]
        probs_b = graph_b.edge_probabilities[tau]
        next_b = graph_b.locations[tau + 1]
        step: Dict[Tuple[int, int], float] = {}
        emitted = 0.0
        for (ia, ib), mass in pending.items():
            for ea in range(offsets_a[ia], offsets_a[ia + 1]):
                child_a = children_a[ea]
                location_a = names_a[next_a[child_a]]
                flow_a = mass * probs_a[ea]
                for eb in range(offsets_b[ib], offsets_b[ib + 1]):
                    child_b = children_b[eb]
                    flow = flow_a * probs_b[eb]
                    if location_a == names_b[next_b[child_b]]:
                        emitted += flow
                    else:
                        key = (child_a, child_b)
                        step[key] = step.get(key, 0.0) + flow
        if emitted > 0.0:
            first[tau + 1] = first.get(tau + 1, 0.0) + emitted
        pending = step
        if not pending:
            break
    return first


def meeting_probability(graph_a: MeetingOperand,
                        graph_b: MeetingOperand) -> float:
    """P(the two objects share a location at some timestep)."""
    return min(1.0, sum(meeting_time_distribution(graph_a, graph_b).values()))
