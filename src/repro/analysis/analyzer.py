"""The analyzer entry point: run every rule, collect a report.

:func:`analyze` is the one-call API behind both the ``rfid-ctg analyze``
CLI subcommand and the opt-in pre-flight hook of
:func:`repro.core.algorithm.build_ct_graph`.  It inspects a constraint
set (plus, optionally, a map model, a prior model and a concrete reading
sequence) *statically* — no trajectory enumeration, no probability
arithmetic — and returns an :class:`AnalysisReport` of typed diagnostics
with stable rule codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple, Union

from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.envelope import ConstraintEnvelope
from repro.analysis.reachability import ReachabilityIndex, location_universe
from repro.analysis.rules import (
    AnalysisContext,
    check_blowup_estimate,
    check_contradictory_stays,
    check_dead_level_candidates,
    check_dead_locations,
    check_dead_traveling_times,
    check_envelope_zero_mass,
    check_redundant_constraints,
    check_routing_advice,
    check_width_envelope,
    check_zero_mass,
)
from repro.core.constraints import ConstraintSet
from repro.core.lsequence import LSequence, ReadingSequence
from repro.errors import ReadingSequenceError

__all__ = ["RuleSpec", "RULES", "ZERO_MASS_RULE", "analyze"]

#: The rule code that *proves* conditioning would divide by zero.
ZERO_MASS_RULE = "C005"


@dataclass(frozen=True)
class RuleSpec:
    """One registered analyzer rule.

    ``advisory`` rules run only when the caller opts in with
    ``analyze(..., advise=True)`` (the CLI's ``--advise``) — they report
    recommendations, not problems.
    """

    code: str
    title: str
    requires_readings: bool
    check: Callable[[AnalysisContext], Iterator[Diagnostic]]
    advisory: bool = False


RULES: Tuple[RuleSpec, ...] = (
    RuleSpec("C001", "contradictory stay (DU self-loop vs latency)",
             False, check_contradictory_stays),
    RuleSpec("C002", "dead traveling-time constraint",
             False, check_dead_traveling_times),
    RuleSpec("C003", "redundant constraint",
             False, check_redundant_constraints),
    RuleSpec("C004", "dead location",
             False, check_dead_locations),
    RuleSpec("C005", "zero-mass pre-check",
             True, check_zero_mass),
    RuleSpec("C006", "ct-graph blowup estimate",
             True, check_blowup_estimate),
    RuleSpec("C007", "abstract width envelope",
             True, check_width_envelope),
    RuleSpec("C008", "dead support candidates / forced levels",
             True, check_dead_level_candidates),
    RuleSpec("C009", "envelope zero-mass proof",
             True, check_envelope_zero_mass),
    RuleSpec("C010", "engine/materialisation routing advice",
             True, check_routing_advice, advisory=True),
)


def _as_lsequence(readings: Optional[Union[LSequence, ReadingSequence]],
                  prior: Optional[object]) -> Optional[LSequence]:
    if readings is None:
        return None
    if isinstance(readings, LSequence):
        return readings
    if isinstance(readings, ReadingSequence):
        if prior is None:
            raise ReadingSequenceError(
                "analyze() was given raw readings but no prior model to "
                "interpret them with; pass prior=, or pass an LSequence")
        return LSequence.from_readings(readings, prior)
    raise ReadingSequenceError(
        f"analyze() readings must be a ReadingSequence or an LSequence, "
        f"got {type(readings).__name__}")


def analyze(constraints: ConstraintSet,
            map_model: Optional[object] = None,
            prior: Optional[object] = None,
            readings: Optional[Union[LSequence, ReadingSequence]] = None,
            *, strict_truncation: bool = False,
            advise: bool = False) -> AnalysisReport:
    """Statically analyze a constraint set (and optional map/prior/readings).

    Rules C001-C004 need only the constraints (the map model widens the
    location universe and the prior tells C004 which locations actually
    carry mass); C005-C010 additionally need a concrete reading sequence —
    pass ``readings`` as either a raw
    :class:`~repro.core.lsequence.ReadingSequence` (with ``prior``) or an
    already-interpreted :class:`~repro.core.lsequence.LSequence`.
    ``advise=True`` additionally runs the advisory rules (C010's
    engine/materialisation routing verdict).

    Diagnostics are emitted in rule-code order and are deterministic for a
    given input (rules iterate sorted views).
    """
    lsequence = _as_lsequence(readings, prior)
    universe = location_universe(constraints, map_model, prior, lsequence)
    envelope = (ConstraintEnvelope(lsequence, constraints,
                                   strict_truncation=strict_truncation)
                if lsequence is not None else None)
    context = AnalysisContext(
        constraints=constraints,
        universe=universe,
        reachability=ReachabilityIndex(universe, constraints),
        map_model=map_model,
        prior=prior,
        lsequence=lsequence,
        strict_truncation=strict_truncation,
        envelope=envelope)
    diagnostics: List[Diagnostic] = []
    for spec in RULES:
        if spec.requires_readings and lsequence is None:
            continue
        if spec.advisory and not advise:
            continue
        diagnostics.extend(spec.check(context))
    return AnalysisReport(tuple(diagnostics))
