"""Static pre-flight analysis of constraints, maps and readings.

The cleaning semantics silently degenerates when the stated integrity
constraints are contradictory or dead: conditioning on an unsatisfiable
set zeroes *all* trajectory mass, and Algorithm 1 only finds out during
(or at the end of) an expensive forward/backward pass.  This package puts
a cheap validation/planning stage in front of the probabilistic stage:

>>> from repro import ConstraintSet, Latency, Unreachable
>>> from repro.analysis import analyze
>>> report = analyze(ConstraintSet([Unreachable("A", "A"), Latency("A", 2)]))
>>> report.has_errors
True
>>> print(report.errors[0].code)
C001

Three layers expose it: this API (:func:`analyze`), the ``rfid-ctg
analyze`` CLI subcommand (``--strict`` exits 1 on ERROR, ``--advise``
adds C010's routing verdict), and the opt-in ``precheck`` option of
:class:`repro.core.algorithm.CleaningOptions`.  The abstract-
interpretation layer (:mod:`repro.analysis.envelope`) additionally powers
the ``engine="auto"`` routing of :func:`repro.core.algorithm.\
build_ct_graph` via :func:`repro.analysis.advisor.recommend_options`.
``docs/analysis.md`` documents every rule code.
"""

from repro.analysis.advisor import (
    AUTO_COMPACT_MIN_STATES,
    EngineAdvice,
    advise,
    recommend_options,
)
from repro.analysis.analyzer import RULES, ZERO_MASS_RULE, RuleSpec, analyze
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.envelope import (
    AbstractState,
    ConstraintEnvelope,
    DepartureInterval,
    estimate_ctg_bytes,
    estimate_graph_bytes,
)
from repro.analysis.precheck import first_dead_timestep, predict_zero_mass
from repro.analysis.reachability import ReachabilityIndex, location_universe
from repro.analysis.rules import AnalysisContext, ctgraph_size_bounds

__all__ = [
    "AbstractState",
    "AnalysisContext",
    "AnalysisReport",
    "AUTO_COMPACT_MIN_STATES",
    "ConstraintEnvelope",
    "DepartureInterval",
    "Diagnostic",
    "EngineAdvice",
    "ReachabilityIndex",
    "RuleSpec",
    "RULES",
    "Severity",
    "ZERO_MASS_RULE",
    "advise",
    "analyze",
    "ctgraph_size_bounds",
    "estimate_ctg_bytes",
    "estimate_graph_bytes",
    "first_dead_timestep",
    "location_universe",
    "predict_zero_mass",
    "recommend_options",
]
